//! # skip-core — the SKIP profiler
//!
//! **S**ystem-Aware **K**ernel **I**nference **P**rofiler: the paper's
//! primary contribution, implemented exactly as specified in §III–§IV.
//!
//! SKIP consumes a CUPTI-style trace (from `skip-trace`) and:
//!
//! 1. Builds the **operator–kernel dependency graph** (§IV-A): an ATen
//!    operator is the parent of a child operator or runtime launch call if
//!    the child's start timestamp falls within the parent's duration on the
//!    same thread; kernels link to launch calls by CUDA correlation ID.
//! 2. Computes the **fine-grained metrics** of §III-A:
//!    * `TKLQT` — Total Kernel Launch and Queuing Time (Eqs. 1–2), the sum
//!      over kernels of `ts_b(kernel) − ts_b(launch)`;
//!    * `AKD` — Average Kernel Duration (Eq. 3);
//!    * `IL` — Inference Latency (Eq. 4), last kernel end minus first
//!      parent-operator begin;
//!    * GPU idle time (Eq. 5) and CPU idle time;
//!    * top-k kernel tracking.
//! 3. Classifies workloads as **CPU-bound or GPU-bound** (§III-B / §V-B):
//!    TKLQT is flat at small batch sizes (pure launch overhead — CPU-bound)
//!    and ramps once kernel queuing dominates (GPU-bound); the inflection
//!    point is the paper's star marker in Fig. 6.
//!
//! The profiler sees nothing but the trace — it works identically on traces
//! from the simulated runtime and would work on timestamp-faithful imports
//! of real PyTorch Profiler traces.
//!
//! # Example
//!
//! ```
//! use skip_hw::Platform;
//! use skip_llm::{zoo, Phase, Workload};
//! use skip_runtime::{Engine, ExecMode};
//! use skip_core::ProfileReport;
//!
//! let engine = Engine::new(Platform::intel_h100());
//! let wl = Workload::new(zoo::gpt2(), Phase::Prefill, 1, 512);
//! let trace = engine.run(&wl, ExecMode::Eager);
//! let report = ProfileReport::analyze(&trace);
//! // At batch 1 the GPU is mostly idle: the workload is CPU-bound.
//! assert!(report.gpu_idle > report.total_kernel_time);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attribution;
mod boundedness;
mod compare;
mod depgraph;
mod metrics;
pub mod scan;
mod topk;

pub use attribution::{attribute_to_operators, OpStat};
pub use boundedness::{classify_sweep, Boundedness, SweepClassification, SweepPoint};
pub use compare::ReportDelta;
pub use depgraph::{DependencyGraph, LaunchLink, OpRef};
pub use metrics::ProfileReport;
pub use topk::{top_kernels, KernelStat};
