//! Operator-level attribution: roll kernel time and launch overhead up to
//! the root ATen operators that caused them.
//!
//! Top-k kernel tracking (§III-A-5) answers "which *kernels* dominate";
//! this module answers the companion question a user of SKIP asks next:
//! "which *operators* should I optimize?" Every kernel is attributed —
//! through its launch call and the dependency graph — to the root
//! (top-level) operator containing the launch, aggregating GPU time,
//! launch+queue time, and counts per operator name.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use skip_des::SimDuration;
use skip_trace::{NameId, Trace};

use crate::depgraph::DependencyGraph;

/// Aggregate statistics for one root-operator name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpStat {
    /// Root operator name (e.g. `"aten::linear"`).
    pub name: String,
    /// Number of root-operator instances that launched at least one kernel.
    pub instances: usize,
    /// Kernels launched from under this operator.
    pub kernels: usize,
    /// Total GPU execution time of those kernels.
    pub gpu_time: SimDuration,
    /// Total launch + queuing time of those kernels (this operator's
    /// contribution to TKLQT).
    pub launch_queue_time: SimDuration,
}

/// Attributes every kernel of `trace` to its root operator, returning
/// per-operator aggregates sorted by GPU time (descending, ties broken by
/// name for determinism).
///
/// Kernels whose launch call has no containing operator (e.g. a bare
/// `cudaGraphLaunch` replay) are aggregated under `"<no operator>"`.
///
/// # Example
///
/// ```
/// use skip_hw::Platform;
/// use skip_llm::{zoo, Phase, Workload};
/// use skip_runtime::{Engine, ExecMode};
///
/// let trace = Engine::new(Platform::intel_h100())
///     .run(&Workload::new(zoo::gpt2(), Phase::Prefill, 8, 512), ExecMode::Eager);
/// let stats = skip_core::attribute_to_operators(&trace);
/// // Every kernel is accounted for exactly once.
/// let attributed: usize = stats.iter().map(|s| s.kernels).sum();
/// assert_eq!(attributed, trace.kernels().len());
/// // The heaviest operator is first.
/// assert!(stats[0].gpu_time >= stats.last().unwrap().gpu_time);
/// ```
#[must_use]
pub fn attribute_to_operators(trace: &Trace) -> Vec<OpStat> {
    let graph = DependencyGraph::build(trace);
    let ops = trace.cpu_ops();
    // The whole sweep reads nothing but timestamps, so scan the contiguous
    // SoA columns directly rather than materializing event structs.
    let launch_begins = trace.launches().begins();
    let kernel_begins = trace.kernels().begins();
    let kernel_ends = trace.kernels().ends();
    // Per-kernel durations, precomputed in one vectorized column pass so
    // the gather below indexes a flat slice instead of re-deriving each
    // duration scalar-by-scalar.
    let mut kernel_durs = Vec::new();
    crate::scan::deltas_into(kernel_ends, kernel_begins, &mut kernel_durs);

    struct Acc {
        instances: std::collections::BTreeSet<usize>,
        kernels: usize,
        gpu_time: SimDuration,
        lq_time: SimDuration,
    }
    // Aggregate by interned name id (`None` = no containing operator);
    // names materialize once per aggregate, not once per kernel.
    let mut agg: BTreeMap<Option<NameId>, Acc> = BTreeMap::new();

    for link in graph.launches() {
        let Some(kidx) = link.kernel_idx else {
            continue;
        };
        let (name, instance) = match link.parent_op {
            Some(op) => {
                let root = graph.root_ancestor(op);
                (Some(ops[root].name), root)
            }
            None => (None, usize::MAX),
        };
        let acc = agg.entry(name).or_insert_with(|| Acc {
            instances: std::collections::BTreeSet::new(),
            kernels: 0,
            gpu_time: SimDuration::ZERO,
            lq_time: SimDuration::ZERO,
        });
        acc.instances.insert(instance);
        acc.kernels += 1;
        acc.gpu_time += kernel_durs[kidx];
        acc.lq_time +=
            kernel_begins[kidx].saturating_duration_since(launch_begins[link.launch_idx]);
    }

    let mut stats: Vec<OpStat> = agg
        .into_iter()
        .map(|(name, a)| OpStat {
            name: match name {
                Some(id) => trace.name(id).to_owned(),
                None => "<no operator>".to_owned(),
            },
            instances: a.instances.len(),
            kernels: a.kernels,
            gpu_time: a.gpu_time,
            launch_queue_time: a.lq_time,
        })
        .collect();
    stats.sort_by(|a, b| {
        b.gpu_time
            .cmp(&a.gpu_time)
            .then_with(|| a.name.cmp(&b.name))
    });
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use skip_des::SimTime;
    use skip_trace::{
        CorrelationId, CpuOpEvent, KernelEvent, OpId, RuntimeLaunchEvent, StreamId, ThreadId,
        TraceMeta,
    };

    fn ns(v: u64) -> SimTime {
        SimTime::from_nanos(v)
    }

    /// Two roots: "aten::linear" (with nested addmm launching 2 kernels)
    /// and "aten::softmax" (1 kernel).
    fn sample() -> Trace {
        let mut t = Trace::new(TraceMeta::default());
        for (id, name, begin, end) in [
            (0u64, "aten::linear", 0u64, 100u64),
            (1, "aten::addmm", 10, 90),
            (2, "aten::softmax", 100, 200),
        ] {
            let name = t.intern(name);
            t.push_cpu_op(CpuOpEvent {
                id: OpId::new(id),
                name,
                thread: ThreadId::MAIN,
                begin: ns(begin),
                end: ns(end),
            });
        }
        let cuda_launch = t.intern("cudaLaunchKernel");
        let mut launch = |begin: u64, corr: u64, kb: u64, ke: u64| {
            t.push_launch(RuntimeLaunchEvent {
                name: cuda_launch,
                thread: ThreadId::MAIN,
                begin: ns(begin),
                end: ns(begin + 5),
                correlation: CorrelationId::new(corr),
            });
            let kname = t.intern(&format!("k{corr}"));
            t.push_kernel(KernelEvent {
                name: kname,
                stream: StreamId::DEFAULT,
                begin: ns(kb),
                end: ns(ke),
                correlation: CorrelationId::new(corr),
            });
        };
        launch(20, 1, 40, 70); // under addmm → root linear, 30ns GPU
        launch(30, 2, 70, 90); // under addmm → root linear, 20ns GPU
        launch(110, 3, 130, 140); // under softmax, 10ns GPU
        t
    }

    #[test]
    fn kernels_roll_up_to_root_operators() {
        let stats = attribute_to_operators(&sample());
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "aten::linear");
        assert_eq!(stats[0].kernels, 2);
        assert_eq!(stats[0].instances, 1);
        assert_eq!(stats[0].gpu_time, SimDuration::from_nanos(50));
        // launch→kernel: (40-20) + (70-30) = 60.
        assert_eq!(stats[0].launch_queue_time, SimDuration::from_nanos(60));
        assert_eq!(stats[1].name, "aten::softmax");
        assert_eq!(stats[1].gpu_time, SimDuration::from_nanos(10));
    }

    #[test]
    fn orphan_launches_bucket_separately() {
        let mut t = Trace::new(TraceMeta::default());
        let graph_launch = t.intern("cudaGraphLaunch");
        t.push_launch(RuntimeLaunchEvent {
            name: graph_launch,
            thread: ThreadId::MAIN,
            begin: ns(0),
            end: ns(5),
            correlation: CorrelationId::new(1),
        });
        let k = t.intern("k");
        t.push_kernel(KernelEvent {
            name: k,
            stream: StreamId::DEFAULT,
            begin: ns(10),
            end: ns(20),
            correlation: CorrelationId::new(1),
        });
        let stats = attribute_to_operators(&t);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].name, "<no operator>");
    }

    #[test]
    fn attribution_covers_every_kernel() {
        let t = sample();
        let stats = attribute_to_operators(&t);
        let attributed: usize = stats.iter().map(|s| s.kernels).sum();
        assert_eq!(attributed, t.kernels().len());
    }
}
