//! The paper's fine-grained metrics (§III-A, Eqs. 1–5).

use serde::{Deserialize, Serialize};
use skip_des::{SimDuration, SimTime};
use skip_trace::Trace;

use crate::depgraph::DependencyGraph;

/// Everything SKIP computes for one trace.
///
/// All durations are simulated time. See the equations referenced on each
/// field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Total Kernel Launch and Queuing Time (Eq. 2): `Σ ts_b(k_j) −
    /// ts_b(l_j)` over all launched kernels. Flat in the CPU-bound region
    /// (pure launch overhead), ramping when kernel queuing dominates.
    pub tklqt: SimDuration,
    /// Average Kernel Duration (Eq. 3).
    pub akd: SimDuration,
    /// Inference Latency (Eq. 4): last kernel end − first parent operator
    /// begin.
    pub inference_latency: SimDuration,
    /// GPU idle time (Eq. 5): `IL − Σ t_k`.
    pub gpu_idle: SimDuration,
    /// CPU idle time: `IL` minus the span the CPU spent executing
    /// operators — the time the host spends waiting on the device.
    pub cpu_idle: SimDuration,
    /// Mean per-kernel launch overhead, ns (`TKLQT / kernels`).
    pub mean_launch_overhead_ns: f64,
    /// Number of kernels executed.
    pub kernel_count: usize,
    /// Number of runtime launch calls (includes memcpys).
    pub launch_count: usize,
    /// Number of CPU operator events.
    pub cpu_op_count: usize,
    /// Total kernel execution time `Σ t_k`.
    pub total_kernel_time: SimDuration,
}

impl ProfileReport {
    /// Runs the SKIP analysis on `trace`.
    ///
    /// Builds the dependency graph (§IV-A) to pair kernels with their
    /// launch calls, then evaluates Eqs. 1–5. Traces without kernels yield
    /// a report of zeros (with `inference_latency` equal to the CPU span).
    #[must_use]
    pub fn analyze(trace: &Trace) -> Self {
        let graph = DependencyGraph::build(trace);
        Self::analyze_with_graph(trace, &graph)
    }

    /// Like [`ProfileReport::analyze`] but reuses an existing dependency
    /// graph ([C-INTERMEDIATE]).
    ///
    /// [C-INTERMEDIATE]: https://rust-lang.github.io/api-guidelines/flexibility.html
    #[must_use]
    pub fn analyze_with_graph(trace: &Trace, graph: &DependencyGraph) -> Self {
        let launches = trace.launches();
        let kernels = trace.kernels();
        // Every equation below reads timestamps only, so scan the SoA
        // columns directly — contiguous u64 arrays, one cache line per 8
        // events — instead of materializing event structs.
        let launch_begins = launches.begins();
        let kernel_begins = kernels.begins();
        let kernel_ends = kernels.ends();

        // Eq. 1–2: per-kernel launch+queue time, summed.
        let mut tklqt = SimDuration::ZERO;
        for link in graph.launches() {
            if let Some(kidx) = link.kernel_idx {
                tklqt +=
                    kernel_begins[kidx].saturating_duration_since(launch_begins[link.launch_idx]);
            }
        }

        // Eq. 3: average kernel duration — an 8-lane chunked column sum
        // (see `scan`) over the paired begin/end columns.
        let total_kernel_time = crate::scan::sum_deltas(kernel_ends, kernel_begins);
        let akd = if kernels.is_empty() {
            SimDuration::ZERO
        } else {
            total_kernel_time / kernels.len() as u64
        };

        // Eq. 4: inference latency. CPU ops are AoS (struct scan); the
        // kernel-end column reduces through the vectorized max.
        let first_op_begin = trace
            .cpu_ops()
            .iter()
            .map(|o| o.begin)
            .min()
            .unwrap_or(SimTime::ZERO);
        let last_kernel_end = crate::scan::max_time(kernel_ends);
        let inference_latency = match last_kernel_end {
            Some(end) => end.saturating_duration_since(first_op_begin),
            None => trace.span(),
        };

        // Eq. 5: GPU idle.
        let gpu_idle = inference_latency.saturating_sub(total_kernel_time);

        // CPU busy span: first op begin to last CPU-side event end. The
        // launch-end column reduces vectorized; the AoS op ends stay scalar.
        let last_cpu_end = trace
            .cpu_ops()
            .iter()
            .map(|o| o.end)
            .max()
            .into_iter()
            .chain(crate::scan::max_time(launches.ends()))
            .max();
        let cpu_busy = match last_cpu_end {
            Some(end) => end.saturating_duration_since(first_op_begin),
            None => SimDuration::ZERO,
        };
        let cpu_idle = inference_latency.saturating_sub(cpu_busy);

        let mean_launch_overhead_ns = if kernels.is_empty() {
            0.0
        } else {
            tklqt.as_nanos_f64() / kernels.len() as f64
        };

        ProfileReport {
            tklqt,
            akd,
            inference_latency,
            gpu_idle,
            cpu_idle,
            mean_launch_overhead_ns,
            kernel_count: kernels.len(),
            launch_count: launches.len(),
            cpu_op_count: trace.cpu_ops().len(),
            total_kernel_time,
        }
    }

    /// Fraction of the inference latency the GPU was busy, in `[0, 1]`.
    #[must_use]
    pub fn gpu_utilization(&self) -> f64 {
        let il = self.inference_latency.as_nanos_f64();
        if il == 0.0 {
            return 0.0;
        }
        self.total_kernel_time.as_nanos_f64() / il
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skip_des::SimTime;
    use skip_trace::{
        CorrelationId, CpuOpEvent, KernelEvent, OpId, RuntimeLaunchEvent, StreamId, ThreadId,
        TraceMeta,
    };

    fn ns(v: u64) -> SimTime {
        SimTime::from_nanos(v)
    }

    /// One op [0,100) launching two kernels: launch at 10 → kernel [20,50),
    /// launch at 30 → kernel [60,90).
    fn two_kernel_trace() -> Trace {
        let mut t = Trace::new(TraceMeta::default());
        let linear = t.intern("aten::linear");
        t.push_cpu_op(CpuOpEvent {
            id: OpId::new(0),
            name: linear,
            thread: ThreadId::MAIN,
            begin: ns(0),
            end: ns(100),
        });
        let launch = t.intern("cudaLaunchKernel");
        let k = t.intern("k");
        for (corr, lb, kb, ke) in [(1u64, 10u64, 20u64, 50u64), (2, 30, 60, 90)] {
            t.push_launch(RuntimeLaunchEvent {
                name: launch,
                thread: ThreadId::MAIN,
                begin: ns(lb),
                end: ns(lb + 5),
                correlation: CorrelationId::new(corr),
            });
            t.push_kernel(KernelEvent {
                name: k,
                stream: StreamId::DEFAULT,
                begin: ns(kb),
                end: ns(ke),
                correlation: CorrelationId::new(corr),
            });
        }
        t
    }

    #[test]
    fn equations_one_through_five() {
        let r = ProfileReport::analyze(&two_kernel_trace());
        // TKLQT = (20-10) + (60-30) = 40.
        assert_eq!(r.tklqt, SimDuration::from_nanos(40));
        // AKD = (30+30)/2.
        assert_eq!(r.akd, SimDuration::from_nanos(30));
        // IL = 90 - 0.
        assert_eq!(r.inference_latency, SimDuration::from_nanos(90));
        // GPU idle = 90 - 60.
        assert_eq!(r.gpu_idle, SimDuration::from_nanos(30));
        // CPU busy spans to 100 > IL, so CPU idle clamps to zero.
        assert_eq!(r.cpu_idle, SimDuration::ZERO);
        assert_eq!(r.kernel_count, 2);
        assert!((r.mean_launch_overhead_ns - 20.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_yields_zeros() {
        let r = ProfileReport::analyze(&Trace::default());
        assert_eq!(r.tklqt, SimDuration::ZERO);
        assert_eq!(r.akd, SimDuration::ZERO);
        assert_eq!(r.kernel_count, 0);
        assert_eq!(r.gpu_utilization(), 0.0);
    }

    #[test]
    fn cpu_idle_appears_when_gpu_runs_long() {
        // CPU finishes at 40, last kernel ends at 200 → CPU idles 160.
        let mut t = Trace::new(TraceMeta::default());
        let mm = t.intern("aten::mm");
        t.push_cpu_op(CpuOpEvent {
            id: OpId::new(0),
            name: mm,
            thread: ThreadId::MAIN,
            begin: ns(0),
            end: ns(40),
        });
        let launch = t.intern("cudaLaunchKernel");
        t.push_launch(RuntimeLaunchEvent {
            name: launch,
            thread: ThreadId::MAIN,
            begin: ns(10),
            end: ns(15),
            correlation: CorrelationId::new(1),
        });
        let gemm = t.intern("gemm");
        t.push_kernel(KernelEvent {
            name: gemm,
            stream: StreamId::DEFAULT,
            begin: ns(50),
            end: ns(200),
            correlation: CorrelationId::new(1),
        });
        let r = ProfileReport::analyze(&t);
        assert_eq!(r.cpu_idle, SimDuration::from_nanos(160));
        assert_eq!(r.inference_latency, SimDuration::from_nanos(200));
        assert!((r.gpu_utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn gpu_utilization_bounded() {
        let r = ProfileReport::analyze(&two_kernel_trace());
        let u = r.gpu_utilization();
        assert!((0.0..=1.0).contains(&u));
    }
}
