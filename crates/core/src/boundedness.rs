//! CPU-bound vs GPU-bound classification from TKLQT sweeps (§III-B, §V-B).
//!
//! Across a batch-size sweep, TKLQT is constant while every kernel starts
//! exactly one launch-overhead after its launch call (the GPU keeps up —
//! CPU-bound), and ramps once kernel queuing dominates (GPU-bound). The
//! inflection point — the paper's star markers in Fig. 6 — is the first
//! batch size where TKLQT exceeds the launch-overhead plateau by a
//! threshold factor.

use serde::{Deserialize, Serialize};
use skip_des::SimDuration;

/// Which processing unit bounds the workload at a given batch size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Boundedness {
    /// Launch-overhead-dominated: the GPU is under-utilized and latency is
    /// set by CPU dispatch performance.
    CpuBound,
    /// Queue-dominated: the GPU is saturated and kernels wait on each
    /// other.
    GpuBound,
}

/// One point of a TKLQT-vs-batch-size sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Batch size.
    pub batch_size: u32,
    /// Measured TKLQT at that batch size.
    pub tklqt: SimDuration,
}

/// The classification of a full sweep.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepClassification {
    /// Per-point labels, in ascending batch-size order.
    pub labels: Vec<(u32, Boundedness)>,
    /// The first GPU-bound batch size (the Fig. 6 star marker), or `None`
    /// if the sweep never leaves the CPU-bound region.
    pub transition_batch: Option<u32>,
    /// The launch-overhead plateau TKLQT the classification is relative to.
    pub plateau: SimDuration,
}

/// Default threshold factor: a point is GPU-bound once its TKLQT exceeds
/// the launch-overhead plateau 5-fold — i.e. once at least ~80% of TKLQT is
/// queuing rather than launch cost, queuing clearly dominates. (Small
/// amounts of intra-operator queuing exist even at batch 1 — kernels
/// launched back-to-back inside one operator briefly wait on each other —
/// so a lower threshold would trip on launch-burst noise rather than GPU
/// saturation.)
pub const DEFAULT_THRESHOLD: f64 = 5.0;

/// Classifies a TKLQT sweep with the default threshold.
///
/// Points are sorted by batch size internally. The plateau is the TKLQT of
/// the smallest batch size (by construction launch-dominated: larger batch
/// sizes launch the same number of kernels, so any TKLQT growth is queuing).
///
/// # Panics
///
/// Panics if `points` is empty.
///
/// # Example
///
/// ```
/// use skip_core::{classify_sweep, Boundedness, SweepPoint};
/// use skip_des::SimDuration;
///
/// let sweep: Vec<SweepPoint> = [(1u32, 100u64), (2, 102), (4, 180), (8, 900), (16, 4000)]
///     .into_iter()
///     .map(|(b, t)| SweepPoint { batch_size: b, tklqt: SimDuration::from_micros(t) })
///     .collect();
/// let c = classify_sweep(&sweep);
/// assert_eq!(c.transition_batch, Some(8));
/// assert_eq!(c.labels[0], (1, Boundedness::CpuBound));
/// ```
#[must_use]
pub fn classify_sweep(points: &[SweepPoint]) -> SweepClassification {
    classify_sweep_with_threshold(points, DEFAULT_THRESHOLD)
}

/// Classifies with an explicit threshold factor (> 1).
///
/// # Panics
///
/// Panics if `points` is empty or `threshold <= 1.0`.
#[must_use]
pub fn classify_sweep_with_threshold(points: &[SweepPoint], threshold: f64) -> SweepClassification {
    assert!(!points.is_empty(), "sweep must contain at least one point");
    assert!(threshold > 1.0, "threshold must exceed 1.0");
    let mut sorted = points.to_vec();
    sorted.sort_by_key(|p| p.batch_size);

    let plateau = sorted[0].tklqt;
    let cutoff = plateau.as_nanos_f64() * threshold;

    let mut labels = Vec::with_capacity(sorted.len());
    let mut transition_batch = None;
    let mut crossed = false;
    for p in &sorted {
        // Once the sweep crosses, it stays GPU-bound: TKLQT queuing grows
        // monotonically with batch in a saturated regime, and hysteresis
        // avoids flapping on noisy plateaus.
        let bound = if crossed || p.tklqt.as_nanos_f64() > cutoff {
            if !crossed {
                transition_batch = Some(p.batch_size);
                crossed = true;
            }
            Boundedness::GpuBound
        } else {
            Boundedness::CpuBound
        };
        labels.push((p.batch_size, bound));
    }

    SweepClassification {
        labels,
        transition_batch,
        plateau,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(b: u32, us: u64) -> SweepPoint {
        SweepPoint {
            batch_size: b,
            tklqt: SimDuration::from_micros(us),
        }
    }

    #[test]
    fn flat_sweep_never_transitions() {
        let sweep = vec![pt(1, 100), pt(2, 101), pt(4, 99), pt(8, 100)];
        let c = classify_sweep(&sweep);
        assert_eq!(c.transition_batch, None);
        assert!(c.labels.iter().all(|&(_, b)| b == Boundedness::CpuBound));
    }

    #[test]
    fn ramp_transitions_at_first_crossing() {
        let sweep = vec![
            pt(1, 100),
            pt(2, 100),
            pt(4, 600),
            pt(8, 4000),
            pt(16, 16000),
        ];
        let c = classify_sweep(&sweep);
        assert_eq!(c.transition_batch, Some(4));
        assert_eq!(c.labels[2].1, Boundedness::GpuBound);
        assert_eq!(c.labels[1].1, Boundedness::CpuBound);
    }

    #[test]
    fn classification_is_monotone_after_crossing() {
        // A dip after crossing stays GPU-bound (hysteresis).
        let sweep = vec![pt(1, 100), pt(2, 900), pt(4, 300)];
        let c = classify_sweep(&sweep);
        assert_eq!(
            c.labels,
            vec![
                (1, Boundedness::CpuBound),
                (2, Boundedness::GpuBound),
                (4, Boundedness::GpuBound)
            ]
        );
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let sweep = vec![pt(8, 4000), pt(1, 100), pt(4, 100), pt(2, 100)];
        let c = classify_sweep(&sweep);
        let batches: Vec<u32> = c.labels.iter().map(|&(b, _)| b).collect();
        assert_eq!(batches, vec![1, 2, 4, 8]);
        assert_eq!(c.transition_batch, Some(8));
    }

    #[test]
    fn custom_threshold_moves_the_star() {
        let sweep = vec![pt(1, 100), pt(2, 130), pt(4, 210)];
        let strict = classify_sweep_with_threshold(&sweep, 1.25);
        assert_eq!(strict.transition_batch, Some(2));
        let loose = classify_sweep_with_threshold(&sweep, 2.5);
        assert_eq!(loose.transition_batch, None);
    }

    #[test]
    #[should_panic(expected = "sweep must contain at least one point")]
    fn empty_sweep_panics() {
        let _ = classify_sweep(&[]);
    }

    #[test]
    #[should_panic(expected = "threshold must exceed 1.0")]
    fn bad_threshold_panics() {
        let _ = classify_sweep_with_threshold(&[pt(1, 1)], 0.9);
    }
}
