//! Comparing two profile reports — speedups and bottleneck shifts.
//!
//! Every optimization question in the paper reduces to "what changed
//! between these two runs?": eager vs fused, platform A vs platform B,
//! batch b vs batch 2b. [`ReportDelta`] captures the comparison the way
//! the paper's prose states results: a latency speedup plus where the
//! time went (launch/queue vs GPU execution vs idleness).

use serde::{Deserialize, Serialize};
use skip_des::SimDuration;

use crate::metrics::ProfileReport;

/// The difference between a baseline and a candidate profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportDelta {
    /// `baseline IL / candidate IL` — >1 means the candidate is faster.
    pub speedup: f64,
    /// TKLQT change, candidate − baseline (negative = less launch/queue).
    pub tklqt_delta: f64,
    /// GPU-idle change in nanoseconds, candidate − baseline.
    pub gpu_idle_delta: f64,
    /// Kernel-count change, candidate − baseline.
    pub kernel_count_delta: i64,
    /// GPU-utilization change, candidate − baseline, in [−1, 1].
    pub gpu_utilization_delta: f64,
}

impl ReportDelta {
    /// Compares `candidate` against `baseline`.
    ///
    /// # Example
    ///
    /// ```
    /// use skip_core::{ProfileReport, ReportDelta};
    /// use skip_hw::Platform;
    /// use skip_llm::{zoo, Phase, Workload};
    /// use skip_runtime::{Engine, ExecMode};
    ///
    /// let engine = Engine::new(Platform::intel_h100());
    /// let wl = Workload::new(zoo::gpt2(), Phase::Prefill, 1, 512);
    /// let eager = ProfileReport::analyze(&engine.run(&wl, ExecMode::Eager));
    /// let flash = ProfileReport::analyze(&engine.run(&wl, ExecMode::FlashAttention2));
    /// let delta = ReportDelta::between(&eager, &flash);
    /// // FlashAttention launches fewer kernels and is no slower.
    /// assert!(delta.kernel_count_delta < 0);
    /// assert!(delta.speedup >= 1.0);
    /// ```
    #[must_use]
    pub fn between(baseline: &ProfileReport, candidate: &ProfileReport) -> Self {
        let b_il = baseline.inference_latency.as_nanos_f64().max(1.0);
        let c_il = candidate.inference_latency.as_nanos_f64().max(1.0);
        ReportDelta {
            speedup: b_il / c_il,
            tklqt_delta: candidate.tklqt.as_nanos_f64() - baseline.tklqt.as_nanos_f64(),
            gpu_idle_delta: candidate.gpu_idle.as_nanos_f64() - baseline.gpu_idle.as_nanos_f64(),
            kernel_count_delta: candidate.kernel_count as i64 - baseline.kernel_count as i64,
            gpu_utilization_delta: candidate.gpu_utilization() - baseline.gpu_utilization(),
        }
    }

    /// The latency saved by the candidate (zero if it is slower).
    #[must_use]
    pub fn latency_saved(&self, baseline: &ProfileReport) -> SimDuration {
        if self.speedup <= 1.0 {
            return SimDuration::ZERO;
        }
        let b = baseline.inference_latency.as_nanos_f64();
        SimDuration::from_nanos_f64(b - b / self.speedup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skip_des::SimDuration;

    fn report(il_ns: u64, tklqt_ns: u64, kernels: usize) -> ProfileReport {
        ProfileReport {
            tklqt: SimDuration::from_nanos(tklqt_ns),
            akd: SimDuration::from_nanos(100),
            inference_latency: SimDuration::from_nanos(il_ns),
            gpu_idle: SimDuration::from_nanos(il_ns / 2),
            cpu_idle: SimDuration::ZERO,
            mean_launch_overhead_ns: 0.0,
            kernel_count: kernels,
            launch_count: kernels,
            cpu_op_count: kernels,
            total_kernel_time: SimDuration::from_nanos(il_ns / 2),
        }
    }

    #[test]
    fn speedup_is_baseline_over_candidate() {
        let d = ReportDelta::between(&report(1000, 100, 10), &report(500, 40, 4));
        assert!((d.speedup - 2.0).abs() < 1e-12);
        assert_eq!(d.kernel_count_delta, -6);
        assert!((d.tklqt_delta + 60.0).abs() < 1e-12);
    }

    #[test]
    fn latency_saved_clamps_for_slowdowns() {
        let base = report(1000, 100, 10);
        let slower = report(2000, 100, 10);
        let d = ReportDelta::between(&base, &slower);
        assert!(d.speedup < 1.0);
        assert_eq!(d.latency_saved(&base), SimDuration::ZERO);
        let faster = report(500, 100, 10);
        let d2 = ReportDelta::between(&base, &faster);
        assert_eq!(d2.latency_saved(&base), SimDuration::from_nanos(500));
    }

    #[test]
    fn identical_reports_are_neutral() {
        let r = report(1000, 100, 10);
        let d = ReportDelta::between(&r, &r);
        assert!((d.speedup - 1.0).abs() < 1e-12);
        assert_eq!(d.kernel_count_delta, 0);
        assert_eq!(d.gpu_utilization_delta, 0.0);
    }
}
