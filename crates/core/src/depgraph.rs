//! Operator–kernel dependency graph construction (paper §IV-A).
//!
//! Reconstructs the hierarchy a real profiler trace flattens away:
//!
//! * an operator `p` is the parent of operator `c` (or launch call `l`) if
//!   `c` starts within `p`'s `[begin, end)` on the same thread, with the
//!   *tightest* containing operator winning;
//! * kernel `k` links to launch `l` through the CUDA correlation ID.
//!
//! The construction is a per-thread interval sweep: events sorted by
//! `(begin asc, end desc)` visit parents before their children, so a stack
//! of currently-open operators yields each node's innermost parent in
//! O(n log n). Launch calls are attached by a second sweep over the same
//! sorted operator list — launches sorted by begin advance through the
//! operator stack, so attachment is O((n + m) log (n + m)) rather than the
//! naive O(n·m) all-pairs containment scan.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use skip_trace::{CorrelationId, OpId, ThreadId, Trace};

/// Index of an operator within [`DependencyGraph::ops`] order (the trace's
/// CPU-op order).
pub type OpRef = usize;

/// A launch call resolved against the graph: which operator issued it and
/// which kernel it triggered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchLink {
    /// Index into [`Trace::launches`].
    pub launch_idx: usize,
    /// The innermost operator containing the launch call, if any.
    pub parent_op: Option<OpRef>,
    /// Index into [`Trace::kernels`] of the kernel with the same
    /// correlation ID, if one executed.
    pub kernel_idx: Option<usize>,
}

/// The reconstructed operator–kernel dependency graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DependencyGraph {
    /// `parent[i]` is the innermost operator containing operator `i`.
    parent: Vec<Option<OpRef>>,
    /// `children[i]` lists operators directly nested in operator `i`.
    children: Vec<Vec<OpRef>>,
    /// Root operators (no parent), in trace order.
    roots: Vec<OpRef>,
    /// Launch calls resolved to parent operators and kernels.
    launches: Vec<LaunchLink>,
}

impl DependencyGraph {
    /// Builds the dependency graph for `trace`.
    ///
    /// Operators with identical `(thread, begin)` are disambiguated by
    /// longer-duration-first, so a parent whose first child starts at the
    /// same instant still contains it — matching how SKIP treats zero-skew
    /// profiler timestamps.
    #[must_use]
    pub fn build(trace: &Trace) -> Self {
        let ops = trace.cpu_ops();
        let n = ops.len();
        let mut parent: Vec<Option<OpRef>> = vec![None; n];
        let mut children: Vec<Vec<OpRef>> = vec![Vec::new(); n];
        let mut roots = Vec::new();

        // Group op indices per thread, sorted parents-before-children:
        // earlier begin first; on ties the longer (outer) interval first.
        // The sorted lists drive both the hierarchy sweep and the launch
        // attachment sweep below.
        let mut per_thread: BTreeMap<ThreadId, Vec<OpRef>> = BTreeMap::new();
        for (i, op) in ops.iter().enumerate() {
            per_thread.entry(op.thread).or_default().push(i);
        }
        for sorted in per_thread.values_mut() {
            sorted.sort_by(|&a, &b| {
                (ops[a].begin, std::cmp::Reverse(ops[a].end))
                    .cmp(&(ops[b].begin, std::cmp::Reverse(ops[b].end)))
            });
        }

        for sorted in per_thread.values() {
            let mut stack: Vec<OpRef> = Vec::new();
            for &i in sorted {
                while let Some(&top) = stack.last() {
                    // `top` contains `i` if i begins before top ends.
                    if ops[i].begin < ops[top].end && ops[i].end <= ops[top].end {
                        break;
                    }
                    stack.pop();
                }
                match stack.last() {
                    Some(&p) => {
                        parent[i] = Some(p);
                        children[p].push(i);
                    }
                    None => roots.push(i),
                }
                stack.push(i);
            }
        }
        roots.sort_unstable();
        for ch in &mut children {
            ch.sort_unstable();
        }

        // Kernel lookup by correlation. Engine-generated traces assign
        // correlation IDs monotonically, which a vectorized 8-lane scan
        // over the SoA column verifies in O(n); when it holds, lookups
        // binary-search the column directly and the map (one allocation
        // per kernel plus log-n inserts) is never built. Imported traces
        // with shuffled or duplicate IDs fall back to the map, where a
        // later kernel wins a duplicated correlation — same as before.
        let kernel_corrs = trace.kernels().correlations();
        let corrs_ascending = crate::scan::is_strictly_ascending(kernel_corrs);
        let kernel_by_corr: BTreeMap<CorrelationId, usize> = if corrs_ascending {
            BTreeMap::new()
        } else {
            kernel_corrs
                .iter()
                .enumerate()
                .map(|(i, &c)| (c, i))
                .collect()
        };
        let kernel_for = |corr: &CorrelationId| -> Option<usize> {
            if corrs_ascending {
                kernel_corrs.binary_search(corr).ok()
            } else {
                kernel_by_corr.get(corr).copied()
            }
        };

        // Attach launches to the innermost containing operator. Launches
        // sorted by begin sweep through the same per-thread operator stack
        // as the hierarchy pass: at each launch instant the stack holds
        // exactly the operators containing it (a nesting chain), so the
        // innermost container is read off the top instead of re-scanning
        // every operator per launch (the former O(n·m) hot spot).
        //
        // Tie-break matches the scan it replaces: among containing
        // operators sharing the maximal begin, the lowest trace index wins.
        // Equal-begin operators never pop each other (the sort nests the
        // shorter inside the longer), so that group is a contiguous suffix
        // of the stack.
        let launch_begins = trace.launches().begins();
        let mut launch_parent: Vec<Option<OpRef>> = vec![None; trace.launches().len()];
        let mut launches_per_thread: BTreeMap<ThreadId, Vec<usize>> = BTreeMap::new();
        for (i, &thread) in trace.launches().threads().iter().enumerate() {
            launches_per_thread.entry(thread).or_default().push(i);
        }
        for (thread, launch_idxs) in &mut launches_per_thread {
            let Some(sorted) = per_thread.get(thread) else {
                continue; // no operators on this thread
            };
            launch_idxs.sort_by_key(|&i| (launch_begins[i], i));
            let mut stack: Vec<OpRef> = Vec::new();
            let mut next_op = 0;
            for &li in launch_idxs.iter() {
                let at = launch_begins[li];
                // Open every operator that has begun by `at`.
                while next_op < sorted.len() && ops[sorted[next_op]].begin <= at {
                    let i = sorted[next_op];
                    while let Some(&top) = stack.last() {
                        if ops[i].begin < ops[top].end && ops[i].end <= ops[top].end {
                            break;
                        }
                        stack.pop();
                    }
                    stack.push(i);
                    next_op += 1;
                }
                // Close operators that ended at or before `at`.
                while let Some(&top) = stack.last() {
                    if ops[top].end > at {
                        break;
                    }
                    stack.pop();
                }
                if let Some(&top) = stack.last() {
                    let max_begin = ops[top].begin;
                    let mut choice = top;
                    for &cand in stack.iter().rev().skip(1) {
                        if ops[cand].begin != max_begin {
                            break;
                        }
                        if cand < choice {
                            choice = cand;
                        }
                    }
                    launch_parent[li] = Some(choice);
                }
            }
        }
        let launches = trace
            .launches()
            .correlations()
            .iter()
            .enumerate()
            .map(|(launch_idx, corr)| LaunchLink {
                launch_idx,
                parent_op: launch_parent[launch_idx],
                kernel_idx: kernel_for(corr),
            })
            .collect();

        DependencyGraph {
            parent,
            children,
            roots,
            launches,
        }
    }

    /// The innermost operator containing operator `i`.
    #[must_use]
    pub fn parent_of(&self, i: OpRef) -> Option<OpRef> {
        self.parent.get(i).copied().flatten()
    }

    /// Operators directly nested in operator `i`.
    #[must_use]
    pub fn children_of(&self, i: OpRef) -> &[OpRef] {
        &self.children[i]
    }

    /// Root (top-level) operators in trace order.
    #[must_use]
    pub fn roots(&self) -> &[OpRef] {
        &self.roots
    }

    /// Resolved launch calls.
    #[must_use]
    pub fn launches(&self) -> &[LaunchLink] {
        &self.launches
    }

    /// The operator ID of the root ancestor of operator `i` — useful for
    /// attributing a kernel to the top-level ATen operator that caused it.
    #[must_use]
    pub fn root_ancestor(&self, mut i: OpRef) -> OpRef {
        while let Some(p) = self.parent_of(i) {
            i = p;
        }
        i
    }

    /// Looks up the trace [`OpId`] for a graph node.
    #[must_use]
    pub fn op_id(&self, trace: &Trace, i: OpRef) -> OpId {
        trace.cpu_ops()[i].id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skip_des::SimTime;
    use skip_trace::{CpuOpEvent, KernelEvent, RuntimeLaunchEvent, StreamId, TraceMeta};

    fn ns(v: u64) -> SimTime {
        SimTime::from_nanos(v)
    }

    fn op(t: &mut Trace, id: u64, name: &str, begin: u64, end: u64) -> CpuOpEvent {
        let name = t.intern(name);
        CpuOpEvent {
            id: OpId::new(id),
            name,
            thread: ThreadId::MAIN,
            begin: ns(begin),
            end: ns(end),
        }
    }

    /// aten::linear [0,100) contains aten::t [5,10) and aten::addmm
    /// [10,90), which contains the launch at [20,25) → kernel corr 7.
    fn nested_trace() -> Trace {
        let mut t = Trace::new(TraceMeta::default());
        let ev = op(&mut t, 0, "aten::linear", 0, 100);
        t.push_cpu_op(ev);
        let ev = op(&mut t, 1, "aten::t", 5, 10);
        t.push_cpu_op(ev);
        let ev = op(&mut t, 2, "aten::addmm", 10, 90);
        t.push_cpu_op(ev);
        let launch = t.intern("cudaLaunchKernel");
        t.push_launch(RuntimeLaunchEvent {
            name: launch,
            thread: ThreadId::MAIN,
            begin: ns(20),
            end: ns(25),
            correlation: CorrelationId::new(7),
        });
        let gemm = t.intern("gemm");
        t.push_kernel(KernelEvent {
            name: gemm,
            stream: StreamId::DEFAULT,
            begin: ns(40),
            end: ns(80),
            correlation: CorrelationId::new(7),
        });
        t
    }

    #[test]
    fn containment_produces_expected_hierarchy() {
        let t = nested_trace();
        let g = DependencyGraph::build(&t);
        assert_eq!(g.roots(), &[0]);
        assert_eq!(g.parent_of(1), Some(0));
        assert_eq!(g.parent_of(2), Some(0));
        assert_eq!(g.children_of(0), &[1, 2]);
        assert_eq!(g.parent_of(0), None);
    }

    #[test]
    fn launch_attaches_to_innermost_op_and_kernel() {
        let t = nested_trace();
        let g = DependencyGraph::build(&t);
        let l = &g.launches()[0];
        assert_eq!(l.parent_op, Some(2), "addmm is the innermost container");
        assert_eq!(l.kernel_idx, Some(0));
    }

    #[test]
    fn root_ancestor_walks_to_top() {
        let t = nested_trace();
        let g = DependencyGraph::build(&t);
        assert_eq!(g.root_ancestor(2), 0);
        assert_eq!(g.root_ancestor(1), 0);
        assert_eq!(g.root_ancestor(0), 0);
    }

    #[test]
    fn sibling_ops_do_not_nest() {
        let mut t = Trace::new(TraceMeta::default());
        for (id, begin) in [(0u64, 0u64), (1, 10), (2, 20)] {
            let ev = op(&mut t, id, "sib", begin, begin + 10);
            t.push_cpu_op(ev);
        }
        let g = DependencyGraph::build(&t);
        assert_eq!(g.roots(), &[0, 1, 2]);
    }

    #[test]
    fn different_threads_never_nest() {
        let mut t = Trace::new(TraceMeta::default());
        let ev = op(&mut t, 0, "outer", 0, 100);
        t.push_cpu_op(ev);
        let mut other = op(&mut t, 1, "elsewhere", 10, 20);
        other.thread = ThreadId::new(5);
        t.push_cpu_op(other);
        let g = DependencyGraph::build(&t);
        assert_eq!(g.parent_of(1), None);
        assert_eq!(g.roots().len(), 2);
    }

    #[test]
    fn equal_begin_ties_resolve_outer_first() {
        let mut t = Trace::new(TraceMeta::default());
        let ev = op(&mut t, 0, "inner", 0, 10); // same begin, shorter
        t.push_cpu_op(ev);
        let ev = op(&mut t, 1, "outer", 0, 50);
        t.push_cpu_op(ev);
        let g = DependencyGraph::build(&t);
        assert_eq!(g.parent_of(0), Some(1));
        assert_eq!(g.roots(), &[1]);
    }

    #[test]
    fn orphan_launch_has_no_parent() {
        let mut t = Trace::new(TraceMeta::default());
        let memcpy = t.intern("cudaMemcpyAsync");
        t.push_launch(RuntimeLaunchEvent {
            name: memcpy,
            thread: ThreadId::MAIN,
            begin: ns(5),
            end: ns(6),
            correlation: CorrelationId::new(1),
        });
        let g = DependencyGraph::build(&t);
        assert_eq!(g.launches()[0].parent_op, None);
        assert_eq!(g.launches()[0].kernel_idx, None);
    }

    #[test]
    fn deep_nesting_chain() {
        let mut t = Trace::new(TraceMeta::default());
        for i in 0..10u64 {
            let ev = op(&mut t, i, "level", i, 100 - i);
            t.push_cpu_op(ev);
        }
        let g = DependencyGraph::build(&t);
        for i in 1..10usize {
            assert_eq!(g.parent_of(i), Some(i - 1));
        }
        assert_eq!(g.root_ancestor(9), 0);
    }

    /// Correlation pairing must not depend on which lookup path the
    /// ascending-scan gate picks: a trace with shuffled correlation IDs
    /// (map fallback) and its sorted twin (binary-search fast path) must
    /// both pair every launch with the kernel carrying its ID.
    #[test]
    fn correlation_pairing_agrees_across_lookup_paths() {
        // 0, 7, 14, ... shuffled via a fixed permutation step so the
        // column is NOT ascending; the sorted twin uses the same IDs in
        // ascending order.
        let ids: Vec<u64> = (0..50u64).map(|i| (i * 37) % 101).collect();
        let mut sorted_ids = ids.clone();
        sorted_ids.sort_unstable();
        for id_set in [&ids, &sorted_ids] {
            let mut t = Trace::new(TraceMeta::default());
            let launch = t.intern("cudaLaunchKernel");
            let k = t.intern("k");
            for (i, &c) in id_set.iter().enumerate() {
                let at = i as u64 * 10;
                t.push_launch(RuntimeLaunchEvent {
                    name: launch,
                    thread: ThreadId::MAIN,
                    begin: ns(at),
                    end: ns(at + 1),
                    correlation: CorrelationId::new(c),
                });
                t.push_kernel(KernelEvent {
                    name: k,
                    stream: StreamId::DEFAULT,
                    begin: ns(at + 2),
                    end: ns(at + 5),
                    correlation: CorrelationId::new(c),
                });
            }
            let g = DependencyGraph::build(&t);
            let kernel_corrs = t.kernels().correlations();
            for (li, link) in g.launches().iter().enumerate() {
                let want = kernel_corrs
                    .iter()
                    .position(|c| *c == t.launches().correlations()[li]);
                assert_eq!(link.kernel_idx, want, "launch {li}");
            }
        }
    }

    /// The sweep-based launch attachment must agree with the naive
    /// all-pairs containment scan it replaced, including its tie-breaks:
    /// among containing ops attaining the maximal begin, lowest trace
    /// index wins.
    #[test]
    fn launch_attachment_matches_naive_scan() {
        // Deterministic pseudo-random interval soup: nested, overlapping,
        // zero-length, equal-begin, multi-thread, plus launches at op
        // boundaries (begin == launch instant, end == launch instant).
        let mut state = 0x2545f491u64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let mut t = Trace::new(TraceMeta::default());
        let mut raw_ops = Vec::new();
        for i in 0..400u64 {
            let begin = next(1_000);
            let dur = next(120); // zero-length allowed
            let thread = ThreadId::new(next(3) as u32);
            let mut ev = op(&mut t, i, "soup", begin, begin + dur);
            ev.thread = thread;
            raw_ops.push(ev);
            t.push_cpu_op(ev);
        }
        let launch = t.intern("cudaLaunchKernel");
        for c in 0..300u64 {
            let begin = next(1_100);
            t.push_launch(RuntimeLaunchEvent {
                name: launch,
                thread: ThreadId::new(next(3) as u32),
                begin: ns(begin),
                end: ns(begin + 1),
                correlation: CorrelationId::new(c),
            });
        }
        let g = DependencyGraph::build(&t);
        for (li, l) in t.launches().iter().enumerate() {
            let mut best: Option<usize> = None;
            for (i, o) in raw_ops.iter().enumerate() {
                if o.thread == l.thread && o.contains(l.begin) {
                    best = match best {
                        Some(b) if raw_ops[b].begin >= o.begin => Some(b),
                        _ => Some(i),
                    };
                }
            }
            assert_eq!(
                g.launches()[li].parent_op,
                best,
                "launch {li} at {:?} on {:?}",
                l.begin,
                l.thread
            );
        }
    }
}
