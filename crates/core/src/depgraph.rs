//! Operator–kernel dependency graph construction (paper §IV-A).
//!
//! Reconstructs the hierarchy a real profiler trace flattens away:
//!
//! * an operator `p` is the parent of operator `c` (or launch call `l`) if
//!   `c` starts within `p`'s `[begin, end)` on the same thread, with the
//!   *tightest* containing operator winning;
//! * kernel `k` links to launch `l` through the CUDA correlation ID.
//!
//! The construction is a per-thread interval sweep: events sorted by
//! `(begin asc, end desc)` visit parents before their children, so a stack
//! of currently-open operators yields each node's innermost parent in
//! O(n log n).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use skip_trace::{CorrelationId, OpId, ThreadId, Trace};

/// Index of an operator within [`DependencyGraph::ops`] order (the trace's
/// CPU-op order).
pub type OpRef = usize;

/// A launch call resolved against the graph: which operator issued it and
/// which kernel it triggered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchLink {
    /// Index into [`Trace::launches`].
    pub launch_idx: usize,
    /// The innermost operator containing the launch call, if any.
    pub parent_op: Option<OpRef>,
    /// Index into [`Trace::kernels`] of the kernel with the same
    /// correlation ID, if one executed.
    pub kernel_idx: Option<usize>,
}

/// The reconstructed operator–kernel dependency graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DependencyGraph {
    /// `parent[i]` is the innermost operator containing operator `i`.
    parent: Vec<Option<OpRef>>,
    /// `children[i]` lists operators directly nested in operator `i`.
    children: Vec<Vec<OpRef>>,
    /// Root operators (no parent), in trace order.
    roots: Vec<OpRef>,
    /// Launch calls resolved to parent operators and kernels.
    launches: Vec<LaunchLink>,
}

impl DependencyGraph {
    /// Builds the dependency graph for `trace`.
    ///
    /// Operators with identical `(thread, begin)` are disambiguated by
    /// longer-duration-first, so a parent whose first child starts at the
    /// same instant still contains it — matching how SKIP treats zero-skew
    /// profiler timestamps.
    #[must_use]
    pub fn build(trace: &Trace) -> Self {
        let ops = trace.cpu_ops();
        let n = ops.len();
        let mut parent: Vec<Option<OpRef>> = vec![None; n];
        let mut children: Vec<Vec<OpRef>> = vec![Vec::new(); n];
        let mut roots = Vec::new();

        // Group op indices per thread.
        let mut per_thread: BTreeMap<ThreadId, Vec<OpRef>> = BTreeMap::new();
        for (i, op) in ops.iter().enumerate() {
            per_thread.entry(op.thread).or_default().push(i);
        }

        for indices in per_thread.values() {
            let mut sorted = indices.clone();
            // Parents before children: earlier begin first; on ties the
            // longer (outer) interval first.
            sorted.sort_by(|&a, &b| {
                (ops[a].begin, std::cmp::Reverse(ops[a].end))
                    .cmp(&(ops[b].begin, std::cmp::Reverse(ops[b].end)))
            });
            let mut stack: Vec<OpRef> = Vec::new();
            for &i in &sorted {
                while let Some(&top) = stack.last() {
                    // `top` contains `i` if i begins before top ends.
                    if ops[i].begin < ops[top].end && ops[i].end <= ops[top].end {
                        break;
                    }
                    stack.pop();
                }
                match stack.last() {
                    Some(&p) => {
                        parent[i] = Some(p);
                        children[p].push(i);
                    }
                    None => roots.push(i),
                }
                stack.push(i);
            }
        }
        roots.sort_unstable();
        for ch in &mut children {
            ch.sort_unstable();
        }

        // Kernel lookup by correlation.
        let kernel_by_corr: BTreeMap<CorrelationId, usize> = trace
            .kernels()
            .iter()
            .enumerate()
            .map(|(i, k)| (k.correlation, i))
            .collect();

        // Attach launches to the innermost containing operator.
        let launches = trace
            .launches()
            .iter()
            .enumerate()
            .map(|(launch_idx, l)| {
                let mut best: Option<OpRef> = None;
                for (i, op) in ops.iter().enumerate() {
                    if op.thread == l.thread && op.contains(l.begin) {
                        best = match best {
                            Some(b) if ops[b].begin >= op.begin => Some(b),
                            _ => Some(i),
                        };
                    }
                }
                LaunchLink {
                    launch_idx,
                    parent_op: best,
                    kernel_idx: kernel_by_corr.get(&l.correlation).copied(),
                }
            })
            .collect();

        DependencyGraph {
            parent,
            children,
            roots,
            launches,
        }
    }

    /// The innermost operator containing operator `i`.
    #[must_use]
    pub fn parent_of(&self, i: OpRef) -> Option<OpRef> {
        self.parent.get(i).copied().flatten()
    }

    /// Operators directly nested in operator `i`.
    #[must_use]
    pub fn children_of(&self, i: OpRef) -> &[OpRef] {
        &self.children[i]
    }

    /// Root (top-level) operators in trace order.
    #[must_use]
    pub fn roots(&self) -> &[OpRef] {
        &self.roots
    }

    /// Resolved launch calls.
    #[must_use]
    pub fn launches(&self) -> &[LaunchLink] {
        &self.launches
    }

    /// The operator ID of the root ancestor of operator `i` — useful for
    /// attributing a kernel to the top-level ATen operator that caused it.
    #[must_use]
    pub fn root_ancestor(&self, mut i: OpRef) -> OpRef {
        while let Some(p) = self.parent_of(i) {
            i = p;
        }
        i
    }

    /// Looks up the trace [`OpId`] for a graph node.
    #[must_use]
    pub fn op_id(&self, trace: &Trace, i: OpRef) -> OpId {
        trace.cpu_ops()[i].id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skip_des::SimTime;
    use skip_trace::{CpuOpEvent, KernelEvent, RuntimeLaunchEvent, StreamId, TraceMeta};

    fn ns(v: u64) -> SimTime {
        SimTime::from_nanos(v)
    }

    fn op(id: u64, name: &str, begin: u64, end: u64) -> CpuOpEvent {
        CpuOpEvent {
            id: OpId::new(id),
            name: name.into(),
            thread: ThreadId::MAIN,
            begin: ns(begin),
            end: ns(end),
        }
    }

    /// aten::linear [0,100) contains aten::t [5,10) and aten::addmm
    /// [10,90), which contains the launch at [20,25) → kernel corr 7.
    fn nested_trace() -> Trace {
        let mut t = Trace::new(TraceMeta::default());
        t.push_cpu_op(op(0, "aten::linear", 0, 100));
        t.push_cpu_op(op(1, "aten::t", 5, 10));
        t.push_cpu_op(op(2, "aten::addmm", 10, 90));
        t.push_launch(RuntimeLaunchEvent {
            name: "cudaLaunchKernel".into(),
            thread: ThreadId::MAIN,
            begin: ns(20),
            end: ns(25),
            correlation: CorrelationId::new(7),
        });
        t.push_kernel(KernelEvent {
            name: "gemm".into(),
            stream: StreamId::DEFAULT,
            begin: ns(40),
            end: ns(80),
            correlation: CorrelationId::new(7),
        });
        t
    }

    #[test]
    fn containment_produces_expected_hierarchy() {
        let t = nested_trace();
        let g = DependencyGraph::build(&t);
        assert_eq!(g.roots(), &[0]);
        assert_eq!(g.parent_of(1), Some(0));
        assert_eq!(g.parent_of(2), Some(0));
        assert_eq!(g.children_of(0), &[1, 2]);
        assert_eq!(g.parent_of(0), None);
    }

    #[test]
    fn launch_attaches_to_innermost_op_and_kernel() {
        let t = nested_trace();
        let g = DependencyGraph::build(&t);
        let l = &g.launches()[0];
        assert_eq!(l.parent_op, Some(2), "addmm is the innermost container");
        assert_eq!(l.kernel_idx, Some(0));
    }

    #[test]
    fn root_ancestor_walks_to_top() {
        let t = nested_trace();
        let g = DependencyGraph::build(&t);
        assert_eq!(g.root_ancestor(2), 0);
        assert_eq!(g.root_ancestor(1), 0);
        assert_eq!(g.root_ancestor(0), 0);
    }

    #[test]
    fn sibling_ops_do_not_nest() {
        let mut t = Trace::new(TraceMeta::default());
        t.push_cpu_op(op(0, "a", 0, 10));
        t.push_cpu_op(op(1, "b", 10, 20));
        t.push_cpu_op(op(2, "c", 20, 30));
        let g = DependencyGraph::build(&t);
        assert_eq!(g.roots(), &[0, 1, 2]);
    }

    #[test]
    fn different_threads_never_nest() {
        let mut t = Trace::new(TraceMeta::default());
        t.push_cpu_op(op(0, "outer", 0, 100));
        let mut other = op(1, "elsewhere", 10, 20);
        other.thread = ThreadId::new(5);
        t.push_cpu_op(other);
        let g = DependencyGraph::build(&t);
        assert_eq!(g.parent_of(1), None);
        assert_eq!(g.roots().len(), 2);
    }

    #[test]
    fn equal_begin_ties_resolve_outer_first() {
        let mut t = Trace::new(TraceMeta::default());
        t.push_cpu_op(op(0, "inner", 0, 10)); // same begin, shorter
        t.push_cpu_op(op(1, "outer", 0, 50));
        let g = DependencyGraph::build(&t);
        assert_eq!(g.parent_of(0), Some(1));
        assert_eq!(g.roots(), &[1]);
    }

    #[test]
    fn orphan_launch_has_no_parent() {
        let mut t = Trace::new(TraceMeta::default());
        t.push_launch(RuntimeLaunchEvent {
            name: "cudaMemcpyAsync".into(),
            thread: ThreadId::MAIN,
            begin: ns(5),
            end: ns(6),
            correlation: CorrelationId::new(1),
        });
        let g = DependencyGraph::build(&t);
        assert_eq!(g.launches()[0].parent_op, None);
        assert_eq!(g.launches()[0].kernel_idx, None);
    }

    #[test]
    fn deep_nesting_chain() {
        let mut t = Trace::new(TraceMeta::default());
        for i in 0..10u64 {
            t.push_cpu_op(op(i, "level", i, 100 - i));
        }
        let g = DependencyGraph::build(&t);
        for i in 1..10usize {
            assert_eq!(g.parent_of(i), Some(i - 1));
        }
        assert_eq!(g.root_ancestor(9), 0);
    }
}
