//! Top-k kernel tracking (§III-A-5): the most frequently invoked kernels,
//! for focusing micro-optimization on the highest aggregate offload tax.

use serde::{Deserialize, Serialize};
use skip_des::SimDuration;
use skip_trace::{NameId, Trace};
use std::collections::BTreeMap;

/// Aggregate statistics for one kernel name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelStat {
    /// Kernel name.
    pub name: String,
    /// Number of invocations.
    pub count: usize,
    /// Total execution time across invocations.
    pub total_time: SimDuration,
}

impl KernelStat {
    /// Mean duration per invocation.
    #[must_use]
    pub fn mean_duration(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            self.total_time / self.count as u64
        }
    }
}

/// The `k` most frequently invoked kernels in `trace`, ties broken by
/// total time then name (deterministic).
///
/// # Example
///
/// ```
/// use skip_hw::Platform;
/// use skip_llm::{zoo, Phase, Workload};
/// use skip_runtime::{Engine, ExecMode};
///
/// let trace = Engine::new(Platform::intel_h100())
///     .run(&Workload::new(zoo::gpt2(), Phase::Prefill, 1, 512), ExecMode::Eager);
/// let top = skip_core::top_kernels(&trace, 5);
/// assert_eq!(top.len(), 5);
/// assert!(top[0].count >= top[4].count);
/// ```
#[must_use]
pub fn top_kernels(trace: &Trace, k: usize) -> Vec<KernelStat> {
    // Aggregate by interned id — no string hashing or cloning on the scan;
    // names materialize only for the k survivors.
    let mut agg: BTreeMap<NameId, (usize, SimDuration)> = BTreeMap::new();
    for kernel in trace.kernels() {
        let e = agg.entry(kernel.name).or_insert((0, SimDuration::ZERO));
        e.0 += 1;
        e.1 += kernel.duration();
    }
    let mut stats: Vec<KernelStat> = agg
        .into_iter()
        .map(|(name, (count, total_time))| KernelStat {
            name: trace.name(name).to_owned(),
            count,
            total_time,
        })
        .collect();
    stats.sort_by(|a, b| {
        b.count
            .cmp(&a.count)
            .then(b.total_time.cmp(&a.total_time))
            .then(a.name.cmp(&b.name))
    });
    stats.truncate(k);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use skip_des::SimTime;
    use skip_trace::{
        CorrelationId, KernelEvent, RuntimeLaunchEvent, StreamId, ThreadId, TraceMeta,
    };

    fn trace_with(names: &[&str]) -> Trace {
        let mut t = Trace::new(TraceMeta::default());
        let launch = t.intern("cudaLaunchKernel");
        let mut clock = 0u64;
        for (i, name) in names.iter().enumerate() {
            t.push_launch(RuntimeLaunchEvent {
                name: launch,
                thread: ThreadId::MAIN,
                begin: SimTime::from_nanos(clock),
                end: SimTime::from_nanos(clock + 1),
                correlation: CorrelationId::new(i as u64),
            });
            let name = t.intern(name);
            t.push_kernel(KernelEvent {
                name,
                stream: StreamId::DEFAULT,
                begin: SimTime::from_nanos(clock + 2),
                end: SimTime::from_nanos(clock + 12),
                correlation: CorrelationId::new(i as u64),
            });
            clock += 20;
        }
        t
    }

    #[test]
    fn counts_and_orders_by_frequency() {
        let t = trace_with(&["a", "b", "a", "c", "a", "b"]);
        let top = top_kernels(&t, 2);
        assert_eq!(top[0].name, "a");
        assert_eq!(top[0].count, 3);
        assert_eq!(top[1].name, "b");
        assert_eq!(top[1].count, 2);
    }

    #[test]
    fn mean_duration_divides_total() {
        let t = trace_with(&["x", "x"]);
        let top = top_kernels(&t, 1);
        assert_eq!(top[0].mean_duration(), SimDuration::from_nanos(10));
    }

    #[test]
    fn k_larger_than_distinct_names_is_fine() {
        let t = trace_with(&["only"]);
        assert_eq!(top_kernels(&t, 10).len(), 1);
        assert!(top_kernels(&Trace::default(), 3).is_empty());
    }

    #[test]
    fn ties_break_deterministically_by_name() {
        let t = trace_with(&["b", "a"]);
        let top = top_kernels(&t, 2);
        assert_eq!(top[0].name, "a");
        assert_eq!(top[1].name, "b");
    }
}
