//! Vectorized 8-lane chunked scans over SoA timestamp columns.
//!
//! The trace stores launch/kernel timestamps as contiguous `SimTime`
//! columns (struct-of-arrays), so every profiler pass that reduces a
//! column — total kernel time, last kernel end, per-kernel durations — is
//! a linear scan over dense `u64` data. These helpers phrase those scans
//! the way LLVM's autovectorizer likes them: fixed 8-wide lane
//! accumulators fed by `chunks_exact(8)`, with a scalar tail for the
//! remainder and a single lane reduction at the end. Stable Rust, no
//! intrinsics, no `unsafe` — on x86-64 the lane loops compile to packed
//! SIMD; on other targets they degrade to the scalar loop they replace.
//!
//! Every helper is differential-tested against the straightforward scalar
//! sweep in this module's tests; the metric/attribution equation tests
//! pin the end-to-end results on top.

use skip_des::{SimDuration, SimTime};
use skip_trace::CorrelationId;

/// Lane width of the chunked scans. Eight 64-bit lanes fill one 64-byte
/// cache line per step and map onto AVX-512 (one register) or AVX2 (two).
pub const LANES: usize = 8;

/// Sum of `ends[i] - begins[i]` over paired timestamp columns.
///
/// Inverted pairs (`end < begin`) saturate to zero rather than panicking —
/// the branch-free form the vectorizer needs; well-formed traces never hit
/// it, so the result equals the scalar `duration_since` sweep.
///
/// # Panics
///
/// Panics if the columns differ in length.
#[must_use]
pub fn sum_deltas(ends: &[SimTime], begins: &[SimTime]) -> SimDuration {
    assert_eq!(
        ends.len(),
        begins.len(),
        "paired columns must be equal length"
    );
    let mut lanes = [0u64; LANES];
    let mut end_chunks = ends.chunks_exact(LANES);
    let mut begin_chunks = begins.chunks_exact(LANES);
    for (e, b) in (&mut end_chunks).zip(&mut begin_chunks) {
        for i in 0..LANES {
            lanes[i] += e[i].as_nanos().saturating_sub(b[i].as_nanos());
        }
    }
    let mut total: u64 = lanes.iter().sum();
    for (e, b) in end_chunks.remainder().iter().zip(begin_chunks.remainder()) {
        total += e.as_nanos().saturating_sub(b.as_nanos());
    }
    SimDuration::from_nanos(total)
}

/// Writes `ends[i] - begins[i]` per element into `out` (cleared first),
/// saturating inverted pairs to zero.
///
/// Callers that index durations repeatedly (operator attribution gathers
/// by kernel index) precompute the column once here instead of paying a
/// scalar `duration_since` per lookup. Reusing `out` across calls keeps
/// the pass allocation-free once the buffer has grown to column size.
///
/// # Panics
///
/// Panics if the columns differ in length.
pub fn deltas_into(ends: &[SimTime], begins: &[SimTime], out: &mut Vec<SimDuration>) {
    assert_eq!(
        ends.len(),
        begins.len(),
        "paired columns must be equal length"
    );
    out.clear();
    out.extend(
        ends.iter()
            .zip(begins)
            .map(|(e, b)| SimDuration::from_nanos(e.as_nanos().saturating_sub(b.as_nanos()))),
    );
}

/// Maximum of a timestamp column; `None` when empty.
#[must_use]
pub fn max_time(column: &[SimTime]) -> Option<SimTime> {
    if column.is_empty() {
        return None;
    }
    let mut lanes = [0u64; LANES];
    let mut chunks = column.chunks_exact(LANES);
    for c in &mut chunks {
        for i in 0..LANES {
            lanes[i] = lanes[i].max(c[i].as_nanos());
        }
    }
    let mut best = lanes.into_iter().max().unwrap_or(0);
    for t in chunks.remainder() {
        best = best.max(t.as_nanos());
    }
    Some(SimTime::from_nanos(best))
}

/// Minimum of a timestamp column; `None` when empty.
#[must_use]
pub fn min_time(column: &[SimTime]) -> Option<SimTime> {
    if column.is_empty() {
        return None;
    }
    let mut lanes = [u64::MAX; LANES];
    let mut chunks = column.chunks_exact(LANES);
    for c in &mut chunks {
        for i in 0..LANES {
            lanes[i] = lanes[i].min(c[i].as_nanos());
        }
    }
    let mut best = lanes.into_iter().min().unwrap_or(u64::MAX);
    for t in chunks.remainder() {
        best = best.min(t.as_nanos());
    }
    Some(SimTime::from_nanos(best))
}

/// Whether a correlation column is strictly ascending.
///
/// Engine-generated traces assign correlation IDs monotonically, so the
/// dependency graph can binary-search the column directly instead of
/// building a `BTreeMap` — this scan is the O(n) gate for that fast path.
/// Each chunk checks eight adjacent pairs with branch-free lane compares
/// and reduces once per chunk.
#[must_use]
pub fn is_strictly_ascending(column: &[CorrelationId]) -> bool {
    if column.len() < 2 {
        return true;
    }
    // Compare column[i] < column[i+1] over the shifted pair of views.
    let heads = &column[..column.len() - 1];
    let tails = &column[1..];
    let mut head_chunks = heads.chunks_exact(LANES);
    let mut tail_chunks = tails.chunks_exact(LANES);
    for (h, t) in (&mut head_chunks).zip(&mut tail_chunks) {
        let mut ok = true;
        for i in 0..LANES {
            ok &= h[i].get() < t[i].get();
        }
        if !ok {
            return false;
        }
    }
    head_chunks
        .remainder()
        .iter()
        .zip(tail_chunks.remainder())
        .all(|(h, t)| h.get() < t.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> SimTime {
        SimTime::from_nanos(v)
    }

    /// Deterministic LCG column generator (no RNG deps).
    fn columns(len: usize, seed: u64) -> (Vec<SimTime>, Vec<SimTime>) {
        let mut state = seed;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let mut begins = Vec::with_capacity(len);
        let mut ends = Vec::with_capacity(len);
        for _ in 0..len {
            let b = next(1_000_000);
            let d = next(10_000);
            begins.push(ns(b));
            ends.push(ns(b + d));
        }
        (begins, ends)
    }

    /// Lengths straddling the 8-lane chunk boundary, plus empty.
    const LENS: [usize; 8] = [0, 1, 7, 8, 9, 16, 63, 1000];

    #[test]
    fn sum_deltas_matches_scalar_sweep() {
        for len in LENS {
            let (begins, ends) = columns(len, 0xB0B + len as u64);
            let scalar: SimDuration = ends
                .iter()
                .zip(&begins)
                .map(|(&e, &b)| e.duration_since(b))
                .sum();
            assert_eq!(sum_deltas(&ends, &begins), scalar, "len={len}");
        }
    }

    #[test]
    fn sum_deltas_saturates_inverted_pairs() {
        let begins = [ns(100), ns(50)];
        let ends = [ns(90), ns(80)]; // first pair inverted
        assert_eq!(sum_deltas(&ends, &begins), SimDuration::from_nanos(30));
    }

    #[test]
    fn deltas_into_matches_scalar_and_reuses_buffer() {
        let mut out = Vec::new();
        for len in LENS {
            let (begins, ends) = columns(len, 0xCAFE + len as u64);
            deltas_into(&ends, &begins, &mut out);
            assert_eq!(out.len(), len);
            for (i, d) in out.iter().enumerate() {
                assert_eq!(*d, ends[i].duration_since(begins[i]), "len={len} i={i}");
            }
        }
    }

    #[test]
    fn min_max_match_scalar_sweeps() {
        for len in LENS {
            let (begins, _) = columns(len, 0xD00D + len as u64);
            assert_eq!(max_time(&begins), begins.iter().max().copied(), "len={len}");
            assert_eq!(min_time(&begins), begins.iter().min().copied(), "len={len}");
        }
    }

    #[test]
    fn ascending_scan_agrees_with_windows_check() {
        for len in LENS {
            // Strictly ascending column: detector must accept.
            let asc: Vec<CorrelationId> = (0..len as u64)
                .map(|i| CorrelationId::new(3 * i + 1))
                .collect();
            assert!(is_strictly_ascending(&asc), "len={len}");
            // Perturb one adjacent pair (needs ≥ 2 elements): must reject.
            if len >= 2 {
                let mut broken = asc.clone();
                broken.swap(len / 2, len / 2 - 1);
                assert!(!is_strictly_ascending(&broken), "len={len}");
                let dup: Vec<CorrelationId> =
                    (0..len as u64).map(|_| CorrelationId::new(7)).collect();
                assert!(!is_strictly_ascending(&dup), "duplicates len={len}");
            }
        }
    }
}
