//! Criterion bench pinning the dependency-graph + metrics pipeline at
//! O(n log n): a synthetic 1M-event trace (ops, launches, kernels across
//! several threads and streams) built once outside the timed loop, then
//! analyzed end to end. A quadratic launch-attachment pass — the bug class
//! this bench guards against — would take minutes here instead of
//! fractions of a second.

use criterion::{criterion_group, criterion_main, Criterion};
use skip_core::{DependencyGraph, ProfileReport};
use skip_des::SimTime;
use skip_trace::{
    CorrelationId, CpuOpEvent, KernelEvent, OpId, RuntimeLaunchEvent, StreamId, ThreadId, Trace,
    TraceMeta,
};
use std::hint::black_box;

/// Deterministic LCG so the trace shape is identical run to run.
fn lcg(state: &mut u64, modulus: u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*state >> 33) % modulus
}

/// Builds a ~1M-event trace: 400k ops, 300k launches, 300k kernels.
fn million_event_trace() -> Trace {
    let mut t = Trace::new(TraceMeta::default());
    let mut state = 0x2545_f491_u64;
    let names: Vec<_> = (0..64).map(|i| t.intern(&format!("aten::op{i}"))).collect();
    let launch = t.intern("cudaLaunchKernel");
    let knames: Vec<_> = (0..64).map(|i| t.intern(&format!("kernel_{i}"))).collect();

    const OPS: u64 = 400_000;
    const LAUNCHES: u64 = 300_000;
    for i in 0..OPS {
        let begin = lcg(&mut state, OPS * 10);
        let dur = lcg(&mut state, 200);
        t.push_cpu_op(CpuOpEvent {
            id: OpId::new(i),
            name: names[(i % 64) as usize],
            thread: ThreadId::new((i % 4) as u32),
            begin: SimTime::from_nanos(begin),
            end: SimTime::from_nanos(begin + dur),
        });
    }
    for i in 0..LAUNCHES {
        let begin = lcg(&mut state, OPS * 10);
        let corr = CorrelationId::new(i);
        t.push_launch(RuntimeLaunchEvent {
            name: launch,
            thread: ThreadId::new((i % 4) as u32),
            begin: SimTime::from_nanos(begin),
            end: SimTime::from_nanos(begin + 5),
            correlation: corr,
        });
        let kbegin = begin + 100 + lcg(&mut state, 500);
        t.push_kernel(KernelEvent {
            name: knames[(i % 64) as usize],
            stream: StreamId::new((i % 8) as u32),
            begin: SimTime::from_nanos(kbegin),
            end: SimTime::from_nanos(kbegin + 50 + lcg(&mut state, 100)),
            correlation: corr,
        });
    }
    t
}

fn bench(c: &mut Criterion) {
    let trace = million_event_trace();
    let mut g = c.benchmark_group("million_events");
    g.bench_function("depgraph_build", |b| {
        b.iter(|| black_box(DependencyGraph::build(black_box(&trace))))
    });
    g.bench_function("profile_report", |b| {
        b.iter(|| black_box(ProfileReport::analyze(black_box(&trace))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
