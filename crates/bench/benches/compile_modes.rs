//! Criterion bench: Table I — executing Gemma-2B under each torch.compile
//! mode (prints the compile-time model's Table I values once).

use criterion::{criterion_group, criterion_main, Criterion};
use skip_hw::Platform;
use skip_llm::{zoo, Phase, Workload};
use skip_runtime::{compile_time, CompileMode, Engine, ExecMode};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let engine = Engine::new(Platform::intel_h100());
    let wl = Workload::new(zoo::gemma_2b(), Phase::Prefill, 1, 1024);
    let graph = wl.graph();
    for cm in CompileMode::all() {
        println!(
            "{}: compile_time={:.3}s",
            cm.label(),
            compile_time(&graph, cm).as_secs_f64()
        );
    }
    let mut g = c.benchmark_group("table1_compile_modes");
    g.bench_function("eager", |b| {
        b.iter(|| black_box(engine.run(&wl, ExecMode::Eager)))
    });
    for cm in CompileMode::all() {
        g.bench_function(cm.label(), |b| {
            b.iter(|| black_box(engine.run(&wl, ExecMode::TorchCompile(cm))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
