//! Criterion bench: Figs. 6/10/11 — full prefill simulation for the
//! Table III workloads on the three platforms (prints batch-1 TTFT once).

use criterion::{criterion_group, criterion_main, Criterion};
use skip_core::ProfileReport;
use skip_hw::Platform;
use skip_llm::{zoo, Phase, Workload};
use skip_runtime::{Engine, ExecMode};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_11_prefill");
    for model in zoo::table_iii() {
        for platform in Platform::paper_trio() {
            let engine = Engine::new(platform.clone());
            let wl = Workload::new(model.clone(), Phase::Prefill, 1, 512);
            let r = ProfileReport::analyze(&engine.run(&wl, ExecMode::Eager));
            println!(
                "{} on {}: TTFT={:.2}ms TKLQT={:.3}ms",
                model.name,
                platform.name,
                r.inference_latency.as_millis_f64(),
                r.tklqt.as_millis_f64()
            );
            g.bench_function(format!("{}/{}", model.name, platform.name), |b| {
                b.iter(|| black_box(engine.run(black_box(&wl), ExecMode::Eager)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
