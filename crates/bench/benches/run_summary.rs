//! Criterion bench: the sink-generic execution core — full trace recording
//! vs the zero-allocation summary sink vs the replication-free reference
//! path, on the BERT prefill workload the perf suite tracks.

use criterion::{criterion_group, criterion_main, Criterion};
use skip_hw::Platform;
use skip_llm::{zoo, Phase, Workload};
use skip_runtime::{Engine, ExecMode};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let engine = Engine::new(Platform::intel_h100());
    let wl = Workload::new(zoo::bert_base_uncased(), Phase::Prefill, 64, 512);

    let mut g = c.benchmark_group("run_summary");
    g.bench_function("trace_sink", |b| {
        b.iter(|| black_box(engine.run(black_box(&wl), ExecMode::Eager)))
    });
    g.bench_function("summary_sink", |b| {
        b.iter(|| black_box(engine.run_summary(black_box(&wl), ExecMode::Eager)))
    });
    g.bench_function("trace_sink_reference", |b| {
        b.iter(|| black_box(engine.run_reference(black_box(&wl), ExecMode::Eager)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
