//! Criterion bench: the Table V nullKernel microbenchmark across the three
//! evaluation platforms (also prints the derived Table V values once).

use criterion::{criterion_group, criterion_main, Criterion};
use skip_hw::Platform;
use skip_runtime::nullkernel_microbench;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5_nullkernel");
    for p in Platform::paper_trio() {
        let s = nullkernel_microbench(&p, 10_000);
        println!(
            "{}: launch_overhead={:.1}ns duration={:.1}ns",
            p.name, s.launch_overhead_ns, s.duration_ns
        );
        g.bench_function(&p.name, |b| {
            b.iter(|| black_box(nullkernel_microbench(black_box(&p), 1_000)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
