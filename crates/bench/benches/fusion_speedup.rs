//! Criterion bench: Fig. 7/8 — proximity-score chain analysis across chain
//! lengths on a GPT2 eager trace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skip_fusion::{FusionAnalysis, KernelSequences};
use skip_hw::Platform;
use skip_llm::{zoo, Phase, Workload};
use skip_runtime::{Engine, ExecMode};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let trace = Engine::new(Platform::intel_h100()).run(
        &Workload::new(zoo::gpt2(), Phase::Prefill, 1, 512),
        ExecMode::Eager,
    );
    let seqs = KernelSequences::from_trace(&trace);
    let mut g = c.benchmark_group("fig8_fusion_analysis");
    for l in [2usize, 16, 64, 256] {
        let a = FusionAnalysis::of_sequences(&seqs, l);
        println!("L={l}: ideal_speedup={:.2}", a.ideal_speedup());
        g.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, &l| {
            b.iter(|| black_box(FusionAnalysis::of_sequences(black_box(&seqs), l)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
