//! Criterion bench: the SKIP profiler itself — dependency-graph
//! construction and metric evaluation on a realistic trace.

use criterion::{criterion_group, criterion_main, Criterion};
use skip_core::{top_kernels, DependencyGraph, ProfileReport};
use skip_hw::Platform;
use skip_llm::{zoo, Phase, Workload};
use skip_runtime::{Engine, ExecMode};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let trace = Engine::new(Platform::gh200()).run(
        &Workload::new(zoo::llama32_1b(), Phase::Prefill, 8, 512),
        ExecMode::Eager,
    );
    let mut g = c.benchmark_group("skip_profiler");
    g.bench_function("dependency_graph", |b| {
        b.iter(|| black_box(DependencyGraph::build(black_box(&trace))))
    });
    g.bench_function("full_report", |b| {
        b.iter(|| black_box(ProfileReport::analyze(black_box(&trace))))
    });
    g.bench_function("top_kernels", |b| {
        b.iter(|| black_box(top_kernels(black_box(&trace), 10)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
