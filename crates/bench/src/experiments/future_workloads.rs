//! **Extension (paper §VI)** — apply the paper's boundedness methodology
//! to the future-work workload classes: recommendation models (DLRM) and
//! graph neural networks (GCN).
//!
//! The interesting hypothesis the paper implies: RMs, with dozens of tiny
//! embedding lookups per request, should be far *more* CPU-bound than the
//! LLMs it studied, making the Grace CPU penalty even larger and launch
//! minimization even more valuable on CC systems. GNN serving sits in
//! between (SpMM is bandwidth-hungry but launch counts are tiny).

use skip_core::{classify_sweep, ProfileReport, SweepPoint};
use skip_hw::Platform;
use skip_llm::gnn::GcnConfig;
use skip_llm::rm::DlrmConfig;
use skip_runtime::Engine;
use skip_trace::TraceMeta;

use crate::TextTable;

/// Batch sizes swept for the DLRM characterization.
pub const RM_BATCHES: [u32; 8] = [1, 8, 64, 256, 1024, 4096, 16384, 65536];

/// One DLRM measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct RmRow {
    /// Platform name.
    pub platform: String,
    /// Batch size.
    pub batch: u32,
    /// Forward latency, ms.
    pub latency_ms: f64,
    /// TKLQT, ms.
    pub tklqt_ms: f64,
    /// GPU utilization.
    pub gpu_util: f64,
}

/// Sweeps the MLPerf-style DLRM over batch sizes on all platforms.
#[must_use]
pub fn run_rm() -> Vec<RmRow> {
    let cfg = DlrmConfig::mlperf_dlrm();
    let mut out = Vec::new();
    for platform in Platform::paper_trio() {
        let engine = Engine::new(platform.clone());
        for &bs in &RM_BATCHES {
            let meta = TraceMeta {
                model: cfg.name.clone(),
                platform: platform.name.clone(),
                exec_mode: "eager".into(),
                phase: "forward".into(),
                batch_size: bs,
                seq_len: 1,
            };
            let trace = engine.run_graph(&cfg.graph(bs), cfg.input_bytes(bs), meta);
            let r = ProfileReport::analyze(&trace);
            out.push(RmRow {
                platform: platform.name.clone(),
                batch: bs,
                latency_ms: r.inference_latency.as_millis_f64(),
                tklqt_ms: r.tklqt.as_millis_f64(),
                gpu_util: r.gpu_utilization(),
            });
        }
    }
    out
}

/// The DLRM CPU-bound→GPU-bound transition batch per platform.
#[must_use]
pub fn rm_transitions(rows: &[RmRow]) -> Vec<(String, Option<u32>)> {
    Platform::paper_trio()
        .into_iter()
        .map(|p| {
            let points: Vec<SweepPoint> = rows
                .iter()
                .filter(|r| r.platform == p.name)
                .map(|r| SweepPoint {
                    batch_size: r.batch,
                    tklqt: skip_des::SimDuration::from_nanos_f64(r.tklqt_ms * 1e6),
                })
                .collect();
            (p.name, classify_sweep(&points).transition_batch)
        })
        .collect()
}

/// One GCN measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct GnnRow {
    /// Model name.
    pub model: String,
    /// Platform name.
    pub platform: String,
    /// Forward latency, ms.
    pub latency_ms: f64,
    /// GPU utilization.
    pub gpu_util: f64,
}

/// Runs the two GCN graphs on all platforms.
#[must_use]
pub fn run_gnn() -> Vec<GnnRow> {
    let mut out = Vec::new();
    for cfg in [GcnConfig::cora(), GcnConfig::ogbn_arxiv()] {
        for platform in Platform::paper_trio() {
            let engine = Engine::new(platform.clone());
            let meta = TraceMeta {
                model: cfg.name.clone(),
                platform: platform.name.clone(),
                exec_mode: "eager".into(),
                phase: "forward".into(),
                batch_size: 1,
                seq_len: 1,
            };
            let trace = engine.run_graph(&cfg.graph(), cfg.input_bytes(), meta);
            let r = ProfileReport::analyze(&trace);
            out.push(GnnRow {
                model: cfg.name.clone(),
                platform: platform.name.clone(),
                latency_ms: r.inference_latency.as_millis_f64(),
                gpu_util: r.gpu_utilization(),
            });
        }
    }
    out
}

/// Renders both characterizations.
#[must_use]
pub fn render_all() -> String {
    let mut out = String::from("Future-workload characterization (paper §VI): DLRM and GCN\n");

    let rm = run_rm();
    out.push_str("\nDLRM (MLPerf-scale) forward latency (ms)\n");
    let mut t = TextTable::new(vec!["batch", "amd_a100", "intel_h100", "gh200"]);
    for &bs in &RM_BATCHES {
        let get = |p: &str| {
            rm.iter()
                .find(|r| r.platform == p && r.batch == bs)
                .expect("row")
                .latency_ms
        };
        t.row(vec![
            bs.to_string(),
            format!("{:.3}", get("amd_a100")),
            format!("{:.3}", get("intel_h100")),
            format!("{:.3}", get("gh200")),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\nDLRM boundedness transition (TKLQT star):\n");
    for (p, star) in rm_transitions(&rm) {
        out.push_str(&format!(
            "  {p}: {}\n",
            star.map_or("none in sweep".into(), |b| b.to_string())
        ));
    }

    let gnn = run_gnn();
    out.push_str("\nGCN full-graph forward latency (ms)\n");
    let mut t = TextTable::new(vec!["model", "platform", "latency_ms", "gpu_util"]);
    for r in &gnn {
        t.row(vec![
            r.model.clone(),
            r.platform.clone(),
            format!("{:.3}", r.latency_ms),
            format!("{:.0}%", r.gpu_util * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dlrm_is_more_cpu_bound_than_the_llms() {
        // The paper's encoders transition at 8 (LC) / 32 (CC); DLRM's tiny
        // kernels keep it CPU-bound to *far* larger batches.
        let rows = run_rm();
        for (platform, star) in rm_transitions(&rows) {
            // `None` means it never leaves the CPU-bound region in-sweep.
            if let Some(b) = star {
                assert!(b >= 256, "{platform}: transition {b}");
            }
        }
    }

    #[test]
    fn dlrm_low_batch_ranking_follows_cpu_performance() {
        let rows = run_rm();
        let get = |p: &str| {
            rows.iter()
                .find(|r| r.platform == p && r.batch == 1)
                .unwrap()
                .latency_ms
        };
        assert!(get("intel_h100") < get("amd_a100"));
        assert!(get("amd_a100") < get("gh200"));
    }

    #[test]
    fn tiny_gnn_is_latency_bound_by_cpu_large_gnn_by_bandwidth() {
        let rows = run_gnn();
        let get = |m: &str, p: &str| {
            rows.iter()
                .find(|r| r.model == m && r.platform == p)
                .unwrap()
        };
        // Cora: a handful of launches → CPU-ranked (GH200 slowest).
        assert!(get("gcn-cora", "gh200").latency_ms > get("gcn-cora", "intel_h100").latency_ms);
        // ogbn-arxiv: SpMM bandwidth → GH200's HBM3 wins.
        assert!(
            get("gcn-ogbn-arxiv", "gh200").latency_ms
                < get("gcn-ogbn-arxiv", "intel_h100").latency_ms
        );
    }
}
