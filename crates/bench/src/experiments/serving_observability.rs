//! **Extension** — serving-floor observability: SLO attainment and goodput
//! vs offered load, scored from the lifecycle-traced serving loop.
//!
//! The serving extension reports tail latency; this one scores the same
//! endpoint the way an operator would — against an explicit SLO (§II-A's
//! ~200 ms interactive target) — using the per-request lifecycle records
//! from `skip_serve::simulate_traced`. Attainment and goodput come straight
//! from the recorded arrival→first-token→completion transitions, and every
//! run is audited against the counter conservation law (admitted =
//! completed + running + parked at every iteration boundary), which is
//! exactly the invariant the pre-fix flush-timer bug violated in spirit:
//! requests silently aging in the queue while the timer slid.

use skip_des::SimDuration;
use skip_hw::Platform;
use skip_llm::zoo;
use skip_serve::{
    simulate_traced, Policy, RouterPolicy, ServingConfig, ServingReport, ServingTrace, SloTargets,
};

use crate::TextTable;

/// Offered loads swept, requests/second.
pub const LOADS: [f64; 4] = [5.0, 20.0, 50.0, 100.0];

/// The interactive-serving TTFT target (§II-A frames ~200 ms SLOs).
pub const SLO_TTFT_MS: u64 = 200;

/// End-to-end target: first token plus a comfortable decode allowance.
pub const SLO_E2E_MS: u64 = 1000;

/// Requests per simulation.
pub const REQUESTS: u32 = 120;

/// One observed serving point.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservabilityRow {
    /// Platform name.
    pub platform: String,
    /// Offered load, req/s.
    pub load: f64,
    /// Scalar report (including the SLO block).
    pub report: ServingReport,
    /// The full lifecycle/counter recording behind it.
    pub trace: ServingTrace,
}

fn targets() -> SloTargets {
    SloTargets {
        ttft: Some(SimDuration::from_millis(SLO_TTFT_MS)),
        e2e: Some(SimDuration::from_millis(SLO_E2E_MS)),
    }
}

fn run_one(platform: &Platform, load: f64) -> ObservabilityRow {
    let (report, trace) = simulate_traced(
        &ServingConfig {
            platform: platform.clone(),
            model: zoo::gpt2(),
            policy: Policy::Continuous { max_batch: 16 },
            requests: REQUESTS,
            arrival_rate_per_s: load,
            prompt_len: 128,
            new_tokens: 8,
            seed: 2026,
            kv: None,
            slo: targets(),
            router: RouterPolicy::SharedQueue,
        },
        1,
    );
    ObservabilityRow {
        platform: platform.name.clone(),
        load,
        report,
        trace,
    }
}

/// Runs the SLO sweep over the paper trio.
#[must_use]
pub fn run() -> Vec<ObservabilityRow> {
    let mut out = Vec::new();
    for platform in Platform::paper_trio() {
        for load in LOADS {
            out.push(run_one(&platform, load));
        }
    }
    out
}

/// Renders the attainment/goodput panel.
#[must_use]
pub fn render(rows: &[ObservabilityRow]) -> String {
    let mut out = format!(
        "Serving observability: GPT2 endpoint, TTFT<={SLO_TTFT_MS}ms & e2e<={SLO_E2E_MS}ms, \
         attainment% (goodput req/s) vs offered load\n\n"
    );
    let mut t = TextTable::new(vec!["load", "amd_a100", "intel_h100", "gh200"]);
    for load in LOADS {
        let cell = |p: &str| {
            let r = rows
                .iter()
                .find(|r| r.platform == p && r.load == load)
                .expect("row");
            let slo = &r.report.slo;
            format!(
                "{:.0}% ({:.1})",
                100.0 * f64::from(slo.slo_completions) / f64::from(slo.completed.max(1)),
                slo.goodput_req_s
            )
        };
        t.row(vec![
            format!("{load:.0}"),
            cell("amd_a100"),
            cell("intel_h100"),
            cell("gh200"),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attainment(rows: &[ObservabilityRow], platform: &str, load: f64) -> f64 {
        let r = rows
            .iter()
            .find(|r| r.platform == platform && r.load == load)
            .expect("row");
        f64::from(r.report.slo.slo_completions) / f64::from(r.report.slo.completed.max(1))
    }

    #[test]
    fn every_run_completes_and_conserves() {
        for r in run() {
            assert_eq!(r.report.completed, REQUESTS, "{}@{}", r.platform, r.load);
            assert!(
                r.trace.conserves_requests(),
                "conservation violated on {}@{}",
                r.platform,
                r.load
            );
            assert_eq!(r.trace.lifecycles.len() as u32, REQUESTS);
        }
    }

    #[test]
    fn attainment_degrades_under_load() {
        let rows = run();
        for p in ["amd_a100", "intel_h100", "gh200"] {
            assert!(
                attainment(&rows, p, 100.0) <= attainment(&rows, p, 5.0),
                "{p}"
            );
        }
    }

    #[test]
    fn goodput_never_exceeds_throughput() {
        // goodput counts only SLO-meeting completions; it can never beat
        // the raw request throughput over the same makespan.
        for r in run() {
            let tput_req_s = r.report.throughput_tok_s / 8.0;
            assert!(
                r.report.slo.goodput_req_s <= tput_req_s + 1e-9,
                "{}@{}: goodput {} vs throughput {}",
                r.platform,
                r.load,
                r.report.slo.goodput_req_s,
                tput_req_s
            );
        }
    }
}
