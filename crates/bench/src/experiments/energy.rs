//! **Extension** — energy per request across coupling paradigms.
//!
//! The paper's introduction frames inference cost in datacenter terms and
//! its Table IV lists each platform's power envelope; this experiment
//! closes the loop by integrating the SKIP busy/idle decomposition against
//! a two-state power model. The result sharpens the batch-size story:
//! at batch 1 the GH200 burns *more* energy per request than the LC
//! systems (longer latency × bigger module), while at large batch its
//! faster completion makes it the most energy-efficient platform — so the
//! latency crossover (Fig. 10) is also an energy crossover.

use skip_core::ProfileReport;
use skip_des::SimDuration;
use skip_hw::Platform;
use skip_llm::{zoo, ModelConfig, Phase, Workload};
use skip_runtime::{Engine, ExecMode};

use crate::{TextTable, BATCH_SWEEP, SEQ_LEN};

/// One energy measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyRow {
    /// Model name.
    pub model: String,
    /// Platform name.
    pub platform: String,
    /// Batch size.
    pub batch: u32,
    /// Energy per forward pass, joules.
    pub energy_j: f64,
    /// Energy per sequence, joules.
    pub energy_per_seq_j: f64,
}

fn energy_of(platform: &Platform, report: &ProfileReport) -> f64 {
    let gpu_busy = report.total_kernel_time;
    let gpu_idle = report.gpu_idle;
    let cpu_idle = report.cpu_idle;
    let cpu_busy = report.inference_latency.saturating_sub(cpu_idle);
    platform
        .power()
        .energy_joules(gpu_busy, gpu_idle, cpu_busy, cpu_idle)
}

fn sweep(model: &ModelConfig) -> Vec<EnergyRow> {
    let mut out = Vec::new();
    for platform in Platform::paper_trio() {
        let engine = Engine::new(platform.clone());
        for &bs in &BATCH_SWEEP {
            let wl = Workload::new(model.clone(), Phase::Prefill, bs, SEQ_LEN);
            let r = ProfileReport::analyze(&engine.run(&wl, ExecMode::Eager));
            let e = energy_of(&platform, &r);
            out.push(EnergyRow {
                model: model.name.clone(),
                platform: platform.name.clone(),
                batch: bs,
                energy_j: e,
                energy_per_seq_j: e / f64::from(bs),
            });
        }
    }
    out
}

/// Runs the energy sweep for one encoder and one decoder.
#[must_use]
pub fn run() -> Vec<EnergyRow> {
    let mut out = sweep(&zoo::bert_base_uncased());
    out.extend(sweep(&zoo::llama32_1b()));
    out
}

/// Renders the energy panels.
#[must_use]
pub fn render(rows: &[EnergyRow]) -> String {
    let mut out = String::from("Energy extension: joules per sequence, prefill seq=512\n");
    for model in ["bert-base-uncased", "llama-3.2-1b"] {
        out.push_str(&format!("\n{model}\n"));
        let mut t = TextTable::new(vec!["batch", "amd_a100", "intel_h100", "gh200"]);
        for &bs in &BATCH_SWEEP {
            let get = |p: &str| {
                rows.iter()
                    .find(|r| r.model == model && r.platform == p && r.batch == bs)
                    .expect("row")
                    .energy_per_seq_j
            };
            t.row(vec![
                bs.to_string(),
                format!("{:.3}", get("amd_a100")),
                format!("{:.3}", get("intel_h100")),
                format!("{:.3}", get("gh200")),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

/// Convenience: the energy of one workload on one platform.
#[must_use]
pub fn energy_per_request(
    platform: &Platform,
    model: &ModelConfig,
    batch: u32,
) -> (SimDuration, f64) {
    let wl = Workload::new(model.clone(), Phase::Prefill, batch, SEQ_LEN);
    let r = ProfileReport::analyze(&Engine::new(platform.clone()).run(&wl, ExecMode::Eager));
    (r.inference_latency, energy_of(platform, &r))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get<'a>(rows: &'a [EnergyRow], m: &str, p: &str, b: u32) -> &'a EnergyRow {
        rows.iter()
            .find(|r| r.model == m && r.platform == p && r.batch == b)
            .expect("row")
    }

    #[test]
    fn energy_crossover_mirrors_latency_crossover() {
        let rows = run();
        // BERT batch 1: GH200 pays for Grace-stretched latency under a
        // 900 W module.
        let lo_gh = get(&rows, "bert-base-uncased", "gh200", 1).energy_per_seq_j;
        let lo_intel = get(&rows, "bert-base-uncased", "intel_h100", 1).energy_per_seq_j;
        assert!(lo_gh > lo_intel, "{lo_gh} !> {lo_intel}");
        // BERT batch 128: finishing 1.8x sooner beats the bigger envelope.
        let hi_gh = get(&rows, "bert-base-uncased", "gh200", 128).energy_per_seq_j;
        let hi_intel = get(&rows, "bert-base-uncased", "intel_h100", 128).energy_per_seq_j;
        assert!(hi_gh < hi_intel, "{hi_gh} !< {hi_intel}");
    }

    #[test]
    fn energy_per_sequence_decreases_with_batch() {
        let rows = run();
        for p in ["amd_a100", "intel_h100", "gh200"] {
            let e1 = get(&rows, "llama-3.2-1b", p, 1).energy_per_seq_j;
            let e128 = get(&rows, "llama-3.2-1b", p, 128).energy_per_seq_j;
            assert!(e128 < e1, "{p}: {e128} !< {e1}");
        }
    }

    #[test]
    fn energy_is_positive_and_bounded_by_peak_power() {
        let rows = run();
        for r in &rows {
            assert!(r.energy_j > 0.0);
        }
        // Energy never exceeds peak power × latency.
        let (lat, e) = energy_per_request(&Platform::gh200(), &zoo::llama32_1b(), 8);
        assert!(e <= Platform::gh200().power().peak_w() * lat.as_secs_f64() * 1.0001);
    }
}
