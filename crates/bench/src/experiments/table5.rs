//! **Table V** — `cudaLaunchKernel` + nullKernel launch overhead and
//! nullKernel duration across the three evaluation platforms.

use skip_hw::Platform;
use skip_runtime::nullkernel_microbench;

use crate::TextTable;

/// One Table V row.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformRow {
    /// Platform name.
    pub platform: String,
    /// nullKernel launch overhead, ns.
    pub launch_overhead_ns: f64,
    /// nullKernel duration, ns.
    pub duration_ns: f64,
}

/// Runs the Table V microbenchmark (10 000 launches per platform).
#[must_use]
pub fn run() -> Vec<PlatformRow> {
    Platform::paper_trio()
        .into_iter()
        .map(|p| {
            let s = nullkernel_microbench(&p, 10_000);
            PlatformRow {
                platform: p.name,
                launch_overhead_ns: s.launch_overhead_ns,
                duration_ns: s.duration_ns,
            }
        })
        .collect()
}

/// Renders the paper-style table.
#[must_use]
pub fn render(rows: &[PlatformRow]) -> String {
    let mut t = TextTable::new(vec![
        "platform",
        "nullKernel_launch_overhead_ns",
        "nullKernel_duration_ns",
    ]);
    for r in rows {
        t.row(vec![
            r.platform.clone(),
            format!("{:.1}", r.launch_overhead_ns),
            format!("{:.1}", r.duration_ns),
        ]);
    }
    format!("Table V: nullKernel microbenchmark\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_values_exactly() {
        let rows = run();
        let expect = [
            ("amd_a100", 2260.5, 1440.0),
            ("intel_h100", 2374.6, 1235.2),
            ("gh200", 2771.6, 1171.2),
        ];
        for (row, (name, overhead, dur)) in rows.iter().zip(expect) {
            assert_eq!(row.platform, name);
            assert!((row.launch_overhead_ns - overhead).abs() < 2.0);
            assert!((row.duration_ns - dur).abs() < 2.0);
        }
    }

    #[test]
    fn gh200_tradeoff_holds() {
        // Highest launch overhead, lowest duration (the paper's takeaway).
        let rows = run();
        let gh = rows.iter().find(|r| r.platform == "gh200").unwrap();
        for other in rows.iter().filter(|r| r.platform != "gh200") {
            assert!(gh.launch_overhead_ns > other.launch_overhead_ns);
            assert!(gh.duration_ns < other.duration_ns);
        }
    }
}
