//! **Fig. 6** — TKLQT versus batch size for the encoder models
//! (Bert-Base-Uncased, XLM-Roberta-Base) on the three platforms, with the
//! star markers locating the CPU-bound → GPU-bound transition.
//!
//! The paper's headline: the transition sits around batch 8 on the LC
//! systems but is delayed to around batch 32 on the GH200 — a 4× wider
//! CPU-bound region, courtesy of the GH200's doubled HBM bandwidth.

use skip_core::{classify_sweep, SweepPoint};
use skip_hw::Platform;
use skip_llm::{zoo, ModelConfig, Phase, Workload};
use skip_runtime::ExecMode;

use crate::{profile, AsciiChart, TextTable, BATCH_SWEEP, SEQ_LEN};

/// One (model, platform) TKLQT sweep with its classification.
#[derive(Debug, Clone, PartialEq)]
pub struct TklqtSweep {
    /// Model name.
    pub model: String,
    /// Platform name.
    pub platform: String,
    /// `(batch, tklqt_ms)` series.
    pub points: Vec<(u32, f64)>,
    /// The star marker: first GPU-bound batch size.
    pub transition_batch: Option<u32>,
}

fn sweep(model: &ModelConfig, platform: &Platform) -> TklqtSweep {
    let mut points = Vec::new();
    let mut sweep_points = Vec::new();
    for &bs in &BATCH_SWEEP {
        let wl = Workload::new(model.clone(), Phase::Prefill, bs, SEQ_LEN);
        let report = profile(platform, &wl, ExecMode::Eager);
        points.push((bs, report.tklqt.as_millis_f64()));
        sweep_points.push(SweepPoint {
            batch_size: bs,
            tklqt: report.tklqt,
        });
    }
    let class = classify_sweep(&sweep_points);
    TklqtSweep {
        model: model.name.clone(),
        platform: platform.name.clone(),
        points,
        transition_batch: class.transition_batch,
    }
}

/// Runs the Fig. 6 experiment: both encoders × three platforms, fanned
/// out across the [`harness`](crate::harness) workers (results in the
/// same order as the serial nested loops).
#[must_use]
pub fn run() -> Vec<TklqtSweep> {
    let mut pairs = Vec::new();
    for model in [zoo::bert_base_uncased(), zoo::xlm_roberta_base()] {
        for platform in Platform::paper_trio() {
            pairs.push((model.clone(), platform));
        }
    }
    crate::harness::map(pairs, |(model, platform)| sweep(&model, &platform))
}

/// Renders the paper-style series (one row per batch size, a `*` marking
/// the transition) plus an ASCII rendition of the figure itself.
#[must_use]
pub fn render(sweeps: &[TklqtSweep]) -> String {
    let mut out = String::from("Fig. 6: TKLQT vs batch size, encoder models (seq=512)\n");
    for model in ["bert-base-uncased", "xlm-roberta-base"] {
        out.push_str(&format!(
            "\n{model} — TKLQT ms vs batch (a=amd_a100, i=intel_h100, g=gh200, log y)\n"
        ));
        let mut chart = AsciiChart::new(56, 12, true);
        for (marker, platform) in [('a', "amd_a100"), ('i', "intel_h100"), ('g', "gh200")] {
            if let Some(s) = sweeps
                .iter()
                .find(|s| s.model == model && s.platform == platform)
            {
                let pts: Vec<(f64, f64)> =
                    s.points.iter().map(|&(b, v)| (f64::from(b), v)).collect();
                chart.series(marker, &pts);
            }
        }
        out.push_str(&chart.render());
    }
    for s in sweeps {
        out.push_str(&format!(
            "\n{} on {} (transition ≈ {})\n",
            s.model,
            s.platform,
            s.transition_batch.map_or("none".into(), |b| b.to_string())
        ));
        let mut t = TextTable::new(vec!["batch", "tklqt_ms", "region"]);
        for &(bs, v) in &s.points {
            let star = match s.transition_batch {
                Some(tb) if bs == tb => "* GPU-bound from here",
                Some(tb) if bs > tb => "GPU-bound",
                _ => "CPU-bound",
            };
            t.row(vec![bs.to_string(), format!("{v:.3}"), star.into()]);
        }
        out.push_str(&t.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gh200_is_four_times_more_cpu_bound() {
        // The paper's headline claim for encoders: LC transition ≈ 8,
        // GH200 ≈ 32.
        let sweeps = run();
        for model in ["bert-base-uncased", "xlm-roberta-base"] {
            let get = |platform: &str| {
                sweeps
                    .iter()
                    .find(|s| s.model == model && s.platform == platform)
                    .and_then(|s| s.transition_batch)
                    .unwrap_or_else(|| panic!("{model}/{platform} never transitions"))
            };
            let intel = get("intel_h100");
            let amd = get("amd_a100");
            let gh = get("gh200");
            assert_eq!(intel, 8, "{model}: Intel+H100 star");
            assert_eq!(amd, 8, "{model}: AMD+A100 star");
            assert_eq!(gh, 32, "{model}: GH200 star");
            assert_eq!(gh / intel, 4, "{model}: 4x wider CPU-bound region");
        }
    }

    #[test]
    fn tklqt_is_flat_then_ramps() {
        for s in run() {
            let first = s.points[0].1;
            let last = s.points.last().unwrap().1;
            // Plateau: batch 2 within 2x of batch 1; ramp: last ≫ first.
            assert!(
                s.points[1].1 < first * 2.0 + 1e-9,
                "{}/{}",
                s.model,
                s.platform
            );
            assert!(last > first * 100.0, "{}/{}", s.model, s.platform);
        }
    }
}
