//! **Fig. 7a–d** — scalable kernel-fusion recommendation metrics from SKIP
//! during prefill on Intel+H100, for the two CPU-bound models GPT2 and
//! XLM-Roberta-Base:
//!
//! * (a) unique fusion chains per (batch, chain length),
//! * (b) total instances of those chains,
//! * (c) kernels fused at proximity score 1,
//! * (d) eager launch count `K_eager` per batch.

use skip_fusion::{FusionAnalysis, KernelSequences};
use skip_hw::Platform;
use skip_llm::{zoo, ModelConfig, Phase, Workload};
use skip_runtime::{Engine, ExecMode};

use crate::{TextTable, CHAIN_LENGTHS, SEQ_LEN};

/// Batch sizes shown in the Fig. 7 heatmaps.
pub const FIG7_BATCHES: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];

/// One heatmap cell.
#[derive(Debug, Clone, PartialEq)]
pub struct HeatmapCell {
    /// Batch size (heatmap row).
    pub batch: u32,
    /// Chain length (heatmap column).
    pub chain_len: usize,
    /// Fig. 7a value.
    pub unique_chains: usize,
    /// Fig. 7b value.
    pub total_instances: usize,
    /// Fig. 7c value.
    pub kernels_fused_ps1: usize,
}

/// One model's Fig. 7 data.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelHeatmaps {
    /// Model name.
    pub model: String,
    /// All heatmap cells, batch-major.
    pub cells: Vec<HeatmapCell>,
    /// Fig. 7d: `(batch, K_eager)`.
    pub k_eager: Vec<(u32, usize)>,
}

fn analyze(model: &ModelConfig) -> ModelHeatmaps {
    let engine = Engine::new(Platform::intel_h100());
    let mut cells = Vec::new();
    let mut k_eager = Vec::new();
    for &bs in &FIG7_BATCHES {
        let wl = Workload::new(model.clone(), Phase::Prefill, bs, SEQ_LEN);
        let trace = engine.run(&wl, ExecMode::Eager);
        let seqs = KernelSequences::from_trace(&trace);
        k_eager.push((bs, seqs.total_kernels()));
        for &l in &CHAIN_LENGTHS {
            let a = FusionAnalysis::of_sequences(&seqs, l);
            cells.push(HeatmapCell {
                batch: bs,
                chain_len: l,
                unique_chains: a.unique_chains,
                total_instances: a.total_instances,
                kernels_fused_ps1: a.kernels_fused,
            });
        }
    }
    ModelHeatmaps {
        model: model.name.clone(),
        cells,
        k_eager,
    }
}

/// Runs the Fig. 7 experiment for GPT2 and XLM-Roberta-Base.
#[must_use]
pub fn run() -> Vec<ModelHeatmaps> {
    vec![analyze(&zoo::gpt2()), analyze(&zoo::xlm_roberta_base())]
}

/// Renders all four panels.
#[must_use]
pub fn render(models: &[ModelHeatmaps]) -> String {
    let mut out = String::from("Fig. 7: fusion recommendation metrics (Intel+H100, prefill)\n");
    for m in models {
        for (panel, field) in [
            ("7a unique chains", 0usize),
            ("7b total instances", 1),
            ("7c kernels fused (PS=1)", 2),
        ] {
            out.push_str(&format!("\n{} — {}\n", m.model, panel));
            let mut header: Vec<String> = vec!["batch\\L".into()];
            header.extend(CHAIN_LENGTHS.iter().map(ToString::to_string));
            let mut t = TextTable::new(header);
            for &bs in &FIG7_BATCHES {
                let mut row = vec![bs.to_string()];
                for &l in &CHAIN_LENGTHS {
                    let c = m
                        .cells
                        .iter()
                        .find(|c| c.batch == bs && c.chain_len == l)
                        .expect("cell exists");
                    let v = match field {
                        0 => c.unique_chains,
                        1 => c.total_instances,
                        _ => c.kernels_fused_ps1,
                    };
                    row.push(v.to_string());
                }
                t.row(row);
            }
            out.push_str(&t.render());
        }
        out.push_str(&format!("\n{} — 7d K_eager per batch\n", m.model));
        let mut t = TextTable::new(vec!["batch", "k_eager"]);
        for &(bs, k) in &m.k_eager {
            t.row(vec![bs.to_string(), k.to_string()]);
        }
        out.push_str(&t.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_eager_is_batch_independent_and_paper_scaled() {
        for m in run() {
            let first = m.k_eager[0].1;
            assert!(m.k_eager.iter().all(|&(_, k)| k == first));
            match m.model.as_str() {
                "gpt2" => assert_eq!(first, 402),
                "xlm-roberta-base" => assert_eq!(first, 299),
                other => panic!("unexpected model {other}"),
            }
        }
    }

    #[test]
    fn short_chains_have_more_instances() {
        // Paper: shorter chain lengths exhibit more unique candidates and
        // total instances.
        for m in run() {
            let inst = |l: usize| {
                m.cells
                    .iter()
                    .find(|c| c.batch == 1 && c.chain_len == l)
                    .unwrap()
                    .total_instances
            };
            assert!(inst(2) > inst(64));
            assert!(inst(64) > inst(256));
        }
    }
}
