//! **Table I** — TTFT compile times and speedups for `torch.compile` modes
//! relative to eager execution, Gemma-2B, batch 1, sequence 1024, on the
//! Intel+H100 platform.

use skip_hw::Platform;
use skip_llm::{zoo, Phase, Workload};
use skip_runtime::{compile_time, eager_warmup, CompileMode, ExecMode};

use crate::{ttft_ms, TextTable};

/// One Table I column.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeResult {
    /// Column label (`"Eager"`, `"default"`, …).
    pub mode: String,
    /// One-time compilation/warmup cost, seconds.
    pub compile_time_s: f64,
    /// Steady-state TTFT, ms.
    pub ttft_ms: f64,
    /// TTFT speedup over eager.
    pub speedup: f64,
}

/// Runs the Table I experiment.
#[must_use]
pub fn run() -> Vec<ModeResult> {
    let platform = Platform::intel_h100();
    let wl = Workload::new(zoo::gemma_2b(), Phase::Prefill, 1, 1024);
    let graph = wl.graph();

    let eager_ms = ttft_ms(&platform, &wl, ExecMode::Eager);
    let mut out = vec![ModeResult {
        mode: "Eager".into(),
        compile_time_s: eager_warmup().as_secs_f64(),
        ttft_ms: eager_ms,
        speedup: 1.0,
    }];
    for cm in CompileMode::all() {
        let t = ttft_ms(&platform, &wl, ExecMode::TorchCompile(cm));
        out.push(ModeResult {
            mode: cm.label().into(),
            compile_time_s: compile_time(&graph, cm).as_secs_f64(),
            ttft_ms: t,
            speedup: eager_ms / t,
        });
    }
    out
}

/// Renders the paper-style table.
#[must_use]
pub fn render(rows: &[ModeResult]) -> String {
    let mut t = TextTable::new(vec!["compile_mode", "compile_time_s", "ttft_ms", "speedup"]);
    for r in rows {
        t.row(vec![
            r.mode.clone(),
            format!("{:.4}", r.compile_time_s),
            format!("{:.3}", r.ttft_ms),
            format!("{:.3}", r.speedup),
        ]);
    }
    format!(
        "Table I: torch.compile modes, Gemma-2B, BS=1, seq=1024, Intel+H100\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_times_match_paper() {
        let rows = run();
        let expect = [0.40644, 6.2844, 12.7469, 387.3];
        for (r, e) in rows.iter().zip(expect) {
            assert!(
                (r.compile_time_s - e).abs() / e < 0.02,
                "{}: {} vs {}",
                r.mode,
                r.compile_time_s,
                e
            );
        }
    }

    #[test]
    fn speedups_increase_with_mode_aggressiveness() {
        let rows = run();
        assert_eq!(rows[0].speedup, 1.0);
        assert!(rows[1].speedup > 1.0, "default must beat eager");
        assert!(
            rows[3].speedup >= rows[1].speedup,
            "max-autotune is fastest"
        );
        // Paper band: 1.203 / 1.2394 / 1.317 — require the same order of
        // magnitude of improvement (10%–60%).
        for r in &rows[1..] {
            assert!(
                (1.05..1.8).contains(&r.speedup),
                "{}: speedup {} out of band",
                r.mode,
                r.speedup
            );
        }
    }
}
