//! **Extension** — ablation studies over the design factors the paper's
//! conclusion names as the three latency drivers: GPU performance, CPU
//! performance, and coupling paradigm.
//!
//! * [`single_thread_sweep`] — "what if Grace were faster": scale the
//!   Grace CPU's single-thread factor and watch the GH200's low-batch
//!   penalty disappear (paper §VI: "addressing these bottlenecks requires
//!   enhancing CPU performance").
//! * [`bandwidth_sweep`] — scale the GH200's HBM bandwidth and watch the
//!   CPU-bound region (the Fig. 6 star) stretch: the mechanism behind the
//!   paper's 4× claim.
//! * [`launch_overhead_sweep`] — scale the platform launch overhead and
//!   watch batch-1 TTFT respond only weakly (launch tax is real but
//!   dispatch cost dominates) — motivating why fusion must also collapse
//!   *operator* work to pay off fully.
//! * [`coupling_comparison`] — LC vs CC vs TC (including the MI300A model
//!   the paper names as future work) at small/medium/large batch.

use skip_core::{classify_sweep, ProfileReport, SweepPoint};
use skip_hw::{Coupling, Platform, PlatformBuilder};
use skip_llm::{zoo, Phase, Workload};
use skip_runtime::{Engine, ExecMode};

use crate::{ttft_ms, TextTable, BATCH_SWEEP, SEQ_LEN};

/// One (factor, value) ablation measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// The factor value (scale or absolute).
    pub factor: f64,
    /// The measured response.
    pub response: f64,
}

/// Scales the Grace single-thread factor and reports BERT batch-1 TTFT on
/// the (modified) GH200.
#[must_use]
pub fn single_thread_sweep() -> Vec<AblationRow> {
    crate::harness::map(vec![0.36, 0.5, 0.7, 1.0, 1.2], |st| {
        let mut cpu = Platform::gh200().cpu;
        cpu.single_thread = st;
        let p = PlatformBuilder::from(Platform::gh200())
            .name(format!("gh200_st{st}"))
            .cpu(cpu)
            .build();
        let wl = Workload::new(zoo::bert_base_uncased(), Phase::Prefill, 1, SEQ_LEN);
        AblationRow {
            factor: st,
            response: ttft_ms(&p, &wl, ExecMode::Eager),
        }
    })
}

/// Scales the GH200's HBM bandwidth and reports the Fig. 6 transition
/// batch for BERT.
#[must_use]
pub fn bandwidth_sweep() -> Vec<AblationRow> {
    crate::harness::map(vec![2_000.0, 3_000.0, 4_000.0, 5_300.0], |bw| {
        let mut gpu = Platform::gh200().gpu;
        gpu.hbm_gbps = bw;
        let p = PlatformBuilder::from(Platform::gh200())
            .name(format!("gh200_bw{bw}"))
            .gpu(gpu)
            .build();
        let engine = Engine::new(p);
        let points: Vec<SweepPoint> = BATCH_SWEEP
            .iter()
            .map(|&bs| {
                let wl = Workload::new(zoo::bert_base_uncased(), Phase::Prefill, bs, SEQ_LEN);
                SweepPoint {
                    batch_size: bs,
                    tklqt: ProfileReport::analyze(&engine.run(&wl, ExecMode::Eager)).tklqt,
                }
            })
            .collect();
        let star = classify_sweep(&points)
            .transition_batch
            .map_or(f64::from(*BATCH_SWEEP.last().unwrap()) * 2.0, f64::from);
        AblationRow {
            factor: bw,
            response: star,
        }
    })
}

/// Scales the Intel+H100 launch overhead (both CPU call and wire latency)
/// and reports GPT2 batch-1 TTFT.
#[must_use]
pub fn launch_overhead_sweep() -> Vec<AblationRow> {
    crate::harness::map(vec![0.5, 1.0, 2.0, 4.0], |scale| {
        let base = Platform::intel_h100();
        let mut cpu = base.cpu.clone();
        cpu.launch_call_ns *= scale;
        let mut ic = base.interconnect.clone();
        ic.launch_latency_ns *= scale;
        let p = PlatformBuilder::from(base)
            .name(format!("intel_h100_launch{scale}"))
            .cpu(cpu)
            .interconnect(ic)
            .build();
        let wl = Workload::new(zoo::gpt2(), Phase::Prefill, 1, SEQ_LEN);
        AblationRow {
            factor: scale,
            response: ttft_ms(&p, &wl, ExecMode::Eager),
        }
    })
}

/// One coupling-comparison row: TTFT per platform at a given batch size.
#[derive(Debug, Clone, PartialEq)]
pub struct CouplingRow {
    /// Platform name.
    pub platform: String,
    /// Coupling paradigm.
    pub coupling: Coupling,
    /// TTFT at batch 1 / 16 / 64 (ms).
    pub ttft_ms: [f64; 3],
}

/// Compares LC / CC / TC (MI300A) for Llama-3.2-1B prefill.
#[must_use]
pub fn coupling_comparison() -> Vec<CouplingRow> {
    let mut platforms = Platform::paper_trio();
    platforms.push(Platform::mi300a());
    crate::harness::map(platforms, |p| {
        let t = |bs: u32| {
            let wl = Workload::new(zoo::llama32_1b(), Phase::Prefill, bs, SEQ_LEN);
            ttft_ms(&p, &wl, ExecMode::Eager)
        };
        CouplingRow {
            platform: p.name.clone(),
            coupling: p.coupling,
            ttft_ms: [t(1), t(16), t(64)],
        }
    })
}

/// Runs and renders every ablation.
#[must_use]
pub fn render_all() -> String {
    let mut out = String::from("Ablations over the paper's three latency drivers\n");

    out.push_str("\n(a) Grace single-thread factor -> BERT BS=1 TTFT on GH200\n");
    let mut t = TextTable::new(vec!["single_thread", "ttft_ms"]);
    for r in single_thread_sweep() {
        t.row(vec![
            format!("{:.2}", r.factor),
            format!("{:.2}", r.response),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\n(b) GH200 HBM bandwidth -> Fig. 6 transition batch (BERT)\n");
    let mut t = TextTable::new(vec!["hbm_gbps", "transition_batch"]);
    for r in bandwidth_sweep() {
        t.row(vec![
            format!("{:.0}", r.factor),
            format!("{:.0}", r.response),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\n(c) launch-overhead scale -> GPT2 BS=1 TTFT on Intel+H100\n");
    let mut t = TextTable::new(vec!["scale", "ttft_ms"]);
    for r in launch_overhead_sweep() {
        t.row(vec![
            format!("{:.1}", r.factor),
            format!("{:.2}", r.response),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\n(d) coupling comparison, Llama-3.2-1B TTFT (ms)\n");
    let mut t = TextTable::new(vec!["platform", "coupling", "bs=1", "bs=16", "bs=64"]);
    for r in coupling_comparison() {
        t.row(vec![
            r.platform,
            r.coupling.abbrev().into(),
            format!("{:.2}", r.ttft_ms[0]),
            format!("{:.2}", r.ttft_ms[1]),
            format!("{:.2}", r.ttft_ms[2]),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faster_grace_removes_the_low_batch_penalty() {
        let sweep = single_thread_sweep();
        // TTFT strictly decreases as single-thread performance rises…
        for w in sweep.windows(2) {
            assert!(w[1].response < w[0].response);
        }
        // …and at Xeon-class ST the GH200 essentially matches the real
        // Intel+H100 (within 5%: the Grace platform's higher measured
        // launch-call cost is the small residual — Table V).
        let at_xeon = sweep.iter().find(|r| r.factor == 1.0).unwrap().response;
        let intel = ttft_ms(
            &Platform::intel_h100(),
            &Workload::new(zoo::bert_base_uncased(), Phase::Prefill, 1, SEQ_LEN),
            ExecMode::Eager,
        );
        assert!(at_xeon <= intel * 1.05, "{at_xeon} vs {intel}");
    }

    #[test]
    fn more_bandwidth_stretches_the_cpu_bound_region() {
        let sweep = bandwidth_sweep();
        for w in sweep.windows(2) {
            assert!(
                w[1].response >= w[0].response,
                "transition moved left as bandwidth grew"
            );
        }
        // At PCIe-H100-class bandwidth the (hypothetical) GH200 transitions
        // earlier than the real one.
        assert!(sweep[0].response < sweep[2].response);
    }

    #[test]
    fn launch_overhead_moves_batch1_latency_weakly() {
        let sweep = launch_overhead_sweep();
        for w in sweep.windows(2) {
            assert!(w[1].response > w[0].response);
        }
        // 8x launch-overhead span moves TTFT far less than 8x: operator
        // dispatch, not launch tax, dominates batch-1 latency.
        let ratio = sweep.last().unwrap().response / sweep[0].response;
        assert!(ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn tight_coupling_wins_every_regime() {
        // The MI300A model combines a strong CPU, no copies, and the
        // fastest HBM: it should never lose to the GH200.
        let rows = coupling_comparison();
        let mi = rows.iter().find(|r| r.platform == "mi300a").unwrap();
        let gh = rows.iter().find(|r| r.platform == "gh200").unwrap();
        for i in 0..3 {
            assert!(mi.ttft_ms[i] < gh.ttft_ms[i], "regime {i}");
        }
        assert_eq!(mi.coupling, Coupling::Tight);
    }
}
