//! **Extension** — online serving under SLO: offered load vs tail latency
//! across platforms and batching policies.
//!
//! The paper frames its entire batch-size analysis in serving terms
//! (§II-A: ~200 ms SLOs, vLLM/Orca batching). This experiment makes the
//! connection operational: Poisson arrivals against a GPT2 endpoint,
//! measuring p95 TTFT as a function of offered load, for static vs
//! continuous batching on each platform. The offline crossover story
//! reappears online: the GH200 has the worst light-load latency
//! (Grace-dispatch-bound iterations) but sustains the highest load before
//! SLO collapse (its balanced region sits at larger batches).

use skip_des::SimDuration;
use skip_hw::Platform;
use skip_llm::zoo;
use skip_serve::{simulate, Policy, RouterPolicy, ServingConfig, ServingReport, SloTargets};

use crate::TextTable;

/// Offered loads swept, requests/second.
pub const LOADS: [f64; 5] = [5.0, 20.0, 50.0, 100.0, 200.0];

/// One serving measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingRow {
    /// Platform name.
    pub platform: String,
    /// Policy label (`"static"` / `"continuous"`).
    pub policy: String,
    /// Offered load, req/s.
    pub load: f64,
    /// The measured report.
    pub report: ServingReport,
}

fn run_one(platform: &Platform, policy: Policy, load: f64) -> ServingRow {
    let report = simulate(&ServingConfig {
        platform: platform.clone(),
        model: zoo::gpt2(),
        policy,
        requests: 120,
        arrival_rate_per_s: load,
        prompt_len: 128,
        new_tokens: 8,
        seed: 2026,
        kv: None,
        slo: SloTargets::default(),
        router: RouterPolicy::SharedQueue,
    });
    ServingRow {
        platform: platform.name.clone(),
        policy: match policy {
            Policy::Static { .. } => "static".into(),
            Policy::Continuous { .. } => "continuous".into(),
            Policy::ChunkedPrefill { .. } => "chunked".into(),
        },
        load,
        report,
    }
}

/// Runs the serving sweep. Each (platform, policy, load) cell is an
/// independent simulation, fanned out across the
/// [`harness`](crate::harness) workers; row order matches the serial
/// nested loops.
#[must_use]
pub fn run() -> Vec<ServingRow> {
    let policies = [
        Policy::Static {
            batch_size: 8,
            max_wait: SimDuration::from_millis(50),
        },
        Policy::Continuous { max_batch: 16 },
    ];
    let mut cells = Vec::new();
    for platform in Platform::paper_trio() {
        for policy in policies {
            for load in LOADS {
                cells.push((platform.clone(), policy, load));
            }
        }
    }
    crate::harness::map(cells, |(platform, policy, load)| {
        run_one(&platform, policy, load)
    })
}

/// Renders the load-vs-tail-latency panels.
#[must_use]
pub fn render(rows: &[ServingRow]) -> String {
    let mut out =
        String::from("Serving extension: GPT2 endpoint, p95 TTFT (ms) vs offered load (req/s)\n");
    for policy in ["static", "continuous"] {
        out.push_str(&format!("\npolicy: {policy}\n"));
        let mut t = TextTable::new(vec!["load", "amd_a100", "intel_h100", "gh200"]);
        for load in LOADS {
            let get = |p: &str| {
                rows.iter()
                    .find(|r| r.platform == p && r.policy == policy && r.load == load)
                    .expect("row")
                    .report
                    .ttft_p95
                    .as_millis_f64()
            };
            t.row(vec![
                format!("{load:.0}"),
                format!("{:.1}", get("amd_a100")),
                format!("{:.1}", get("intel_h100")),
                format!("{:.1}", get("gh200")),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p95(rows: &[ServingRow], platform: &str, policy: &str, load: f64) -> f64 {
        rows.iter()
            .find(|r| r.platform == platform && r.policy == policy && r.load == load)
            .expect("row")
            .report
            .ttft_p95
            .as_millis_f64()
    }

    #[test]
    fn light_load_latency_ranked_by_cpu() {
        let rows = run();
        assert!(
            p95(&rows, "intel_h100", "continuous", 5.0) < p95(&rows, "gh200", "continuous", 5.0)
        );
    }

    #[test]
    fn tail_latency_grows_with_load() {
        let rows = run();
        for p in ["amd_a100", "intel_h100", "gh200"] {
            assert!(
                p95(&rows, p, "continuous", 200.0) >= p95(&rows, p, "continuous", 5.0),
                "{p}"
            );
        }
    }

    #[test]
    fn continuous_batching_dominates_static_at_scale() {
        let rows = run();
        for p in ["amd_a100", "intel_h100", "gh200"] {
            assert!(
                p95(&rows, p, "continuous", 100.0) <= p95(&rows, p, "static", 100.0),
                "{p}"
            );
        }
    }

    #[test]
    fn every_simulation_completes_all_requests() {
        for r in run() {
            assert_eq!(r.report.completed, 120, "{}/{}", r.platform, r.policy);
        }
    }
}
