//! **Fig. 9** — relative to eager execution: the idealized proximity-score
//! fusion speedups (blue bars, one per chain length) versus the measured
//! `torch.compile` reduce-overhead speedup (orange bar) for GPT-2 prefill
//! at batch 1 on Intel+H100.
//!
//! Paper headline: at chain length 256 the idealized PS fusion is ~1.3×
//! better than reduce-overhead CUDA-graph execution.
//!
//! **Known deviation** (recorded in EXPERIMENTS.md): our simulated
//! CUDA-graph path removes nearly all per-forward CPU overhead, so the
//! orange bar lands *above* the PS-ideal bar (~6× vs 2.7×). The paper's
//! measured reduce-overhead runs retain real-world overheads (Dynamo graph
//! breaks, static-input copies) that the simulator does not model. The
//! claims that survive: the PS-fusion blue bars match Fig. 8, and
//! reduce-overhead strongly accelerates the CPU-bound GPT-2 workload.

use skip_fusion::FusionAnalysis;
use skip_hw::Platform;
use skip_llm::{zoo, Phase, Workload};
use skip_runtime::{CompileMode, Engine, ExecMode};

use crate::{ttft_ms, TextTable, CHAIN_LENGTHS, SEQ_LEN};

/// The Fig. 9 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9 {
    /// `(chain length, idealized PS-fusion speedup)` — the blue bars.
    pub ps_fusion: Vec<(usize, f64)>,
    /// Measured `torch.compile` reduce-overhead speedup — the orange bar.
    pub torch_compile_ro: f64,
}

/// Runs the Fig. 9 experiment.
#[must_use]
pub fn run() -> Fig9 {
    let platform = Platform::intel_h100();
    let wl = Workload::new(zoo::gpt2(), Phase::Prefill, 1, SEQ_LEN);
    let trace = Engine::new(platform.clone()).run(&wl, ExecMode::Eager);
    let ps_fusion = CHAIN_LENGTHS
        .iter()
        .map(|&l| (l, FusionAnalysis::of_trace(&trace, l).ideal_speedup()))
        .collect();
    let eager = ttft_ms(&platform, &wl, ExecMode::Eager);
    let ro = ttft_ms(
        &platform,
        &wl,
        ExecMode::TorchCompile(CompileMode::ReduceOverhead),
    );
    Fig9 {
        ps_fusion,
        torch_compile_ro: eager / ro,
    }
}

/// Renders the paper-style bars.
#[must_use]
pub fn render(f: &Fig9) -> String {
    let mut t = TextTable::new(vec!["bar", "speedup_vs_eager"]);
    for &(l, s) in &f.ps_fusion {
        t.row(vec![format!("PS fusion L={l}"), format!("{s:.2}")]);
    }
    t.row(vec![
        "torch.compile reduce-overhead".into(),
        format!("{:.2}", f.torch_compile_ro),
    ]);
    format!(
        "Fig. 9: PS fusion (ideal) vs torch.compile reduce-overhead, GPT-2 prefill BS=1, Intel+H100\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ps_fusion_bars_match_fig8_peak() {
        let f = run();
        let best_ps = f.ps_fusion.iter().map(|p| p.1).fold(0.0, f64::max);
        // The blue bars are the Fig. 8 GPT2 series: peak ≈ 2.7x at L=256.
        assert!((best_ps - 2.7).abs() < 0.15, "PS best {best_ps:.2}");
        assert_eq!(f.ps_fusion.last().unwrap().0, 256);
    }

    #[test]
    fn reduce_overhead_itself_speeds_up_cpu_bound_gpt2() {
        let f = run();
        assert!(f.torch_compile_ro > 1.3, "{}", f.torch_compile_ro);
    }
}
