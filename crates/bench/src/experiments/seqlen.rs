//! **Extension** — sequence-length sensitivity.
//!
//! The paper fixes the input length at 512 tokens (§IV-B) and notes in
//! §II-A that "longer inputs necessitate increased GPU parallelism,
//! resulting in extended prefill phases". This experiment sweeps the
//! prompt length at batch 1 and asks where the *sequence length alone*
//! pushes a workload out of the CPU-bound region — the same transition
//! Fig. 6 finds along the batch axis, found along the sequence axis.

use skip_core::{classify_sweep, ProfileReport, SweepPoint};
use skip_hw::Platform;
use skip_llm::{zoo, ModelConfig, Phase, Workload};
use skip_runtime::{Engine, ExecMode};

use crate::TextTable;

/// Prompt lengths swept.
pub const SEQ_LENS: [u32; 7] = [64, 128, 256, 512, 1024, 2048, 4096];

/// One (model, platform) sequence sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqSweep {
    /// Model name.
    pub model: String,
    /// Platform name.
    pub platform: String,
    /// `(seq_len, ttft_ms, tklqt_ms)` series at batch 1.
    pub points: Vec<(u32, f64, f64)>,
    /// First sequence length classified GPU-bound, if any.
    pub transition_seq: Option<u32>,
}

fn sweep(model: &ModelConfig, platform: &Platform) -> SeqSweep {
    let engine = Engine::new(platform.clone());
    let mut points = Vec::new();
    let mut cls = Vec::new();
    for &seq in &SEQ_LENS {
        let wl = Workload::new(model.clone(), Phase::Prefill, 1, seq);
        let r = ProfileReport::analyze(&engine.run(&wl, ExecMode::Eager));
        points.push((
            seq,
            r.inference_latency.as_millis_f64(),
            r.tklqt.as_millis_f64(),
        ));
        // Reuse the TKLQT classifier with seq standing in for batch.
        cls.push(SweepPoint {
            batch_size: seq,
            tklqt: r.tklqt,
        });
    }
    SeqSweep {
        model: model.name.clone(),
        platform: platform.name.clone(),
        points,
        transition_seq: classify_sweep(&cls).transition_batch,
    }
}

/// Runs the sweep for BERT and Llama-3.2-1B on the three platforms,
/// fanned out across the [`harness`](crate::harness) workers (results in
/// the same order as the serial nested loops).
#[must_use]
pub fn run() -> Vec<SeqSweep> {
    let mut pairs = Vec::new();
    for model in [zoo::bert_base_uncased(), zoo::llama32_1b()] {
        for platform in Platform::paper_trio() {
            pairs.push((model.clone(), platform));
        }
    }
    crate::harness::map(pairs, |(model, platform)| sweep(&model, &platform))
}

/// Renders the sweep.
#[must_use]
pub fn render(sweeps: &[SeqSweep]) -> String {
    let mut out = String::from("Sequence-length extension: batch-1 TTFT (ms) vs prompt length\n");
    for s in sweeps {
        out.push_str(&format!(
            "\n{} on {} (GPU-bound from seq ≈ {})\n",
            s.model,
            s.platform,
            s.transition_seq
                .map_or("beyond sweep".into(), |v| v.to_string())
        ));
        let mut t = TextTable::new(vec!["seq_len", "ttft_ms", "tklqt_ms"]);
        for &(seq, ttft, tklqt) in &s.points {
            t.row(vec![
                seq.to_string(),
                format!("{ttft:.2}"),
                format!("{tklqt:.3}"),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_prompts_leave_the_cpu_bound_region() {
        // Even at batch 1, a long enough prompt saturates the GPU.
        let sweeps = run();
        for s in &sweeps {
            assert!(
                s.transition_seq.is_some(),
                "{}/{} stayed CPU-bound through {} tokens",
                s.model,
                s.platform,
                SEQ_LENS.last().unwrap()
            );
        }
    }

    #[test]
    fn gh200_transitions_at_longer_sequences_than_lc() {
        // The Fig. 6 bandwidth mechanism, replayed along the seq axis.
        let sweeps = run();
        for model in ["bert-base-uncased", "llama-3.2-1b"] {
            let t = |p: &str| {
                sweeps
                    .iter()
                    .find(|s| s.model == model && s.platform == p)
                    .and_then(|s| s.transition_seq)
                    .expect("transitions in-sweep")
            };
            assert!(
                t("gh200") >= t("intel_h100"),
                "{model}: gh200 {} vs intel {}",
                t("gh200"),
                t("intel_h100")
            );
        }
    }

    #[test]
    fn ttft_grows_monotonically_with_seq() {
        for s in run() {
            for w in s.points.windows(2) {
                assert!(
                    w[1].1 >= w[0].1 * 0.999,
                    "{}/{}: {} -> {}",
                    s.model,
                    s.platform,
                    w[0].1,
                    w[1].1
                );
            }
        }
    }
}
