//! **Extension** — KV-cache capacity: offered load × model size × HBM block
//! budget, with coupling-aware offload.
//!
//! The paper's coupling story is usually told through kernel-launch paths;
//! this experiment tells it through *memory*. Each platform serves the same
//! workload behind an identical paged-KV block budget (`skip-mem`), and when
//! the pool overcommits, the scheduler preempts and offloads KV state across
//! the CPU-GPU interconnect. The per-eviction price is set by the coupling:
//! a ~1100-token Llama-2-7B context swaps in ~2.4 ms over NVLink-C2C but
//! ~34 ms over PCIe gen4. The sweep exposes a crossover along the *budget*
//! axis:
//!
//! * small model, or light load, or a tight budget — the loosely-coupled
//!   Xeon platform wins on its fast dispatch path; either memory pressure
//!   never materializes, or the eviction churn shrinks the resident batch
//!   below the GH200's balanced region;
//! * 7B model / heavy load / roomy (HBM-realistic) budget — the full
//!   resident batch fits, decode runs at the large batch sizes where the
//!   GH200's coupling pays off, and it sustains strictly higher goodput
//!   than either loosely-coupled system.

use skip_hw::Platform;
use skip_llm::{zoo, ModelConfig};
use skip_mem::{KvSpec, OffloadPolicy};
use skip_serve::{
    simulate, KvCacheConfig, Policy, RouterPolicy, ServingConfig, ServingReport, SloTargets,
};

use crate::TextTable;

/// Offered loads swept, requests/second.
pub const LOADS: [f64; 3] = [4.0, 16.0, 64.0];

/// Concurrent-request cap of the continuous batcher.
pub const MAX_BATCH: u32 = 64;

/// Prompt length, tokens.
pub const PROMPT_LEN: u32 = 1024;

/// Output tokens per request.
pub const NEW_TOKENS: u32 = 128;

/// Requests per simulation.
pub const REQUESTS: u32 = 96;

/// The tight budget, chosen inside the overcommit band: admission fits
/// `floor(2200/64) = 34` prompts (64 blocks each), but their decode growth
/// to 72 blocks needs 2448 — so the pool must preempt to finish.
pub const TIGHT_BLOCKS: u32 = 2200;

/// The roomy budget: what an 80 GB card realistically carves for Llama-2-7B
/// KV after FP16 weights and a 10% activation reserve (~58 GB / 8.4 MB).
pub const ROOMY_BLOCKS: u32 = 6912;

/// One measurement of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct KvCapacityRow {
    /// Platform name.
    pub platform: String,
    /// Model name.
    pub model: String,
    /// Offered load, req/s.
    pub load: f64,
    /// KV pool budget, blocks per replica.
    pub budget_blocks: u32,
    /// The measured report.
    pub report: ServingReport,
}

/// The models swept: a small dispatch-bound decoder and the 7B-class
/// decoder whose KV is heavy enough to make offload traffic interesting.
#[must_use]
pub fn models() -> Vec<ModelConfig> {
    vec![zoo::gpt2(), zoo::llama2_7b()]
}

fn run_one(platform: &Platform, model: &ModelConfig, load: f64, budget: u32) -> KvCapacityRow {
    let report = simulate(&ServingConfig {
        platform: platform.clone(),
        model: model.clone(),
        policy: Policy::Continuous {
            max_batch: MAX_BATCH,
        },
        requests: REQUESTS,
        arrival_rate_per_s: load,
        prompt_len: PROMPT_LEN,
        new_tokens: NEW_TOKENS,
        seed: 7,
        kv: Some(KvCacheConfig::with_blocks(budget, OffloadPolicy::Auto)),
        slo: SloTargets::default(),
        router: RouterPolicy::SharedQueue,
    });
    KvCapacityRow {
        platform: platform.name.clone(),
        model: model.name.clone(),
        load,
        budget_blocks: budget,
        report,
    }
}

/// Runs the full sweep: model × budget × load × platform. Every cell is an
/// independent simulation, fanned out across the
/// [`harness`](crate::harness) workers; row order matches the serial
/// nested loops.
#[must_use]
pub fn run() -> Vec<KvCapacityRow> {
    let mut cells = Vec::new();
    for model in models() {
        for budget in [TIGHT_BLOCKS, ROOMY_BLOCKS] {
            for load in LOADS {
                for platform in Platform::paper_trio() {
                    cells.push((model.clone(), budget, load, platform));
                }
            }
        }
    }
    crate::harness::map(cells, |(model, budget, load, platform)| {
        run_one(&platform, &model, load, budget)
    })
}

/// Looks up one row of a sweep result.
#[must_use]
pub fn find<'a>(
    rows: &'a [KvCapacityRow],
    platform: &str,
    model: &str,
    load: f64,
    budget: u32,
) -> Option<&'a KvCapacityRow> {
    rows.iter().find(|r| {
        r.platform == platform && r.model == model && r.load == load && r.budget_blocks == budget
    })
}

/// Renders the goodput panels plus a memory-pressure panel for the tight
/// budget.
#[must_use]
pub fn render(rows: &[KvCapacityRow]) -> String {
    let mut out = String::from(
        "KV-capacity extension: goodput (tok/s) under an identical paged-KV block budget\n",
    );
    for model in models() {
        let bpt = KvSpec::for_model(&model, KvSpec::DEFAULT_BLOCK_TOKENS).bytes_per_token;
        for budget in [TIGHT_BLOCKS, ROOMY_BLOCKS] {
            out.push_str(&format!(
                "\nmodel: {} ({} KiB/token) | budget: {} blocks ({})\n",
                model.name,
                bpt / 1024,
                budget,
                if budget == TIGHT_BLOCKS {
                    "tight"
                } else {
                    "roomy"
                },
            ));
            let mut t = TextTable::new(vec!["load", "amd_a100", "intel_h100", "gh200"]);
            for load in LOADS {
                let get = |p: &str| {
                    find(rows, p, &model.name, load, budget)
                        .expect("row")
                        .report
                        .throughput_tok_s
                };
                t.row(vec![
                    format!("{load:.0}"),
                    format!("{:.0}", get("amd_a100")),
                    format!("{:.0}", get("intel_h100")),
                    format!("{:.0}", get("gh200")),
                ]);
            }
            out.push_str(&t.render());
        }
    }
    out.push_str("\nmemory pressure at the tight budget (llama-2-7b):\n");
    let mut t = TextTable::new(vec![
        "load",
        "platform",
        "preempt",
        "swaps",
        "swapped_mb",
        "recomputed_tok",
        "peak_occ",
    ]);
    for load in LOADS {
        for p in ["amd_a100", "intel_h100", "gh200"] {
            let r = &find(rows, p, "llama-2-7b", load, TIGHT_BLOCKS)
                .expect("row")
                .report;
            t.row(vec![
                format!("{load:.0}"),
                p.into(),
                format!("{}", r.preemptions),
                format!("{}", r.swap_outs),
                format!("{:.0}", r.swapped_bytes as f64 / 1e6),
                format!("{}", r.recomputed_tokens),
                format!("{:.2}", r.kv_peak_occupancy),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tput(rows: &[KvCapacityRow], p: &str, model: &str, load: f64, budget: u32) -> f64 {
        find(rows, p, model, load, budget)
            .expect("row")
            .report
            .throughput_tok_s
    }

    #[test]
    fn kv_budget_sets_the_goodput_ordering() {
        // The acceptance claim, under corrected latency accounting (the
        // interpolated engine prices fixed a systematic decode overcharge
        // that used to mask dispatch effects): the ordering crosses over
        // along the *budget* axis. At heavy load with the HBM-realistic
        // roomy budget, the GH200 runs in its large-batch balanced region
        // and leads both loosely-coupled platforms; the tight budget
        // shrinks the resident batch below that region and hands the lead
        // back to the dispatch-fast Xeon platform, while the GH200 still
        // clears the PCIe-attached A100 system.
        let rows = run();
        let m = "llama-2-7b";
        for load in [16.0, 64.0] {
            let gh_roomy = tput(&rows, "gh200", m, load, ROOMY_BLOCKS);
            assert!(
                gh_roomy > tput(&rows, "amd_a100", m, load, ROOMY_BLOCKS)
                    && gh_roomy > tput(&rows, "intel_h100", m, load, ROOMY_BLOCKS),
                "gh200 should lead at the roomy budget, load {load}"
            );
            assert!(
                tput(&rows, "intel_h100", m, load, TIGHT_BLOCKS)
                    > tput(&rows, "gh200", m, load, TIGHT_BLOCKS),
                "tight budget should hand the lead back to intel at load {load}"
            );
            assert!(
                tput(&rows, "gh200", m, load, TIGHT_BLOCKS)
                    > tput(&rows, "amd_a100", m, load, TIGHT_BLOCKS),
                "gh200 should still clear the A100 platform at load {load}"
            );
        }
        assert!(
            tput(&rows, "intel_h100", m, 4.0, TIGHT_BLOCKS)
                > tput(&rows, "gh200", m, 4.0, TIGHT_BLOCKS),
            "light load should favor the fast-dispatch LC platform"
        );
    }

    #[test]
    fn memory_pressure_hurts_the_coupled_platform_most() {
        // The mechanism behind the budget-axis crossover: eviction churn
        // shrinks every platform's resident batch, but only the GH200's
        // balanced region sits at large batches, so — normalized by its
        // own roomy-budget baseline — it suffers the largest slowdown.
        let rows = run();
        let m = "llama-2-7b";
        let slowdown = |p: &str| {
            let tight = find(&rows, p, m, 64.0, TIGHT_BLOCKS)
                .expect("row")
                .report
                .makespan;
            let roomy = find(&rows, p, m, 64.0, ROOMY_BLOCKS)
                .expect("row")
                .report
                .makespan;
            tight.as_nanos_f64() / roomy.as_nanos_f64()
        };
        let gh = slowdown("gh200");
        assert!(
            gh > slowdown("amd_a100") && gh > slowdown("intel_h100"),
            "gh200 slowdown {gh:.3} should top the trio"
        );
    }

    #[test]
    fn tight_budget_preempts_and_swaps_on_every_platform() {
        let rows = run();
        for p in ["amd_a100", "intel_h100", "gh200"] {
            let r = &find(&rows, p, "llama-2-7b", 64.0, TIGHT_BLOCKS)
                .expect("row")
                .report;
            assert_eq!(r.completed, REQUESTS, "{p}");
            assert!(r.preemptions > 0, "{p} must hit the budget");
            assert_eq!(r.swap_outs, r.preemptions, "{p}: auto swaps here");
            assert!(r.kv_peak_occupancy > 0.95, "{p}");
        }
    }

    #[test]
    fn roomy_budget_never_preempts() {
        let rows = run();
        for r in rows.iter().filter(|r| r.budget_blocks == ROOMY_BLOCKS) {
            assert_eq!(r.report.preemptions, 0, "{}/{}", r.platform, r.load);
            assert_eq!(r.report.completed, REQUESTS);
        }
    }

    #[test]
    fn small_model_stays_dispatch_bound() {
        // GPT-2's KV is 14x lighter per token; the same block budget is
        // never the bottleneck story — the loosely-coupled platforms keep
        // their dispatch-path advantage at every load.
        let rows = run();
        for load in LOADS {
            assert!(
                tput(&rows, "intel_h100", "gpt2", load, TIGHT_BLOCKS)
                    > tput(&rows, "gh200", "gpt2", load, TIGHT_BLOCKS),
                "load {load}"
            );
        }
    }
}
