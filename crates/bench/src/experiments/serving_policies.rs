//! **Extension** — batching policy × replica router: the composable
//! scheduler seams, measured.
//!
//! The serving floor is built from two orthogonal traits — `BatchPolicy`
//! (what each replica runs per iteration) and `Router` (which replica an
//! arrival joins). This experiment sweeps the full cross product on a
//! four-replica GPT2 endpoint with long prompts. Three findings, each a
//! direct consequence of the paper's dispatch-cost characterization:
//!
//! * **Policy axis** — continuous batching dominates static on the TTFT
//!   tail everywhere, and chunked prefill is a *pessimization* here:
//!   slicing a 512-token prompt into 128-token chunks multiplies the
//!   iteration count ~4x, and every extra iteration pays the platform's
//!   fixed CPU dispatch cost. The slowdown therefore ranks by coupling:
//!   mildest on the fast-dispatch Xeon host, worst on the
//!   Grace-dispatch-bound GH200. (Chunked prefill earns its keep by
//!   bounding iteration time for latency-sensitive co-running decodes —
//!   a TBT benefit this homogeneous TTFT-focused workload cannot see.)
//! * **Router axis** — the shared queue's late binding beats both
//!   partitioned routers on the TTFT tail: an arrival commits to a
//!   replica only when one goes idle, so no request strands behind a
//!   busy replica while another sits free.
//! * **JSQ degeneracy** — with homogeneous requests the per-replica
//!   queues stay balanced, so join-shortest-queue's tie-break walks the
//!   replica indices in rotation and collapses into round-robin.
//!
//! Every cell is audited against the counter conservation law via the
//! lifecycle trace, so the seam matrix doubles as an integration test of
//! the refactored floor.

use skip_des::SimDuration;
use skip_hw::Platform;
use skip_llm::zoo;
use skip_serve::{
    simulate_traced, Policy, RouterPolicy, ServingConfig, ServingReport, ServingTrace, SloTargets,
};

use crate::TextTable;

/// Offered load, requests/second — past the knee for a 4-replica endpoint.
pub const LOAD: f64 = 150.0;

/// Requests per simulation.
pub const REQUESTS: u32 = 80;

/// Prompt length, tokens — long enough that a whole-prompt prefill
/// iteration visibly blocks the first token of queued peers.
pub const PROMPT_LEN: u32 = 512;

/// Output tokens per request.
pub const NEW_TOKENS: u32 = 16;

/// Concurrent-request cap shared by the continuous and chunked policies.
pub const MAX_BATCH: u32 = 16;

/// Per-iteration prefill token budget of the chunked policy.
pub const CHUNK_TOKENS: u32 = 128;

/// Replicas behind the router.
pub const REPLICAS: u32 = 4;

/// TTFT target scored in every cell.
pub const SLO_TTFT_MS: u64 = 500;

/// End-to-end target scored in every cell.
pub const SLO_E2E_MS: u64 = 3000;

/// One (platform, policy, router) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRouterRow {
    /// Platform name.
    pub platform: String,
    /// Policy label (`"static"` / `"continuous"` / `"chunked"`).
    pub policy: String,
    /// Router label (`"shared"` / `"rr"` / `"jsq"`).
    pub router: String,
    /// Scalar report, including the SLO block.
    pub report: ServingReport,
    /// The lifecycle/counter recording behind it.
    pub trace: ServingTrace,
}

/// The batching policies swept, with their table labels.
#[must_use]
pub fn policies() -> Vec<(&'static str, Policy)> {
    vec![
        (
            "static",
            Policy::Static {
                batch_size: 8,
                max_wait: SimDuration::from_millis(50),
            },
        ),
        (
            "continuous",
            Policy::Continuous {
                max_batch: MAX_BATCH,
            },
        ),
        (
            "chunked",
            Policy::ChunkedPrefill {
                max_batch: MAX_BATCH,
                chunk_tokens: CHUNK_TOKENS,
            },
        ),
    ]
}

/// The routers swept.
pub const ROUTERS: [RouterPolicy; 3] = [
    RouterPolicy::SharedQueue,
    RouterPolicy::RoundRobin,
    RouterPolicy::JoinShortestQueue,
];

fn run_one(
    platform: &Platform,
    label: &str,
    policy: Policy,
    router: RouterPolicy,
) -> PolicyRouterRow {
    let (report, trace) = simulate_traced(
        &ServingConfig {
            platform: platform.clone(),
            model: zoo::gpt2(),
            policy,
            requests: REQUESTS,
            arrival_rate_per_s: LOAD,
            prompt_len: PROMPT_LEN,
            new_tokens: NEW_TOKENS,
            seed: 2026,
            kv: None,
            slo: SloTargets {
                ttft: Some(SimDuration::from_millis(SLO_TTFT_MS)),
                e2e: Some(SimDuration::from_millis(SLO_E2E_MS)),
            },
            router,
        },
        REPLICAS,
    );
    PolicyRouterRow {
        platform: platform.name.clone(),
        policy: label.to_owned(),
        router: router.label().to_owned(),
        report,
        trace,
    }
}

/// Runs the policy × router matrix on the paper trio. Each cell is an
/// independent simulation, fanned out across the
/// [`harness`](crate::harness) workers; row order matches the serial
/// nested loops.
#[must_use]
pub fn run() -> Vec<PolicyRouterRow> {
    let mut cells = Vec::new();
    for platform in Platform::paper_trio() {
        for (label, policy) in policies() {
            for router in ROUTERS {
                cells.push((platform.clone(), label, policy, router));
            }
        }
    }
    crate::harness::map(cells, |(platform, label, policy, router)| {
        run_one(&platform, label, policy, router)
    })
}

/// Looks up one cell of the matrix.
#[must_use]
pub fn find<'a>(
    rows: &'a [PolicyRouterRow],
    platform: &str,
    policy: &str,
    router: &str,
) -> Option<&'a PolicyRouterRow> {
    rows.iter()
        .find(|r| r.platform == platform && r.policy == policy && r.router == router)
}

/// Renders one panel per platform: p95 TTFT with SLO attainment and
/// goodput for every policy × router cell.
#[must_use]
pub fn render(rows: &[PolicyRouterRow]) -> String {
    let mut out = format!(
        "Serving-policy matrix: {REPLICAS}x GPT2 replicas, {PROMPT_LEN}-token prompts, \
         {LOAD:.0} req/s offered\ncell = p95 TTFT ms | SLO% (ttft<={SLO_TTFT_MS}ms & \
         e2e<={SLO_E2E_MS}ms) | goodput req/s\n"
    );
    for platform in Platform::paper_trio() {
        out.push_str(&format!("\nplatform: {}\n", platform.name));
        let mut t = TextTable::new(vec!["policy", "shared", "rr", "jsq"]);
        for (label, _) in policies() {
            let cell = |router: &str| {
                let r = find(rows, &platform.name, label, router).expect("cell");
                format!(
                    "{:.0} | {:.0}% | {:.1}",
                    r.report.ttft_p95.as_millis_f64(),
                    100.0 * f64::from(r.report.slo.slo_completions)
                        / f64::from(r.report.slo.completed.max(1)),
                    r.report.slo.goodput_req_s
                )
            };
            t.row(vec![
                label.to_owned(),
                cell("shared"),
                cell("rr"),
                cell("jsq"),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p95(rows: &[PolicyRouterRow], platform: &str, policy: &str, router: &str) -> f64 {
        find(rows, platform, policy, router)
            .expect("cell")
            .report
            .ttft_p95
            .as_millis_f64()
    }

    fn makespan_ms(rows: &[PolicyRouterRow], platform: &str, policy: &str) -> f64 {
        find(rows, platform, policy, "shared")
            .expect("cell")
            .report
            .makespan
            .as_millis_f64()
    }

    const TRIO: [&str; 3] = ["amd_a100", "intel_h100", "gh200"];

    #[test]
    fn every_cell_completes_and_conserves() {
        for r in run() {
            assert_eq!(
                r.report.completed, REQUESTS,
                "{}/{}/{}",
                r.platform, r.policy, r.router
            );
            assert!(
                r.trace.conserves_requests(),
                "conservation violated on {}/{}/{}",
                r.platform,
                r.policy,
                r.router
            );
        }
    }

    #[test]
    fn matrix_is_deterministic() {
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must reproduce the full matrix");
    }

    #[test]
    fn continuous_batching_dominates_static_on_the_tail() {
        let rows = run();
        for p in TRIO {
            assert!(
                p95(&rows, p, "continuous", "shared") < p95(&rows, p, "static", "shared"),
                "{p}: continuous {} vs static {}",
                p95(&rows, p, "continuous", "shared"),
                p95(&rows, p, "static", "shared"),
            );
        }
    }

    #[test]
    fn chunking_cost_ranks_by_dispatch_overhead() {
        // Chunked prefill multiplies the iteration count ~4x
        // (512-token prompts / 128-token budget), and each extra
        // iteration pays the platform's fixed dispatch cost — so the
        // makespan slowdown vs continuous batching ranks exactly by
        // dispatch overhead: Xeon (fastest host CPU) < EPYC < Grace.
        let rows = run();
        let slowdown =
            |p: &str| makespan_ms(&rows, p, "chunked") / makespan_ms(&rows, p, "continuous");
        for p in TRIO {
            assert!(slowdown(p) > 2.0, "{p}: chunking must cost iterations");
        }
        assert!(
            slowdown("intel_h100") < slowdown("amd_a100")
                && slowdown("amd_a100") < slowdown("gh200"),
            "slowdowns {:.2} / {:.2} / {:.2} must rank by dispatch cost",
            slowdown("intel_h100"),
            slowdown("amd_a100"),
            slowdown("gh200"),
        );
    }

    #[test]
    fn late_binding_shared_queue_wins_the_tail() {
        // A shared-queue arrival picks its replica at the last moment
        // (when one goes idle); partitioned routers commit at arrival
        // time and strand requests behind busy replicas.
        let rows = run();
        for p in TRIO {
            for (label, _) in policies() {
                for router in ["rr", "jsq"] {
                    assert!(
                        p95(&rows, p, label, "shared") <= p95(&rows, p, label, router) * 1.001,
                        "{p}/{label}: shared {} vs {router} {}",
                        p95(&rows, p, label, "shared"),
                        p95(&rows, p, label, router),
                    );
                }
            }
        }
    }

    #[test]
    fn jsq_degenerates_to_round_robin_on_homogeneous_load() {
        // Identical requests keep the replica queues balanced, so JSQ's
        // lowest-index tie-break deals arrivals in rotation — the two
        // partitioned routers land within noise of each other.
        let rows = run();
        for p in TRIO {
            for (label, _) in policies() {
                let rr = p95(&rows, p, label, "rr");
                let jsq = p95(&rows, p, label, "jsq");
                assert!(
                    (jsq - rr).abs() <= rr * 0.05,
                    "{p}/{label}: jsq {jsq} vs rr {rr} diverged"
                );
            }
        }
    }
}
