//! One module per table/figure of the paper.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table I — torch.compile compile time & TTFT speedup |
//! | [`fig3`] | Fig. 3 — FA2 / max-autotune TTFT speedups, 7B decoders |
//! | [`table5`] | Table V — nullKernel launch overhead & duration |
//! | [`fig6`] | Fig. 6 — TKLQT vs batch size, encoder models, star markers |
//! | [`fig7`] | Fig. 7a–d — fusion-chain heatmaps and K_eager |
//! | [`fig8`] | Fig. 8 — idealized fusion speedup vs chain length |
//! | [`fig9`] | Fig. 9 — PS fusion vs torch.compile reduce-overhead, GPT-2 |
//! | [`fig10`] | Fig. 10a–c — encoder TTFT / GPU idle / CPU idle sweeps |
//! | [`fig11`] | Fig. 11a–c — decoder TTFT / GPU idle / CPU idle sweeps |
//!
//! Extensions beyond the paper's figures:
//!
//! | Module | Extension |
//! |---|---|
//! | [`fusion_applied`] | §VI future work: apply recommendations, measure vs Eq. 8 |
//! | [`decode`] | decode-phase (TPOT) characterization |
//! | [`ablations`] | CPU / bandwidth / launch-overhead / coupling ablations |
//! | [`future_workloads`] | §VI workload scope: DLRM and GCN characterization |
//! | [`energy`] | joules-per-request across coupling paradigms (Table IV envelopes) |
//! | [`serving`] | online serving: load vs p95 TTFT, static vs continuous batching |
//! | [`serving_observability`] | SLO attainment & goodput vs load from lifecycle-traced serving |
//! | [`serving_policies`] | batching policy × replica router matrix on the composable floor |
//! | [`seqlen`] | sequence-length sensitivity: the Fig. 6 transition along the seq axis |
//! | [`kv_capacity`] | paged-KV capacity: load × model × block budget, coupling-aware offload |
//! | [`fleet_disagg`] | heterogeneous fleets: prefill/decode disaggregation with coupling-priced KV handoff |
//! | [`capacity`] | capacity-frontier planner: cost-optimal fleet for a traffic envelope by replica-seconds |

pub mod ablations;
pub mod capacity;
pub mod decode;
pub mod energy;
pub mod fig10;
pub mod fig11;
pub mod fig3;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fleet_disagg;
pub mod fusion_applied;
pub mod future_workloads;
pub mod kv_capacity;
pub mod seqlen;
pub mod serving;
pub mod serving_observability;
pub mod serving_policies;
pub mod table1;
pub mod table5;
