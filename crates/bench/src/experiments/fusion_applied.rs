//! **Extension (paper §VI future work)** — validate the proximity-score
//! fusion recommendations by *applying* them and measuring.
//!
//! The paper only computes the idealized Eq. 8 speedup ("implementation
//! using kernel compilers or manual coding is planned for future work").
//! Here we apply the fusion to the kernel stream ([`apply_fusion`]) and
//! replay both streams through the execution engine, reporting the
//! measured speedup next to the idealized one, plus the GPU-utilization
//! shift the paper predicts (CPU-bound → balanced).

use skip_core::ProfileReport;
use skip_fusion::{apply_fusion, FusionAnalysis, KernelSequences};
use skip_hw::Platform;
use skip_llm::{zoo, ModelConfig, Phase, Workload};
use skip_runtime::Engine;
use skip_trace::TraceMeta;

use crate::{TextTable, SEQ_LEN};

/// Chain lengths validated.
pub const VALIDATED_LENGTHS: [usize; 4] = [16, 64, 128, 256];

/// One validation row.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationRow {
    /// Model name.
    pub model: String,
    /// Chain length.
    pub chain_len: usize,
    /// Launches before fusion.
    pub k_eager: usize,
    /// Launches after fusion.
    pub k_fused: usize,
    /// Idealized speedup (Eq. 8).
    pub ideal_speedup: f64,
    /// Measured replay speedup.
    pub measured_speedup: f64,
    /// GPU utilization before fusion.
    pub gpu_util_before: f64,
    /// GPU utilization after fusion.
    pub gpu_util_after: f64,
}

fn validate(model: &ModelConfig) -> Vec<ValidationRow> {
    let engine = Engine::new(Platform::intel_h100());
    let wl = Workload::new(model.clone(), Phase::Prefill, 1, SEQ_LEN);
    let kernels: Vec<_> = wl.graph().kernels_in_order().into_iter().cloned().collect();
    let meta = TraceMeta {
        model: model.name.clone(),
        platform: "intel_h100".into(),
        exec_mode: "replay".into(),
        phase: "prefill".into(),
        batch_size: 1,
        seq_len: SEQ_LEN,
    };

    let baseline_trace = engine.replay_stream(&kernels, meta.clone());
    let baseline = ProfileReport::analyze(&baseline_trace);
    let seqs = KernelSequences::from_trace(&baseline_trace);

    VALIDATED_LENGTHS
        .iter()
        .map(|&l| {
            let ideal = FusionAnalysis::of_sequences(&seqs, l);
            let fused = apply_fusion(&kernels, l);
            let fused_trace = engine.replay_stream(&fused.kernels, meta.clone());
            let after = ProfileReport::analyze(&fused_trace);
            ValidationRow {
                model: model.name.clone(),
                chain_len: l,
                k_eager: kernels.len(),
                k_fused: fused.launch_count(),
                ideal_speedup: ideal.ideal_speedup(),
                measured_speedup: baseline.inference_latency.as_nanos_f64()
                    / after.inference_latency.as_nanos_f64(),
                gpu_util_before: baseline.gpu_utilization(),
                gpu_util_after: after.gpu_utilization(),
            }
        })
        .collect()
}

/// Runs the validation for the two CPU-bound fusion subjects.
#[must_use]
pub fn run() -> Vec<ValidationRow> {
    let mut out = validate(&zoo::gpt2());
    out.extend(validate(&zoo::xlm_roberta_base()));
    out
}

/// Renders the validation table.
#[must_use]
pub fn render(rows: &[ValidationRow]) -> String {
    let mut t = TextTable::new(vec![
        "model", "L", "k_eager", "k_fused", "ideal", "measured", "gpu_util",
    ]);
    for r in rows {
        t.row(vec![
            r.model.clone(),
            r.chain_len.to_string(),
            r.k_eager.to_string(),
            r.k_fused.to_string(),
            format!("{:.2}x", r.ideal_speedup),
            format!("{:.2}x", r.measured_speedup),
            format!(
                "{:.0}% -> {:.0}%",
                r.gpu_util_before * 100.0,
                r.gpu_util_after * 100.0
            ),
        ]);
    }
    format!(
        "Applied-fusion validation (paper §VI future work), Intel+H100, BS=1 replay\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_speedups_track_idealized_direction() {
        for r in run() {
            assert!(
                r.measured_speedup >= 1.0,
                "{} L={}: fusion slowed replay down ({:.2})",
                r.model,
                r.chain_len,
                r.measured_speedup
            );
            if r.ideal_speedup > 1.2 {
                assert!(
                    r.measured_speedup > 1.1,
                    "{} L={}: ideal {:.2} but measured {:.2}",
                    r.model,
                    r.chain_len,
                    r.ideal_speedup,
                    r.measured_speedup
                );
            }
        }
    }

    #[test]
    fn fusion_improves_gpu_utilization() {
        // The paper's balanced-utilization argument: fewer launches shift
        // CPU-bound replays toward better GPU usage.
        for r in run().iter().filter(|r| r.chain_len == 256) {
            assert!(
                r.gpu_util_after > r.gpu_util_before,
                "{}: {:.2} !> {:.2}",
                r.model,
                r.gpu_util_after,
                r.gpu_util_before
            );
        }
    }

    #[test]
    fn launch_counts_match_the_analysis() {
        for r in run() {
            // Replay-side K_fused equals Eq. 7's prediction.
            let saved = r.k_eager - r.k_fused;
            assert!(saved > 0 || r.ideal_speedup == 1.0);
        }
    }
}
