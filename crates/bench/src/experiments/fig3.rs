//! **Fig. 3** — TTFT speedups of FlashAttention-2 and `torch.compile`
//! max-autotune over eager execution for popular 7B decoder models, batch
//! 1, sequence 1024, on the Intel+H100 platform.

use skip_hw::Platform;
use skip_llm::{zoo, Phase, Workload};
use skip_runtime::{CompileMode, ExecMode};

use crate::{ttft_ms, TextTable};

/// One Fig. 3 model group.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpeedups {
    /// Model name.
    pub model: String,
    /// Eager TTFT, ms (the 1.0× baseline).
    pub eager_ttft_ms: f64,
    /// FlashAttention-2 speedup over eager.
    pub flash_attention_2: f64,
    /// torch.compile max-autotune speedup over eager.
    pub max_autotune: f64,
}

/// Runs the Fig. 3 experiment.
#[must_use]
pub fn run() -> Vec<ModelSpeedups> {
    let platform = Platform::intel_h100();
    zoo::seven_b_models()
        .into_iter()
        .map(|m| {
            let wl = Workload::new(m.clone(), Phase::Prefill, 1, 1024);
            let eager = ttft_ms(&platform, &wl, ExecMode::Eager);
            let fa2 = ttft_ms(&platform, &wl, ExecMode::FlashAttention2);
            let ma = ttft_ms(
                &platform,
                &wl,
                ExecMode::TorchCompile(CompileMode::MaxAutotune),
            );
            ModelSpeedups {
                model: m.name,
                eager_ttft_ms: eager,
                flash_attention_2: eager / fa2,
                max_autotune: eager / ma,
            }
        })
        .collect()
}

/// Renders the paper-style series.
#[must_use]
pub fn render(rows: &[ModelSpeedups]) -> String {
    let mut t = TextTable::new(vec![
        "model",
        "eager_ttft_ms",
        "fa2_speedup",
        "max_autotune",
    ]);
    for r in rows {
        t.row(vec![
            r.model.clone(),
            format!("{:.2}", r.eager_ttft_ms),
            format!("{:.3}", r.flash_attention_2),
            format!("{:.3}", r.max_autotune),
        ]);
    }
    format!(
        "Fig. 3: TTFT speedups over eager, 7B decoders, BS=1, seq=1024, Intel+H100\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_model_speeds_up_under_both_fusions() {
        for r in run() {
            assert!(
                r.flash_attention_2 > 1.0,
                "{}: FA2 {} ≤ 1",
                r.model,
                r.flash_attention_2
            );
            assert!(
                r.max_autotune > 1.0,
                "{}: max-autotune {} ≤ 1",
                r.model,
                r.max_autotune
            );
            // Fig. 3 speedups are modest (fractions of 2×), not orders of
            // magnitude: these are GPU-bound workloads.
            assert!(r.flash_attention_2 < 2.5, "{}", r.model);
            assert!(r.max_autotune < 2.5, "{}", r.model);
        }
    }

    #[test]
    fn covers_the_four_paper_models() {
        let names: Vec<String> = run().into_iter().map(|r| r.model).collect();
        for expect in ["llama-2-7b", "mistral-7b", "qwen-7b", "gemma-7b"] {
            assert!(names.iter().any(|n| n == expect), "missing {expect}");
        }
    }
}
