//! **Extension** — heterogeneous fleets and prefill/decode
//! disaggregation: the paper's launch-cost asymmetry, priced at fleet
//! scale.
//!
//! §V's characterization splits LLM inference into a compute-bound
//! prefill and a launch-bound decode, and Table V puts the largest launch
//! overhead on the closely-coupled GH200 — the same platform whose fat
//! kernels win batched prefill. A homogeneous GH200 fleet therefore wastes
//! its prefill advantage paying Grace launch costs on every one of the
//! thousands of decode steps, while a homogeneous Xeon+H100 fleet wastes
//! cheap decode dispatch on slow batched prefills. This experiment asks
//! the capacity-planning question that follows: at equal replica count and
//! equal SLO, does a *disaggregated* fleet — prefill pool on one platform,
//! decode pool on another, KV handed off over the interconnect — beat the
//! best homogeneous fleet?
//!
//! Three findings, asserted by the tests:
//!
//! * **The winning fleet is heterogeneous and disaggregated** — prefill on
//!   gh200 (batched prefill is compute-bound; its kernels are fastest),
//!   decode on intel_h100 (decode is launch-bound; Xeon dispatch is
//!   cheapest), beating every homogeneous fleet of the same size on the
//!   e2e tail at equal SLO.
//! * **GH200 profits most from disaggregation** — its homogeneous fleet
//!   is the most lopsided (best-in-class prefill chained to worst-in-class
//!   decode), so carving its decode off to a cheap-dispatch pool buys the
//!   largest relative improvement of any platform.
//! * **The win is a function of the coupling** — the KV handoff is priced
//!   as `src.d2h + dst.h2d` from the coupling model, so re-running the
//!   winning pairing with both pools tightly coupled (TC: zero-copy,
//!   shared physical memory), closely coupled (CC: NVLink-C2C), and
//!   loosely coupled (LC: PCIe Gen4) moves the crossover: TC hands off for
//!   free, CC for ~1 ms of llama-2-7B KV, LC for ~17 ms — and the
//!   disaggregation win shrinks accordingly.

use skip_des::SimDuration;
use skip_hw::{Coupling, Interconnect, Platform, PlatformBuilder};
use skip_llm::zoo;
use skip_serve::{
    simulate_fleet_traced, ArrivalProcess, FleetBatchPolicy, FleetConfig, FleetReport,
    FleetRouterPolicy, FleetSpec, FleetTrace, SloTargets,
};

use crate::TextTable;

/// Offered load, requests/second — high enough that the prefill pool
/// sustains batch ≥ 4, the region where gh200's compute-bound prefill
/// advantage overtakes its higher per-iteration launch cost, while
/// staying inside the Xeon decode pool's capacity.
pub const LOAD: f64 = 50.0;

/// Requests per simulation.
pub const REQUESTS: u32 = 64;

/// Prompt length, tokens. At llama-2-7B's 0.5 MiB/token of KV this makes
/// each handoff move ~268 MiB — big enough that the interconnect choice
/// is visible in the crossover.
pub const PROMPT_LEN: u32 = 512;

/// Output tokens per request — sixteen launch-bound decode steps for
/// every one batched prefill, the asymmetry disaggregation exploits.
pub const NEW_TOKENS: u32 = 16;

/// Concurrent-request cap per replica.
pub const MAX_BATCH: u32 = 8;

/// Replicas in every fleet: homogeneous fleets run this many unified
/// replicas; disaggregated fleets split them [`PREFILL_REPLICAS`] /
/// [`DECODE_REPLICAS`] — capacity is held constant so the comparison is
/// placement, not size.
pub const TOTAL_REPLICAS: u32 = 4;

/// Prefill-pool size of every disaggregated fleet. One replica serving
/// the whole arrival stream is what keeps its batches at 4–8, where the
/// platforms' batched-prefill curves actually diverge.
pub const PREFILL_REPLICAS: u32 = 1;

/// Decode-pool size of every disaggregated fleet: decode is ~16 iteration
/// launches per request against prefill's one, so the pool split follows
/// the work split.
pub const DECODE_REPLICAS: u32 = 3;

/// TTFT target scored in every cell.
pub const SLO_TTFT_MS: u64 = 600;

/// End-to-end target scored in every cell.
pub const SLO_E2E_MS: u64 = 2500;

/// Arrival seed shared by every cell.
pub const SEED: u64 = 2077;

/// One fleet measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCell {
    /// Canonical fleet label (`FleetSpec::label`).
    pub label: String,
    /// Platform serving prefill (the whole fleet when homogeneous).
    pub prefill: String,
    /// Platform serving decode (the whole fleet when homogeneous).
    pub decode: String,
    /// `true` for split prefill/decode pools.
    pub disagg: bool,
    /// Scalar report, including handoff and SLO blocks.
    pub report: FleetReport,
    /// The lifecycle/counter recording behind it.
    pub trace: FleetTrace,
}

fn config(spec: FleetSpec) -> FleetConfig {
    FleetConfig {
        spec,
        model: zoo::llama2_7b(),
        max_batch: MAX_BATCH,
        requests: REQUESTS,
        arrivals: ArrivalProcess::Poisson { rate_per_s: LOAD },
        prompt_len: PROMPT_LEN,
        new_tokens: NEW_TOKENS,
        seed: SEED,
        slo: SloTargets {
            ttft: Some(SimDuration::from_millis(SLO_TTFT_MS)),
            e2e: Some(SimDuration::from_millis(SLO_E2E_MS)),
        },
        router: FleetRouterPolicy::CostModelJsq,
        policy: FleetBatchPolicy::Continuous,
        autoscale: None,
    }
}

fn run_cell(spec: FleetSpec, prefill: &str, decode: &str) -> FleetCell {
    let disagg = spec.is_disaggregated();
    let label = spec.label();
    let (report, trace) = simulate_fleet_traced(&config(spec));
    FleetCell {
        label,
        prefill: prefill.to_owned(),
        decode: decode.to_owned(),
        disagg,
        report,
        trace,
    }
}

/// Runs the fleet matrix: one homogeneous unified fleet per paper-trio
/// platform, plus every (prefill-platform × decode-platform)
/// disaggregated pairing, all at [`TOTAL_REPLICAS`] replicas. Each cell is
/// an independent simulation fanned out across the
/// [`harness`](crate::harness) workers; row order matches the serial
/// nested loops.
#[must_use]
pub fn run() -> Vec<FleetCell> {
    run_with(crate::harness::threads())
}

/// [`run`] with an explicit worker count — the determinism test pins
/// `run_with(1) == run_with(4)`.
#[must_use]
pub fn run_with(workers: usize) -> Vec<FleetCell> {
    let mut cells: Vec<(FleetSpec, String, String)> = Vec::new();
    for p in Platform::paper_trio() {
        cells.push((
            FleetSpec::homogeneous(p.clone(), TOTAL_REPLICAS),
            p.name.clone(),
            p.name.clone(),
        ));
    }
    for pf in Platform::paper_trio() {
        for dec in Platform::paper_trio() {
            cells.push((
                FleetSpec::disaggregated(
                    pf.clone(),
                    PREFILL_REPLICAS,
                    dec.clone(),
                    DECODE_REPLICAS,
                ),
                pf.name.clone(),
                dec.name.clone(),
            ));
        }
    }
    crate::harness::map_with(workers, cells, |(spec, pf, dec)| run_cell(spec, &pf, &dec))
}

/// One coupling variant of the winning pairing.
#[derive(Debug, Clone, PartialEq)]
pub struct CouplingCell {
    /// Coupling abbreviation (`"TC"` / `"CC"` / `"LC"`).
    pub coupling: String,
    /// The measurement.
    pub report: FleetReport,
}

/// Re-runs the winning pairing (prefill=gh200, decode=intel_h100) with
/// both pools' host links rebuilt under each coupling paradigm, so the
/// *only* first-order change is what the KV handoff costs: TC shares
/// physical memory (free), CC crosses NVLink-C2C, LC crosses PCIe Gen4.
/// (Rebuilding the interconnect also shifts the launch path by a few
/// hundred nanoseconds per iteration — noise against millisecond
/// iterations.)
#[must_use]
pub fn run_coupling() -> Vec<CouplingCell> {
    let variants: Vec<(&str, Option<Interconnect>, Coupling)> = vec![
        ("TC", None, Coupling::Tight),
        ("CC", Some(Interconnect::nvlink_c2c()), Coupling::Close),
        ("LC", Some(Interconnect::pcie_gen4()), Coupling::Loose),
    ];
    let rebuild = |base: Platform, suffix: &str, ic: &Option<Interconnect>, c: Coupling| {
        let name = format!("{}_{}", base.name, suffix.to_lowercase());
        let mut b = PlatformBuilder::from(base).name(name).coupling(c);
        if let Some(ic) = ic {
            b = b.interconnect(ic.clone());
        }
        b.build()
    };
    let cells: Vec<(String, FleetSpec)> = variants
        .into_iter()
        .map(|(tag, ic, c)| {
            let pf = rebuild(Platform::gh200(), tag, &ic, c);
            let dec = rebuild(Platform::intel_h100(), tag, &ic, c);
            (
                tag.to_owned(),
                FleetSpec::disaggregated(pf, PREFILL_REPLICAS, dec, DECODE_REPLICAS),
            )
        })
        .collect();
    crate::harness::map(cells, |(coupling, spec)| CouplingCell {
        coupling,
        report: simulate_fleet_traced(&config(spec)).0,
    })
}

/// The best cell by the experiment's ranking: highest SLO attainment,
/// then lowest p95 end-to-end latency.
#[must_use]
pub fn best(cells: &[FleetCell], disagg: bool) -> &FleetCell {
    cells
        .iter()
        .filter(|c| c.disagg == disagg)
        .max_by_key(|c| {
            (
                c.report.slo.slo_completions,
                std::cmp::Reverse(c.report.e2e_p95),
            )
        })
        .expect("matrix has cells of both kinds")
}

/// Renders the fleet matrix and the coupling sweep.
#[must_use]
pub fn render(cells: &[FleetCell], coupling: &[CouplingCell]) -> String {
    let mut out = format!(
        "Fleet disaggregation: llama-2-7b, {TOTAL_REPLICAS} replicas/fleet, \
         {PROMPT_LEN}-token prompts, {NEW_TOKENS} output tokens, {LOAD:.0} req/s offered\n\
         SLO: ttft<={SLO_TTFT_MS}ms & e2e<={SLO_E2E_MS}ms\n"
    );
    let mut t = TextTable::new(vec![
        "fleet",
        "ttft p95 ms",
        "e2e p95 ms",
        "slo %",
        "handoffs",
        "handoff ms",
    ]);
    for c in cells {
        t.row(vec![
            c.label.clone(),
            format!("{:.0}", c.report.ttft_p95.as_millis_f64()),
            format!("{:.0}", c.report.e2e_p95.as_millis_f64()),
            format!(
                "{:.0}",
                100.0 * f64::from(c.report.slo.slo_completions)
                    / f64::from(c.report.slo.completed.max(1))
            ),
            format!("{}", c.report.handoffs),
            format!("{:.1}", c.report.handoff_transfer_total.as_millis_f64()),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\ncoupling sweep of the winning pairing (prefill=gh200, decode=intel_h100):\n");
    let mut t = TextTable::new(vec![
        "coupling",
        "e2e p95 ms",
        "handoff ms total",
        "handoff wait p95 ms",
    ]);
    for c in coupling {
        t.row(vec![
            c.coupling.clone(),
            format!("{:.0}", c.report.e2e_p95.as_millis_f64()),
            format!("{:.1}", c.report.handoff_transfer_total.as_millis_f64()),
            format!("{:.2}", c.report.handoff_wait_p95.as_millis_f64()),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn homo<'a>(cells: &'a [FleetCell], p: &str) -> &'a FleetCell {
        cells
            .iter()
            .find(|c| !c.disagg && c.prefill == p)
            .expect("homogeneous cell")
    }

    #[test]
    fn every_fleet_completes_and_conserves() {
        for c in run() {
            assert_eq!(c.report.completed, REQUESTS, "{}", c.label);
            assert!(c.trace.conserves_requests(), "{} leaked requests", c.label);
            if c.disagg {
                assert_eq!(c.report.handoffs, u64::from(REQUESTS), "{}", c.label);
            } else {
                assert_eq!(c.report.handoffs, 0, "{}", c.label);
            }
        }
    }

    #[test]
    fn matrix_is_deterministic_at_any_worker_count() {
        assert_eq!(run_with(1), run_with(4));
    }

    #[test]
    fn heterogeneous_disaggregation_beats_the_best_homogeneous_fleet() {
        let cells = run();
        let best_homo = best(&cells, false);
        let best_disagg = best(&cells, true);
        assert_eq!(
            (best_disagg.prefill.as_str(), best_disagg.decode.as_str()),
            ("gh200", "intel_h100"),
            "compute-bound prefill belongs on gh200, launch-bound decode on Xeon dispatch"
        );
        assert!(
            best_disagg.report.slo.slo_completions >= best_homo.report.slo.slo_completions,
            "equal-SLO comparison: disagg {} vs homo {} in-SLO completions",
            best_disagg.report.slo.slo_completions,
            best_homo.report.slo.slo_completions
        );
        assert!(
            best_disagg.report.e2e_p95 < best_homo.report.e2e_p95,
            "disagg {} must beat best homogeneous {} ({}) on the e2e tail: {} vs {} ms",
            best_disagg.label,
            best_homo.label,
            best_homo.prefill,
            best_disagg.report.e2e_p95.as_millis_f64(),
            best_homo.report.e2e_p95.as_millis_f64()
        );
    }

    #[test]
    fn gh200_profits_most_from_disaggregation() {
        // gain(P) = homogeneous P's e2e tail over the best disaggregated
        // fleet that keeps P as the prefill pool — how much carving the
        // decode pool off is worth to a P-based fleet.
        let cells = run();
        let gain = |p: &str| {
            let h = homo(&cells, p).report.e2e_p95.as_millis_f64();
            let d = cells
                .iter()
                .filter(|c| c.disagg && c.prefill == p)
                .map(|c| c.report.e2e_p95.as_millis_f64())
                .fold(f64::INFINITY, f64::min);
            h / d
        };
        let (g_gh, g_amd, g_intel) = (gain("gh200"), gain("amd_a100"), gain("intel_h100"));
        assert!(
            g_gh > g_amd && g_gh > g_intel,
            "gh200's launch-bound decode makes it the biggest disaggregation winner: \
             gh200 {g_gh:.2}x vs amd {g_amd:.2}x / intel {g_intel:.2}x"
        );
    }

    #[test]
    fn coupling_moves_the_crossover() {
        let cells = run();
        let coupling = run_coupling();
        let get = |tag: &str| {
            &coupling
                .iter()
                .find(|c| c.coupling == tag)
                .expect("variant")
                .report
        };
        let (tc, cc, lc) = (get("TC"), get("CC"), get("LC"));
        // Same requests, same KV — only the coupling changes the price.
        assert_eq!(tc.handoff_bytes, lc.handoff_bytes);
        assert_eq!(
            tc.handoff_transfer_total,
            SimDuration::ZERO,
            "TC is zero-copy"
        );
        assert!(
            cc.handoff_transfer_total > SimDuration::ZERO
                && lc.handoff_transfer_total > cc.handoff_transfer_total * 5,
            "LC (PCIe Gen4) must dwarf CC (NVLink-C2C): {} vs {} ms",
            lc.handoff_transfer_total.as_millis_f64(),
            cc.handoff_transfer_total.as_millis_f64()
        );
        assert!(
            lc.e2e_p95 > tc.e2e_p95,
            "the interconnect bill lands on the tail: LC {} vs TC {} ms",
            lc.e2e_p95.as_millis_f64(),
            tc.e2e_p95.as_millis_f64()
        );
        // The disaggregation win over the best homogeneous fleet shrinks
        // as the coupling loosens — the crossover is a coupling property.
        let best_homo = best(&cells, false).report.e2e_p95.as_millis_f64();
        let win = |r: &FleetReport| best_homo - r.e2e_p95.as_millis_f64();
        assert!(
            win(lc) < win(tc),
            "loose coupling must erode the win: LC {:.1} ms vs TC {:.1} ms",
            win(lc),
            win(tc)
        );
    }
}
