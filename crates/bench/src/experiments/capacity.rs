//! **Extension** — the capacity-frontier sweep: which fleet, at what
//! replica-seconds bill, for a reference traffic envelope?
//!
//! This is the planner from `skip_serve::fleet::plan` run at population
//! scale: every fleet composition the planner enumerates (homogeneous
//! paper-trio fleets, every prefill×decode disaggregation split, each
//! fixed and autoscaled) is one independent fleet simulation, fanned out
//! through the deterministic [`harness`](crate::harness) — so the sweep
//! is byte-identical at any worker count, and the frontier it reports is
//! a reproducible artifact, not a race.
//!
//! The reference envelope reuses the [`fleet_disagg`] workload (llama-2-7B,
//! 512-token prompts, 16 output tokens, 50 req/s) so the planner's answer
//! is directly comparable with that experiment's fixed-size matrix: the
//! planner searches the composition space those 12 cells sample, and its
//! cost axis (replica-seconds) prices what the equal-size comparison
//! holds constant.

use skip_des::SimDuration;
use skip_llm::zoo;
use skip_serve::fleet::plan::{self, PlannerConfig, TrafficEnvelope};
use skip_serve::{PlanSweep, SloTargets};

use crate::experiments::fleet_disagg;
use crate::TextTable;

/// Requests per candidate evaluation — the envelope's scoring sample.
pub const REQUESTS: u32 = 64;

/// Attainment floor a feasible fleet must clear on both SLO axes.
pub const ATTAINMENT_FLOOR: f64 = 0.9;

/// The reference planner: the [`fleet_disagg`] traffic envelope over the
/// paper-trio platform menu, up to 4 provisioned replicas per candidate.
#[must_use]
pub fn planner() -> PlannerConfig {
    planner_with(4)
}

/// [`planner`] with an explicit replica ceiling — the same envelope over
/// a larger candidate space. The perf suite's `plan_sweep` entry and the
/// EXPERIMENTS.md 12-replica frontier both use `planner_with(12)`; the
/// experiment's own tests stay at 4 so the exhaustive differential
/// reference remains cheap.
#[must_use]
pub fn planner_with(max_replicas: u32) -> PlannerConfig {
    let mut cfg = PlannerConfig::new(TrafficEnvelope {
        model: zoo::llama2_7b(),
        qps: fleet_disagg::LOAD,
        peak_qps: None,
        requests: REQUESTS,
        prompt_len: fleet_disagg::PROMPT_LEN,
        new_tokens: fleet_disagg::NEW_TOKENS,
        seed: fleet_disagg::SEED,
        slo: SloTargets {
            ttft: Some(SimDuration::from_millis(fleet_disagg::SLO_TTFT_MS)),
            e2e: Some(SimDuration::from_millis(fleet_disagg::SLO_E2E_MS)),
        },
    });
    cfg.max_batch = fleet_disagg::MAX_BATCH;
    cfg.attainment_floor = ATTAINMENT_FLOOR;
    cfg.max_replicas = max_replicas;
    cfg
}

/// Runs the capacity sweep on the harness' resolved worker count.
#[must_use]
pub fn run() -> PlanSweep {
    run_with(crate::harness::threads())
}

/// [`run`] with an explicit worker count — the determinism test pins
/// `run_with(1) == run_with(2) == run_with(4)`. The pruned generational
/// sweep owns wave order and bound accumulation; each wave's candidates
/// are fanned through [`harness::map_with`](crate::harness::map_with) in
/// enumeration order, and bounds only ever change at wave boundaries, so
/// the sweep is byte-identical at any worker count.
#[must_use]
pub fn run_with(workers: usize) -> PlanSweep {
    run_at(4, workers)
}

/// [`run_with`] at an explicit replica ceiling — regenerates the
/// EXPERIMENTS.md 12-replica frontier via `capacity --max-replicas 12`.
#[must_use]
pub fn run_at(max_replicas: u32, workers: usize) -> PlanSweep {
    let cfg = planner_with(max_replicas);
    plan::sweep_with(&cfg, |wave, bounds| {
        crate::harness::map_with(workers, wave, |c| plan::evaluate_bounded(&cfg, &c, bounds))
    })
}

/// Renders the frontier table plus the sweep's headline: the cheapest
/// feasible fleet, the candidate population behind it, and how many
/// candidates the pruned sweep resolved without a full simulation.
#[must_use]
pub fn render(sweep: &PlanSweep) -> String {
    let cfg = planner();
    let outcomes = &sweep.outcomes;
    let feasible = outcomes.iter().filter(|o| o.feasible).count();
    let s = sweep.stats;
    let mut out = format!(
        "Capacity frontier: llama-2-7b, {:.0} req/s offered, {REQUESTS}-request envelope, \
         SLO ttft<={}ms & e2e<={}ms at >={:.0}% attainment\n\
         {} candidates ({feasible} feasible): platform mixes x disagg splits x autoscale\n\
         pruned sweep: {} simulated, {} aborted early, {} infeasible by bound, {} dominated\n",
        cfg.envelope.qps,
        fleet_disagg::SLO_TTFT_MS,
        fleet_disagg::SLO_E2E_MS,
        ATTAINMENT_FLOOR * 100.0,
        outcomes.len(),
        s.simulated,
        s.aborted,
        s.pruned_infeasible,
        s.pruned_dominated,
    );
    let mut t = TextTable::new(vec![
        "fleet",
        "replica-s",
        "e2e p95 ms",
        "ttft p95 ms",
        "slo %",
        "peak",
    ]);
    for o in plan::frontier(outcomes) {
        t.row(vec![
            o.label.clone(),
            format!("{:.2}", o.cost()),
            format!("{:.0}", o.report.e2e_p95.as_millis_f64()),
            format!("{:.0}", o.report.ttft_p95.as_millis_f64()),
            format!(
                "{:.0}",
                100.0 * f64::from(o.report.slo.slo_completions)
                    / f64::from(o.report.slo.completed.max(1))
            ),
            format!("{}", o.report.peak_replicas),
        ]);
    }
    out.push_str(&t.render());
    match plan::cheapest(outcomes) {
        Some(best) => out.push_str(&format!(
            "\ncost-optimal fleet: {} at {:.2} replica-seconds (e2e p95 {:.0} ms)\n",
            best.label,
            best.cost(),
            best.report.e2e_p95.as_millis_f64()
        )),
        None => out.push_str("\nno feasible fleet within the search space\n"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_byte_identical_at_any_worker_count() {
        let serial = run_with(1);
        assert_eq!(serial, run_with(2));
        assert_eq!(serial, run_with(4));
    }

    #[test]
    fn pruned_sweep_matches_the_exhaustive_reference() {
        // The PR-level acceptance check: over the full 4-replica
        // candidate space, the pruned generational sweep's frontier and
        // cheapest pick are byte-identical to the exhaustive serial plan.
        let cfg = planner();
        let exhaustive = plan::plan(&cfg);
        let sweep = run_with(1);
        assert_eq!(sweep.outcomes.len(), exhaustive.len());
        assert_eq!(plan::frontier(&sweep.outcomes), plan::frontier(&exhaustive));
        assert_eq!(plan::cheapest(&sweep.outcomes), plan::cheapest(&exhaustive));
        assert!(
            sweep.stats.resolved_without_full_simulation() > 0,
            "pruning must actually fire on the reference envelope: {:?}",
            sweep.stats
        );
    }

    #[test]
    fn sweep_covers_the_whole_candidate_space_and_finds_a_plan() {
        let sweep = run();
        let cfg = planner();
        assert_eq!(sweep.outcomes.len(), plan::enumerate(&cfg).len());
        assert_eq!(sweep.stats.candidates as usize, sweep.outcomes.len());
        for o in &sweep.outcomes {
            match o.resolution {
                // Fully-simulated outcomes cover the whole envelope.
                plan::Resolution::Simulated => {
                    assert_eq!(o.report.completed, REQUESTS, "{}", o.label);
                    assert!(o.cost() > 0.0, "{} billed nothing", o.label);
                }
                // Shortcuts carry an honest truncated report and are
                // never feasible.
                _ => {
                    assert!(o.report.aborted, "{}", o.label);
                    assert!(!o.feasible, "{}", o.label);
                }
            }
        }
        let best = plan::cheapest(&sweep.outcomes).expect("the envelope is serveable");
        assert!(best.feasible);
        let front = plan::frontier(&sweep.outcomes);
        assert!(front.iter().all(|o| o.feasible));
        assert_eq!(front[0].label, best.label);
    }

    #[test]
    fn frontier_prices_undercut_the_fixed_size_matrix() {
        // The fleet_disagg matrix holds every fleet at 4 replicas; the
        // planner also tries smaller fleets, so its cheapest feasible
        // candidate can never bill more than the best fixed 4-replica
        // fleet it also enumerates.
        let sweep = run();
        let best = plan::cheapest(&sweep.outcomes).expect("feasible");
        let four_replica_floor = sweep
            .outcomes
            .iter()
            .filter(|o| o.feasible && o.base_replicas == 4)
            .map(|o| o.cost())
            .fold(f64::INFINITY, f64::min);
        assert!(
            best.cost() <= four_replica_floor,
            "cheapest {} bills {:.2} vs best 4-replica {:.2}",
            best.label,
            best.cost(),
            four_replica_floor
        );
    }

    #[test]
    fn render_reports_the_headline() {
        let sweep = run();
        let s = render(&sweep);
        assert!(s.contains("Capacity frontier"));
        assert!(s.contains("pruned sweep:"));
        assert!(s.contains("cost-optimal fleet"));
    }
}
