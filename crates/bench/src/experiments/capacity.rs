//! **Extension** — the capacity-frontier sweep: which fleet, at what
//! replica-seconds bill, for a reference traffic envelope?
//!
//! This is the planner from `skip_serve::fleet::plan` run at population
//! scale: every fleet composition the planner enumerates (homogeneous
//! paper-trio fleets, every prefill×decode disaggregation split, each
//! fixed and autoscaled) is one independent fleet simulation, fanned out
//! through the deterministic [`harness`](crate::harness) — so the sweep
//! is byte-identical at any worker count, and the frontier it reports is
//! a reproducible artifact, not a race.
//!
//! The reference envelope reuses the [`fleet_disagg`] workload (llama-2-7B,
//! 512-token prompts, 16 output tokens, 50 req/s) so the planner's answer
//! is directly comparable with that experiment's fixed-size matrix: the
//! planner searches the composition space those 12 cells sample, and its
//! cost axis (replica-seconds) prices what the equal-size comparison
//! holds constant.

use skip_des::SimDuration;
use skip_llm::zoo;
use skip_serve::fleet::plan::{self, PlannerConfig, TrafficEnvelope};
use skip_serve::{PlanOutcome, SloTargets};

use crate::experiments::fleet_disagg;
use crate::TextTable;

/// Requests per candidate evaluation — the envelope's scoring sample.
pub const REQUESTS: u32 = 64;

/// Attainment floor a feasible fleet must clear on both SLO axes.
pub const ATTAINMENT_FLOOR: f64 = 0.9;

/// The reference planner: the [`fleet_disagg`] traffic envelope over the
/// paper-trio platform menu, up to 4 provisioned replicas per candidate.
#[must_use]
pub fn planner() -> PlannerConfig {
    let mut cfg = PlannerConfig::new(TrafficEnvelope {
        model: zoo::llama2_7b(),
        qps: fleet_disagg::LOAD,
        peak_qps: None,
        requests: REQUESTS,
        prompt_len: fleet_disagg::PROMPT_LEN,
        new_tokens: fleet_disagg::NEW_TOKENS,
        seed: fleet_disagg::SEED,
        slo: SloTargets {
            ttft: Some(SimDuration::from_millis(fleet_disagg::SLO_TTFT_MS)),
            e2e: Some(SimDuration::from_millis(fleet_disagg::SLO_E2E_MS)),
        },
    });
    cfg.max_batch = fleet_disagg::MAX_BATCH;
    cfg.attainment_floor = ATTAINMENT_FLOOR;
    cfg
}

/// Runs the capacity sweep on the harness' resolved worker count.
#[must_use]
pub fn run() -> Vec<PlanOutcome> {
    run_with(crate::harness::threads())
}

/// [`run`] with an explicit worker count — the determinism test pins
/// `run_with(1) == run_with(2) == run_with(4)`. Candidates are evaluated
/// through [`harness::map_with`](crate::harness::map_with) in enumeration
/// order, which is exactly the serial `plan::plan` evaluation.
#[must_use]
pub fn run_with(workers: usize) -> Vec<PlanOutcome> {
    let cfg = planner();
    let candidates = plan::enumerate(&cfg);
    crate::harness::map_with(workers, candidates, |c| plan::evaluate(&cfg, &c))
}

/// Renders the frontier table plus the sweep's headline: the cheapest
/// feasible fleet and the candidate population behind it.
#[must_use]
pub fn render(outcomes: &[PlanOutcome]) -> String {
    let cfg = planner();
    let feasible = outcomes.iter().filter(|o| o.feasible).count();
    let mut out = format!(
        "Capacity frontier: llama-2-7b, {:.0} req/s offered, {REQUESTS}-request envelope, \
         SLO ttft<={}ms & e2e<={}ms at >={:.0}% attainment\n\
         {} candidates ({feasible} feasible): platform mixes x disagg splits x autoscale\n",
        cfg.envelope.qps,
        fleet_disagg::SLO_TTFT_MS,
        fleet_disagg::SLO_E2E_MS,
        ATTAINMENT_FLOOR * 100.0,
        outcomes.len(),
    );
    let mut t = TextTable::new(vec![
        "fleet",
        "replica-s",
        "e2e p95 ms",
        "ttft p95 ms",
        "slo %",
        "peak",
    ]);
    for o in plan::frontier(outcomes) {
        t.row(vec![
            o.label.clone(),
            format!("{:.2}", o.cost()),
            format!("{:.0}", o.report.e2e_p95.as_millis_f64()),
            format!("{:.0}", o.report.ttft_p95.as_millis_f64()),
            format!(
                "{:.0}",
                100.0 * f64::from(o.report.slo.slo_completions)
                    / f64::from(o.report.slo.completed.max(1))
            ),
            format!("{}", o.report.peak_replicas),
        ]);
    }
    out.push_str(&t.render());
    match plan::cheapest(outcomes) {
        Some(best) => out.push_str(&format!(
            "\ncost-optimal fleet: {} at {:.2} replica-seconds (e2e p95 {:.0} ms)\n",
            best.label,
            best.cost(),
            best.report.e2e_p95.as_millis_f64()
        )),
        None => out.push_str("\nno feasible fleet within the search space\n"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_byte_identical_at_any_worker_count() {
        let serial = run_with(1);
        assert_eq!(serial, run_with(2));
        assert_eq!(serial, run_with(4));
    }

    #[test]
    fn sweep_covers_the_whole_candidate_space_and_finds_a_plan() {
        let outcomes = run();
        let cfg = planner();
        assert_eq!(outcomes.len(), plan::enumerate(&cfg).len());
        // Every outcome is a completed simulation of the full envelope.
        for o in &outcomes {
            assert_eq!(o.report.completed, REQUESTS, "{}", o.label);
            assert!(o.cost() > 0.0, "{} billed nothing", o.label);
        }
        let best = plan::cheapest(&outcomes).expect("the envelope is serveable");
        assert!(best.feasible);
        let front = plan::frontier(&outcomes);
        assert!(front.iter().all(|o| o.feasible));
        assert_eq!(front[0].label, best.label);
    }

    #[test]
    fn frontier_prices_undercut_the_fixed_size_matrix() {
        // The fleet_disagg matrix holds every fleet at 4 replicas; the
        // planner also tries smaller fleets, so its cheapest feasible
        // candidate can never bill more than the best fixed 4-replica
        // fleet it also enumerates.
        let outcomes = run();
        let best = plan::cheapest(&outcomes).expect("feasible");
        let four_replica_floor = outcomes
            .iter()
            .filter(|o| o.feasible && o.base_replicas == 4)
            .map(|o| o.cost())
            .fold(f64::INFINITY, f64::min);
        assert!(
            best.cost() <= four_replica_floor,
            "cheapest {} bills {:.2} vs best 4-replica {:.2}",
            best.label,
            best.cost(),
            four_replica_floor
        );
    }

    #[test]
    fn render_reports_the_headline() {
        let outcomes = run();
        let s = render(&outcomes);
        assert!(s.contains("Capacity frontier"));
        assert!(s.contains("cost-optimal fleet"));
    }
}
