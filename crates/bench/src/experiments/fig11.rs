//! **Fig. 11a–c** — prefill inference latency (TTFT), GPU idle time and
//! CPU idle time for the decoder models (GPT2, Llama-3.2-1B) across batch
//! sizes on the three platforms.
//!
//! Paper headline (§V-D): Llama-3.2-1B reaches 1.9×/2.7× GH200 speedup
//! over Intel/AMD at batch 16; GPT2's crossover comes earlier than the
//! encoders'.

use skip_llm::zoo;

use super::fig10::{render_sweep, sweep_model, SweepRow};

/// Runs the Fig. 11 experiment (both decoder models).
#[must_use]
pub fn run() -> Vec<SweepRow> {
    let mut out = sweep_model(&zoo::gpt2());
    out.extend(sweep_model(&zoo::llama32_1b()));
    out
}

/// Renders the paper-style panels.
#[must_use]
pub fn render(rows: &[SweepRow]) -> String {
    render_sweep(
        "Fig. 11: decoder prefill latency / GPU idle / CPU idle (seq=512)",
        rows,
    )
}

#[cfg(test)]
mod tests {
    use super::super::fig10::find;
    use super::*;

    #[test]
    fn llama_batch16_speedups_match_paper() {
        // Paper: 1.9x / 2.7x over Intel+H100 / AMD+A100 at batch 16. Our
        // simulator lands slightly lower on the Intel side (documented in
        // EXPERIMENTS.md); we require the band that preserves the claim
        // "GH200 wins clearly, and by more over the A100 system".
        let rows = sweep_model(&zoo::llama32_1b());
        let gh = find(&rows, "llama-3.2-1b", "gh200", 16).ttft_ms;
        let intel = find(&rows, "llama-3.2-1b", "intel_h100", 16).ttft_ms;
        let amd = find(&rows, "llama-3.2-1b", "amd_a100", 16).ttft_ms;
        let vs_intel = intel / gh;
        let vs_amd = amd / gh;
        assert!((1.4..2.2).contains(&vs_intel), "vs Intel: {vs_intel:.2}");
        assert!((2.2..3.0).contains(&vs_amd), "vs AMD: {vs_amd:.2}");
        assert!(vs_amd > vs_intel);
    }

    #[test]
    fn decoder_crossovers_precede_encoder_crossovers() {
        // GPT2's LM-head GEMM adds GPU work, pulling its crossover earlier
        // than the encoders' (paper: CP=4 for GPT2 vs CP=16 encoders; our
        // simulator: ≤16 vs >16).
        let gpt2 = sweep_model(&zoo::gpt2());
        let bert = sweep_model(&zoo::bert_base_uncased());
        let cp = |rows: &[SweepRow], model: &str| {
            crate::BATCH_SWEEP
                .iter()
                .find(|&&b| {
                    find(rows, model, "gh200", b).ttft_ms
                        < find(rows, model, "intel_h100", b).ttft_ms
                })
                .copied()
        };
        let cp_gpt2 = cp(&gpt2, "gpt2").expect("gpt2 crossover exists");
        let cp_bert = cp(&bert, "bert-base-uncased").expect("bert crossover exists");
        assert!(cp_gpt2 <= cp_bert, "gpt2 CP {cp_gpt2} vs bert CP {cp_bert}");
    }

    #[test]
    fn llama_is_gpu_bound_by_batch_16_everywhere() {
        let rows = sweep_model(&zoo::llama32_1b());
        for p in ["amd_a100", "intel_h100", "gh200"] {
            let r = find(&rows, "llama-3.2-1b", p, 16);
            assert!(
                r.cpu_idle_ms > r.gpu_idle_ms,
                "{p}: llama not GPU-bound at 16"
            );
        }
    }

    #[test]
    fn ttft_scales_linearly_deep_in_gpu_bound_region() {
        let rows = sweep_model(&zoo::llama32_1b());
        for p in ["amd_a100", "intel_h100", "gh200"] {
            let a = find(&rows, "llama-3.2-1b", p, 64).ttft_ms;
            let b = find(&rows, "llama-3.2-1b", p, 128).ttft_ms;
            let ratio = b / a;
            assert!((1.8..2.2).contains(&ratio), "{p}: {ratio:.2}");
        }
    }
}
