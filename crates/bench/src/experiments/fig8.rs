//! **Fig. 8** — the potential ideal speedup from pure kernel-launch
//! savings via proximity-score fusion, for GPT2 and XLM-Roberta-Base
//! prefill on Intel+H100 across chain lengths.
//!
//! Paper headline: up to ~2.7× for GPT2 and ~6.8× for XLM-Roberta-Base at
//! chain length 256.

use skip_fusion::{FusionAnalysis, KernelSequences};
use skip_hw::Platform;
use skip_llm::{zoo, ModelConfig, Phase, Workload};
use skip_runtime::{Engine, ExecMode};

use crate::{TextTable, CHAIN_LENGTHS, SEQ_LEN};

/// One model's speedup-vs-chain-length series.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupSeries {
    /// Model name.
    pub model: String,
    /// `K_eager` of the analyzed trace.
    pub k_eager: usize,
    /// `(chain length, C_fused, K_fused, ideal speedup)`.
    pub points: Vec<(usize, usize, usize, f64)>,
}

fn series(model: &ModelConfig) -> SpeedupSeries {
    let engine = Engine::new(Platform::intel_h100());
    let wl = Workload::new(model.clone(), Phase::Prefill, 1, SEQ_LEN);
    let trace = engine.run(&wl, ExecMode::Eager);
    let seqs = KernelSequences::from_trace(&trace);
    let points = CHAIN_LENGTHS
        .iter()
        .map(|&l| {
            let a = FusionAnalysis::of_sequences(&seqs, l);
            (l, a.fused_chains, a.k_fused, a.ideal_speedup())
        })
        .collect();
    SpeedupSeries {
        model: model.name.clone(),
        k_eager: seqs.total_kernels(),
        points,
    }
}

/// Runs the Fig. 8 experiment.
#[must_use]
pub fn run() -> Vec<SpeedupSeries> {
    vec![series(&zoo::gpt2()), series(&zoo::xlm_roberta_base())]
}

/// Renders the paper-style series.
#[must_use]
pub fn render(rows: &[SpeedupSeries]) -> String {
    let mut out =
        String::from("Fig. 8: ideal fusion speedup vs chain length (Intel+H100, prefill, BS=1)\n");
    for s in rows {
        out.push_str(&format!("\n{} (K_eager = {})\n", s.model, s.k_eager));
        let mut t = TextTable::new(vec!["chain_len", "c_fused", "k_fused", "ideal_speedup"]);
        for &(l, c, k, sp) in &s.points {
            t.row(vec![
                l.to_string(),
                c.to_string(),
                k.to_string(),
                format!("{sp:.2}"),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peak(s: &SpeedupSeries) -> f64 {
        s.points.iter().map(|p| p.3).fold(0.0, f64::max)
    }

    #[test]
    fn peak_speedups_match_paper() {
        let rows = run();
        let gpt2 = rows.iter().find(|s| s.model == "gpt2").unwrap();
        let xlmr = rows.iter().find(|s| s.model == "xlm-roberta-base").unwrap();
        // Paper: up to 2.7x GPT2, up to 6.8x XLM-R.
        assert!((peak(gpt2) - 2.7).abs() < 0.15, "GPT2 peak {}", peak(gpt2));
        assert!((peak(xlmr) - 6.8).abs() < 0.25, "XLM-R peak {}", peak(xlmr));
        // And the peak is at the longest chain length.
        assert_eq!(gpt2.points.last().unwrap().3, peak(gpt2));
        assert_eq!(xlmr.points.last().unwrap().3, peak(xlmr));
    }

    #[test]
    fn short_chains_are_modest() {
        // Paper: 1.05x–1.09x for short chains; we accept up to ~1.5x.
        for s in run() {
            let l2 = s.points.iter().find(|p| p.0 == 2).unwrap().3;
            assert!((1.0..1.6).contains(&l2), "{}: L=2 gives {l2}", s.model);
        }
    }

    #[test]
    fn speedup_grows_from_mid_to_long_chains() {
        for s in run() {
            let at = |l: usize| s.points.iter().find(|p| p.0 == l).unwrap().3;
            assert!(at(16) <= at(64));
            assert!(at(64) <= at(128));
            assert!(at(128) <= at(256));
        }
    }
}
