//! **Fig. 10a–c** — prefill inference latency (TTFT), GPU idle time and
//! CPU idle time for the encoder models across batch sizes on the three
//! platforms.
//!
//! Paper headlines (§V-D): crossover around batch 16 beyond which the
//! GH200 wins (1.6×/2.4× over Intel/AMD at batch 64 for BERT); below it
//! the GH200 is the *slowest* platform (2.8×/1.9× at batch 1) because the
//! Grace CPU bounds the launch-dominated region.

use skip_hw::Platform;
use skip_llm::{ModelConfig, Phase, Workload};
use skip_runtime::ExecMode;

use crate::{profile, AsciiChart, TextTable, BATCH_SWEEP, SEQ_LEN};

/// One (model, platform, batch) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Model name.
    pub model: String,
    /// Platform name.
    pub platform: String,
    /// Batch size.
    pub batch: u32,
    /// TTFT, ms (Fig. 10a / 11a).
    pub ttft_ms: f64,
    /// GPU idle time, ms (Fig. 10b / 11b).
    pub gpu_idle_ms: f64,
    /// CPU idle time, ms (Fig. 10c / 11c).
    pub cpu_idle_ms: f64,
    /// Timeline events behind the cell (kernels + launches + CPU ops) —
    /// the work unit the perf runner normalizes sweep wall time by.
    pub events: u64,
}

/// Sweeps one model across the paper's batch sizes and platforms. Each
/// (platform, batch) cell is an independent engine run, fanned out across
/// the [`harness`](crate::harness) workers; row order matches the serial
/// nested loops.
#[must_use]
pub fn sweep_model(model: &ModelConfig) -> Vec<SweepRow> {
    sweep_model_with(crate::harness::threads(), model)
}

/// [`sweep_model`] with an explicit worker count, bypassing the global
/// harness resolution — the perf runner uses this to pin its serial and
/// parallel entries to known counts instead of whatever the host resolves.
#[must_use]
pub fn sweep_model_with(workers: usize, model: &ModelConfig) -> Vec<SweepRow> {
    let mut cells = Vec::new();
    for platform in Platform::paper_trio() {
        for &bs in &BATCH_SWEEP {
            cells.push((platform.clone(), bs));
        }
    }
    crate::harness::map_with(workers, cells, |(platform, bs)| {
        let wl = Workload::new(model.clone(), Phase::Prefill, bs, SEQ_LEN);
        let r = profile(&platform, &wl, ExecMode::Eager);
        SweepRow {
            model: model.name.clone(),
            platform: platform.name.clone(),
            batch: bs,
            ttft_ms: r.inference_latency.as_millis_f64(),
            gpu_idle_ms: r.gpu_idle.as_millis_f64(),
            cpu_idle_ms: r.cpu_idle.as_millis_f64(),
            events: (r.kernel_count + r.launch_count + r.cpu_op_count) as u64,
        }
    })
}

/// Runs the Fig. 10 experiment (both encoder models).
#[must_use]
pub fn run() -> Vec<SweepRow> {
    run_with(crate::harness::threads())
}

/// [`run`] with an explicit worker count (see [`sweep_model_with`]).
#[must_use]
pub fn run_with(workers: usize) -> Vec<SweepRow> {
    let mut out = sweep_model_with(workers, &skip_llm::zoo::bert_base_uncased());
    out.extend(sweep_model_with(
        workers,
        &skip_llm::zoo::xlm_roberta_base(),
    ));
    out
}

/// Renders the three panels for a set of sweep rows.
#[must_use]
pub fn render_sweep(title: &str, rows: &[SweepRow]) -> String {
    let mut out = format!("{title}\n");
    let mut models: Vec<&str> = rows.iter().map(|r| r.model.as_str()).collect();
    models.dedup();
    let platforms = ["amd_a100", "intel_h100", "gh200"];
    for model in models {
        out.push_str(&format!(
            "\n{model} — TTFT ms vs batch (a=amd_a100, i=intel_h100, g=gh200, log y)\n"
        ));
        let mut chart = AsciiChart::new(56, 12, true);
        for (marker, p) in [('a', "amd_a100"), ('i', "intel_h100"), ('g', "gh200")] {
            let pts: Vec<(f64, f64)> = BATCH_SWEEP
                .iter()
                .map(|&bs| {
                    let r = rows
                        .iter()
                        .find(|r| r.model == model && r.platform == p && r.batch == bs)
                        .expect("sweep row exists");
                    (f64::from(bs), r.ttft_ms)
                })
                .collect();
            chart.series(marker, &pts);
        }
        out.push_str(&chart.render());
        for (panel, pick) in [
            ("(a) TTFT ms", 0usize),
            ("(b) GPU idle ms", 1),
            ("(c) CPU idle ms", 2),
        ] {
            out.push_str(&format!("\n{model} — {panel}\n"));
            let mut header: Vec<String> = vec!["batch".into()];
            header.extend(platforms.iter().map(|p| (*p).to_owned()));
            let mut t = TextTable::new(header);
            for &bs in &BATCH_SWEEP {
                let mut cells = vec![bs.to_string()];
                for p in platforms {
                    let r = rows
                        .iter()
                        .find(|r| r.model == model && r.platform == p && r.batch == bs)
                        .expect("sweep row exists");
                    let v = match pick {
                        0 => r.ttft_ms,
                        1 => r.gpu_idle_ms,
                        _ => r.cpu_idle_ms,
                    };
                    cells.push(format!("{v:.2}"));
                }
                t.row(cells);
            }
            out.push_str(&t.render());
        }
    }
    out
}

/// Renders the paper-style panels.
#[must_use]
pub fn render(rows: &[SweepRow]) -> String {
    render_sweep(
        "Fig. 10: encoder prefill latency / GPU idle / CPU idle (seq=512)",
        rows,
    )
}

/// Finds one row.
#[must_use]
pub fn find<'a>(rows: &'a [SweepRow], model: &str, platform: &str, batch: u32) -> &'a SweepRow {
    rows.iter()
        .find(|r| r.model == model && r.platform == platform && r.batch == batch)
        .expect("requested sweep row missing")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_batch_ratios_match_paper() {
        // §V-D: BERT batch-1 — GH200 ≈2.8x Intel and ≈1.9x AMD.
        let rows = sweep_model(&skip_llm::zoo::bert_base_uncased());
        let gh = find(&rows, "bert-base-uncased", "gh200", 1).ttft_ms;
        let intel = find(&rows, "bert-base-uncased", "intel_h100", 1).ttft_ms;
        let amd = find(&rows, "bert-base-uncased", "amd_a100", 1).ttft_ms;
        let vs_intel = gh / intel;
        let vs_amd = gh / amd;
        assert!((2.4..3.2).contains(&vs_intel), "vs Intel: {vs_intel:.2}");
        assert!((1.6..2.2).contains(&vs_amd), "vs AMD: {vs_amd:.2}");
    }

    #[test]
    fn high_batch_speedups_match_paper() {
        // §V-D: BERT batch-64 — GH200 1.6x/2.4x faster than Intel/AMD.
        let rows = sweep_model(&skip_llm::zoo::bert_base_uncased());
        let gh = find(&rows, "bert-base-uncased", "gh200", 64).ttft_ms;
        let intel = find(&rows, "bert-base-uncased", "intel_h100", 64).ttft_ms;
        let amd = find(&rows, "bert-base-uncased", "amd_a100", 64).ttft_ms;
        let vs_intel = intel / gh;
        let vs_amd = amd / gh;
        assert!((1.4..2.1).contains(&vs_intel), "vs Intel: {vs_intel:.2}");
        assert!((1.9..2.7).contains(&vs_amd), "vs AMD: {vs_amd:.2}");
    }

    #[test]
    fn crossover_sits_between_batch_8_and_32() {
        // Paper: CP ≈ 16 for encoders.
        let rows = sweep_model(&skip_llm::zoo::bert_base_uncased());
        let at = |p: &str, b: u32| find(&rows, "bert-base-uncased", p, b).ttft_ms;
        assert!(at("gh200", 8) > at("intel_h100", 8), "LC wins below CP");
        assert!(at("gh200", 32) < at("intel_h100", 32), "CC wins above CP");
    }

    #[test]
    fn gpu_idle_shrinks_and_cpu_idle_grows_with_batch() {
        let rows = sweep_model(&skip_llm::zoo::xlm_roberta_base());
        for p in ["amd_a100", "intel_h100", "gh200"] {
            let lo = find(&rows, "xlm-roberta-base", p, 1);
            let hi = find(&rows, "xlm-roberta-base", p, 128);
            assert!(lo.gpu_idle_ms > lo.cpu_idle_ms, "{p}: batch 1 is CPU-bound");
            assert!(
                hi.cpu_idle_ms > hi.gpu_idle_ms,
                "{p}: batch 128 is GPU-bound"
            );
        }
    }
}
