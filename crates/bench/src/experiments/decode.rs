//! **Extension (paper §II-A / §VI)** — decode-phase characterization.
//!
//! The paper's figures measure the prefill phase (TTFT); §II-A notes that
//! the decode phase pressures the memory subsystem instead, and §VI plans
//! broader phase coverage. This experiment sweeps time-per-output-token
//! (TPOT) across batch sizes for the decoder workloads on the three
//! platforms — showing that the paper's low-batch story carries over:
//! decode steps are almost pure launch tax at small batch, so the Grace
//! CPU makes the GH200 the slowest *decoder* too, until the KV-cache
//! bandwidth advantage takes over at scale.

use skip_hw::Platform;
use skip_llm::{zoo, ModelConfig};
use skip_runtime::{Engine, ExecMode};

use crate::TextTable;

/// Batch sizes swept for decoding.
pub const DECODE_BATCHES: [u32; 6] = [1, 4, 16, 64, 128, 256];

/// Prompt length preceding the decode steps.
pub const PROMPT_LEN: u32 = 512;

/// Decode steps simulated per measurement.
pub const STEPS: u32 = 8;

/// One (model, platform, batch) decode measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeRow {
    /// Model name.
    pub model: String,
    /// Platform name.
    pub platform: String,
    /// Batch size.
    pub batch: u32,
    /// Mean time per output token, milliseconds.
    pub tpot_ms: f64,
    /// Generation throughput, tokens/second across the batch.
    pub tokens_per_s: f64,
}

fn sweep(model: &ModelConfig) -> Vec<DecodeRow> {
    let mut out = Vec::new();
    for platform in Platform::paper_trio() {
        let engine = Engine::new(platform.clone());
        for &bs in &DECODE_BATCHES {
            let r = engine.generate(model, bs, PROMPT_LEN, STEPS, ExecMode::Eager);
            let tpot_ms = r.tpot().as_millis_f64();
            out.push(DecodeRow {
                model: model.name.clone(),
                platform: platform.name.clone(),
                batch: bs,
                tpot_ms,
                tokens_per_s: f64::from(bs) / (tpot_ms / 1e3),
            });
        }
    }
    out
}

/// Runs the decode sweep for both decoder workloads.
#[must_use]
pub fn run() -> Vec<DecodeRow> {
    let mut out = sweep(&zoo::gpt2());
    out.extend(sweep(&zoo::llama32_1b()));
    out
}

/// Renders the TPOT panels.
#[must_use]
pub fn render(rows: &[DecodeRow]) -> String {
    let mut out =
        String::from("Decode extension: TPOT (ms) and throughput, prompt=512, 8 decode steps\n");
    for model in ["gpt2", "llama-3.2-1b"] {
        out.push_str(&format!("\n{model}\n"));
        let mut t = TextTable::new(vec![
            "batch",
            "amd_tpot",
            "intel_tpot",
            "gh200_tpot",
            "gh200_tok/s",
        ]);
        for &bs in &DECODE_BATCHES {
            let get = |p: &str| {
                rows.iter()
                    .find(|r| r.model == model && r.platform == p && r.batch == bs)
                    .expect("row exists")
            };
            t.row(vec![
                bs.to_string(),
                format!("{:.3}", get("amd_a100").tpot_ms),
                format!("{:.3}", get("intel_h100").tpot_ms),
                format!("{:.3}", get("gh200").tpot_ms),
                format!("{:.0}", get("gh200").tokens_per_s),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get<'a>(rows: &'a [DecodeRow], m: &str, p: &str, b: u32) -> &'a DecodeRow {
        rows.iter()
            .find(|r| r.model == m && r.platform == p && r.batch == b)
            .expect("row")
    }

    #[test]
    fn low_batch_decode_is_cpu_ranked() {
        // Batch-1 TPOT ordering mirrors single-thread CPU performance.
        let rows = run();
        for model in ["gpt2", "llama-3.2-1b"] {
            let intel = get(&rows, model, "intel_h100", 1).tpot_ms;
            let amd = get(&rows, model, "amd_a100", 1).tpot_ms;
            let gh = get(&rows, model, "gh200", 1).tpot_ms;
            assert!(intel < amd && amd < gh, "{model}: {intel} {amd} {gh}");
        }
    }

    #[test]
    fn high_batch_decode_favors_gh200_bandwidth() {
        // Decode is memory-bound at scale: the GH200's HBM3 wins big.
        let rows = run();
        let gh = get(&rows, "llama-3.2-1b", "gh200", 256).tpot_ms;
        let intel = get(&rows, "llama-3.2-1b", "intel_h100", 256).tpot_ms;
        assert!(gh < intel, "gh {gh} vs intel {intel}");
    }

    #[test]
    fn throughput_grows_with_batch() {
        let rows = run();
        for p in ["amd_a100", "intel_h100", "gh200"] {
            let t1 = get(&rows, "llama-3.2-1b", p, 1).tokens_per_s;
            let t256 = get(&rows, "llama-3.2-1b", p, 256).tokens_per_s;
            assert!(t256 > 10.0 * t1, "{p}: {t1} -> {t256}");
        }
    }
}
