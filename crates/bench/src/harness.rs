//! Deterministic fan-out executor for experiment sweeps.
//!
//! Every sweep in this crate is an embarrassingly-parallel map over an
//! index-ordered work list (batch sizes × platforms × modes). [`map`] runs
//! the closure on scoped worker threads and writes each result back by its
//! *input index*, so the output `Vec` is byte-identical to the serial
//! evaluation regardless of worker count or scheduling — determinism comes
//! from the data layout, not from the execution order.
//!
//! Worker count resolution, in priority order:
//!
//! 1. [`set_threads`] (the experiment binaries' `--threads N` flag),
//! 2. the `SKIP_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! A resolved count of 0 or 1 runs the work inline on the caller's thread
//! with no worker machinery at all.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide worker-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count for every subsequent [`map`] call (the
/// `--threads N` flag of the experiment binaries). Passing 0 clears the
/// override, falling back to `SKIP_THREADS` / available parallelism.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Applies a `--threads N` command-line flag, if present, as the
/// [`set_threads`] override. Every experiment binary calls this first, so
/// `cargo run -p skip-bench --bin fig6 -- --threads 4` pins the worker
/// count (as does `SKIP_THREADS=4`).
///
/// # Panics
///
/// Panics if `--threads` is given without a positive integer argument.
pub fn init_from_args() {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--threads" {
            let n = args
                .next()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .expect("--threads needs a positive integer");
            set_threads(n);
        }
    }
}

/// The worker count [`map`] will use: the [`set_threads`] override if set,
/// else `SKIP_THREADS` if set and parseable, else available parallelism.
#[must_use]
pub fn threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = std::env::var("SKIP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Applies `f` to every item, in parallel, returning results in input
/// order — indistinguishable from `items.into_iter().map(f).collect()`.
///
/// See the module docs for the determinism argument and worker-count
/// resolution.
pub fn map<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    map_with(threads(), items, f)
}

/// The worker count `map_with(requested, ..)` will actually fan out to:
/// `requested` capped by the host's available parallelism. Spawning more
/// workers than cores cannot help an embarrassingly-parallel CPU-bound
/// sweep — it only adds spawn/teardown and scheduler churn per call (the
/// committed BENCH_BASELINE.json once recorded the 4-worker fig10 sweep
/// *slower* than serial on a single-core host for exactly this reason) —
/// and determinism comes from index-ordered write-back, never from the
/// worker count, so capping is invisible in the results.
#[must_use]
pub fn effective_workers(requested: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    requested.min(cores)
}

/// [`map`] with an explicit worker count (0 and 1 both mean serial; counts
/// above the host's core count are capped — see [`effective_workers`]).
pub fn map_with<I, T, F>(workers: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = items.len();
    let workers = effective_workers(workers).min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Items parked in per-index slots: workers claim the next index via an
    // atomic counter and take the item out of its slot, so `I` needs only
    // `Send`, not `Sync`, and no channel reorders the work.
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;

    let mut gathered: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out: Vec<(usize, T)> = Vec::new();
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= n {
                            break;
                        }
                        let item = slots[idx]
                            .lock()
                            .expect("work slot poisoned")
                            .take()
                            .expect("work item claimed twice");
                        out.push((idx, f(item)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });

    // Write results back by input index.
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for chunk in &mut gathered {
        for (idx, value) in chunk.drain(..) {
            results[idx] = Some(value);
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every index produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_output_equals_serial_in_order() {
        let items: Vec<u64> = (0..103).collect();
        let serial = map_with(1, items.clone(), |i| i * i + 1);
        for workers in [2, 3, 8, 64, 1000] {
            let parallel = map_with(workers, items.clone(), |i| i * i + 1);
            assert_eq!(parallel, serial, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_single_item_inputs() {
        assert_eq!(map_with(8, Vec::<u32>::new(), |i| i), Vec::<u32>::new());
        assert_eq!(map_with(8, vec![7u32], |i| i + 1), vec![8]);
    }

    #[test]
    fn non_sync_items_are_accepted() {
        // Cell is Send but not Sync; the slot design must still admit it.
        let items: Vec<std::cell::Cell<u32>> = (0..20).map(std::cell::Cell::new).collect();
        let out = map_with(4, items, |c| c.get() * 2);
        assert_eq!(out, (0..20).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn override_beats_environment() {
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }
}
