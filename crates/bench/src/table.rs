//! Aligned plain-text tables for experiment output.

use std::fmt::Write as _;

/// A simple right-aligned text-table builder used by every experiment's
/// `render()`.
///
/// # Example
///
/// ```
/// use skip_bench::TextTable;
///
/// let mut t = TextTable::new(vec!["batch", "ttft_ms"]);
/// t.row(vec!["1".into(), "7.86".into()]);
/// let s = t.render();
/// assert!(s.contains("batch"));
/// assert!(s.contains("7.86"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Renders the table with right-aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>w$}", c, w = widths[i]);
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "long_header"]);
        t.row(vec!["12345".into(), "x".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[2].ends_with("x"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new(vec!["only"]);
        t.row(vec!["a".into(), "b".into()]);
    }
}
