//! Terminal line charts for the figure binaries.
//!
//! The paper's figures are log-x (batch size) latency/TKLQT curves with
//! one series per platform. [`AsciiChart`] renders exactly that shape in
//! plain text so `cargo run --bin fig6` & co. show the *curves*, not just
//! the numbers.

use std::fmt::Write as _;

/// A multi-series scatter/line chart rendered with unicode-free ASCII.
///
/// X values are plotted on a log₂ axis (batch sizes), Y on either a linear
/// or log₁₀ axis. Each series gets a single marker character.
///
/// # Example
///
/// ```
/// use skip_bench::AsciiChart;
///
/// let mut c = AsciiChart::new(40, 10, true);
/// c.series('a', &[(1.0, 10.0), (2.0, 12.0), (4.0, 30.0), (8.0, 100.0)]);
/// let s = c.render();
/// assert!(s.contains('a'));
/// assert!(s.lines().count() >= 10);
/// ```
#[derive(Debug, Clone)]
pub struct AsciiChart {
    width: usize,
    height: usize,
    log_y: bool,
    series: Vec<(char, Vec<(f64, f64)>)>,
}

impl AsciiChart {
    /// Creates a chart of the given plot-area size. `log_y` selects a
    /// log₁₀ Y axis (use for TKLQT's orders-of-magnitude ramps).
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is below 2.
    #[must_use]
    pub fn new(width: usize, height: usize, log_y: bool) -> Self {
        assert!(width >= 2 && height >= 2, "chart must be at least 2x2");
        AsciiChart {
            width,
            height,
            log_y,
            series: Vec::new(),
        }
    }

    /// Adds a series plotted with `marker`. Non-positive values are
    /// dropped on log axes.
    pub fn series(&mut self, marker: char, points: &[(f64, f64)]) {
        self.series.push((marker, points.to_vec()));
    }

    /// Renders the chart with Y-axis labels and an X-axis legend line.
    #[must_use]
    pub fn render(&self) -> String {
        let xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|(_, pts)| pts.iter().map(|p| p.0))
            .filter(|v| *v > 0.0)
            .collect();
        let ys: Vec<f64> = self
            .series
            .iter()
            .flat_map(|(_, pts)| pts.iter().map(|p| p.1))
            .filter(|v| !self.log_y || *v > 0.0)
            .collect();
        if xs.is_empty() || ys.is_empty() {
            return String::from("(no data)\n");
        }
        let fx = |v: f64| v.log2();
        let fy = |v: f64| if self.log_y { v.log10() } else { v };
        let (x_min, x_max) = min_max(&xs.iter().map(|&v| fx(v)).collect::<Vec<_>>());
        let (y_min, y_max) = min_max(&ys.iter().map(|&v| fy(v)).collect::<Vec<_>>());
        let x_span = (x_max - x_min).max(1e-9);
        let y_span = (y_max - y_min).max(1e-9);

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (marker, pts) in &self.series {
            for &(x, y) in pts {
                if x <= 0.0 || (self.log_y && y <= 0.0) {
                    continue;
                }
                let cx = ((fx(x) - x_min) / x_span * (self.width - 1) as f64).round() as usize;
                let cy = ((fy(y) - y_min) / y_span * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy;
                grid[row][cx.min(self.width - 1)] = *marker;
            }
        }

        let label = |v: f64| -> String {
            let raw = if self.log_y { 10f64.powf(v) } else { v };
            if raw >= 100.0 {
                format!("{raw:>9.0}")
            } else {
                format!("{raw:>9.2}")
            }
        };
        let mut out = String::new();
        for (i, row) in grid.iter().enumerate() {
            let frac = 1.0 - i as f64 / (self.height - 1) as f64;
            let yv = y_min + frac * y_span;
            let tick = i == 0 || i == self.height - 1 || i == self.height / 2;
            let _ = writeln!(
                out,
                "{} |{}",
                if tick { label(yv) } else { " ".repeat(9) },
                row.iter().collect::<String>()
            );
        }
        let _ = writeln!(out, "{}+{}", " ".repeat(9), "-".repeat(self.width));
        let _ = writeln!(
            out,
            "{} {:<10.0}{:>w$.0}  (log2 x)",
            " ".repeat(9),
            2f64.powf(x_min),
            2f64.powf(x_max),
            w = self.width - 10
        );
        out
    }
}

fn min_max(values: &[f64]) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_markers() {
        let mut c = AsciiChart::new(30, 8, false);
        c.series('i', &[(1.0, 1.0), (128.0, 100.0)]);
        c.series('g', &[(1.0, 3.0), (128.0, 50.0)]);
        let s = c.render();
        assert!(s.contains('i'));
        assert!(s.contains('g'));
    }

    #[test]
    fn log_y_handles_wide_ranges() {
        let mut c = AsciiChart::new(30, 8, true);
        c.series('x', &[(1.0, 0.5), (64.0, 50_000.0)]);
        let s = c.render();
        assert!(s.contains('x'));
        // Extremes land on the top and bottom rows.
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains('x') || lines[1].contains('x'));
    }

    #[test]
    fn empty_chart_degrades_gracefully() {
        let c = AsciiChart::new(10, 4, true);
        assert_eq!(c.render(), "(no data)\n");
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn tiny_chart_rejected() {
        let _ = AsciiChart::new(1, 1, false);
    }

    #[test]
    fn non_positive_points_skipped_on_log_axis() {
        let mut c = AsciiChart::new(10, 4, true);
        c.series('z', &[(1.0, 0.0), (2.0, 5.0)]);
        let s = c.render();
        assert!(s.contains('z'));
    }
}
