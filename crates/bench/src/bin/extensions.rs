//! Regenerates the extension experiments (beyond the paper's figures):
//! applied-fusion validation, decode-phase TPOT sweeps, and the ablation
//! suite.
use skip_bench::experiments::{
    ablations, capacity, decode, energy, fleet_disagg, fusion_applied, future_workloads,
    kv_capacity, seqlen, serving, serving_observability, serving_policies,
};

fn main() {
    skip_bench::harness::init_from_args();
    println!("{}", fusion_applied::render(&fusion_applied::run()));
    println!("{}", decode::render(&decode::run()));
    println!("{}", ablations::render_all());
    println!("{}", future_workloads::render_all());
    println!("{}", energy::render(&energy::run()));
    println!("{}", serving::render(&serving::run()));
    println!(
        "{}",
        serving_observability::render(&serving_observability::run())
    );
    println!("{}", serving_policies::render(&serving_policies::run()));
    println!("{}", seqlen::render(&seqlen::run()));
    println!("{}", kv_capacity::render(&kv_capacity::run()));
    println!(
        "{}",
        fleet_disagg::render(&fleet_disagg::run(), &fleet_disagg::run_coupling())
    );
    println!("{}", capacity::render(&capacity::run()));
}
