//! Regenerates the paper's table1 (see `skip_bench::experiments::table1`).
fn main() {
    let results = skip_bench::experiments::table1::run();
    println!("{}", skip_bench::experiments::table1::render(&results));
}
