//! Performance runner: times the canonical workloads and writes
//! `BENCH_SUITE.json`.
//!
//! Workloads timed (wall clock, one process):
//!
//! * `profile_big_trace` — engine runs + full SKIP analysis (depgraph,
//!   metrics, attribution) across the BERT batch sweep on Intel+H100: the
//!   allocation-lean interned-trace hot path.
//! * `engine_run_summary` — the same engine runs through the summary sink
//!   (no trace materialized): the serving latency model's cold-key path.
//! * `fig10_sweep_serial` / `fig10_sweep_parallel` — the Fig. 10 BERT
//!   sweep pinned to 1 worker vs [`PARALLEL_WORKERS`]: the deterministic
//!   fan-out harness' speedup on the multi-experiment path. Each entry
//!   records the worker count it actually ran with; the speedup line is
//!   skipped on single-core hosts, where the comparison measures only
//!   fan-out overhead.
//! * `serving_sim` — the serving extension sweep (30 discrete-event
//!   simulations).
//! * `serving_policies` — the policy × router matrix (27 four-replica
//!   simulations through the composable scheduler seams).
//! * `fleet_disagg` — the heterogeneous-fleet matrix (12 fleet
//!   simulations: homogeneous trio + every disaggregated pairing, with
//!   coupling-priced KV handoffs).
//! * `handoff_pricing` — a single disaggregated fleet simulation
//!   iterated: the per-request route → KV-size → link-occupancy →
//!   coupling-transfer hot path.
//! * `router_dispatch` — a single partitioned-router simulation iterated:
//!   the per-arrival `Router` dyn-dispatch plus per-iteration `BatchPolicy`
//!   dyn-dispatch hot path, measured end to end.
//! * `latency_cold_keys` — fresh-instance `LatencyModel` pricing over the
//!   serving key grid, a new model each iteration: one signature-cold
//!   pass of engine runs, then shape-signature pattern lookups.
//! * `fusion_recommend` — chain extraction + recommendation over a GPT2
//!   prefill trace, iterated for a stable reading.
//! * `serving_100k` / `fleet_100k` — one hundred thousand requests through
//!   the four-replica serving floor and the disaggregated fleet floor, one
//!   pass each: the population-scale path the allocation audit exists for.
//! * `plan_sweep` — the pruned generational capacity sweep over the full
//!   12-replica candidate space (1260 fleet compositions). The entry also
//!   records how many candidates were fully simulated vs resolved by the
//!   analytic bounds and early aborts — the pruning win this PR exists
//!   for. `--budget-ms N` puts an absolute wall-clock cap on this entry
//!   and the two `*_100k` entries (the CI smoke), independent of the
//!   relative baseline gates.
//!
//! Flags: `--threads N` (parallel worker count; default 4), `--out PATH`
//! (default `BENCH_SUITE.json`), `--baseline PATH` (print per-entry deltas
//! against a committed baseline and exit non-zero if any workload's wall
//! clock regresses more than 2x or its events/s throughput drops more
//! than 2x), `--budget-ms N` (fail if a `*_100k` entry exceeds N ms wall
//! clock; 0 or absent disables the gate).

use std::time::Instant;

use serde::{Deserialize, Serialize};
use skip_bench::experiments::{capacity, fig10, fleet_disagg, serving, serving_policies};
use skip_bench::harness;
use skip_core::ProfileReport;
use skip_hw::Platform;
use skip_llm::{zoo, Phase, Workload};
use skip_runtime::{Engine, ExecMode};
use skip_serve::fleet::plan;
use skip_serve::{
    simulate_fleet, simulate_replicas, ArrivalProcess, FleetBatchPolicy, FleetConfig,
    FleetRouterPolicy, FleetSpec, LatencyModel, Policy, RouterPolicy, ServingConfig, SloTargets,
    SweepStats,
};

/// One timed workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchEntry {
    /// Workload name.
    name: String,
    /// Wall-clock time, milliseconds.
    wall_ms: f64,
    /// Parallel worker count this entry ran with (1 = serial; 0 = a
    /// legacy suite file that predates per-entry counts).
    #[serde(default)]
    threads: usize,
    /// Simulated trace events processed per second, where meaningful.
    events_per_s: Option<f64>,
    /// Process peak RSS after the workload, KiB (`/proc/self/status`).
    peak_rss_kb: Option<u64>,
    /// Planner candidates fully simulated (the `plan_sweep` entry only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    candidates_simulated: Option<u32>,
    /// Planner candidates resolved without a full simulation — analytic
    /// pruning plus early aborts (the `plan_sweep` entry only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    candidates_pruned: Option<u32>,
}

/// The whole suite, as written to `BENCH_SUITE.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchSuite {
    /// One entry per workload.
    entries: Vec<BenchEntry>,
}

/// Worker count for the `*_parallel` entries unless `--threads` overrides
/// it. Pinned rather than host-resolved so the committed baseline compares
/// like against like on machines with different core counts.
const PARALLEL_WORKERS: usize = 4;

/// Peak resident set size in KiB, if the platform exposes it.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Times `work` on `threads` workers; `work` reports how many trace events
/// it processed.
fn timed(name: &str, threads: usize, work: impl FnOnce() -> Option<u64>) -> BenchEntry {
    let start = Instant::now();
    let events = work();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let entry = BenchEntry {
        name: name.to_owned(),
        wall_ms,
        threads,
        events_per_s: events.map(|e| e as f64 / (wall_ms / 1e3)),
        peak_rss_kb: peak_rss_kb(),
        candidates_simulated: None,
        candidates_pruned: None,
    };
    let eps = entry
        .events_per_s
        .map_or(String::new(), |e| format!("  ({e:.0} events/s)"));
    println!("{name}: {wall_ms:.1} ms [{threads}t]{eps}");
    entry
}

/// Iterations for the sub-10ms workloads, for stable wall readings.
const ITERS: u64 = 20;

fn profile_big_trace() -> Option<u64> {
    let engine = Engine::new(Platform::intel_h100());
    let mut events = 0u64;
    for _ in 0..ITERS {
        for &bs in &skip_bench::BATCH_SWEEP {
            let wl = Workload::new(
                zoo::bert_base_uncased(),
                Phase::Prefill,
                bs,
                skip_bench::SEQ_LEN,
            );
            let trace = engine.run(&wl, ExecMode::Eager);
            events +=
                (trace.cpu_ops().len() + trace.launches().len() + trace.kernels().len()) as u64;
            let _ = ProfileReport::analyze(&trace);
        }
    }
    Some(events)
}

/// The `profile_big_trace` engine runs through the summary sink: same
/// simulated work, no trace materialization and no analysis — isolates
/// what the serving stack pays per cold latency key.
fn engine_run_summary() -> Option<u64> {
    let engine = Engine::new(Platform::intel_h100());
    let mut events = 0u64;
    for _ in 0..ITERS {
        for &bs in &skip_bench::BATCH_SWEEP {
            let wl = Workload::new(
                zoo::bert_base_uncased(),
                Phase::Prefill,
                bs,
                skip_bench::SEQ_LEN,
            );
            let s = engine.run_summary(&wl, ExecMode::Eager);
            events += s.cpu_ops() + s.launches() + s.kernels();
        }
    }
    Some(events)
}

/// Fresh-instance `LatencyModel` pricing over the serving key grid, a new
/// model every iteration. Before the shape-signature pattern table this
/// made every key a cold engine run per iteration; now only the first
/// instance of the signature simulates and later instances resolve the
/// priced pattern by table lookup. Events count keys priced either way
/// (engine runs + pattern hits), so the throughput figure stays comparable
/// across the change.
fn latency_cold_keys() -> Option<u64> {
    let mut keys = 0u64;
    for _ in 0..ITERS {
        let m = LatencyModel::new(Platform::intel_h100(), zoo::gpt2());
        for batch in [1u32, 4, 16] {
            let _ = m.prefill(batch, 128);
            let _ = m.prefill(batch, 100); // + the 64 bucket
            let _ = m.decode_step(batch, 128);
            let _ = m.decode_step(batch, 200); // + the 256 bucket
        }
        keys += m.engine_runs() + m.pattern_hits();
    }
    Some(keys)
}

fn fusion_recommend() -> Option<u64> {
    let wl = Workload::new(zoo::gpt2(), Phase::Prefill, 1, skip_bench::SEQ_LEN);
    let trace = Engine::new(Platform::intel_h100()).run(&wl, ExecMode::Eager);
    let events = trace.kernels().len() as u64;
    let iters = 500u64;
    for _ in 0..iters {
        let _ = skip_fusion::recommend(&trace, 16, 0.8);
    }
    Some(events * iters)
}

/// One partitioned-router simulation iterated for a stable reading: every
/// arrival routes through the boxed `Router`, every iteration schedules
/// through the boxed `BatchPolicy` — the refactor's dyn-dispatch hot path.
fn router_dispatch() -> Option<u64> {
    let cfg = ServingConfig {
        platform: Platform::intel_h100(),
        model: zoo::gpt2(),
        policy: Policy::Continuous { max_batch: 8 },
        requests: 200,
        arrival_rate_per_s: 500.0,
        prompt_len: 32,
        new_tokens: 4,
        seed: 13,
        kv: None,
        slo: SloTargets::default(),
        router: RouterPolicy::JoinShortestQueue,
    };
    for _ in 0..ITERS {
        let r = simulate_replicas(&cfg, 4);
        assert_eq!(r.completed, 200);
    }
    Some(u64::from(cfg.requests) * ITERS)
}

/// One disaggregated fleet simulation iterated for a stable reading:
/// every request routes across heterogeneous pools and pays a
/// coupling-priced KV handoff through a per-destination link.
fn handoff_pricing() -> Option<u64> {
    let cfg = FleetConfig {
        spec: FleetSpec::disaggregated(Platform::gh200(), 1, Platform::intel_h100(), 3),
        model: zoo::gpt2(),
        max_batch: 8,
        requests: 200,
        arrivals: ArrivalProcess::Poisson { rate_per_s: 500.0 },
        prompt_len: 32,
        new_tokens: 4,
        seed: 13,
        slo: SloTargets::default(),
        router: FleetRouterPolicy::CostModelJsq,
        policy: FleetBatchPolicy::Continuous,
        autoscale: None,
    };
    let mut handoffs = 0u64;
    for _ in 0..ITERS {
        let r = simulate_fleet(&cfg);
        assert_eq!(r.completed, 200);
        handoffs += r.handoffs;
    }
    Some(handoffs)
}

/// Requests in the population-scale `*_100k` entries.
const POPULATION: u32 = 100_000;

/// One hundred thousand requests through the four-replica serving floor,
/// one pass (no [`ITERS`]): the allocation-lean per-event path at the
/// population scale the capacity planner sweeps. Events are completed
/// requests, so the throughput gate reads requests per second.
fn serving_100k() -> Option<u64> {
    let cfg = ServingConfig {
        platform: Platform::intel_h100(),
        model: zoo::gpt2(),
        policy: Policy::Continuous { max_batch: 8 },
        requests: POPULATION,
        arrival_rate_per_s: 1_000.0,
        prompt_len: 128,
        new_tokens: 4,
        seed: 13,
        kv: None,
        slo: SloTargets::default(),
        router: RouterPolicy::JoinShortestQueue,
    };
    let r = simulate_replicas(&cfg, 4);
    assert_eq!(r.completed, POPULATION);
    Some(u64::from(r.completed))
}

/// One hundred thousand requests through the disaggregated fleet floor
/// (1 GH200 prefill + 3 H100 decode), one pass: per-request routing, KV
/// handoff pricing, and lifecycle recording at population scale.
fn fleet_100k() -> Option<u64> {
    let cfg = FleetConfig {
        spec: FleetSpec::disaggregated(Platform::gh200(), 1, Platform::intel_h100(), 3),
        model: zoo::gpt2(),
        max_batch: 8,
        requests: POPULATION,
        arrivals: ArrivalProcess::Poisson {
            rate_per_s: 1_000.0,
        },
        prompt_len: 128,
        new_tokens: 4,
        seed: 13,
        slo: SloTargets::default(),
        router: FleetRouterPolicy::CostModelJsq,
        policy: FleetBatchPolicy::Continuous,
        autoscale: None,
    };
    let r = simulate_fleet(&cfg);
    assert_eq!(r.completed, POPULATION);
    Some(u64::from(r.completed))
}

/// The `plan_sweep` planner: the capacity experiment's reference traffic
/// envelope opened up to a 12-replica candidate space (1260 candidates vs
/// the experiment's 132). At this scale the sweep only fits the CI wall
/// budget because the generational pruning resolves most of the space
/// without a full simulation — which is exactly what the entry's
/// `candidates_simulated` / `candidates_pruned` fields pin.
fn plan_sweep_planner() -> plan::PlannerConfig {
    capacity::planner_with(12)
}

fn parse_args() -> (usize, String, Option<String>, f64) {
    let mut threads = 0usize;
    let mut out = String::from("BENCH_SUITE.json");
    let mut baseline = None;
    let mut budget_ms = 0.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number");
            }
            "--out" => out = args.next().expect("--out needs a path"),
            "--baseline" => baseline = Some(args.next().expect("--baseline needs a path")),
            "--budget-ms" => {
                budget_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--budget-ms needs a number");
            }
            other => panic!("unknown flag {other}"),
        }
    }
    (threads, out, baseline, budget_ms)
}

/// Prints the per-entry delta of every workload against the baseline and
/// returns the names that regressed: wall clock more than 2x up, or —
/// where both runs report a throughput — events/s more than 2x down.
/// The throughput gate catches regressions the wall gate can't see, e.g.
/// an entry that got "faster" only because it now processes fewer events.
fn compare(suite: &BenchSuite, baseline: &BenchSuite) -> Vec<String> {
    let mut bad = Vec::new();
    println!("\nvs baseline:");
    for base in &baseline.entries {
        let Some(now) = suite.entries.iter().find(|e| e.name == base.name) else {
            println!("  {:<24} missing from this run", base.name);
            continue;
        };
        let delta = (now.wall_ms / base.wall_ms - 1.0) * 100.0;
        let slower = now.wall_ms > base.wall_ms * 2.0;
        let throughput_drop = match (now.events_per_s, base.events_per_s) {
            (Some(n), Some(b)) => n < b / 2.0,
            _ => false,
        };
        let flag = match (slower, throughput_drop) {
            (true, _) => "  REGRESSED >2x",
            (false, true) => "  THROUGHPUT DROP >2x",
            (false, false) => "",
        };
        println!(
            "  {:<24} {:>8.1} ms  base {:>8.1} ms  {:>+7.1}%{}",
            base.name, now.wall_ms, base.wall_ms, delta, flag
        );
        if slower {
            bad.push(format!(
                "{}: {:.1} ms vs baseline {:.1} ms",
                base.name, now.wall_ms, base.wall_ms
            ));
        } else if throughput_drop {
            bad.push(format!(
                "{}: {:.0} events/s vs baseline {:.0} events/s",
                base.name,
                now.events_per_s.unwrap_or(0.0),
                base.events_per_s.unwrap_or(0.0)
            ));
        }
    }
    for now in &suite.entries {
        if !baseline.entries.iter().any(|b| b.name == now.name) {
            println!("  {:<24} {:>8.1} ms  (new entry)", now.name, now.wall_ms);
        }
    }
    bad
}

fn main() {
    let (threads, out, baseline, budget_ms) = parse_args();
    let workers = if threads > 0 {
        threads
    } else {
        PARALLEL_WORKERS
    };
    println!("perf suite: {workers} parallel workers\n");

    let mut entries = Vec::new();
    entries.push(timed("profile_big_trace", 1, profile_big_trace));
    entries.push(timed("engine_run_summary", 1, engine_run_summary));

    entries.push(timed("fig10_sweep_serial", 1, || {
        let mut events = 0u64;
        for _ in 0..ITERS {
            events += fig10::run_with(1).iter().map(|r| r.events).sum::<u64>();
        }
        Some(events)
    }));
    // Record the worker count the harness will actually grant, not the
    // request: on a small host the two differ, and the committed baseline
    // must say what the numbers were measured with.
    entries.push(timed(
        "fig10_sweep_parallel",
        harness::effective_workers(workers),
        || {
            let mut events = 0u64;
            for _ in 0..ITERS {
                events += fig10::run_with(workers)
                    .iter()
                    .map(|r| r.events)
                    .sum::<u64>();
            }
            Some(events)
        },
    ));

    entries.push(timed("serving_sim", harness::threads(), || {
        let rows = serving::run();
        Some(rows.iter().map(|r| u64::from(r.report.completed)).sum())
    }));
    entries.push(timed("serving_policies", harness::threads(), || {
        let rows = serving_policies::run();
        Some(rows.iter().map(|r| u64::from(r.report.completed)).sum())
    }));
    entries.push(timed("fleet_disagg", harness::threads(), || {
        let cells = fleet_disagg::run();
        Some(cells.iter().map(|c| u64::from(c.report.completed)).sum())
    }));
    entries.push(timed("handoff_pricing", 1, handoff_pricing));
    entries.push(timed("router_dispatch", 1, router_dispatch));
    entries.push(timed("latency_cold_keys", 1, latency_cold_keys));
    entries.push(timed("fusion_recommend", 1, fusion_recommend));
    entries.push(timed("serving_100k", 1, serving_100k));
    entries.push(timed("fleet_100k", 1, fleet_100k));

    let mut sweep_stats: Option<SweepStats> = None;
    let mut plan_entry = timed("plan_sweep", harness::effective_workers(workers), || {
        let cfg = plan_sweep_planner();
        let sweep = plan::sweep_with(&cfg, |wave, bounds| {
            harness::map_with(workers, wave, |c| plan::evaluate_bounded(&cfg, &c, bounds))
        });
        let completed: u64 = sweep
            .outcomes
            .iter()
            .map(|o| u64::from(o.report.completed))
            .sum();
        sweep_stats = Some(sweep.stats);
        Some(completed)
    });
    if let Some(s) = sweep_stats {
        plan_entry.candidates_simulated = Some(s.simulated);
        plan_entry.candidates_pruned = Some(s.resolved_without_full_simulation());
        println!(
            "  plan_sweep resolutions: {} candidates, {} simulated, {} aborted, \
             {} infeasible by bound, {} dominated",
            s.candidates, s.simulated, s.aborted, s.pruned_infeasible, s.pruned_dominated
        );
    }
    entries.push(plan_entry);

    if budget_ms > 0.0 {
        let over: Vec<_> = entries
            .iter()
            .filter(|e| {
                (e.name.ends_with("_100k") || e.name == "plan_sweep") && e.wall_ms > budget_ms
            })
            .collect();
        if !over.is_empty() {
            for e in &over {
                eprintln!(
                    "PERF BUDGET EXCEEDED: {} took {:.1} ms (budget {budget_ms:.0} ms)",
                    e.name, e.wall_ms
                );
            }
            std::process::exit(1);
        }
        println!("population-scale entries within the {budget_ms:.0} ms budget");
    }

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    if cores >= 2 {
        let serial = entries
            .iter()
            .find(|e| e.name == "fig10_sweep_serial")
            .expect("serial entry")
            .wall_ms;
        let parallel = entries
            .iter()
            .find(|e| e.name == "fig10_sweep_parallel")
            .expect("parallel entry")
            .wall_ms;
        let speedup = serial / parallel;
        println!("\nfig10 sweep speedup: {speedup:.2}x ({workers} workers)");
        // With the sharded latency cache, fan-out must not lose to the
        // serial sweep on a multi-core host (5% scheduling-noise floor).
        if speedup < 0.95 {
            eprintln!(
                "PERF REGRESSION: fig10 parallel sweep slower than serial \
                 ({parallel:.1} ms vs {serial:.1} ms on {cores} cores)"
            );
            std::process::exit(1);
        }
    } else {
        println!("\nfig10 sweep speedup: skipped (single-core host)");
    }

    let suite = BenchSuite { entries };
    let json = serde_json::to_string_pretty(&suite).expect("suite serializes");
    std::fs::write(&out, json + "\n").expect("write BENCH_SUITE.json");
    println!("wrote {out}");

    if let Some(path) = baseline {
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let base: BenchSuite = serde_json::from_str(&text).expect("baseline parses");
                let bad = compare(&suite, &base);
                if !bad.is_empty() {
                    eprintln!("PERF REGRESSION (>2x over {path}):");
                    for b in &bad {
                        eprintln!("  {b}");
                    }
                    std::process::exit(1);
                }
                println!("no >2x regression vs {path}");
            }
            Err(e) => {
                eprintln!("baseline {path} unreadable: {e}");
                std::process::exit(1);
            }
        }
    }
}
