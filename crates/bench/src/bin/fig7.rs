//! Regenerates the paper's fig7 (see `skip_bench::experiments::fig7`).
fn main() {
    let results = skip_bench::experiments::fig7::run();
    println!("{}", skip_bench::experiments::fig7::render(&results));
}
