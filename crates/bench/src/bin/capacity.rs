//! Regenerates the capacity-frontier sweep: the planner's cost-optimal
//! fleet for the reference traffic envelope. `--threads N` pins the
//! fan-out worker count; the rendered output is byte-identical at any.
//! `--max-replicas N` opens up the candidate space (default 4; the
//! EXPERIMENTS.md 12-replica frontier is `--max-replicas 12`).
use skip_bench::experiments::capacity;

fn main() {
    skip_bench::harness::init_from_args();
    let mut max_replicas = 4u32;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--max-replicas" {
            max_replicas = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--max-replicas needs a number");
        }
    }
    let sweep = capacity::run_at(max_replicas, skip_bench::harness::threads());
    println!("{}", capacity::render(&sweep));
}
