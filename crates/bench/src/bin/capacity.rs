//! Regenerates the capacity-frontier sweep: the planner's cost-optimal
//! fleet for the reference traffic envelope. `--threads N` pins the
//! fan-out worker count; the rendered output is byte-identical at any.
use skip_bench::experiments::capacity;

fn main() {
    skip_bench::harness::init_from_args();
    println!("{}", capacity::render(&capacity::run()));
}
