//! Regenerates the paper's fig8 (see `skip_bench::experiments::fig8`).
fn main() {
    let results = skip_bench::experiments::fig8::run();
    println!("{}", skip_bench::experiments::fig8::render(&results));
}
