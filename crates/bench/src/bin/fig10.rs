//! Regenerates the paper's fig10 (see `skip_bench::experiments::fig10`).
fn main() {
    skip_bench::harness::init_from_args();
    let results = skip_bench::experiments::fig10::run();
    println!("{}", skip_bench::experiments::fig10::render(&results));
}
