//! Regenerates the paper's fig10 (see `skip_bench::experiments::fig10`).
fn main() {
    let results = skip_bench::experiments::fig10::run();
    println!("{}", skip_bench::experiments::fig10::render(&results));
}
