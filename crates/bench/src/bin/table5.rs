//! Regenerates the paper's table5 (see `skip_bench::experiments::table5`).
fn main() {
    let results = skip_bench::experiments::table5::run();
    println!("{}", skip_bench::experiments::table5::render(&results));
}
