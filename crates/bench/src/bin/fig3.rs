//! Regenerates the paper's fig3 (see `skip_bench::experiments::fig3`).
fn main() {
    let results = skip_bench::experiments::fig3::run();
    println!("{}", skip_bench::experiments::fig3::render(&results));
}
