//! Regenerates the paper's fig6 (see `skip_bench::experiments::fig6`).
fn main() {
    let results = skip_bench::experiments::fig6::run();
    println!("{}", skip_bench::experiments::fig6::render(&results));
}
