//! Regenerates the paper's fig6 (see `skip_bench::experiments::fig6`).
fn main() {
    skip_bench::harness::init_from_args();
    let results = skip_bench::experiments::fig6::run();
    println!("{}", skip_bench::experiments::fig6::render(&results));
}
