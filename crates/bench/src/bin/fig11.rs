//! Regenerates the paper's fig11 (see `skip_bench::experiments::fig11`).
fn main() {
    skip_bench::harness::init_from_args();
    let results = skip_bench::experiments::fig11::run();
    println!("{}", skip_bench::experiments::fig11::render(&results));
}
