//! Regenerates the paper's Fig. 9 (see `skip_bench::experiments::fig9`).
fn main() {
    let results = skip_bench::experiments::fig9::run();
    println!("{}", skip_bench::experiments::fig9::render(&results));
}
