//! Regenerates every table and figure of the paper's evaluation in order.
use skip_bench::experiments::*;

fn main() {
    skip_bench::harness::init_from_args();
    println!("{}", table1::render(&table1::run()));
    println!("{}", fig3::render(&fig3::run()));
    println!("{}", table5::render(&table5::run()));
    println!("{}", fig6::render(&fig6::run()));
    println!("{}", fig7::render(&fig7::run()));
    println!("{}", fig8::render(&fig8::run()));
    println!("{}", fig9::render(&fig9::run()));
    println!("{}", fig10::render(&fig10::run()));
    println!("{}", fig11::render(&fig11::run()));
}
