//! # skip-bench — the experiment harness
//!
//! Regenerates **every table and figure** of the paper's evaluation
//! (§II-C Table I & Fig. 3; §V Table V and Figs. 6–11). Each experiment
//! lives in [`experiments`] as a `run()` function returning structured
//! results plus a `render()` producing the paper-style text table, and has
//! a companion binary (`cargo run -p skip-bench --bin table1`, `--bin
//! fig6`, …). The `all` binary runs the whole evaluation.
//!
//! The mapping from experiment to paper artifact is recorded in
//! `DESIGN.md` §3; `EXPERIMENTS.md` records paper-vs-measured values.
//!
//! # Example
//!
//! ```no_run
//! use skip_bench::experiments::table5;
//!
//! let rows = table5::run();
//! println!("{}", table5::render(&rows));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chart;
pub mod experiments;
pub mod harness;
mod table;

pub use chart::AsciiChart;
pub use table::TextTable;

use skip_core::ProfileReport;
use skip_hw::Platform;
use skip_llm::Workload;
use skip_runtime::{Engine, ExecMode};

/// The batch sizes swept throughout the paper's figures.
pub const BATCH_SWEEP: [u32; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// The input sequence length used for all prefill benchmarks (§IV-B).
pub const SEQ_LEN: u32 = 512;

/// Chain lengths analyzed in the fusion figures (Figs. 7–9).
pub const CHAIN_LENGTHS: [usize; 8] = [2, 4, 8, 16, 32, 64, 128, 256];

/// Runs one workload on one platform and profiles it with SKIP.
#[must_use]
pub fn profile(platform: &Platform, workload: &Workload, mode: ExecMode) -> ProfileReport {
    let trace = Engine::new(platform.clone()).run(workload, mode);
    ProfileReport::analyze(&trace)
}

/// Time-to-first-token in milliseconds (the SKIP inference latency of the
/// prefill pass).
#[must_use]
pub fn ttft_ms(platform: &Platform, workload: &Workload, mode: ExecMode) -> f64 {
    profile(platform, workload, mode)
        .inference_latency
        .as_millis_f64()
}
