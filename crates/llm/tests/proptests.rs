//! Property tests for the workload generator.

use proptest::prelude::*;
use skip_llm::{zoo, AttentionImpl, GraphOptions, ModelConfig, Phase, Workload};

fn arb_base() -> impl Strategy<Value = ModelConfig> {
    prop::sample::select(vec![
        zoo::bert_base_uncased(),
        zoo::xlm_roberta_base(),
        zoo::gpt2(),
        zoo::llama32_1b(),
        zoo::gemma_2b(),
    ])
}

proptest! {
    /// Kernel and operator counts are independent of batch and sequence
    /// length in eager mode — only the per-kernel work scales.
    #[test]
    fn counts_independent_of_shape(
        model in arb_base(),
        b1 in 1u32..32, b2 in 1u32..32,
        s1 in prop::sample::select(vec![16u32, 128, 512]),
        s2 in prop::sample::select(vec![16u32, 128, 512]),
    ) {
        let g1 = Workload::new(model.clone(), Phase::Prefill, b1, s1).graph();
        let g2 = Workload::new(model, Phase::Prefill, b2, s2).graph();
        prop_assert_eq!(g1.kernel_count(), g2.kernel_count());
        prop_assert_eq!(g1.op_count(), g2.op_count());
    }

    /// Total FLOPs scale linearly in batch size (prefill).
    #[test]
    fn flops_linear_in_batch(model in arb_base(), batch in 1u32..16) {
        let f1 = Workload::new(model.clone(), Phase::Prefill, 1, 256).graph().total_flops();
        let fb = Workload::new(model, Phase::Prefill, batch, 256).graph().total_flops();
        let ratio = fb / f1;
        prop_assert!((ratio - f64::from(batch)).abs() / f64::from(batch) < 1e-9);
    }

    /// FLOPs grow superlinearly in sequence length (attention is
    /// quadratic) but bytes at least linearly.
    #[test]
    fn seq_scaling_is_superlinear_for_flops(model in arb_base()) {
        let g1 = Workload::new(model.clone(), Phase::Prefill, 1, 256).graph();
        let g2 = Workload::new(model, Phase::Prefill, 1, 512).graph();
        prop_assert!(g2.total_flops() > 2.0 * g1.total_flops());
        // Bytes grow too, but sublinearly where weight traffic dominates
        // (the LM head reads the full vocab projection regardless of S).
        prop_assert!(g2.total_bytes() > g1.total_bytes());
    }

    /// Kernel counts scale exactly linearly in layer count (plus the
    /// fixed embedding/tail blocks).
    #[test]
    fn kernels_linear_in_layers(model in arb_base(), extra in 1u32..12) {
        let mut small = model.clone();
        small.layers = 1;
        let mut big = model;
        big.layers = 1 + extra;
        let k_small = Workload::new(small.clone(), Phase::Prefill, 1, 64).graph().kernel_count();
        let k_big = Workload::new(big, Phase::Prefill, 1, 64).graph().kernel_count();
        let per_layer = (k_big - k_small) / extra as usize;
        prop_assert_eq!(k_small + per_layer * extra as usize, k_big);
    }

    /// Every kernel has non-negative work, and at least one of
    /// flops/bytes positive (no phantom kernels).
    #[test]
    fn kernels_carry_work(model in arb_base(), batch in 1u32..8) {
        let g = Workload::new(model, Phase::Prefill, batch, 128).graph();
        for k in g.kernels_in_order() {
            prop_assert!(k.work.flops >= 0.0);
            prop_assert!(k.work.bytes >= 0.0);
            prop_assert!(k.work.flops > 0.0 || k.work.bytes > 0.0, "{}", k.name);
        }
    }

    /// FlashAttention lowering never changes GEMM-projection work — only
    /// the attention core.
    #[test]
    fn flash_preserves_projection_flops(model in arb_base()) {
        let wl = Workload::new(model, Phase::Prefill, 2, 256);
        let flash = wl.graph_with(GraphOptions { attention: AttentionImpl::FlashAttention2 });
        let eager = wl.graph();
        let proj = |g: &skip_llm::OperatorGraph| -> f64 {
            g.kernels_in_order()
                .iter()
                .filter(|k| k.name.starts_with("xmma_gemm"))
                .map(|k| k.work.flops)
                .sum()
        };
        prop_assert!((proj(&eager) - proj(&flash)).abs() < 1e-6);
    }

    /// Decode-step graphs grow their KV-dependent traffic with past_len.
    #[test]
    fn decode_traffic_grows_with_past(model in arb_base(), past in 64u32..2048) {
        let small = Workload::new(model.clone(), Phase::DecodeStep { past_len: 64 }, 1, 64)
            .graph()
            .total_bytes();
        let large = Workload::new(model, Phase::DecodeStep { past_len: past + 64 }, 1, 64)
            .graph()
            .total_bytes();
        prop_assert!(large > small);
    }
}
