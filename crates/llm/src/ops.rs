//! Operator-tree nodes: what eager-mode execution walks.

use serde::{Deserialize, Serialize};
use skip_hw::{KernelWork, OpComplexity};

/// One GPU kernel an operator launches: a name (as it would appear in a
/// CUPTI trace) plus the work it performs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSpec {
    /// Kernel name; deterministic per shape so repeated layers produce
    /// repeated kernel sequences (the property proximity-score fusion
    /// exploits).
    pub name: String,
    /// FLOPs and bytes.
    pub work: KernelWork,
}

impl KernelSpec {
    /// Creates a kernel spec.
    #[must_use]
    pub fn new(name: impl Into<String>, work: KernelWork) -> Self {
        KernelSpec {
            name: name.into(),
            work,
        }
    }
}

/// A node in the operator tree: an ATen-style operator that may contain
/// child operators and may launch kernels of its own.
///
/// Execution semantics (mirroring eager PyTorch): the CPU enters the
/// operator, pays its framework cost, recurses into children in order, and
/// launches this node's own kernels after the children. `View` nodes launch
/// nothing; `Simple` leaves usually launch one or more kernels; `Composite`
/// parents usually delegate to children.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpNode {
    /// Operator name, e.g. `"aten::addmm"`.
    pub name: String,
    /// CPU-side dispatch cost class.
    pub complexity: OpComplexity,
    /// Child operators, executed in order.
    pub children: Vec<OpNode>,
    /// Kernels launched directly by this node (after its children).
    pub kernels: Vec<KernelSpec>,
}

impl OpNode {
    /// A composite parent operator wrapping `children`.
    #[must_use]
    pub fn composite(name: impl Into<String>, children: Vec<OpNode>) -> Self {
        OpNode {
            name: name.into(),
            complexity: OpComplexity::Composite,
            children,
            kernels: Vec::new(),
        }
    }

    /// A leaf operator launching `kernels`.
    #[must_use]
    pub fn simple(name: impl Into<String>, kernels: Vec<KernelSpec>) -> Self {
        OpNode {
            name: name.into(),
            complexity: OpComplexity::Simple,
            children: Vec::new(),
            kernels,
        }
    }

    /// A metadata-only operator (`aten::view`, `aten::transpose`): costs
    /// CPU time, launches nothing.
    #[must_use]
    pub fn view(name: impl Into<String>) -> Self {
        OpNode {
            name: name.into(),
            complexity: OpComplexity::View,
            children: Vec::new(),
            kernels: Vec::new(),
        }
    }

    /// Number of operator nodes in this subtree (including `self`).
    #[must_use]
    pub fn op_count(&self) -> usize {
        1 + self.children.iter().map(OpNode::op_count).sum::<usize>()
    }

    /// Number of kernels launched by this subtree.
    #[must_use]
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
            + self
                .children
                .iter()
                .map(OpNode::kernel_count)
                .sum::<usize>()
    }

    /// Depth-first iteration over the kernels of this subtree in launch
    /// order (children before own kernels).
    pub fn kernels_in_order<'a>(&'a self, out: &mut Vec<&'a KernelSpec>) {
        for c in &self.children {
            c.kernels_in_order(out);
        }
        out.extend(self.kernels.iter());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(name: &str) -> KernelSpec {
        KernelSpec::new(name, KernelWork::null())
    }

    #[test]
    fn counts_recurse() {
        let tree = OpNode::composite(
            "aten::linear",
            vec![
                OpNode::view("aten::t"),
                OpNode::simple("aten::addmm", vec![k("gemm"), k("bias")]),
            ],
        );
        assert_eq!(tree.op_count(), 3);
        assert_eq!(tree.kernel_count(), 2);
    }

    #[test]
    fn kernel_order_is_children_first() {
        let mut tree = OpNode::composite(
            "outer",
            vec![OpNode::simple("inner", vec![k("first"), k("second")])],
        );
        tree.kernels.push(k("own_last"));
        let mut order = Vec::new();
        tree.kernels_in_order(&mut order);
        let names: Vec<&str> = order.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["first", "second", "own_last"]);
    }

    #[test]
    fn view_nodes_launch_nothing() {
        let v = OpNode::view("aten::transpose");
        assert_eq!(v.kernel_count(), 0);
        assert_eq!(v.complexity, OpComplexity::View);
    }
}
