//! Eager-mode operator-graph construction.
//!
//! The builder reproduces the *kernel stream shape* of HuggingFace models
//! under PyTorch eager execution — the property the SKIP profiler and the
//! proximity-score recommender analyze. Three structural facts from real
//! traces are load-bearing for the paper's results and are modeled
//! explicitly:
//!
//! 1. **Eager chattiness, per lowering path.** `aten::matmul` on 4-D
//!    tensors inserts `clone` copies around the `bmm`; GPT2's legacy path
//!    runs multi-kernel softmax/LayerNorm and a 5-kernel tanh-GELU (~33
//!    kernels/layer, K_eager ≈ 400), while the modern encoder path gets
//!    cuBLASLt fused-bias GEMMs and single-kernel softmax/LN/GELU (~24
//!    kernels/layer, K_eager ≈ 300) — matching the K_eager magnitudes
//!    behind the paper's Fig. 7d/Fig. 8.
//! 2. **Layer periodicity with context ambiguity.** Kernel names are
//!    deterministic per (functor, shape) — and therefore *shared* across
//!    call sites, as in real traces: the same `vectorized_add` kernel
//!    serves bias, residual and mask adds. Repeated layers give the
//!    deterministic chains proximity-score fusion feeds on; shared names
//!    give the mixed continuations that cap short-chain determinism.
//! 3. **Stream length asymmetry.** GPT2's K_eager (~400) leaves more room
//!    for one long fused chain than the leaner encoder stream (~300) —
//!    under Eq. 7 this yields the paper's Fig. 8 asymmetry (XLM-R up to
//!    ~6.8× idealized speedup vs GPT2 ~2.7× at chain length 256).

use serde::{Deserialize, Serialize};
use skip_hw::KernelWork;

use crate::config::{Activation, ArchStyle, ModelConfig};
use crate::ops::{KernelSpec, OpNode};
use crate::workload::Phase;

/// FP16 element size in bytes.
const EB: u64 = 2;

/// Which attention lowering the graph uses.
///
/// `FlashAttention2` replaces the eager scale→QKᵀ→mask→softmax→AV section
/// with a single IO-aware fused kernel that never materializes the S×S
/// score matrix (paper §II-C): far fewer launches and far less HBM traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AttentionImpl {
    /// Unfused eager-mode attention.
    #[default]
    Eager,
    /// FlashAttention-2 fused kernel.
    FlashAttention2,
}

/// Options controlling graph construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct GraphOptions {
    /// Attention lowering.
    pub attention: AttentionImpl,
}

/// A complete eager-mode operator graph: the top-level operators one
/// forward pass executes, in order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorGraph {
    ops: Vec<OpNode>,
}

impl OperatorGraph {
    /// Creates a graph from top-level operators.
    #[must_use]
    pub fn from_ops(ops: Vec<OpNode>) -> Self {
        OperatorGraph { ops }
    }

    /// Top-level operators in execution order.
    #[must_use]
    pub fn ops(&self) -> &[OpNode] {
        &self.ops
    }

    /// Total operator-node count (all nesting levels).
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.ops.iter().map(OpNode::op_count).sum()
    }

    /// Total kernels launched by one forward pass — the paper's `K_eager`
    /// when the graph is executed eagerly.
    #[must_use]
    pub fn kernel_count(&self) -> usize {
        self.ops.iter().map(OpNode::kernel_count).sum()
    }

    /// All kernels in launch order.
    #[must_use]
    pub fn kernels_in_order(&self) -> Vec<&KernelSpec> {
        let mut out = Vec::with_capacity(self.kernel_count());
        for op in &self.ops {
            op.kernels_in_order(&mut out);
        }
        out
    }

    /// Total FLOPs across all kernels.
    #[must_use]
    pub fn total_flops(&self) -> f64 {
        self.kernels_in_order().iter().map(|k| k.work.flops).sum()
    }

    /// Total device-memory bytes across all kernels.
    #[must_use]
    pub fn total_bytes(&self) -> f64 {
        self.kernels_in_order().iter().map(|k| k.work.bytes).sum()
    }
}

/// Builds the eager-mode graph for `model` under the given phase, batch
/// size and sequence length.
#[must_use]
pub(crate) fn build(model: &ModelConfig, phase: Phase, batch: u32, seq: u32) -> OperatorGraph {
    build_with(model, phase, batch, seq, GraphOptions::default())
}

/// Builds the graph with explicit [`GraphOptions`].
#[must_use]
pub(crate) fn build_with(
    model: &ModelConfig,
    phase: Phase,
    batch: u32,
    seq: u32,
    opts: GraphOptions,
) -> OperatorGraph {
    let b = Builder::with_options(model, phase, batch, seq, opts);
    let mut ops = Vec::new();
    b.embeddings(&mut ops);
    for layer in 0..model.layers {
        b.layer.set(layer);
        let mut layer_ops = Vec::new();
        match model.arch {
            ArchStyle::BertEncoder => b.encoder_layer(&mut layer_ops),
            ArchStyle::Gpt2Decoder => b.gpt2_layer(&mut layer_ops),
            ArchStyle::LlamaDecoder => b.llama_layer(&mut layer_ops),
        }
        b.insert_workspace_memset(&mut layer_ops);
        ops.extend(layer_ops);
    }
    b.tail(&mut ops);
    OperatorGraph::from_ops(ops)
}

/// Shape context shared by all layer builders.
struct Builder<'a> {
    cfg: &'a ModelConfig,
    opts: GraphOptions,
    /// Batch size.
    b: u64,
    /// Query length (sequence length in prefill, 1 in decode).
    sq: u64,
    /// Key/value length (sequence length in prefill, past+1 in decode).
    skv: u64,
    /// The transformer layer currently being built (drives per-layer
    /// GEMM algorithm-variant selection; see [`Builder::algo_variant`]).
    layer: std::cell::Cell<u32>,
}

impl<'a> Builder<'a> {
    fn with_options(
        cfg: &'a ModelConfig,
        phase: Phase,
        batch: u32,
        seq: u32,
        opts: GraphOptions,
    ) -> Self {
        let (sq, skv) = match phase {
            Phase::Prefill => (u64::from(seq), u64::from(seq)),
            Phase::DecodeStep { past_len } => (1, u64::from(past_len) + 1),
        };
        Builder {
            cfg,
            opts,
            b: u64::from(batch),
            sq,
            skv,
            layer: std::cell::Cell::new(0),
        }
    }

    /// cuBLAS workspace management launches a tiny `memset` kernel before
    /// GEMMs that need a zeroed workspace. *Which* GEMM needs it depends on
    /// runtime allocator state, so the memset's position within a layer's
    /// kernel stream varies layer to layer in real traces. We reproduce it
    /// with a deterministic per-layer position — it is what keeps
    /// mid-length kernel chains from being spuriously deterministic in the
    /// proximity-score analysis (paper Fig. 7/8) while adding no rare
    /// kernel names (the memset kernel itself is identical everywhere).
    fn insert_workspace_memset(&self, layer_ops: &mut Vec<OpNode>) {
        let spot = (self.layer.get().wrapping_mul(2_654_435_761) >> 7) as usize % layer_ops.len();
        layer_ops.insert(
            spot,
            OpNode::simple(
                "cuda::memset_workspace",
                vec![KernelSpec::new(
                    "memset_zero_4096",
                    KernelWork::memory(4096.0),
                )],
            ),
        );
    }

    /// The FlashAttention-2 forward kernel: QKᵀ + softmax + AV in one
    /// launch, touching only Q, K, V and the output in HBM.
    fn flash_attention(&self) -> OpNode {
        let (b, sq, skv) = (self.b, self.sq, self.skv);
        let heads = u64::from(self.cfg.heads);
        let d = u64::from(self.cfg.head_dim());
        let matmul_flops = 4.0 * (b * heads * sq * skv * d) as f64;
        let softmax_flops = 6.0 * (b * heads * sq * skv) as f64;
        let io_elems = b * heads * (2 * sq + 2 * skv) * d;
        let work = KernelWork {
            class: skip_hw::KernelClass::FusedAttention,
            flops: matmul_flops + softmax_flops,
            bytes: (io_elems * EB) as f64,
        };
        OpNode::simple(
            "flash_attn_2::fwd",
            vec![KernelSpec::new(
                format!("flash_fwd_kernel_f16_{b}x{heads}x{sq}x{skv}x{d}"),
                work,
            )],
        )
    }

    // ---- kernel spec helpers -------------------------------------------

    fn gemm(&self, m: u64, n: u64, k: u64) -> KernelSpec {
        KernelSpec::new(
            format!("xmma_gemm_f16_{m}x{n}x{k}"),
            KernelWork::gemm(m, n, k, EB),
        )
    }

    fn bmm(&self, batch: u64, m: u64, n: u64, k: u64) -> KernelSpec {
        KernelSpec::new(
            format!("xmma_bmm_f16_{batch}x{m}x{n}x{k}"),
            KernelWork::batched_gemm(batch, m, n, k, EB),
        )
    }

    /// Elementwise kernels are templated on the functor, not the call
    /// site: a bias add and a residual add of the same size launch the
    /// *same* kernel. Sharing names per (functor, size) reproduces the
    /// context ambiguity of real traces — chains anchored at such kernels
    /// have mixed continuations and low proximity scores.
    fn ew(&self, stub: &str, elems: u64, reads: u64, ops: f64) -> KernelSpec {
        let functor = match stub {
            "bias_add" | "residual" | "mask_add" | "causal_mask_add" | "add" | "gelu_add"
            | "gelu_add1" => "add",
            "scale" | "mask_scale" | "mul" | "gelu_mul" | "gelu_out" => "mul",
            other => other,
        };
        KernelSpec::new(
            format!("vectorized_{functor}_f16_{elems}"),
            KernelWork::elementwise(elems, reads, ops, EB),
        )
    }

    /// Copies likewise share one kernel per size regardless of which
    /// `contiguous`/`clone` call site launched them.
    fn copy(&self, _stub: &str, elems: u64) -> KernelSpec {
        KernelSpec::new(
            format!("direct_copy_f16_{elems}"),
            KernelWork::memory((elems * EB) as f64),
        )
    }

    fn cast(&self, stub: &str, elems: u64) -> KernelSpec {
        KernelSpec::new(
            format!("cast_{stub}_{elems}"),
            KernelWork::memory((elems * EB) as f64),
        )
    }

    fn reduce(&self, stub: &str, elems: u64, ops: f64) -> KernelSpec {
        KernelSpec::new(
            format!("{stub}_f16_{elems}"),
            KernelWork::reduction(elems, ops, EB),
        )
    }

    fn gather(&self, stub: &str, rows: u64, width: u64) -> KernelSpec {
        KernelSpec::new(
            format!("embedding_gather_{stub}_{rows}x{width}"),
            KernelWork::gather(rows, width, EB),
        )
    }

    // ---- op helpers -----------------------------------------------------

    /// `nn.Linear` lowered through cuBLASLt with the bias fused into the
    /// GEMM epilogue: `aten::linear` → `aten::t` view + `aten::addmm`
    /// launching a single kernel (the modern encoder path).
    fn linear(&self, m: u64, out_dim: u64, in_dim: u64) -> OpNode {
        OpNode::composite(
            "aten::linear",
            vec![
                OpNode::view("aten::t"),
                OpNode::simple("aten::addmm", vec![self.gemm(m, out_dim, in_dim)]),
            ],
        )
    }

    /// Bias-free projection (Llama family): `aten::linear` → `aten::mm`.
    fn projection(&self, m: u64, out_dim: u64, in_dim: u64) -> OpNode {
        OpNode::composite(
            "aten::linear",
            vec![
                OpNode::view("aten::t"),
                OpNode::simple("aten::mm", vec![self.gemm(m, out_dim, in_dim)]),
            ],
        )
    }

    /// Fused LayerNorm (single kernel) — the encoder path.
    fn layer_norm_fused(&self, elems: u64) -> OpNode {
        OpNode::simple(
            "aten::layer_norm",
            vec![self.reduce("layer_norm", elems, 4.0)],
        )
    }

    /// GPT2-style LayerNorm kept in fp16: statistics + apply (2 kernels).
    fn layer_norm_fp16(&self, elems: u64) -> OpNode {
        OpNode::simple(
            "aten::layer_norm",
            vec![
                self.reduce("layer_norm_stats", elems, 2.0),
                self.ew("layer_norm_apply", elems, 2, 2.0),
            ],
        )
    }

    /// RMSNorm: one fused kernel (modern stacks).
    fn rms_norm(&self, elems: u64) -> OpNode {
        OpNode::simple("aten::rms_norm", vec![self.reduce("rms_norm", elems, 3.0)])
    }

    /// Unfused eager softmax over `rows`×`cols` scores — the fp32-upcast
    /// decoder path: running max, exp+sum, normalize (3 kernels).
    fn softmax(&self, rows: u64, cols: u64) -> OpNode {
        let elems = rows * cols;
        OpNode::simple(
            "aten::softmax",
            vec![
                self.reduce("softmax_max", elems, 1.0),
                self.reduce("softmax_exp_sum", elems, 2.0),
                self.ew("softmax_norm", elems, 2, 1.0),
            ],
        )
    }

    // ---- model sections -------------------------------------------------

    fn embeddings(&self, ops: &mut Vec<OpNode>) {
        let h = u64::from(self.cfg.hidden);
        let rows = self.b * self.sq;
        match self.cfg.arch {
            ArchStyle::BertEncoder => {
                ops.push(OpNode::simple(
                    "aten::embedding",
                    vec![self.gather("word", rows, h)],
                ));
                if !self.cfg.token_type_embeddings {
                    // XLM-R derives position ids from the attention mask:
                    // ne + cumsum + mul + padding-offset add.
                    ops.push(OpNode::simple(
                        "aten::ne",
                        vec![self.ew("ne", rows, 1, 1.0)],
                    ));
                    ops.push(OpNode::simple(
                        "aten::cumsum",
                        vec![self.reduce("cumsum", rows, 1.0)],
                    ));
                    ops.push(OpNode::simple(
                        "aten::mul",
                        vec![self.ew("posid_mul", rows, 2, 1.0)],
                    ));
                    ops.push(OpNode::simple(
                        "aten::add",
                        vec![self.ew("posid_add", rows, 1, 1.0)],
                    ));
                }
                ops.push(OpNode::simple(
                    "aten::embedding",
                    vec![self.gather("position", rows, h)],
                ));
                ops.push(OpNode::simple(
                    "aten::add",
                    vec![self.ew("add", rows * h, 2, 1.0)],
                ));
                if self.cfg.token_type_embeddings {
                    ops.push(OpNode::simple(
                        "aten::embedding",
                        vec![self.gather("token_type", rows, h)],
                    ));
                    ops.push(OpNode::simple(
                        "aten::add",
                        vec![self.ew("add", rows * h, 2, 1.0)],
                    ));
                }
                ops.push(self.layer_norm_fused(rows * h));
                // Extended attention mask, built once per forward:
                // cast to fp16, (1 − mask), · finfo.min.
                ops.push(OpNode::simple(
                    "aten::to",
                    vec![self.cast("mask", self.b * self.skv)],
                ));
                ops.push(OpNode::simple(
                    "aten::rsub",
                    vec![self.ew("rsub", self.b * self.skv, 1, 1.0)],
                ));
                ops.push(OpNode::simple(
                    "aten::mul",
                    vec![self.ew("mask_scale", self.b * self.skv, 1, 1.0)],
                ));
            }
            ArchStyle::Gpt2Decoder => {
                ops.push(OpNode::simple(
                    "aten::embedding",
                    vec![self.gather("wte", rows, h)],
                ));
                ops.push(OpNode::simple(
                    "aten::embedding",
                    vec![self.gather("wpe", rows, h)],
                ));
                ops.push(OpNode::simple(
                    "aten::add",
                    vec![self.ew("add", rows * h, 2, 1.0)],
                ));
            }
            ArchStyle::LlamaDecoder => {
                ops.push(OpNode::simple(
                    "aten::embedding",
                    vec![self.gather("embed_tokens", rows, h)],
                ));
            }
        }
    }

    /// One BERT/RoBERTa encoder layer: 24 kernels — the lean modern
    /// encoder lowering (cuBLASLt fused-bias GEMMs, single-kernel softmax,
    /// gelu and LayerNorm). Real eager encoder traces land in the
    /// 290–310-kernel range for 12 layers, which this reproduces.
    fn encoder_layer(&self, ops: &mut Vec<OpNode>) {
        let cfg = self.cfg;
        let (b, sq, skv) = (self.b, self.sq, self.skv);
        let h = u64::from(cfg.hidden);
        let heads = u64::from(cfg.heads);
        let d = u64::from(cfg.head_dim());
        let f = u64::from(cfg.ffn);
        let m = b * sq;
        let scores = b * heads * sq * skv;

        // -- self-attention ------------------------------------------------
        ops.push(self.linear(m, h, h)); // query
        ops.push(self.linear(m, h, h)); // key
        ops.push(self.linear(m, h, h)); // value
        for _ in 0..3 {
            // transpose_for_scores: view + permute + contiguous copy
            ops.push(OpNode::composite(
                "aten::permute",
                vec![
                    OpNode::view("aten::view"),
                    OpNode::simple("aten::contiguous", vec![self.copy("scores_layout", m * h)]),
                ],
            ));
        }
        if self.opts.attention == AttentionImpl::FlashAttention2 {
            ops.push(self.flash_attention());
        } else {
            ops.push(OpNode::simple(
                "aten::div",
                vec![self.ew("scale", b * heads * sq * d, 1, 1.0)],
            ));
            // QK^T matmul: two operand clones + bmm.
            ops.push(OpNode::composite(
                "aten::matmul",
                vec![
                    OpNode::view("aten::expand"),
                    OpNode::simple("aten::clone", vec![self.copy("qk_a", b * heads * sq * d)]),
                    OpNode::simple("aten::clone", vec![self.copy("qk_b", b * heads * skv * d)]),
                    OpNode::simple("aten::bmm", vec![self.bmm(b * heads, sq, skv, d)]),
                ],
            ));
            // Pre-computed extended mask (built once in the embedding
            // stage) added to the scores.
            ops.push(OpNode::simple(
                "aten::add",
                vec![self.ew("mask_add", scores, 2, 1.0)],
            ));
            // Fused warp softmax — one kernel on the encoder path.
            ops.push(OpNode::simple(
                "aten::softmax",
                vec![self.reduce("softmax_warp_forward", scores, 4.0)],
            ));
            // AV matmul: one operand clone + bmm.
            ops.push(OpNode::composite(
                "aten::matmul",
                vec![
                    OpNode::view("aten::expand"),
                    OpNode::simple("aten::clone", vec![self.copy("av_b", b * heads * skv * d)]),
                    OpNode::simple("aten::bmm", vec![self.bmm(b * heads, sq, d, skv)]),
                ],
            ));
        }
        ops.push(OpNode::simple(
            "aten::contiguous",
            vec![self.copy("context", m * h)],
        ));
        ops.push(self.linear(m, h, h)); // attention output projection
        ops.push(OpNode::simple(
            "aten::add",
            vec![self.ew("residual", m * h, 2, 1.0)],
        ));
        ops.push(self.layer_norm_fused(m * h));

        // -- MLP -------------------------------------------------------------
        ops.push(self.linear(m, f, h));
        ops.push(OpNode::simple(
            "aten::gelu",
            vec![self.ew("gelu", m * f, 1, 8.0)],
        ));
        ops.push(self.linear(m, h, f));
        ops.push(OpNode::simple(
            "aten::add",
            vec![self.ew("residual", m * h, 2, 1.0)],
        ));
        ops.push(self.layer_norm_fused(m * h));
    }

    /// One GPT2 block: 33 kernels (see module docs).
    fn gpt2_layer(&self, ops: &mut Vec<OpNode>) {
        let cfg = self.cfg;
        let (b, sq, skv) = (self.b, self.sq, self.skv);
        let h = u64::from(cfg.hidden);
        let heads = u64::from(cfg.heads);
        let d = u64::from(cfg.head_dim());
        let kv = u64::from(cfg.kv_dim());
        let f = u64::from(cfg.ffn);
        let m = b * sq;
        let scores = b * heads * sq * skv;

        ops.push(self.layer_norm_fp16(m * h));
        // Fused QKV Conv1D.
        ops.push(OpNode::composite(
            "transformers::Conv1D",
            vec![
                OpNode::view("aten::view"),
                OpNode::simple(
                    "aten::addmm",
                    vec![
                        self.gemm(m, h + 2 * kv, h),
                        self.ew("bias_add", m * (h + 2 * kv), 1, 1.0),
                    ],
                ),
            ],
        ));
        // Split heads: three contiguous copies.
        for (label, width) in [("q", h), ("k", kv), ("v", kv)] {
            ops.push(OpNode::composite(
                "aten::split",
                vec![
                    OpNode::view("aten::view"),
                    OpNode::simple("aten::contiguous", vec![self.copy(label, m * width)]),
                ],
            ));
        }
        if self.opts.attention == AttentionImpl::FlashAttention2 {
            ops.push(self.flash_attention());
        } else {
            // QK^T matmul (2 operand clones + bmm, no split-K on sm80+).
            ops.push(OpNode::composite(
                "aten::matmul",
                vec![
                    OpNode::view("aten::expand"),
                    OpNode::simple("aten::clone", vec![self.copy("qk_a", b * heads * sq * d)]),
                    OpNode::simple("aten::clone", vec![self.copy("qk_b", b * heads * skv * d)]),
                    OpNode::simple("aten::bmm", vec![self.bmm(b * heads, sq, skv, d)]),
                ],
            ));
            ops.push(OpNode::simple(
                "aten::div",
                vec![self.ew("scale", scores, 1, 1.0)],
            ));
            ops.push(OpNode::simple(
                "aten::where",
                vec![self.ew("causal_mask", scores, 2, 1.0)],
            ));
            ops.push(self.softmax(b * heads * sq, skv));
            // AV matmul (1 operand clone + bmm).
            ops.push(OpNode::composite(
                "aten::matmul",
                vec![
                    OpNode::view("aten::expand"),
                    OpNode::simple("aten::clone", vec![self.copy("av_b", b * heads * skv * d)]),
                    OpNode::simple("aten::bmm", vec![self.bmm(b * heads, sq, d, skv)]),
                ],
            ));
        }
        ops.push(OpNode::simple(
            "aten::contiguous",
            vec![self.copy("context", m * h)],
        ));
        // c_proj.
        ops.push(self.conv1d(m, h, h));
        ops.push(OpNode::simple(
            "aten::add",
            vec![self.ew("residual", m * h, 2, 1.0)],
        ));
        ops.push(self.layer_norm_fp16(m * h));
        // MLP: c_fc, NewGELU (5 kernels), c_proj.
        ops.push(self.conv1d(m, f, h));
        ops.push(OpNode::composite(
            "transformers::NewGELU",
            vec![
                OpNode::simple("aten::pow", vec![self.ew("gelu_pow", m * f, 1, 2.0)]),
                OpNode::simple("aten::add", vec![self.ew("gelu_add", m * f, 2, 1.0)]),
                OpNode::simple("aten::tanh", vec![self.ew("gelu_tanh", m * f, 1, 6.0)]),
                OpNode::simple("aten::mul", vec![self.ew("gelu_out", m * f, 2, 1.0)]),
            ],
        ));
        ops.push(self.conv1d(m, h, f));
        ops.push(OpNode::simple(
            "aten::add",
            vec![self.ew("residual", m * h, 2, 1.0)],
        ));
    }

    /// GPT2's `Conv1D` (a transposed linear): GEMM + bias.
    fn conv1d(&self, m: u64, out_dim: u64, in_dim: u64) -> OpNode {
        OpNode::composite(
            "transformers::Conv1D",
            vec![
                OpNode::view("aten::view"),
                OpNode::simple(
                    "aten::addmm",
                    vec![
                        self.gemm(m, out_dim, in_dim),
                        self.ew("bias_add", m * out_dim, 1, 1.0),
                    ],
                ),
            ],
        )
    }

    /// One Llama-family block: 27 kernels (see module docs).
    fn llama_layer(&self, ops: &mut Vec<OpNode>) {
        let cfg = self.cfg;
        let (b, sq, skv) = (self.b, self.sq, self.skv);
        let h = u64::from(cfg.hidden);
        let heads = u64::from(cfg.heads);
        let kv_heads = u64::from(cfg.kv_heads);
        let d = u64::from(cfg.head_dim());
        let kv = u64::from(cfg.kv_dim());
        let f = u64::from(cfg.ffn);
        let m = b * sq;
        let q_dim = heads * d;
        let scores = b * heads * sq * skv;

        ops.push(self.rms_norm(m * h));
        ops.push(self.projection(m, q_dim, h)); // q_proj
        ops.push(self.projection(m, kv, h)); // k_proj
        ops.push(self.projection(m, kv, h)); // v_proj
                                             // Rotary embeddings on q and k.
        ops.push(OpNode::simple(
            "aten::rotary_emb",
            vec![self.ew("rope_q", b * heads * sq * d, 2, 4.0)],
        ));
        ops.push(OpNode::simple(
            "aten::rotary_emb",
            vec![self.ew("rope_k", b * kv_heads * sq * d, 2, 4.0)],
        ));
        // KV-cache writes.
        ops.push(OpNode::simple(
            "aten::index_copy",
            vec![self.copy("kcache", b * kv_heads * sq * d)],
        ));
        ops.push(OpNode::simple(
            "aten::index_copy",
            vec![self.copy("vcache", b * kv_heads * sq * d)],
        ));
        if self.opts.attention == AttentionImpl::FlashAttention2 {
            ops.push(self.flash_attention());
        } else {
            // repeat_kv + QK^T.
            ops.push(OpNode::composite(
                "aten::matmul",
                vec![
                    OpNode::view("aten::expand"),
                    OpNode::simple(
                        "aten::reshape",
                        vec![self.copy("repeat_k", b * heads * skv * d)],
                    ),
                    OpNode::simple("aten::clone", vec![self.copy("qk_a", b * heads * sq * d)]),
                    OpNode::simple("aten::bmm", vec![self.bmm(b * heads, sq, skv, d)]),
                ],
            ));
            ops.push(OpNode::simple(
                "aten::mul",
                vec![self.ew("scale", scores, 1, 1.0)],
            ));
            ops.push(OpNode::simple(
                "aten::add",
                vec![self.ew("causal_mask_add", scores, 2, 1.0)],
            ));
            ops.push(self.softmax(b * heads * sq, skv));
            // repeat_kv + AV.
            ops.push(OpNode::composite(
                "aten::matmul",
                vec![
                    OpNode::view("aten::expand"),
                    OpNode::simple(
                        "aten::reshape",
                        vec![self.copy("repeat_v", b * heads * skv * d)],
                    ),
                    OpNode::simple("aten::bmm", vec![self.bmm(b * heads, sq, d, skv)]),
                ],
            ));
        }
        ops.push(self.projection(m, h, q_dim)); // o_proj
        ops.push(OpNode::simple(
            "aten::add",
            vec![self.ew("residual", m * h, 2, 1.0)],
        ));
        ops.push(self.rms_norm(m * h));
        // Gated MLP: gate, up, fused act·mul, down.
        ops.push(self.projection(m, f, h)); // gate_proj
        ops.push(self.projection(m, f, h)); // up_proj
        let act = match cfg.activation {
            Activation::GeluGated => "gelu_mul",
            _ => "silu_mul",
        };
        ops.push(OpNode::simple(
            "aten::silu_backward_free", // fused act(gate)·up
            vec![self.ew(act, m * f, 2, 4.0)],
        ));
        ops.push(self.projection(m, h, f)); // down_proj
        ops.push(OpNode::simple(
            "aten::add",
            vec![self.ew("residual", m * h, 2, 1.0)],
        ));
    }

    /// The decoder tail: final norm + LM head. Encoders have no tail — the
    /// asymmetry behind the paper's Fig. 8 (see module docs).
    fn tail(&self, ops: &mut Vec<OpNode>) {
        let h = u64::from(self.cfg.hidden);
        let v = u64::from(self.cfg.vocab);
        let m = self.b * self.sq;
        match self.cfg.arch {
            ArchStyle::BertEncoder => {}
            ArchStyle::Gpt2Decoder => {
                ops.push(self.layer_norm_fp16(m * h));
                ops.push(OpNode::composite(
                    "aten::linear",
                    vec![
                        OpNode::view("aten::t"),
                        OpNode::simple("aten::mm", vec![self.gemm(m, v, h)]),
                    ],
                ));
            }
            ArchStyle::LlamaDecoder => {
                ops.push(self.rms_norm(m * h));
                ops.push(self.projection(m, v, h));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use crate::zoo;

    fn kernels_per_layer(cfg: &ModelConfig) -> usize {
        // Difference between 2-layer and 1-layer builds isolates one layer.
        let mut one = cfg.clone();
        one.layers = 1;
        let mut two = cfg.clone();
        two.layers = 2;
        let k1 = build(&one, Phase::Prefill, 1, 512).kernel_count();
        let k2 = build(&two, Phase::Prefill, 1, 512).kernel_count();
        k2 - k1
    }

    #[test]
    fn encoder_layer_launches_24_kernels() {
        assert_eq!(kernels_per_layer(&zoo::bert_base_uncased()), 24);
        assert_eq!(kernels_per_layer(&zoo::xlm_roberta_base()), 24);
    }

    #[test]
    fn gpt2_layer_launches_33_kernels() {
        assert_eq!(kernels_per_layer(&zoo::gpt2()), 33);
    }

    #[test]
    fn llama_layer_launches_27_kernels() {
        assert_eq!(kernels_per_layer(&zoo::llama32_1b()), 27);
    }

    #[test]
    fn eager_kernel_totals_match_fig7d_scale() {
        // K_eager magnitudes behind Fig. 7d / Fig. 8 speedup asymmetry.
        let gpt2 = Workload::new(zoo::gpt2(), Phase::Prefill, 1, 512).graph();
        let xlmr = Workload::new(zoo::xlm_roberta_base(), Phase::Prefill, 1, 512).graph();
        assert_eq!(gpt2.kernel_count(), 402);
        assert_eq!(xlmr.kernel_count(), 299);
    }

    #[test]
    fn encoders_have_no_tail() {
        let cfg = zoo::bert_base_uncased();
        let g = build(&cfg, Phase::Prefill, 1, 128);
        let ks = g.kernels_in_order();
        // Last kernel belongs to the repeating layer body (the closing
        // LayerNorm), not an LM head.
        assert!(ks.last().unwrap().name.starts_with("layer_norm"));
    }

    #[test]
    fn decoders_end_with_lm_head() {
        let g = build(&zoo::gpt2(), Phase::Prefill, 1, 128);
        let ks = g.kernels_in_order();
        let last = &ks.last().unwrap().name;
        assert!(last.contains("gemm"), "expected LM-head GEMM, got {last}");
        assert!(last.contains("50257"), "LM head spans the vocab: {last}");
    }

    #[test]
    fn flops_scale_linearly_with_batch() {
        let f1 = build(&zoo::gpt2(), Phase::Prefill, 1, 512).total_flops();
        let f8 = build(&zoo::gpt2(), Phase::Prefill, 8, 512).total_flops();
        let ratio = f8 / f1;
        assert!((ratio - 8.0).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn prefill_flops_match_two_params_tokens_rule() {
        // Dense-model rule of thumb: forward FLOPs ≈ 2 · params · tokens
        // (within ~35%, attention and eager bookkeeping add the rest).
        let cfg = zoo::llama32_1b();
        let g = build(&cfg, Phase::Prefill, 1, 512);
        let expect = 2.0 * cfg.param_count() as f64 * 512.0;
        let got = g.total_flops();
        let ratio = got / expect;
        assert!(
            (0.65..1.6).contains(&ratio),
            "flops ratio vs 2PN rule = {ratio}"
        );
    }

    #[test]
    fn decode_step_is_much_cheaper_than_prefill() {
        let cfg = zoo::llama32_1b();
        let prefill = build(&cfg, Phase::Prefill, 1, 512).total_flops();
        let decode = build(&cfg, Phase::DecodeStep { past_len: 512 }, 1, 512).total_flops();
        assert!(decode < prefill / 100.0);
    }

    #[test]
    fn decode_kernel_count_equals_prefill() {
        // Eager mode launches the same ops regardless of sequence length.
        let cfg = zoo::gpt2();
        let a = build(&cfg, Phase::Prefill, 1, 512).kernel_count();
        let b = build(&cfg, Phase::DecodeStep { past_len: 128 }, 1, 512).kernel_count();
        assert_eq!(a, b);
    }

    #[test]
    fn layer_sequences_repeat_modulo_workspace_memsets() {
        // The kernel-name stream of layer 2 equals layer 3 once the
        // position-varying cuBLAS workspace memsets are removed — the
        // periodicity that proximity-score fusion depends on, plus the
        // noise that keeps mid-length chains from being spuriously
        // deterministic.
        let cfg = zoo::bert_base_uncased();
        let g = build(&cfg, Phase::Prefill, 4, 512);
        let raw: Vec<&str> = g
            .kernels_in_order()
            .iter()
            .map(|k| k.name.as_str())
            .collect();
        let emb = 9; // embedding-block kernels for BERT
        let layer = 24;
        let body = |idx: usize| -> Vec<&str> {
            raw[emb + idx * layer..emb + (idx + 1) * layer]
                .iter()
                .copied()
                .filter(|n| !n.starts_with("memset"))
                .collect()
        };
        assert_eq!(body(1), body(2));
        // But the raw streams differ (the memset moved).
        assert_ne!(
            &raw[emb + layer..emb + 2 * layer],
            &raw[emb + 2 * layer..emb + 3 * layer]
        );
    }

    #[test]
    fn bert_embedding_block_is_nine_kernels() {
        let mut cfg = zoo::bert_base_uncased();
        cfg.layers = 0;
        let g = build(&cfg, Phase::Prefill, 1, 512);
        assert_eq!(g.kernel_count(), 9);
        // XLM-R: 11 (position-id derivation instead of token types).
        let mut x = zoo::xlm_roberta_base();
        x.layers = 0;
        assert_eq!(build(&x, Phase::Prefill, 1, 512).kernel_count(), 11);
    }

    #[test]
    fn flash_attention_reduces_launches_and_bytes() {
        let flash = GraphOptions {
            attention: AttentionImpl::FlashAttention2,
        };
        for cfg in [zoo::bert_base_uncased(), zoo::gpt2(), zoo::llama32_1b()] {
            let wl = Workload::new(cfg.clone(), Phase::Prefill, 4, 512);
            let eager = wl.graph();
            let fused = wl.graph_with(flash);
            assert!(
                fused.kernel_count() < eager.kernel_count(),
                "{}: FA2 must launch fewer kernels",
                cfg.name
            );
            assert!(
                fused.total_bytes() < eager.total_bytes(),
                "{}: FA2 must move fewer bytes (IO-awareness)",
                cfg.name
            );
        }
    }

    #[test]
    fn flash_graph_contains_flash_kernel() {
        let wl = Workload::new(zoo::gpt2(), Phase::Prefill, 1, 512);
        let g = wl.graph_with(GraphOptions {
            attention: AttentionImpl::FlashAttention2,
        });
        let n = g
            .kernels_in_order()
            .iter()
            .filter(|k| k.name.starts_with("flash_fwd_kernel"))
            .count();
        assert_eq!(n, 12, "one flash kernel per layer");
    }

    #[test]
    fn op_counts_exceed_kernel_counts() {
        // Views and composites launch nothing, so ops > kernels in eager mode.
        let g = build(&zoo::gpt2(), Phase::Prefill, 1, 512);
        assert!(g.op_count() > g.kernel_count());
    }
}
