//! Graph-neural-network workloads (GCN-style) — the second half of the
//! paper's §VI scope extension ("…and graph neural networks (GNNs)").
//!
//! A GCN layer is a sparse neighbor aggregation (SpMM over the adjacency
//! structure — gather-dominated, bandwidth-bound at very low efficiency)
//! followed by a dense feature transform (GEMM) and an activation. GNN
//! inference therefore sits between transformers (GEMM-heavy) and
//! recommendation models (gather-heavy) on the CPU/GPU-boundedness
//! spectrum, which is exactly why the paper calls it out as the next
//! workload to characterize.

use serde::{Deserialize, Serialize};
use skip_hw::{KernelClass, KernelWork};

use crate::graph::OperatorGraph;
use crate::ops::{KernelSpec, OpNode};

/// FP32 element size.
const EB: u64 = 4;

/// A GCN-style model over one input graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GcnConfig {
    /// Model id.
    pub name: String,
    /// Number of graph-convolution layers.
    pub layers: u32,
    /// Input feature width.
    pub in_features: u32,
    /// Hidden feature width.
    pub hidden: u32,
    /// Output classes.
    pub classes: u32,
    /// Nodes in the input graph.
    pub nodes: u64,
    /// Directed edges in the input graph.
    pub edges: u64,
}

impl GcnConfig {
    /// A GCN sized after ogbn-arxiv (170k nodes, 1.2M edges).
    #[must_use]
    pub fn ogbn_arxiv() -> Self {
        GcnConfig {
            name: "gcn-ogbn-arxiv".into(),
            layers: 3,
            in_features: 128,
            hidden: 256,
            classes: 40,
            nodes: 169_343,
            edges: 1_166_243,
        }
    }

    /// A small citation-graph GCN (Cora-like) for latency-critical serving.
    #[must_use]
    pub fn cora() -> Self {
        GcnConfig {
            name: "gcn-cora".into(),
            layers: 2,
            in_features: 1_433,
            hidden: 16,
            classes: 7,
            nodes: 2_708,
            edges: 10_556,
        }
    }

    /// Weight parameters across all layers.
    #[must_use]
    pub fn param_count(&self) -> u64 {
        let mut p = 0u64;
        let mut prev = u64::from(self.in_features);
        for layer in 0..self.layers {
            let out = if layer + 1 == self.layers {
                u64::from(self.classes)
            } else {
                u64::from(self.hidden)
            };
            p += prev * out + out;
            prev = out;
        }
        p
    }

    /// Builds the eager full-graph forward pass.
    #[must_use]
    pub fn graph(&self) -> OperatorGraph {
        let mut ops = Vec::new();
        let n = self.nodes;
        let e = self.edges;
        let mut width = u64::from(self.in_features);
        for layer in 0..self.layers {
            let out = if layer + 1 == self.layers {
                u64::from(self.classes)
            } else {
                u64::from(self.hidden)
            };
            // Feature transform: X·W (+ bias).
            ops.push(OpNode::composite(
                "aten::linear",
                vec![
                    OpNode::view("aten::t"),
                    OpNode::simple(
                        "aten::addmm",
                        vec![
                            KernelSpec::new(
                                format!("xmma_gemm_f32_{n}x{out}x{width}"),
                                KernelWork::gemm(n, out, width, EB),
                            ),
                            KernelSpec::new(
                                format!("vectorized_add_f32_{}", n * out),
                                KernelWork::elementwise(n * out, 1, 1.0, EB),
                            ),
                        ],
                    ),
                ],
            ));
            // Neighbor aggregation: SpMM over the adjacency. Gather one
            // `out`-wide row per edge, scatter-reduce into destinations —
            // bandwidth-bound with poor locality.
            ops.push(OpNode::composite(
                "torch_sparse::spmm",
                vec![
                    OpNode::simple(
                        "aten::index_select",
                        vec![KernelSpec::new(
                            format!("spmm_gather_f32_{e}x{out}"),
                            KernelWork::gather(e, out, EB),
                        )],
                    ),
                    OpNode::simple(
                        "aten::scatter_add",
                        vec![KernelSpec::new(
                            format!("spmm_scatter_add_f32_{}", n * out),
                            KernelWork {
                                class: KernelClass::Gather,
                                flops: (e * out) as f64,
                                bytes: (2 * e * out * EB) as f64,
                            },
                        )],
                    ),
                ],
            ));
            // Degree normalization + activation (last layer: none).
            ops.push(OpNode::simple(
                "aten::mul",
                vec![KernelSpec::new(
                    format!("vectorized_mul_f32_{}", n * out),
                    KernelWork::elementwise(n * out, 2, 1.0, EB),
                )],
            ));
            if layer + 1 < self.layers {
                ops.push(OpNode::simple(
                    "aten::relu",
                    vec![KernelSpec::new(
                        format!("vectorized_relu_f32_{}", n * out),
                        KernelWork::elementwise(n * out, 1, 1.0, EB),
                    )],
                ));
            }
            width = out;
        }
        OperatorGraph::from_ops(ops)
    }

    /// Bytes of node features + edge index shipped host→device.
    #[must_use]
    pub fn input_bytes(&self) -> u64 {
        self.nodes * u64::from(self.in_features) * 4 + self.edges * 2 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_counts_are_layerwise() {
        let cfg = GcnConfig::cora();
        // 1433·16 + 16 + 16·7 + 7.
        assert_eq!(cfg.param_count(), 1433 * 16 + 16 + 16 * 7 + 7);
    }

    #[test]
    fn spmm_dominates_traffic_on_arxiv() {
        let cfg = GcnConfig::ogbn_arxiv();
        let g = cfg.graph();
        let kernels = g.kernels_in_order();
        let spmm_bytes: f64 = kernels
            .iter()
            .filter(|k| k.name.starts_with("spmm"))
            .map(|k| k.work.bytes)
            .sum();
        assert!(spmm_bytes > g.total_bytes() * 0.5);
    }

    #[test]
    fn small_graphs_launch_few_kernels() {
        let g = GcnConfig::cora().graph();
        // 2 layers × ~6 kernels: GNN serving is a handful of launches.
        assert!(g.kernel_count() < 20);
        assert!(g.op_count() > g.kernel_count());
    }

    #[test]
    fn last_layer_has_no_relu() {
        let g = GcnConfig::cora().graph();
        let names: Vec<_> = g
            .kernels_in_order()
            .iter()
            .map(|k| k.name.clone())
            .collect();
        let relus = names.iter().filter(|n| n.contains("relu")).count();
        assert_eq!(relus, 1, "2 layers, relu only between them");
    }
}
