//! The model zoo: every architecture the paper evaluates.
//!
//! Table III workloads ([`bert_base_uncased`], [`xlm_roberta_base`],
//! [`gpt2`], [`llama32_1b`]), the Table I compile-mode subject
//! ([`gemma_2b`]), and the Fig. 3 7B-decoder set ([`llama2_7b`],
//! [`mistral_7b`], [`qwen_7b`], [`gemma_7b`]). Dimensions follow the public
//! HuggingFace configs; parameter counts are validated in tests against the
//! sizes the paper quotes.

use crate::config::{Activation, ArchStyle, ModelConfig, ModelKind, NormKind};

/// Bert-Base-Uncased: 12-layer encoder, ~110M parameters (Table III).
#[must_use]
pub fn bert_base_uncased() -> ModelConfig {
    ModelConfig {
        name: "bert-base-uncased".into(),
        kind: ModelKind::EncoderOnly,
        arch: ArchStyle::BertEncoder,
        layers: 12,
        hidden: 768,
        heads: 12,
        kv_heads: 12,
        ffn: 3072,
        vocab: 30_522,
        max_pos: 512,
        token_type_embeddings: true,
        norm: NormKind::LayerNorm,
        activation: Activation::GeluExact,
        tied_lm_head: true,
    }
}

/// XLM-Roberta-Base: BERT-sized encoder with a 250k multilingual
/// vocabulary, ~279M parameters (Table III).
#[must_use]
pub fn xlm_roberta_base() -> ModelConfig {
    ModelConfig {
        name: "xlm-roberta-base".into(),
        kind: ModelKind::EncoderOnly,
        arch: ArchStyle::BertEncoder,
        layers: 12,
        hidden: 768,
        heads: 12,
        kv_heads: 12,
        ffn: 3072,
        vocab: 250_002,
        max_pos: 514,
        token_type_embeddings: false,
        norm: NormKind::LayerNorm,
        activation: Activation::GeluExact,
        tied_lm_head: true,
    }
}

/// GPT2 (small): 12-layer decoder, ~124M weights (the paper's Table III
/// quotes 137M, which includes the tied LM head double-counted).
#[must_use]
pub fn gpt2() -> ModelConfig {
    ModelConfig {
        name: "gpt2".into(),
        kind: ModelKind::DecoderOnly,
        arch: ArchStyle::Gpt2Decoder,
        layers: 12,
        hidden: 768,
        heads: 12,
        kv_heads: 12,
        ffn: 3072,
        vocab: 50_257,
        max_pos: 1024,
        token_type_embeddings: false,
        norm: NormKind::LayerNorm,
        activation: Activation::GeluTanh,
        tied_lm_head: true,
    }
}

/// Llama-3.2-1B: 16-layer decoder with GQA (8 KV heads), 1.24B parameters
/// (Table III).
#[must_use]
pub fn llama32_1b() -> ModelConfig {
    ModelConfig {
        name: "llama-3.2-1b".into(),
        kind: ModelKind::DecoderOnly,
        arch: ArchStyle::LlamaDecoder,
        layers: 16,
        hidden: 2048,
        heads: 32,
        kv_heads: 8,
        ffn: 8192,
        vocab: 128_256,
        max_pos: 0,
        token_type_embeddings: false,
        norm: NormKind::RmsNorm,
        activation: Activation::SiluGated,
        tied_lm_head: true,
    }
}

/// Gemma-2B: the Table I torch.compile-mode subject (~2.5B parameters).
#[must_use]
pub fn gemma_2b() -> ModelConfig {
    ModelConfig {
        name: "gemma-2b".into(),
        kind: ModelKind::DecoderOnly,
        arch: ArchStyle::LlamaDecoder,
        layers: 18,
        hidden: 2048,
        heads: 8,
        kv_heads: 1,
        ffn: 16_384,
        vocab: 256_000,
        max_pos: 0,
        token_type_embeddings: false,
        norm: NormKind::RmsNorm,
        activation: Activation::GeluGated,
        tied_lm_head: true,
    }
}

/// Llama-2-7B (Fig. 3 subject): 32 layers, full multi-head attention.
#[must_use]
pub fn llama2_7b() -> ModelConfig {
    ModelConfig {
        name: "llama-2-7b".into(),
        kind: ModelKind::DecoderOnly,
        arch: ArchStyle::LlamaDecoder,
        layers: 32,
        hidden: 4096,
        heads: 32,
        kv_heads: 32,
        ffn: 11_008,
        vocab: 32_000,
        max_pos: 0,
        token_type_embeddings: false,
        norm: NormKind::RmsNorm,
        activation: Activation::SiluGated,
        tied_lm_head: false,
    }
}

/// Mistral-7B-v0.1 (Fig. 3 subject): GQA with 8 KV heads.
#[must_use]
pub fn mistral_7b() -> ModelConfig {
    ModelConfig {
        name: "mistral-7b".into(),
        kind: ModelKind::DecoderOnly,
        arch: ArchStyle::LlamaDecoder,
        layers: 32,
        hidden: 4096,
        heads: 32,
        kv_heads: 8,
        ffn: 14_336,
        vocab: 32_000,
        max_pos: 0,
        token_type_embeddings: false,
        norm: NormKind::RmsNorm,
        activation: Activation::SiluGated,
        tied_lm_head: false,
    }
}

/// Qwen-7B (Fig. 3 subject).
#[must_use]
pub fn qwen_7b() -> ModelConfig {
    ModelConfig {
        name: "qwen-7b".into(),
        kind: ModelKind::DecoderOnly,
        arch: ArchStyle::LlamaDecoder,
        layers: 32,
        hidden: 4096,
        heads: 32,
        kv_heads: 32,
        ffn: 11_008,
        vocab: 151_936,
        max_pos: 0,
        token_type_embeddings: false,
        norm: NormKind::RmsNorm,
        activation: Activation::SiluGated,
        tied_lm_head: false,
    }
}

/// Gemma-7B (Fig. 3 subject): wide gated-GELU MLP, 256k vocabulary.
#[must_use]
pub fn gemma_7b() -> ModelConfig {
    ModelConfig {
        name: "gemma-7b".into(),
        kind: ModelKind::DecoderOnly,
        arch: ArchStyle::LlamaDecoder,
        layers: 28,
        hidden: 3072,
        heads: 16,
        kv_heads: 16,
        ffn: 24_576,
        vocab: 256_000,
        max_pos: 0,
        token_type_embeddings: false,
        norm: NormKind::RmsNorm,
        activation: Activation::GeluGated,
        tied_lm_head: true,
    }
}

/// BERT-Large: the 24-layer encoder (~335M parameters) — for scaling
/// studies beyond the paper's base-size encoders.
#[must_use]
pub fn bert_large() -> ModelConfig {
    ModelConfig {
        name: "bert-large-uncased".into(),
        kind: ModelKind::EncoderOnly,
        arch: ArchStyle::BertEncoder,
        layers: 24,
        hidden: 1024,
        heads: 16,
        kv_heads: 16,
        ffn: 4096,
        vocab: 30_522,
        max_pos: 512,
        token_type_embeddings: true,
        norm: NormKind::LayerNorm,
        activation: Activation::GeluExact,
        tied_lm_head: true,
    }
}

/// GPT2-Medium: 24 layers, ~355M parameters.
#[must_use]
pub fn gpt2_medium() -> ModelConfig {
    ModelConfig {
        name: "gpt2-medium".into(),
        kind: ModelKind::DecoderOnly,
        arch: ArchStyle::Gpt2Decoder,
        layers: 24,
        hidden: 1024,
        heads: 16,
        kv_heads: 16,
        ffn: 4096,
        vocab: 50_257,
        max_pos: 1024,
        token_type_embeddings: false,
        norm: NormKind::LayerNorm,
        activation: Activation::GeluTanh,
        tied_lm_head: true,
    }
}

/// Llama-3.1-8B: the mid-size Llama-3 generation (32 layers, GQA).
#[must_use]
pub fn llama31_8b() -> ModelConfig {
    ModelConfig {
        name: "llama-3.1-8b".into(),
        kind: ModelKind::DecoderOnly,
        arch: ArchStyle::LlamaDecoder,
        layers: 32,
        hidden: 4096,
        heads: 32,
        kv_heads: 8,
        ffn: 14_336,
        vocab: 128_256,
        max_pos: 0,
        token_type_embeddings: false,
        norm: NormKind::RmsNorm,
        activation: Activation::SiluGated,
        tied_lm_head: false,
    }
}

/// Qwen2.5-0.5B: a sub-billion decoder for edge-latency studies.
#[must_use]
pub fn qwen25_05b() -> ModelConfig {
    ModelConfig {
        name: "qwen2.5-0.5b".into(),
        kind: ModelKind::DecoderOnly,
        arch: ArchStyle::LlamaDecoder,
        layers: 24,
        hidden: 896,
        heads: 14,
        kv_heads: 2,
        ffn: 4_864,
        vocab: 151_936,
        max_pos: 0,
        token_type_embeddings: false,
        norm: NormKind::RmsNorm,
        activation: Activation::SiluGated,
        tied_lm_head: true,
    }
}

/// The four Table III benchmark workloads, in the paper's order.
#[must_use]
pub fn table_iii() -> Vec<ModelConfig> {
    vec![
        bert_base_uncased(),
        xlm_roberta_base(),
        gpt2(),
        llama32_1b(),
    ]
}

/// The Fig. 3 7B-decoder comparison set.
#[must_use]
pub fn seven_b_models() -> Vec<ModelConfig> {
    vec![llama2_7b(), mistral_7b(), qwen_7b(), gemma_7b()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_params(cfg: &ModelConfig, expect_m: f64, tol_frac: f64) {
        let got = cfg.param_count() as f64 / 1e6;
        assert!(
            (got - expect_m).abs() / expect_m < tol_frac,
            "{}: expected ~{expect_m}M params, got {got:.1}M",
            cfg.name
        );
    }

    #[test]
    fn table_iii_parameter_counts() {
        assert_params(&bert_base_uncased(), 110.0, 0.05);
        assert_params(&xlm_roberta_base(), 279.0, 0.05);
        // GPT2 checkpoint weights are 124M; the paper's 137M counts the tied
        // head separately.
        assert_params(&gpt2(), 124.0, 0.05);
        assert_params(&llama32_1b(), 1_240.0, 0.05);
    }

    #[test]
    fn extended_zoo_parameter_counts() {
        assert_params(&gemma_2b(), 2_510.0, 0.06);
        assert_params(&llama2_7b(), 6_740.0, 0.05);
        assert_params(&mistral_7b(), 7_240.0, 0.05);
        assert_params(&qwen_7b(), 7_720.0, 0.08);
        assert_params(&gemma_7b(), 8_540.0, 0.06);
        assert_params(&bert_large(), 335.0, 0.05);
        assert_params(&gpt2_medium(), 355.0, 0.05);
        assert_params(&llama31_8b(), 8_030.0, 0.05);
        assert_params(&qwen25_05b(), 494.0, 0.10);
    }

    #[test]
    fn scaled_variants_keep_their_family_arch() {
        use crate::config::ArchStyle;
        assert_eq!(bert_large().arch, ArchStyle::BertEncoder);
        assert_eq!(gpt2_medium().arch, ArchStyle::Gpt2Decoder);
        assert_eq!(llama31_8b().arch, ArchStyle::LlamaDecoder);
        assert_eq!(qwen25_05b().arch, ArchStyle::LlamaDecoder);
        // GQA sanity: Qwen2.5-0.5B uses 2 KV heads of head_dim 64.
        assert_eq!(qwen25_05b().head_dim(), 64);
        assert_eq!(qwen25_05b().kv_dim(), 128);
    }

    #[test]
    fn kinds_match_table_iii() {
        assert_eq!(bert_base_uncased().kind, ModelKind::EncoderOnly);
        assert_eq!(xlm_roberta_base().kind, ModelKind::EncoderOnly);
        assert_eq!(gpt2().kind, ModelKind::DecoderOnly);
        assert_eq!(llama32_1b().kind, ModelKind::DecoderOnly);
    }

    #[test]
    fn zoo_names_are_unique() {
        let mut names: Vec<String> = table_iii()
            .into_iter()
            .chain(seven_b_models())
            .chain([gemma_2b()])
            .map(|m| m.name)
            .collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn gqa_models_have_fewer_kv_heads() {
        assert!(llama32_1b().kv_heads < llama32_1b().heads);
        assert!(mistral_7b().kv_heads < mistral_7b().heads);
        assert_eq!(llama2_7b().kv_heads, llama2_7b().heads);
    }
}
