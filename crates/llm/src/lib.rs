//! # skip-llm — transformer inference workload generator
//!
//! The paper benchmarks four HuggingFace models (Bert-Base-Uncased,
//! XLM-Roberta-Base, GPT2, Llama-3.2-1B; Table III) plus Gemma-2B and a zoo
//! of 7B decoders for the fusion-technique comparison (Table I / Fig. 3).
//! This crate is the simulated substitute for PyTorch + HuggingFace: it
//! turns a model architecture into the **operator graph** that eager-mode
//! execution walks — parent ATen operators containing child operators that
//! launch GPU kernels — with faithful FLOP and byte counts for every kernel.
//!
//! The structure matters as much as the arithmetic: the SKIP profiler and
//! the proximity-score fusion recommender operate on *kernel launch
//! sequences*, so the builder reproduces eager mode's chattiness — separate
//! bias adds, `contiguous` copies around batched matmuls, multi-kernel
//! softmax/layer-norm, dtype casts — and the architectural asymmetries the
//! paper's results hinge on (encoders end flush with their last layer while
//! decoders append a final-norm + LM-head tail; GPT2 fuses QKV into one
//! projection while BERT runs three).
//!
//! Entry points:
//!
//! * [`ModelConfig`] + [`zoo`] — architecture descriptions with parameter
//!   counting.
//! * [`Workload`] — (model, phase, batch, sequence length) — the unit every
//!   experiment sweeps.
//! * [`Workload::graph`] — builds the eager-mode [`OperatorGraph`].
//!
//! # Example
//!
//! ```
//! use skip_llm::{zoo, Phase, Workload};
//!
//! let wl = Workload::new(zoo::gpt2(), Phase::Prefill, 1, 512);
//! let graph = wl.graph();
//! // Eager GPT2 prefill launches hundreds of kernels…
//! assert!(graph.kernel_count() > 300);
//! // …and kernel count does not depend on batch size, only work does.
//! let wl8 = Workload::new(zoo::gpt2(), Phase::Prefill, 8, 512);
//! assert_eq!(wl8.graph().kernel_count(), graph.kernel_count());
//! assert!(wl8.graph().total_flops() > graph.total_flops());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod gnn;
mod graph;
mod ops;
pub mod rm;
mod workload;
pub mod zoo;

pub use config::{Activation, ArchStyle, ModelConfig, ModelKind, NormKind};
pub use graph::{AttentionImpl, GraphOptions, OperatorGraph};
pub use ops::{KernelSpec, OpNode};
pub use workload::{Phase, Workload};
