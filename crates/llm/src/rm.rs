//! Recommendation-model workloads (DLRM-style) — the paper's §VI scope
//! extension ("we also plan to broaden our workload scope to include
//! recommendation models (RMs)…").
//!
//! A DLRM forward pass is structurally the opposite of a transformer:
//! dozens of *tiny* embedding-bag lookups (one per sparse feature table),
//! small MLPs, and a pairwise feature-interaction — hundreds of launches
//! with almost no FLOPs behind them. That makes RMs the most CPU-bound
//! workload class of all, and therefore the most sensitive to the coupled
//! architecture's CPU and launch path.

use serde::{Deserialize, Serialize};
use skip_hw::KernelWork;

use crate::graph::OperatorGraph;
use crate::ops::{KernelSpec, OpNode};

/// FP32 element size (DLRM inference typically runs fp32/fp16 mixed; we
/// model fp32 embeddings and MLPs).
const EB: u64 = 4;

/// A DLRM-style recommendation model.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DlrmConfig {
    /// Model id.
    pub name: String,
    /// Number of sparse-feature embedding tables.
    pub num_tables: u32,
    /// Rows per embedding table.
    pub rows_per_table: u64,
    /// Embedding vector width.
    pub embedding_dim: u32,
    /// Lookups pooled per sample per table.
    pub pooling_factor: u32,
    /// Dense (continuous) input features.
    pub dense_features: u32,
    /// Bottom-MLP layer widths (dense features → embedding dim).
    pub bottom_mlp: Vec<u32>,
    /// Top-MLP layer widths (interaction output → 1).
    pub top_mlp: Vec<u32>,
}

impl DlrmConfig {
    /// A DLRM sized after the MLPerf-inference DLRM benchmark: 26 sparse
    /// tables, 128-dim embeddings, 13 dense features.
    #[must_use]
    pub fn mlperf_dlrm() -> Self {
        DlrmConfig {
            name: "dlrm-mlperf".into(),
            num_tables: 26,
            rows_per_table: 1_000_000,
            embedding_dim: 128,
            pooling_factor: 1,
            dense_features: 13,
            bottom_mlp: vec![512, 256, 128],
            top_mlp: vec![1024, 1024, 512, 256, 1],
        }
    }

    /// Total embedding + MLP parameters.
    #[must_use]
    pub fn param_count(&self) -> u64 {
        let mut p =
            u64::from(self.num_tables) * self.rows_per_table * u64::from(self.embedding_dim);
        let mut prev = u64::from(self.dense_features);
        for &w in &self.bottom_mlp {
            p += prev * u64::from(w) + u64::from(w);
            prev = u64::from(w);
        }
        let t = u64::from(self.num_tables) + 1;
        let mut prev = t * (t - 1) / 2 + u64::from(self.embedding_dim);
        for &w in &self.top_mlp {
            p += prev * u64::from(w) + u64::from(w);
            prev = u64::from(w);
        }
        p
    }

    /// Builds the eager forward graph for one batch.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn graph(&self, batch: u32) -> OperatorGraph {
        assert!(batch > 0, "batch must be positive");
        let b = u64::from(batch);
        let d = u64::from(self.embedding_dim);
        let mut ops = Vec::new();

        // Bottom MLP over the dense features.
        let mut prev = u64::from(self.dense_features);
        for &w in &self.bottom_mlp {
            ops.push(linear(b, u64::from(w), prev));
            ops.push(relu(b * u64::from(w)));
            prev = u64::from(w);
        }

        // One embedding-bag lookup per sparse table: gather + pooling sum.
        for table in 0..self.num_tables {
            let rows = b * u64::from(self.pooling_factor);
            ops.push(OpNode::composite(
                "aten::embedding_bag",
                vec![
                    OpNode::view("aten::view"),
                    OpNode::simple(
                        "aten::index_select",
                        vec![KernelSpec::new(
                            format!("embedding_bag_gather_t{table}_{rows}x{d}"),
                            KernelWork::gather(rows, d, EB),
                        )],
                    ),
                    OpNode::simple(
                        "aten::sum",
                        vec![KernelSpec::new(
                            format!("embedding_bag_pool_f32_{}", b * d),
                            KernelWork::reduction(rows * d, 1.0, EB),
                        )],
                    ),
                ],
            ));
        }

        // Feature interaction: concat all vectors, pairwise dots via bmm,
        // triu extraction, concat with the bottom output.
        let t = u64::from(self.num_tables) + 1;
        ops.push(OpNode::simple(
            "aten::cat",
            vec![KernelSpec::new(
                format!("cat_f32_{}", b * t * d),
                KernelWork::memory((b * t * d * EB) as f64),
            )],
        ));
        ops.push(OpNode::composite(
            "aten::matmul",
            vec![
                OpNode::view("aten::transpose"),
                OpNode::simple(
                    "aten::bmm",
                    vec![KernelSpec::new(
                        format!("interaction_bmm_f32_{b}x{t}x{t}x{d}"),
                        KernelWork::batched_gemm(b, t, t, d, EB),
                    )],
                ),
            ],
        ));
        ops.push(OpNode::simple(
            "aten::index_select",
            vec![KernelSpec::new(
                format!("triu_gather_f32_{}", b * t * (t - 1) / 2),
                KernelWork::gather(b, t * (t - 1) / 2, EB),
            )],
        ));
        ops.push(OpNode::simple(
            "aten::cat",
            vec![KernelSpec::new(
                format!("cat_f32_{}", b * (t * (t - 1) / 2 + d)),
                KernelWork::memory((b * (t * (t - 1) / 2 + d) * EB) as f64),
            )],
        ));

        // Top MLP + sigmoid.
        let mut prev = t * (t - 1) / 2 + d;
        for &w in &self.top_mlp {
            ops.push(linear(b, u64::from(w), prev));
            ops.push(relu(b * u64::from(w)));
            prev = u64::from(w);
        }
        ops.push(OpNode::simple(
            "aten::sigmoid",
            vec![KernelSpec::new(
                format!("vectorized_sigmoid_f32_{b}"),
                KernelWork::elementwise(b, 1, 4.0, EB),
            )],
        ));

        OperatorGraph::from_ops(ops)
    }

    /// Bytes of sparse indices + dense features shipped host→device.
    #[must_use]
    pub fn input_bytes(&self, batch: u32) -> u64 {
        let b = u64::from(batch);
        b * u64::from(self.num_tables) * u64::from(self.pooling_factor) * 8
            + b * u64::from(self.dense_features) * 4
    }
}

fn linear(m: u64, out_dim: u64, in_dim: u64) -> OpNode {
    OpNode::composite(
        "aten::linear",
        vec![
            OpNode::view("aten::t"),
            OpNode::simple(
                "aten::addmm",
                vec![
                    KernelSpec::new(
                        format!("xmma_gemm_f32_{m}x{out_dim}x{in_dim}"),
                        KernelWork::gemm(m, out_dim, in_dim, EB),
                    ),
                    KernelSpec::new(
                        format!("vectorized_add_f32_{}", m * out_dim),
                        KernelWork::elementwise(m * out_dim, 1, 1.0, EB),
                    ),
                ],
            ),
        ],
    )
}

fn relu(elems: u64) -> OpNode {
    OpNode::simple(
        "aten::relu",
        vec![KernelSpec::new(
            format!("vectorized_relu_f32_{elems}"),
            KernelWork::elementwise(elems, 1, 1.0, EB),
        )],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlperf_dlrm_has_expected_scale() {
        let cfg = DlrmConfig::mlperf_dlrm();
        // 26M embedding rows × 128 dims dominates: ≈ 3.3B params.
        let p = cfg.param_count() as f64 / 1e9;
        assert!((3.0..3.7).contains(&p), "{p}B params");
    }

    #[test]
    fn graph_is_launch_heavy_but_flop_light() {
        let cfg = DlrmConfig::mlperf_dlrm();
        let g = cfg.graph(1);
        // Dozens of launches…
        assert!(g.kernel_count() > 70, "{}", g.kernel_count());
        // …but well under a GFLOP at batch 1.
        assert!(g.total_flops() < 1e9, "{}", g.total_flops());
    }

    #[test]
    fn kernel_count_is_batch_independent() {
        let cfg = DlrmConfig::mlperf_dlrm();
        assert_eq!(cfg.graph(1).kernel_count(), cfg.graph(64).kernel_count());
    }

    #[test]
    fn each_table_contributes_two_kernels() {
        let mut cfg = DlrmConfig::mlperf_dlrm();
        let base = cfg.graph(1).kernel_count();
        cfg.num_tables += 4;
        assert_eq!(cfg.graph(1).kernel_count(), base + 8);
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_rejected() {
        let _ = DlrmConfig::mlperf_dlrm().graph(0);
    }
}
