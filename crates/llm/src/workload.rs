//! The experimental unit: (model, phase, batch size, sequence length).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

use crate::config::ModelConfig;
use crate::graph::{self, GraphOptions, OperatorGraph};

/// Key of the process-global graph cache: everything graph construction
/// reads. [`ModelConfig`] is `Eq + Hash` structural data, so two configs
/// compare equal exactly when they build identical graphs.
type GraphKey = (ModelConfig, Phase, u32, u32, GraphOptions);

/// Inference phase (paper §II-A): the compute-heavy prefill that produces
/// the first token, or one autoregressive decode step extending a KV cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Process the whole prompt; the latency of this phase is the
    /// time-to-first-token (TTFT) every figure of the paper reports.
    Prefill,
    /// Generate one token given `past_len` cached positions.
    DecodeStep {
        /// Number of tokens already in the KV cache.
        past_len: u32,
    },
}

impl Phase {
    /// Short label used in trace metadata.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Phase::Prefill => "prefill",
            Phase::DecodeStep { .. } => "decode",
        }
    }
}

/// A fully specified inference workload.
///
/// # Example
///
/// ```
/// use skip_llm::{zoo, Phase, Workload};
///
/// let wl = Workload::new(zoo::bert_base_uncased(), Phase::Prefill, 8, 512);
/// assert_eq!(wl.batch_size, 8);
/// let graph = wl.graph();
/// assert!(graph.kernel_count() > 250);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// The model architecture.
    pub model: ModelConfig,
    /// Prefill or decode.
    pub phase: Phase,
    /// Batch size (the paper's swept variable).
    pub batch_size: u32,
    /// Input sequence length in tokens (512 throughout the paper unless
    /// noted).
    pub seq_len: u32,
}

impl Workload {
    /// Creates a workload.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` or `seq_len` is zero.
    #[must_use]
    pub fn new(model: ModelConfig, phase: Phase, batch_size: u32, seq_len: u32) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        assert!(seq_len > 0, "seq_len must be positive");
        Workload {
            model,
            phase,
            batch_size,
            seq_len,
        }
    }

    /// Builds the eager-mode operator graph for this workload.
    #[must_use]
    pub fn graph(&self) -> OperatorGraph {
        graph::build(&self.model, self.phase, self.batch_size, self.seq_len)
    }

    /// Builds the operator graph with explicit [`GraphOptions`]
    /// (e.g. FlashAttention-2 lowering).
    ///
    /// [`GraphOptions`]: crate::GraphOptions
    #[must_use]
    pub fn graph_with(&self, opts: crate::GraphOptions) -> OperatorGraph {
        graph::build_with(&self.model, self.phase, self.batch_size, self.seq_len, opts)
    }

    /// [`Workload::graph_with`] through a process-global structural-sharing
    /// cache: the first caller for a (model, phase, batch, seq, options)
    /// shape pays the build, every later caller — another engine run in a
    /// batch sweep, another replica pricing the same serving key — gets an
    /// `Arc` to the same immutable graph. Graph construction is pure in its
    /// key, so the shared graph is indistinguishable from a fresh build.
    #[must_use]
    pub fn graph_shared(&self, opts: GraphOptions) -> Arc<OperatorGraph> {
        static CACHE: OnceLock<Mutex<HashMap<GraphKey, Arc<OperatorGraph>>>> = OnceLock::new();
        let key = (
            self.model.clone(),
            self.phase,
            self.batch_size,
            self.seq_len,
            opts,
        );
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(g) = cache.lock().expect("graph cache poisoned").get(&key) {
            return Arc::clone(g);
        }
        // Build outside the lock: graphs take tens of microseconds and the
        // same shape racing twice costs one redundant build, not a stall of
        // every other shape behind the lock.
        let built = Arc::new(self.graph_with(opts));
        Arc::clone(
            cache
                .lock()
                .expect("graph cache poisoned")
                .entry(key)
                .or_insert(built),
        )
    }

    /// Bytes of input the host must ship to the device before the forward
    /// pass (token IDs + attention mask, int64 as PyTorch sends them).
    #[must_use]
    pub fn input_bytes(&self) -> u64 {
        let tokens = u64::from(self.batch_size) * u64::from(self.seq_len);
        tokens * 8 * 2
    }

    /// Number of query tokens processed by one forward pass.
    #[must_use]
    pub fn query_tokens(&self) -> u64 {
        match self.phase {
            Phase::Prefill => u64::from(self.batch_size) * u64::from(self.seq_len),
            Phase::DecodeStep { .. } => u64::from(self.batch_size),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    #[should_panic(expected = "batch_size must be positive")]
    fn zero_batch_rejected() {
        let _ = Workload::new(zoo::gpt2(), Phase::Prefill, 0, 512);
    }

    #[test]
    #[should_panic(expected = "seq_len must be positive")]
    fn zero_seq_rejected() {
        let _ = Workload::new(zoo::gpt2(), Phase::Prefill, 1, 0);
    }

    #[test]
    fn input_bytes_scale_with_batch_and_seq() {
        let a = Workload::new(zoo::gpt2(), Phase::Prefill, 1, 512).input_bytes();
        let b = Workload::new(zoo::gpt2(), Phase::Prefill, 4, 512).input_bytes();
        assert_eq!(b, 4 * a);
    }

    #[test]
    fn query_tokens_differ_by_phase() {
        let p = Workload::new(zoo::gpt2(), Phase::Prefill, 2, 256);
        let d = Workload::new(zoo::gpt2(), Phase::DecodeStep { past_len: 256 }, 2, 256);
        assert_eq!(p.query_tokens(), 512);
        assert_eq!(d.query_tokens(), 2);
    }

    #[test]
    fn phase_labels() {
        assert_eq!(Phase::Prefill.label(), "prefill");
        assert_eq!(Phase::DecodeStep { past_len: 1 }.label(), "decode");
    }
}
