//! Transformer architecture descriptions.

use serde::{Deserialize, Serialize};

/// Encoder-only vs decoder-only — the paper's workload taxonomy (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Bidirectional encoder (BERT family): one forward pass per request.
    EncoderOnly,
    /// Autoregressive decoder (GPT family): prefill then decode phases.
    DecoderOnly,
}

/// Which concrete eager-mode operator pattern the model lowers to.
///
/// The three styles differ in exactly the ways that shape kernel streams:
/// BERT-style encoders run separate Q/K/V projections and have no output
/// head; GPT-2 fuses QKV into one `Conv1D` and ends with a LayerNorm +
/// LM-head tail; Llama-style decoders use RMSNorm (one fused kernel),
/// rotary embeddings, grouped-query attention and a gated MLP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArchStyle {
    /// BERT/RoBERTa encoder blocks (post-LayerNorm, separate Q/K/V).
    BertEncoder,
    /// GPT-2 blocks (pre-LayerNorm, fused QKV `Conv1D`, tanh-GELU).
    Gpt2Decoder,
    /// Llama/Gemma/Mistral/Qwen blocks (RMSNorm, RoPE, GQA, gated MLP).
    LlamaDecoder,
}

/// Normalization layer flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NormKind {
    /// Classic LayerNorm: mean/variance statistics then affine — lowers to
    /// multiple kernels in eager mode.
    LayerNorm,
    /// RMSNorm: single fused kernel in modern stacks.
    RmsNorm,
}

/// MLP activation flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Exact (erf-based) GELU — BERT/XLM-R.
    GeluExact,
    /// Tanh-approximated GELU (`NewGELU`) — GPT-2; several elementwise
    /// kernels in eager mode.
    GeluTanh,
    /// SiLU with gating (SwiGLU) — Llama family.
    SiluGated,
    /// GELU with gating (GeGLU) — Gemma.
    GeluGated,
}

/// A transformer architecture: everything needed to generate its operator
/// graph and count its parameters.
///
/// Fields are public in the C-struct spirit: this is passive configuration
/// data consumed by the graph builder.
///
/// # Example
///
/// ```
/// let bert = skip_llm::zoo::bert_base_uncased();
/// // ~110M parameters (Table III).
/// let m = bert.param_count() as f64 / 1e6;
/// assert!((m - 110.0).abs() < 8.0, "BERT-base ≈ 110M params, got {m:.1}M");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelConfig {
    /// HuggingFace-style model id, e.g. `"gpt2"`.
    pub name: String,
    /// Encoder-only or decoder-only.
    pub kind: ModelKind,
    /// Operator-graph style.
    pub arch: ArchStyle,
    /// Number of transformer layers.
    pub layers: u32,
    /// Hidden dimension.
    pub hidden: u32,
    /// Attention heads.
    pub heads: u32,
    /// Key/value heads (< `heads` for grouped-query attention).
    pub kv_heads: u32,
    /// MLP intermediate dimension.
    pub ffn: u32,
    /// Vocabulary size.
    pub vocab: u32,
    /// Maximum position embeddings (0 for rotary-only models).
    pub max_pos: u32,
    /// Whether the model has token-type (segment) embeddings (BERT).
    pub token_type_embeddings: bool,
    /// Normalization flavour.
    pub norm: NormKind,
    /// Activation flavour.
    pub activation: Activation,
    /// Whether the LM head shares the input embedding matrix.
    pub tied_lm_head: bool,
}

impl ModelConfig {
    /// Dimension of one attention head.
    ///
    /// # Panics
    ///
    /// Panics if `heads` is zero or does not divide `hidden` (invalid
    /// architecture).
    #[must_use]
    pub fn head_dim(&self) -> u32 {
        assert!(self.heads > 0, "model must have at least one head");
        assert_eq!(
            self.hidden % self.heads,
            0,
            "hidden ({}) must be divisible by heads ({})",
            self.hidden,
            self.heads
        );
        self.hidden / self.heads
    }

    /// Combined K/V projection width (`kv_heads · head_dim`).
    #[must_use]
    pub fn kv_dim(&self) -> u32 {
        self.kv_heads * self.head_dim()
    }

    /// `true` when the MLP is gated (two up projections).
    #[must_use]
    pub fn gated_ffn(&self) -> bool {
        matches!(
            self.activation,
            Activation::SiluGated | Activation::GeluGated
        )
    }

    /// Whether biases are present on the projections (the Llama family
    /// drops them).
    #[must_use]
    pub fn has_bias(&self) -> bool {
        !matches!(self.arch, ArchStyle::LlamaDecoder)
    }

    /// Total parameter count, used to validate zoo entries against the
    /// paper's Table III figures.
    #[must_use]
    pub fn param_count(&self) -> u64 {
        let h = u64::from(self.hidden);
        let ffn = u64::from(self.ffn);
        let v = u64::from(self.vocab);
        let kv = u64::from(self.kv_dim());
        let bias = u64::from(self.has_bias());

        let mut p = v * h; // word embeddings
        p += u64::from(self.max_pos) * h;
        if self.token_type_embeddings {
            p += 2 * h;
        }
        // Embedding-level norm for encoders.
        if self.kind == ModelKind::EncoderOnly {
            p += 2 * h;
        }

        // Per layer: attention projections.
        let attn = h * h + bias * h // Q
            + 2 * (h * kv + bias * kv) // K, V
            + h * h + bias * h; // output
                                // MLP.
        let mlp = if self.gated_ffn() {
            3 * h * ffn
        } else {
            2 * (h * ffn) + bias * (ffn + h)
        };
        // Norms: two per layer; LayerNorm has weight+bias, RMSNorm weight.
        let norm_params = match self.norm {
            NormKind::LayerNorm => 2 * h,
            NormKind::RmsNorm => h,
        };
        p += u64::from(self.layers) * (attn + mlp + 2 * norm_params);

        // Decoder tail: final norm + (untied) LM head.
        if self.kind == ModelKind::DecoderOnly {
            p += norm_params;
            if !self.tied_lm_head {
                p += v * h;
            }
        }
        p
    }

    /// Approximate FP16 weight footprint in bytes.
    #[must_use]
    pub fn weight_bytes_fp16(&self) -> u64 {
        self.param_count() * 2
    }
}

#[cfg(test)]
mod tests {
    use crate::zoo;

    #[test]
    fn head_dim_divides() {
        let m = zoo::llama32_1b();
        assert_eq!(m.head_dim(), 64);
        assert_eq!(m.kv_dim(), 8 * 64);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn bad_head_count_panics() {
        let mut m = zoo::gpt2();
        m.heads = 7;
        let _ = m.head_dim();
    }

    #[test]
    fn gated_ffn_detection() {
        assert!(zoo::llama32_1b().gated_ffn());
        assert!(zoo::gemma_2b().gated_ffn());
        assert!(!zoo::gpt2().gated_ffn());
        assert!(!zoo::bert_base_uncased().gated_ffn());
    }

    #[test]
    fn llama_family_is_biasless() {
        assert!(!zoo::llama32_1b().has_bias());
        assert!(zoo::bert_base_uncased().has_bias());
        assert!(zoo::gpt2().has_bias());
    }

    #[test]
    fn weight_bytes_are_two_per_param() {
        let m = zoo::gpt2();
        assert_eq!(m.weight_bytes_fp16(), m.param_count() * 2);
    }
}
