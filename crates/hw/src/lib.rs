//! # skip-hw — calibrated CPU, GPU, interconnect and platform models
//!
//! The paper evaluates physical machines; this crate is the *simulated
//! substitute*: analytical performance models of the processing units and
//! interconnects of the three evaluation platforms (plus a tightly-coupled
//! MI300A-like platform from the paper's future-work list).
//!
//! The models capture exactly the effects the paper measures:
//!
//! * **CPU** ([`CpuModel`]) — serial operator-dispatch cost scaled by
//!   single-thread performance (the paper's key low-batch factor: the Grace
//!   CPU dispatches operators ~2.8× slower than the Xeon), plus the CPU-side
//!   cost of a `cudaLaunchKernel` call.
//! * **GPU** ([`GpuModel`]) — per-kernel duration from a roofline model with
//!   occupancy ramps: `t = overhead + max(flops/(peak·eff_c),
//!   bytes/(bw·eff_m))`, where the efficiencies saturate with work size.
//!   Small-batch kernels under-utilize the device; the GH200's doubled HBM3
//!   bandwidth shortens memory-bound kernels, which is what extends its
//!   CPU-bound region to 4× larger batch sizes.
//! * **Interconnect** ([`Interconnect`]) — PCIe generations vs NVLink-C2C vs
//!   on-package Infinity Fabric: launch-path latency and host↔device copy
//!   bandwidth.
//! * **Platform** ([`Platform`]) — the assembled systems with presets
//!   [`Platform::amd_a100`], [`Platform::intel_h100`], [`Platform::gh200`]
//!   and [`Platform::mi300a`], calibrated against the paper's own Table V
//!   launch-overhead measurements.
//!
//! # Example
//!
//! ```
//! use skip_hw::{KernelClass, KernelWork, Platform};
//!
//! let gh200 = Platform::gh200();
//! // Table V: GH200 measures ~2771.6 ns nullKernel launch overhead.
//! let t = gh200.launch_overhead();
//! assert!((t.as_nanos_f64() - 2771.6).abs() < 1.0);
//!
//! // A 512x768x768 FP16 GEMM runs faster on GH200's HBM3 than on the
//! // PCIe H100 because at this size it is memory-bandwidth-bound.
//! let gemm = KernelWork::gemm(512, 768, 768, 2);
//! let h100 = Platform::intel_h100();
//! assert!(gh200.gpu.kernel_duration(&gemm) < h100.gpu.kernel_duration(&gemm));
//! # assert!(matches!(gemm.class, KernelClass::Gemm));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coupling;
mod cpu;
mod gpu;
mod interconnect;
mod kernel;
mod platform;
mod power;

pub use coupling::Coupling;
pub use cpu::{CpuModel, OpComplexity};
pub use gpu::GpuModel;
pub use interconnect::{Interconnect, InterconnectKind};
pub use kernel::{KernelClass, KernelWork};
pub use platform::{Platform, PlatformBuilder};
pub use power::PowerModel;
