//! Platform power models — an energy-efficiency extension.
//!
//! The paper's Table IV lists the power envelopes of the evaluation
//! platforms (A100 500 W, H100 PCIe 350 W, GH200 module 900 W) and its
//! motivation cites the energy cost of pervasive inference ([12], [42]).
//! This module adds a simple two-state (busy/idle) power model per
//! processing unit so experiments can convert SKIP's busy/idle time
//! decomposition directly into energy per request.

use serde::{Deserialize, Serialize};
use skip_des::SimDuration;

/// Busy/idle power draw of a platform's CPU and GPU, watts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// GPU power when executing kernels.
    pub gpu_busy_w: f64,
    /// GPU power when idle (clock-gated, memory refreshed).
    pub gpu_idle_w: f64,
    /// CPU package power while dispatching (single hot core + uncore).
    pub cpu_busy_w: f64,
    /// CPU package idle power.
    pub cpu_idle_w: f64,
}

impl PowerModel {
    /// AMD EPYC 7313 + A100-SXM4 (500 W GPU per Table IV).
    #[must_use]
    pub fn amd_a100() -> Self {
        PowerModel {
            gpu_busy_w: 500.0,
            gpu_idle_w: 60.0,
            cpu_busy_w: 155.0,
            cpu_idle_w: 45.0,
        }
    }

    /// 2P Xeon 8468V + H100 PCIe (350 W GPU per Table IV).
    #[must_use]
    pub fn intel_h100() -> Self {
        PowerModel {
            gpu_busy_w: 350.0,
            gpu_idle_w: 50.0,
            cpu_busy_w: 660.0,
            cpu_idle_w: 130.0,
        }
    }

    /// GH200 superchip: the 900 W module budget (Table IV) split between
    /// the Hopper GPU and the Grace CPU.
    #[must_use]
    pub fn gh200() -> Self {
        PowerModel {
            gpu_busy_w: 700.0,
            gpu_idle_w: 80.0,
            cpu_busy_w: 200.0,
            cpu_idle_w: 40.0,
        }
    }

    /// MI300A APU (~760 W package).
    #[must_use]
    pub fn mi300a() -> Self {
        PowerModel {
            gpu_busy_w: 600.0,
            gpu_idle_w: 70.0,
            cpu_busy_w: 160.0,
            cpu_idle_w: 35.0,
        }
    }

    /// Energy in joules given the busy/idle decomposition of one inference
    /// (the quantities SKIP's `ProfileReport` provides).
    #[must_use]
    pub fn energy_joules(
        &self,
        gpu_busy: SimDuration,
        gpu_idle: SimDuration,
        cpu_busy: SimDuration,
        cpu_idle: SimDuration,
    ) -> f64 {
        self.gpu_busy_w * gpu_busy.as_secs_f64()
            + self.gpu_idle_w * gpu_idle.as_secs_f64()
            + self.cpu_busy_w * cpu_busy.as_secs_f64()
            + self.cpu_idle_w * cpu_idle.as_secs_f64()
    }

    /// Worst-case (all-busy) power, watts.
    #[must_use]
    pub fn peak_w(&self) -> f64 {
        self.gpu_busy_w + self.cpu_busy_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn energy_integrates_power_over_time() {
        let p = PowerModel::intel_h100();
        // 10 ms GPU busy at 350 W = 3.5 J, plus 10 ms CPU idle at 130 W.
        let e = p.energy_joules(ms(10), SimDuration::ZERO, SimDuration::ZERO, ms(10));
        assert!((e - (3.5 + 1.3)).abs() < 1e-9, "{e}");
    }

    #[test]
    fn zero_time_zero_energy() {
        let p = PowerModel::gh200();
        assert_eq!(
            p.energy_joules(
                SimDuration::ZERO,
                SimDuration::ZERO,
                SimDuration::ZERO,
                SimDuration::ZERO
            ),
            0.0
        );
    }

    #[test]
    fn table_iv_envelopes_are_respected() {
        // GH200 has the biggest module budget; H100 PCIe the smallest GPU.
        assert!(PowerModel::gh200().gpu_busy_w > PowerModel::amd_a100().gpu_busy_w);
        assert!(PowerModel::intel_h100().gpu_busy_w < PowerModel::amd_a100().gpu_busy_w);
        // The GH200 module stays within its 900 W budget.
        assert!(PowerModel::gh200().peak_w() <= 900.0);
    }

    #[test]
    fn busy_power_exceeds_idle_power() {
        for p in [
            PowerModel::amd_a100(),
            PowerModel::intel_h100(),
            PowerModel::gh200(),
            PowerModel::mi300a(),
        ] {
            assert!(p.gpu_busy_w > p.gpu_idle_w);
            assert!(p.cpu_busy_w > p.cpu_idle_w);
        }
    }
}
