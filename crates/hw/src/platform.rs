//! Assembled evaluation platforms (paper Table IV).

use serde::{Deserialize, Serialize};
use skip_des::SimDuration;

use crate::coupling::Coupling;
use crate::cpu::CpuModel;
use crate::gpu::GpuModel;
use crate::interconnect::Interconnect;

/// A complete CPU-GPU system: the unit the paper benchmarks.
///
/// # Example
///
/// ```
/// use skip_hw::Platform;
///
/// // Launch overheads reproduce Table V exactly.
/// assert!((Platform::amd_a100().launch_overhead().as_nanos_f64() - 2260.5).abs() < 1.0);
/// assert!((Platform::intel_h100().launch_overhead().as_nanos_f64() - 2374.6).abs() < 1.0);
/// assert!((Platform::gh200().launch_overhead().as_nanos_f64() - 2771.6).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Short machine identifier used in figures, e.g. `"intel_h100"`.
    pub name: String,
    /// The host CPU.
    pub cpu: CpuModel,
    /// The accelerator.
    pub gpu: GpuModel,
    /// The CPU↔GPU link.
    pub interconnect: Interconnect,
    /// Coupling paradigm.
    pub coupling: Coupling,
}

impl Platform {
    /// LC platform 1 (Table IV): AMD EPYC 7313 + A100-SXM4-80GB over PCIe
    /// Gen4.
    #[must_use]
    pub fn amd_a100() -> Self {
        Platform {
            name: "amd_a100".into(),
            cpu: CpuModel::epyc_7313(),
            gpu: GpuModel::a100_sxm4(),
            interconnect: Interconnect::pcie_gen4(),
            coupling: Coupling::Loose,
        }
    }

    /// LC platform 2 (Table IV): 2P Intel Xeon Platinum 8468V + H100 PCIe
    /// over PCIe Gen5.
    #[must_use]
    pub fn intel_h100() -> Self {
        Platform {
            name: "intel_h100".into(),
            cpu: CpuModel::xeon_8468v(),
            gpu: GpuModel::h100_pcie(),
            interconnect: Interconnect::pcie_gen5(),
            coupling: Coupling::Loose,
        }
    }

    /// CC platform (Table IV): NVIDIA Grace Hopper Superchip — Grace CPU +
    /// Hopper GPU over NVLink-C2C with unified virtual memory.
    #[must_use]
    pub fn gh200() -> Self {
        Platform {
            name: "gh200".into(),
            cpu: CpuModel::grace(),
            gpu: GpuModel::h100_gh200(),
            interconnect: Interconnect::nvlink_c2c(),
            coupling: Coupling::Close,
        }
    }

    /// TC platform (paper §VI future work): AMD Instinct MI300A APU with
    /// physically unified HBM3.
    #[must_use]
    pub fn mi300a() -> Self {
        Platform {
            name: "mi300a".into(),
            cpu: CpuModel::zen4_mi300a(),
            gpu: GpuModel::mi300a_cdna3(),
            interconnect: Interconnect::infinity_fabric(),
            coupling: Coupling::Tight,
        }
    }

    /// The three platforms the paper evaluates, in Table IV order.
    #[must_use]
    pub fn paper_trio() -> Vec<Platform> {
        vec![
            Platform::amd_a100(),
            Platform::intel_h100(),
            Platform::gh200(),
        ]
    }

    /// End-to-end kernel launch overhead on an idle GPU: the CPU-side
    /// `cudaLaunchKernel` cost plus the interconnect's launch-path latency.
    /// This is the quantity the paper's nullKernel microbenchmark measures
    /// (Table V) and the constant floor of TKLQT in the CPU-bound region.
    #[must_use]
    pub fn launch_overhead(&self) -> SimDuration {
        self.cpu.launch_call_cost() + self.interconnect.launch_latency()
    }

    /// The platform's power model (for the energy-efficiency extension).
    /// Preset platforms get their Table IV envelopes; custom builds fall
    /// back to the Intel+H100 model.
    #[must_use]
    pub fn power(&self) -> crate::PowerModel {
        match self.name.as_str() {
            "amd_a100" => crate::PowerModel::amd_a100(),
            "gh200" => crate::PowerModel::gh200(),
            "mi300a" => crate::PowerModel::mi300a(),
            _ => crate::PowerModel::intel_h100(),
        }
    }

    /// Host→device transfer time for `bytes` of input data; zero on
    /// tightly-coupled platforms with unified physical memory.
    #[must_use]
    pub fn h2d_transfer(&self, bytes: u64) -> SimDuration {
        if self.coupling.requires_h2d_copy() {
            self.interconnect.transfer_time(bytes)
        } else {
            SimDuration::ZERO
        }
    }

    /// Device→host transfer time for `bytes`. The links in Table IV are
    /// symmetric, so this prices like [`h2d_transfer`](Self::h2d_transfer):
    /// the device side of a migration staged through host memory, zero
    /// under tight coupling where "device" and "host" share physical HBM.
    #[must_use]
    pub fn d2h_transfer(&self, bytes: u64) -> SimDuration {
        self.h2d_transfer(bytes)
    }

    /// Time to hand `bytes` of KV cache from this platform's device to
    /// `dst`'s device, staged through host memory: a D2H drain over the
    /// source coupling plus an H2D fill over the destination coupling.
    /// Each leg collapses to zero when its side is tightly coupled, so the
    /// handoff price is derived from the same LC/CC/TC coupling model that
    /// prices every other transfer in the simulator.
    #[must_use]
    pub fn kv_handoff_time(&self, dst: &Platform, bytes: u64) -> SimDuration {
        self.d2h_transfer(bytes) + dst.h2d_transfer(bytes)
    }
}

/// Builder for custom/ablation platforms ([C-BUILDER]).
///
/// Starts from an existing preset and swaps parts — used by the ablation
/// benches ("what if Grace had Xeon-class single-thread performance?").
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html#c-builder
///
/// # Example
///
/// ```
/// use skip_hw::{CpuModel, Platform, PlatformBuilder};
///
/// let hypothetical = PlatformBuilder::from(Platform::gh200())
///     .name("gh200_xeon_cpu")
///     .cpu(CpuModel::xeon_8468v())
///     .build();
/// assert_eq!(hypothetical.gpu, Platform::gh200().gpu);
/// assert_eq!(hypothetical.cpu, CpuModel::xeon_8468v());
/// ```
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    inner: Platform,
}

impl From<Platform> for PlatformBuilder {
    fn from(base: Platform) -> Self {
        PlatformBuilder { inner: base }
    }
}

impl PlatformBuilder {
    /// Sets the platform name.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.inner.name = name.into();
        self
    }

    /// Swaps the CPU model.
    #[must_use]
    pub fn cpu(mut self, cpu: CpuModel) -> Self {
        self.inner.cpu = cpu;
        self
    }

    /// Swaps the GPU model.
    #[must_use]
    pub fn gpu(mut self, gpu: GpuModel) -> Self {
        self.inner.gpu = gpu;
        self
    }

    /// Swaps the interconnect.
    #[must_use]
    pub fn interconnect(mut self, ic: Interconnect) -> Self {
        self.inner.interconnect = ic;
        self
    }

    /// Sets the coupling paradigm.
    #[must_use]
    pub fn coupling(mut self, coupling: Coupling) -> Self {
        self.inner.coupling = coupling;
        self
    }

    /// Finishes the build.
    #[must_use]
    pub fn build(self) -> Platform {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_overheads_reproduce_table_v() {
        let cases = [
            (Platform::amd_a100(), 2_260.5),
            (Platform::intel_h100(), 2_374.6),
            (Platform::gh200(), 2_771.6),
        ];
        for (p, expect) in cases {
            let got = p.launch_overhead().as_nanos_f64();
            assert!(
                (got - expect).abs() < 1.0,
                "{}: got {got}, expected {expect}",
                p.name
            );
        }
    }

    #[test]
    fn gh200_has_highest_launch_overhead_but_fastest_nullkernel() {
        // The Table V trade-off the paper highlights.
        let trio = Platform::paper_trio();
        let gh = Platform::gh200();
        for p in &trio {
            if p.name != gh.name {
                assert!(gh.launch_overhead() > p.launch_overhead());
                assert!(gh.gpu.nullkernel_duration() < p.gpu.nullkernel_duration());
            }
        }
    }

    #[test]
    fn coupling_assignment_matches_table_iv() {
        assert_eq!(Platform::amd_a100().coupling, Coupling::Loose);
        assert_eq!(Platform::intel_h100().coupling, Coupling::Loose);
        assert_eq!(Platform::gh200().coupling, Coupling::Close);
        assert_eq!(Platform::mi300a().coupling, Coupling::Tight);
    }

    #[test]
    fn tight_coupling_skips_h2d() {
        assert_eq!(Platform::mi300a().h2d_transfer(1 << 20), SimDuration::ZERO);
        assert!(Platform::gh200().h2d_transfer(1 << 20) > SimDuration::ZERO);
        assert!(
            Platform::intel_h100().h2d_transfer(1 << 20) > Platform::gh200().h2d_transfer(1 << 20)
        );
    }

    /// KV handoff is the sum of a source-coupling drain and a
    /// destination-coupling fill: PCIe→PCIe pays both legs, C2C→PCIe is
    /// cheaper on the drain side, and a tightly-coupled endpoint
    /// contributes nothing at all.
    #[test]
    fn kv_handoff_prices_both_coupling_legs() {
        let bytes = 256u64 << 20;
        let amd = Platform::amd_a100();
        let gh = Platform::gh200();
        let mi = Platform::mi300a();
        assert_eq!(
            amd.kv_handoff_time(&gh, bytes),
            amd.d2h_transfer(bytes) + gh.h2d_transfer(bytes)
        );
        assert!(
            gh.kv_handoff_time(&amd, bytes) < amd.kv_handoff_time(&amd, bytes),
            "a C2C source must drain faster than a PCIe Gen4 source"
        );
        assert_eq!(
            mi.kv_handoff_time(&mi, bytes),
            SimDuration::ZERO,
            "tight coupling on both ends makes the handoff free"
        );
        assert_eq!(mi.kv_handoff_time(&gh, bytes), gh.h2d_transfer(bytes));
    }

    #[test]
    fn builder_swaps_parts() {
        let p = PlatformBuilder::from(Platform::intel_h100())
            .name("frankenstein")
            .gpu(GpuModel::a100_sxm4())
            .coupling(Coupling::Close)
            .interconnect(Interconnect::nvlink_c2c())
            .build();
        assert_eq!(p.name, "frankenstein");
        assert_eq!(p.gpu, GpuModel::a100_sxm4());
        assert_eq!(p.cpu, CpuModel::xeon_8468v());
        assert_eq!(p.coupling, Coupling::Close);
    }

    #[test]
    fn paper_trio_is_three_distinct_platforms() {
        let trio = Platform::paper_trio();
        assert_eq!(trio.len(), 3);
        assert_ne!(trio[0].name, trio[1].name);
        assert_ne!(trio[1].name, trio[2].name);
    }
}
