//! CPU performance model.
//!
//! In the CPU-bound region the paper attributes inference latency almost
//! entirely to the serial work the framework does per operator — Python
//! interpretation, ATen dispatch, shape checking — plus the CPU side of each
//! `cudaLaunchKernel` call. Both are single-thread-bound, which is why the
//! Grace CPU (strong many-core throughput, weaker per-core performance than
//! the Xeon 8468V) makes the GH200 the *slowest* platform at batch size 1
//! (§V-D).
//!
//! The model therefore has two knobs per CPU:
//!
//! * `single_thread` — performance of one core relative to the Intel Xeon
//!   Platinum 8468V (the reference, 1.0). All per-operator costs divide by
//!   this factor.
//! * `launch_call_ns` — the measured CPU-side duration of a
//!   `cudaLaunchKernel` call on this platform (calibrated jointly with the
//!   interconnect so platform launch overheads reproduce Table V).

use serde::{Deserialize, Serialize};
use skip_des::SimDuration;

/// How much framework work an operator event performs on the CPU,
/// *excluding* its nested children (which carry their own cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum OpComplexity {
    /// A composite parent operator that unpacks into child operators
    /// (`aten::linear`, `aten::scaled_dot_product_attention`): argument
    /// parsing, autograd bookkeeping, dispatching children.
    Composite,
    /// A leaf operator that launches kernels itself (`aten::addmm`,
    /// `aten::softmax`, `aten::add`).
    Simple,
    /// A metadata-only operator that launches nothing (`aten::view`,
    /// `aten::transpose`): cheap but not free.
    View,
}

/// Reference per-operator framework costs (ns) on the reference CPU
/// (Intel Xeon Platinum 8468V).
///
/// Calibration: PyTorch eager-mode dispatch costs on server-class x86 are
/// tens of microseconds per operator once Python overhead is included
/// (Fernandez et al.'s "framework tax", paper §II-D/[14]); these values put
/// BERT-base batch-1 prefill in the observed ~5 ms CPU-bound plateau.
const COMPOSITE_NS: f64 = 25_000.0;
/// See [`COMPOSITE_NS`].
const SIMPLE_NS: f64 = 12_000.0;
/// See [`COMPOSITE_NS`].
const VIEW_NS: f64 = 4_000.0;

/// An analytical CPU model.
///
/// # Example
///
/// ```
/// use skip_hw::{CpuModel, OpComplexity};
///
/// let grace = CpuModel::grace();
/// let xeon = CpuModel::xeon_8468v();
/// // Grace dispatches operators slower than the reference Xeon.
/// assert!(grace.op_cost(OpComplexity::Simple) > xeon.op_cost(OpComplexity::Simple));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// Marketing name, e.g. `"AMD EPYC 7313"`.
    pub name: String,
    /// Core count (reported for context; the dispatch path is serial).
    pub cores: u32,
    /// Single-thread performance relative to the Xeon Platinum 8468V.
    pub single_thread: f64,
    /// CPU-side duration of one `cudaLaunchKernel` call, nanoseconds.
    pub launch_call_ns: f64,
}

impl CpuModel {
    /// 2P Intel Xeon Platinum 8468V — the reference CPU (LC Intel+H100
    /// platform). Launch-call cost calibrated so the platform total matches
    /// Table V's 2374.6 ns.
    #[must_use]
    pub fn xeon_8468v() -> Self {
        CpuModel {
            name: "Intel Xeon Platinum 8468V (2P)".into(),
            cores: 96,
            single_thread: 1.0,
            launch_call_ns: 1_574.6,
        }
    }

    /// AMD EPYC 7313 (LC AMD+A100 platform). Single-thread factor chosen so
    /// the BERT batch-1 CPU-bound plateau sits ~1.47× above the Xeon's
    /// (§V-D reports GH200 at 2.8×/1.9× of Intel/AMD ⇒ AMD ≈ 1.47× Intel).
    #[must_use]
    pub fn epyc_7313() -> Self {
        CpuModel {
            name: "AMD EPYC 7313".into(),
            cores: 16,
            single_thread: 0.68,
            launch_call_ns: 1_400.5,
        }
    }

    /// NVIDIA Grace, 72 Arm Neoverse V2 cores (CC GH200 platform).
    /// Single-thread factor chosen to reproduce the paper's ~2.8× batch-1
    /// latency over Intel+H100 for encoder models.
    #[must_use]
    pub fn grace() -> Self {
        CpuModel {
            name: "NVIDIA Grace (72c Neoverse V2)".into(),
            cores: 72,
            single_thread: 0.36,
            launch_call_ns: 2_271.6,
        }
    }

    /// AMD Zen4 chiplet CPU of the MI300A APU (TC platform, paper §VI
    /// future work). Strong single-thread x86 cores.
    #[must_use]
    pub fn zen4_mi300a() -> Self {
        CpuModel {
            name: "AMD Zen4 (MI300A, 24c)".into(),
            cores: 24,
            single_thread: 0.95,
            launch_call_ns: 1_350.0,
        }
    }

    /// Framework cost of one operator event of the given complexity on this
    /// CPU (reference cost divided by single-thread performance).
    #[must_use]
    pub fn op_cost(&self, complexity: OpComplexity) -> SimDuration {
        let base = match complexity {
            OpComplexity::Composite => COMPOSITE_NS,
            OpComplexity::Simple => SIMPLE_NS,
            OpComplexity::View => VIEW_NS,
        };
        SimDuration::from_nanos_f64(base / self.single_thread)
    }

    /// CPU-side duration of one `cudaLaunchKernel` call.
    ///
    /// Not scaled by `single_thread`: this is a *measured* per-platform
    /// quantity (it already reflects the platform's CPU and driver stack).
    #[must_use]
    pub fn launch_call_cost(&self) -> SimDuration {
        SimDuration::from_nanos_f64(self.launch_call_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_cpu_has_unit_factor() {
        assert_eq!(CpuModel::xeon_8468v().single_thread, 1.0);
    }

    #[test]
    fn op_costs_scale_inversely_with_single_thread() {
        let xeon = CpuModel::xeon_8468v();
        let grace = CpuModel::grace();
        let ratio = grace.op_cost(OpComplexity::Composite).as_nanos_f64()
            / xeon.op_cost(OpComplexity::Composite).as_nanos_f64();
        assert!((ratio - 1.0 / 0.36).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn complexity_ordering_holds_on_every_cpu() {
        for cpu in [
            CpuModel::xeon_8468v(),
            CpuModel::epyc_7313(),
            CpuModel::grace(),
            CpuModel::zen4_mi300a(),
        ] {
            assert!(cpu.op_cost(OpComplexity::Composite) > cpu.op_cost(OpComplexity::Simple));
            assert!(cpu.op_cost(OpComplexity::Simple) > cpu.op_cost(OpComplexity::View));
            assert!(!cpu.op_cost(OpComplexity::View).is_zero());
        }
    }

    #[test]
    fn launch_call_is_not_single_thread_scaled() {
        let grace = CpuModel::grace();
        assert_eq!(grace.launch_call_cost().as_nanos_f64(), 2_271.6_f64.round());
    }

    #[test]
    fn single_thread_ranking_matches_paper() {
        // §V-D: Intel fastest dispatch, AMD second, Grace slowest.
        let (i, a, g) = (
            CpuModel::xeon_8468v().single_thread,
            CpuModel::epyc_7313().single_thread,
            CpuModel::grace().single_thread,
        );
        assert!(i > a && a > g);
    }
}
