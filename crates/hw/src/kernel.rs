//! The unit of GPU work: what a kernel has to compute and move.

use serde::{Deserialize, Serialize};

/// Broad kernel families with distinct performance behaviour.
///
/// The taxonomy mirrors what dominates LLM inference traces: dense GEMMs,
/// memory-bound elementwise/reduction kernels, gather-style embedding
/// lookups, data-movement kernels, fused attention kernels, and the null
/// kernel used for launch-overhead microbenchmarking (paper Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum KernelClass {
    /// Dense matrix multiply (tensor-core eligible).
    Gemm,
    /// Pointwise map over tensors (add, GELU, scale, dropout-mask…).
    Elementwise,
    /// Row-wise reduction (softmax, layer-norm statistics).
    Reduction,
    /// Gather/scatter (embedding lookup).
    Gather,
    /// Pure data movement (copy, transpose, concat).
    Memory,
    /// A fused attention kernel (FlashAttention-style).
    FusedAttention,
    /// A fused chain of arbitrary kernels (proximity-score fusion).
    FusedChain,
    /// An empty kernel — executes no work; used to expose launch overhead.
    Null,
}

impl KernelClass {
    /// Short lowercase label used in kernel names.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            KernelClass::Gemm => "gemm",
            KernelClass::Elementwise => "elementwise",
            KernelClass::Reduction => "reduction",
            KernelClass::Gather => "gather",
            KernelClass::Memory => "memcpy",
            KernelClass::FusedAttention => "fused_attention",
            KernelClass::FusedChain => "fused_chain",
            KernelClass::Null => "null",
        }
    }
}

/// The work one kernel performs: floating-point operations and bytes moved
/// to/from device memory. [`GpuModel::kernel_duration`] turns this into a
/// duration via the roofline model.
///
/// [`GpuModel::kernel_duration`]: crate::GpuModel::kernel_duration
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelWork {
    /// Kernel family (chooses the efficiency ramp).
    pub class: KernelClass,
    /// Floating-point operations performed.
    pub flops: f64,
    /// Bytes read from plus written to device memory.
    pub bytes: f64,
}

impl KernelWork {
    /// A kernel that does nothing (launch-overhead microbenchmark).
    #[must_use]
    pub const fn null() -> Self {
        KernelWork {
            class: KernelClass::Null,
            flops: 0.0,
            bytes: 0.0,
        }
    }

    /// Work of an `M×K · K×N` GEMM with `elem_bytes`-byte elements
    /// (2 for FP16): `2MNK` FLOPs, `(MK + KN + MN)` elements of traffic.
    ///
    /// # Example
    ///
    /// ```
    /// let w = skip_hw::KernelWork::gemm(512, 768, 768, 2);
    /// assert_eq!(w.flops, 2.0 * 512.0 * 768.0 * 768.0);
    /// ```
    #[must_use]
    pub fn gemm(m: u64, n: u64, k: u64, elem_bytes: u64) -> Self {
        let (m, n, k, eb) = (m as f64, n as f64, k as f64, elem_bytes as f64);
        KernelWork {
            class: KernelClass::Gemm,
            flops: 2.0 * m * n * k,
            bytes: eb * (m * k + k * n + m * n),
        }
    }

    /// Work of a batched GEMM: `batch` independent `M×K · K×N` products
    /// (the shape of attention score/context matmuls, one per head).
    ///
    /// # Example
    ///
    /// ```
    /// let w = skip_hw::KernelWork::batched_gemm(12, 512, 512, 64, 2);
    /// assert_eq!(w.flops, 12.0 * 2.0 * 512.0 * 512.0 * 64.0);
    /// ```
    #[must_use]
    pub fn batched_gemm(batch: u64, m: u64, n: u64, k: u64, elem_bytes: u64) -> Self {
        let single = KernelWork::gemm(m, n, k, elem_bytes);
        KernelWork {
            class: KernelClass::Gemm,
            flops: single.flops * batch as f64,
            bytes: single.bytes * batch as f64,
        }
    }

    /// Work of an elementwise map over `elems` elements with `reads` input
    /// tensors and one output, `ops_per_elem` FLOPs each.
    #[must_use]
    pub fn elementwise(elems: u64, reads: u64, ops_per_elem: f64, elem_bytes: u64) -> Self {
        let e = elems as f64;
        KernelWork {
            class: KernelClass::Elementwise,
            flops: e * ops_per_elem,
            bytes: e * elem_bytes as f64 * (reads as f64 + 1.0),
        }
    }

    /// Work of a row-wise reduction (softmax, norm statistics) over `elems`
    /// elements: reads input once, writes output once, ~`ops_per_elem`
    /// FLOPs per element.
    #[must_use]
    pub fn reduction(elems: u64, ops_per_elem: f64, elem_bytes: u64) -> Self {
        let e = elems as f64;
        KernelWork {
            class: KernelClass::Reduction,
            flops: e * ops_per_elem,
            bytes: e * elem_bytes as f64 * 2.0,
        }
    }

    /// Work of an embedding gather: `rows` rows of `width` elements read
    /// and written (index traffic is negligible).
    #[must_use]
    pub fn gather(rows: u64, width: u64, elem_bytes: u64) -> Self {
        let moved = (rows * width * elem_bytes) as f64;
        KernelWork {
            class: KernelClass::Gather,
            flops: 0.0,
            bytes: 2.0 * moved,
        }
    }

    /// Work of a pure copy/transpose of `bytes_moved` bytes (counted once
    /// read, once written).
    #[must_use]
    pub fn memory(bytes_moved: f64) -> Self {
        KernelWork {
            class: KernelClass::Memory,
            flops: 0.0,
            bytes: 2.0 * bytes_moved,
        }
    }

    /// Combines two pieces of work into one fused kernel of class
    /// [`KernelClass::FusedChain`], summing FLOPs and bytes.
    ///
    /// Fusing in reality also *saves* intermediate traffic; callers that
    /// model IO-aware fusion (e.g. FlashAttention) construct the fused
    /// [`KernelWork`] directly with reduced byte counts instead.
    #[must_use]
    pub fn fuse(self, other: KernelWork) -> KernelWork {
        KernelWork {
            class: KernelClass::FusedChain,
            flops: self.flops + other.flops,
            bytes: self.bytes + other.bytes,
        }
    }

    /// Arithmetic intensity in FLOPs per byte (`0` for zero-byte kernels).
    #[must_use]
    pub fn intensity(&self) -> f64 {
        if self.bytes <= 0.0 {
            0.0
        } else {
            self.flops / self.bytes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_work_formula() {
        let w = KernelWork::gemm(4, 5, 6, 2);
        assert_eq!(w.flops, 240.0);
        assert_eq!(w.bytes, 2.0 * ((4 * 6 + 6 * 5 + 4 * 5) as f64));
        assert_eq!(w.class, KernelClass::Gemm);
    }

    #[test]
    fn elementwise_counts_reads_plus_write() {
        let w = KernelWork::elementwise(100, 2, 1.0, 2);
        assert_eq!(w.bytes, 100.0 * 2.0 * 3.0);
        assert_eq!(w.flops, 100.0);
    }

    #[test]
    fn null_kernel_has_no_work() {
        let w = KernelWork::null();
        assert_eq!(w.flops, 0.0);
        assert_eq!(w.bytes, 0.0);
        assert_eq!(w.intensity(), 0.0);
    }

    #[test]
    fn fuse_sums_work() {
        let a = KernelWork::elementwise(10, 1, 1.0, 2);
        let b = KernelWork::reduction(10, 4.0, 2);
        let f = a.fuse(b);
        assert_eq!(f.flops, a.flops + b.flops);
        assert_eq!(f.bytes, a.bytes + b.bytes);
        assert_eq!(f.class, KernelClass::FusedChain);
    }

    #[test]
    fn intensity_is_flops_per_byte() {
        let w = KernelWork::gemm(512, 768, 768, 2);
        assert!((w.intensity() - w.flops / w.bytes).abs() < 1e-12);
        assert!(w.intensity() > 100.0, "large GEMMs are compute-dense");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(KernelClass::Gemm.label(), "gemm");
        assert_eq!(KernelClass::Null.label(), "null");
    }
}
