//! CPU-GPU coupling paradigms (paper Fig. 1).

use std::fmt;

use serde::{Deserialize, Serialize};

/// The degree of CPU-GPU integration — the paper's central architectural
/// axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Coupling {
    /// *Loosely-coupled*: discrete CPU and GPU over PCIe, separate memory
    /// pools (traditional datacenter node; AMD+A100, Intel+H100).
    Loose,
    /// *Closely-coupled*: CPU and GPU on one board with a high-speed
    /// chip-to-chip interconnect and unified *virtual* memory, but
    /// physically separate memories (GH200).
    Close,
    /// *Tightly-coupled*: CPU and GPU in one package sharing unified
    /// *physical* memory (MI300A).
    Tight,
}

impl Coupling {
    /// The conventional two-letter abbreviation used throughout the paper.
    #[must_use]
    pub fn abbrev(self) -> &'static str {
        match self {
            Coupling::Loose => "LC",
            Coupling::Close => "CC",
            Coupling::Tight => "TC",
        }
    }

    /// Whether input tensors must be explicitly copied host→device before
    /// kernels can consume them. Tightly-coupled unified physical memory
    /// eliminates the copy (paper §II-B on MI300A).
    #[must_use]
    pub fn requires_h2d_copy(self) -> bool {
        !matches!(self, Coupling::Tight)
    }
}

impl fmt::Display for Coupling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Coupling::Loose => "loosely-coupled",
            Coupling::Close => "closely-coupled",
            Coupling::Tight => "tightly-coupled",
        };
        write!(f, "{name} ({})", self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbreviations_match_paper() {
        assert_eq!(Coupling::Loose.abbrev(), "LC");
        assert_eq!(Coupling::Close.abbrev(), "CC");
        assert_eq!(Coupling::Tight.abbrev(), "TC");
    }

    #[test]
    fn only_tight_coupling_skips_copies() {
        assert!(Coupling::Loose.requires_h2d_copy());
        assert!(Coupling::Close.requires_h2d_copy());
        assert!(!Coupling::Tight.requires_h2d_copy());
    }

    #[test]
    fn ordering_reflects_integration_degree() {
        assert!(Coupling::Loose < Coupling::Close);
        assert!(Coupling::Close < Coupling::Tight);
    }

    #[test]
    fn display_is_descriptive() {
        assert_eq!(Coupling::Close.to_string(), "closely-coupled (CC)");
    }
}
