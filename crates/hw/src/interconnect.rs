//! CPU↔GPU interconnect models.
//!
//! The coupling paradigm (paper Fig. 1) is realized physically by the
//! interconnect: PCIe links for loosely-coupled systems, NVLink-C2C for the
//! closely-coupled GH200 (900 GB/s bidirectional, ~7× PCIe Gen5 — paper
//! §II-B), and on-package Infinity Fabric for the tightly-coupled MI300A.
//! Two quantities matter to inference latency:
//!
//! * **launch-path latency** — the wire/driver segment of the kernel launch
//!   overhead (the remainder after the CPU-side `cudaLaunchKernel` cost),
//!   calibrated jointly with [`CpuModel::launch_call_ns`] so the per-platform
//!   totals reproduce the paper's Table V;
//! * **copy bandwidth/latency** — host↔device bulk transfer performance for
//!   input tensors.
//!
//! [`CpuModel::launch_call_ns`]: crate::CpuModel

use serde::{Deserialize, Serialize};
use skip_des::SimDuration;

/// Interconnect families evaluated or discussed by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum InterconnectKind {
    /// PCI Express Gen4 ×16 (AMD+A100 platform).
    PcieGen4,
    /// PCI Express Gen5 ×16 (Intel+H100 platform).
    PcieGen5,
    /// NVLink Chip-to-Chip (GH200).
    NvlinkC2c,
    /// On-package Infinity Fabric with physically unified memory (MI300A).
    InfinityFabric,
}

/// An interconnect between CPU and GPU memory domains.
///
/// # Example
///
/// ```
/// use skip_hw::Interconnect;
///
/// let pcie = Interconnect::pcie_gen5();
/// let c2c = Interconnect::nvlink_c2c();
/// // NVLink-C2C is ~7x PCIe Gen5 in bandwidth (paper §II-B).
/// assert!(c2c.bandwidth_gbps / pcie.bandwidth_gbps > 6.0);
/// // Copying 1 MiB is faster over C2C.
/// assert!(c2c.transfer_time(1 << 20) < pcie.transfer_time(1 << 20));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    /// Human-readable name.
    pub name: String,
    /// Family.
    pub kind: InterconnectKind,
    /// Per-direction bandwidth, GB/s.
    pub bandwidth_gbps: f64,
    /// Base latency of a small message (doorbell/DMA setup), ns.
    pub base_latency_ns: f64,
    /// The wire/driver segment of kernel-launch overhead, ns.
    pub launch_latency_ns: f64,
}

impl Interconnect {
    /// PCIe Gen4 ×16: 32 GB/s per direction.
    #[must_use]
    pub fn pcie_gen4() -> Self {
        Interconnect {
            name: "PCIe Gen4 x16".into(),
            kind: InterconnectKind::PcieGen4,
            bandwidth_gbps: 32.0,
            base_latency_ns: 1_000.0,
            launch_latency_ns: 860.0,
        }
    }

    /// PCIe Gen5 ×16: 64 GB/s per direction.
    #[must_use]
    pub fn pcie_gen5() -> Self {
        Interconnect {
            name: "PCIe Gen5 x16".into(),
            kind: InterconnectKind::PcieGen5,
            bandwidth_gbps: 64.0,
            base_latency_ns: 900.0,
            launch_latency_ns: 800.0,
        }
    }

    /// NVLink-C2C: 450 GB/s per direction (900 GB/s bidirectional).
    #[must_use]
    pub fn nvlink_c2c() -> Self {
        Interconnect {
            name: "NVLink-C2C".into(),
            kind: InterconnectKind::NvlinkC2c,
            bandwidth_gbps: 450.0,
            base_latency_ns: 400.0,
            launch_latency_ns: 500.0,
        }
    }

    /// On-package Infinity Fabric (MI300A): 1 TB/s aggregate, and no copy is
    /// ever required because memory is physically unified.
    #[must_use]
    pub fn infinity_fabric() -> Self {
        Interconnect {
            name: "Infinity Fabric (on-package)".into(),
            kind: InterconnectKind::InfinityFabric,
            bandwidth_gbps: 1_000.0,
            base_latency_ns: 150.0,
            launch_latency_ns: 300.0,
        }
    }

    /// Time to move `bytes` across the link: base latency + bytes/bandwidth.
    #[must_use]
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        let ns = self.base_latency_ns + bytes as f64 / (self.bandwidth_gbps * 1e9) * 1e9;
        SimDuration::from_nanos_f64(ns)
    }

    /// The wire/driver segment of one kernel launch.
    #[must_use]
    pub fn launch_latency(&self) -> SimDuration {
        SimDuration::from_nanos_f64(self.launch_latency_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_ordering_matches_generations() {
        let g4 = Interconnect::pcie_gen4().bandwidth_gbps;
        let g5 = Interconnect::pcie_gen5().bandwidth_gbps;
        let c2c = Interconnect::nvlink_c2c().bandwidth_gbps;
        let ifab = Interconnect::infinity_fabric().bandwidth_gbps;
        assert!(g4 < g5 && g5 < c2c && c2c < ifab);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let ic = Interconnect::pcie_gen4();
        let small = ic.transfer_time(1 << 10);
        let large = ic.transfer_time(1 << 24);
        assert!(large > small);
        // 16 MiB over 32 GB/s ≈ 524 µs (plus 1 µs base).
        let expect_ns = 1_000.0 + (1u64 << 24) as f64 / 32.0e9 * 1e9;
        assert!((large.as_nanos_f64() - expect_ns).abs() < 2.0);
    }

    #[test]
    fn zero_bytes_costs_base_latency() {
        let ic = Interconnect::nvlink_c2c();
        assert_eq!(
            ic.transfer_time(0),
            SimDuration::from_nanos_f64(ic.base_latency_ns)
        );
    }
}
