//! GPU performance model: roofline kernel durations with latency floors.
//!
//! Every kernel's duration is
//!
//! ```text
//! t_k = overhead + startup(class) + max(flops / (peak_flops · eff_c(class)),
//!                                       bytes / (peak_bw · eff_m(class)))
//! ```
//!
//! * `overhead` is the device-side fixed cost of any kernel — measured by
//!   the paper's nullKernel microbenchmark (Table V) and taken from it
//!   directly.
//! * `startup(class)` models wave ramp-up/quantization for heavyweight
//!   kernel families (GEMMs).
//! * The `max` is the classic roofline: a kernel is limited by whichever of
//!   compute and memory traffic it saturates first. Class-specific
//!   efficiencies encode that softmax-style reductions and gathers achieve a
//!   smaller fraction of peak bandwidth than coalesced copies, and that
//!   real GEMMs reach ~70% of tensor-core peak.
//!
//! This affine shape (latency floor + throughput term) is what produces the
//! paper's central observation: at small batch the floor dominates and the
//! GPU finishes inside the CPU's dispatch shadow; at large batch the
//! throughput term dominates and kernel durations grow linearly, queueing
//! behind each other — the CPU-bound → GPU-bound transition.

use serde::{Deserialize, Serialize};
use skip_des::SimDuration;

use crate::kernel::{KernelClass, KernelWork};

/// Per-class achievable efficiency and startup cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct ClassProfile {
    /// Fraction of FP16 tensor peak achievable.
    compute_eff: f64,
    /// Fraction of peak HBM bandwidth achievable.
    memory_eff: f64,
    /// Extra fixed startup cost, nanoseconds.
    startup_ns: f64,
}

fn profile(class: KernelClass) -> ClassProfile {
    match class {
        KernelClass::Gemm => ClassProfile {
            compute_eff: 0.70,
            memory_eff: 0.80,
            startup_ns: 1_500.0,
        },
        KernelClass::Elementwise => ClassProfile {
            compute_eff: 0.05, // vector ALUs, not tensor cores
            memory_eff: 0.75,
            startup_ns: 0.0,
        },
        KernelClass::Reduction => ClassProfile {
            compute_eff: 0.05,
            memory_eff: 0.60,
            startup_ns: 300.0,
        },
        KernelClass::Gather => ClassProfile {
            compute_eff: 0.05,
            memory_eff: 0.50,
            startup_ns: 0.0,
        },
        KernelClass::Memory => ClassProfile {
            compute_eff: 0.05,
            memory_eff: 0.85,
            startup_ns: 0.0,
        },
        KernelClass::FusedAttention => ClassProfile {
            compute_eff: 0.55,
            memory_eff: 0.80,
            startup_ns: 2_000.0,
        },
        KernelClass::FusedChain => ClassProfile {
            compute_eff: 0.60,
            memory_eff: 0.75,
            startup_ns: 500.0,
        },
        KernelClass::Null => ClassProfile {
            compute_eff: 1.0,
            memory_eff: 1.0,
            startup_ns: 0.0,
        },
    }
}

/// An analytical GPU model.
///
/// # Example
///
/// ```
/// use skip_hw::{GpuModel, KernelWork};
///
/// let h100 = GpuModel::h100_pcie();
/// // The null kernel's duration is exactly the fixed overhead (Table V).
/// let null = h100.kernel_duration(&KernelWork::null());
/// assert!((null.as_nanos_f64() - 1235.2).abs() < 1.0);
///
/// // A big GEMM takes longer than a small one.
/// let small = h100.kernel_duration(&KernelWork::gemm(128, 768, 768, 2));
/// let big = h100.kernel_duration(&KernelWork::gemm(8192, 768, 768, 2));
/// assert!(big > small);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Marketing name, e.g. `"NVIDIA A100-SXM4-80GB"`.
    pub name: String,
    /// Streaming multiprocessor count (reported for context).
    pub sm_count: u32,
    /// Dense FP16 tensor-core peak, TFLOP/s.
    pub fp16_tflops: f64,
    /// Peak HBM bandwidth, GB/s.
    pub hbm_gbps: f64,
    /// Device memory capacity, GB.
    pub hbm_capacity_gb: f64,
    /// Fixed device-side cost of any kernel, ns (Table V nullKernel
    /// duration).
    pub kernel_overhead_ns: f64,
}

impl GpuModel {
    /// NVIDIA A100-SXM4-80GB (LC AMD+A100 platform).
    #[must_use]
    pub fn a100_sxm4() -> Self {
        GpuModel {
            name: "NVIDIA A100-SXM4-80GB".into(),
            sm_count: 108,
            fp16_tflops: 312.0,
            hbm_gbps: 2_039.0,
            hbm_capacity_gb: 80.0,
            kernel_overhead_ns: 1_440.0,
        }
    }

    /// NVIDIA H100 PCIe 80GB (LC Intel+H100 platform).
    #[must_use]
    pub fn h100_pcie() -> Self {
        GpuModel {
            name: "NVIDIA H100 PCIe".into(),
            sm_count: 114,
            fp16_tflops: 756.0,
            hbm_gbps: 2_000.0,
            hbm_capacity_gb: 80.0,
            kernel_overhead_ns: 1_235.2,
        }
    }

    /// The Hopper GPU of the GH200 superchip: 96 GB HBM3 at ~4 TB/s — the
    /// doubled bandwidth relative to the PCIe H100 is what extends the
    /// GH200's CPU-bound region 4× (paper §V-B).
    #[must_use]
    pub fn h100_gh200() -> Self {
        GpuModel {
            name: "NVIDIA H100 (GH200, 96GB HBM3)".into(),
            sm_count: 132,
            fp16_tflops: 990.0,
            hbm_gbps: 4_000.0,
            hbm_capacity_gb: 96.0,
            kernel_overhead_ns: 1_171.2,
        }
    }

    /// AMD Instinct MI300A GPU chiplets (TC platform, paper §VI future
    /// work): CDNA3 with unified HBM3 shared coherently with the CPU.
    #[must_use]
    pub fn mi300a_cdna3() -> Self {
        GpuModel {
            name: "AMD Instinct MI300A (CDNA3)".into(),
            sm_count: 228,
            fp16_tflops: 980.0,
            hbm_gbps: 5_300.0,
            hbm_capacity_gb: 128.0,
            kernel_overhead_ns: 1_500.0,
        }
    }

    /// Device memory capacity in bytes (`hbm_capacity_gb` is decimal GB,
    /// matching the marketing numbers the paper quotes).
    ///
    /// This is the budget the KV-cache block pool in `skip-mem` is sized
    /// from, after subtracting resident weights.
    #[must_use]
    pub fn hbm_capacity_bytes(&self) -> u64 {
        (self.hbm_capacity_gb * 1e9) as u64
    }

    /// Roofline duration of one kernel on this GPU.
    ///
    /// See the module docs for the formula. Monotone in both `flops` and
    /// `bytes`; never below `kernel_overhead_ns`.
    #[must_use]
    pub fn kernel_duration(&self, work: &KernelWork) -> SimDuration {
        let p = profile(work.class);
        let compute_ns = if work.flops > 0.0 {
            work.flops / (self.fp16_tflops * 1e12 * p.compute_eff) * 1e9
        } else {
            0.0
        };
        let memory_ns = if work.bytes > 0.0 {
            work.bytes / (self.hbm_gbps * 1e9 * p.memory_eff) * 1e9
        } else {
            0.0
        };
        let body = compute_ns.max(memory_ns);
        let total = self.kernel_overhead_ns + if body > 0.0 { p.startup_ns + body } else { 0.0 };
        SimDuration::from_nanos_f64(total)
    }

    /// Duration of the empty kernel — the Table V "nullKernel duration".
    #[must_use]
    pub fn nullkernel_duration(&self) -> SimDuration {
        self.kernel_duration(&KernelWork::null())
    }

    /// The arithmetic intensity (FLOP/byte) at which this GPU transitions
    /// from memory- to compute-bound for a given class — the roofline ridge
    /// point.
    #[must_use]
    pub fn ridge_point(&self, class: KernelClass) -> f64 {
        let p = profile(class);
        (self.fp16_tflops * 1e12 * p.compute_eff) / (self.hbm_gbps * 1e9 * p.memory_eff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_kernel_durations_match_table_v() {
        assert!((GpuModel::a100_sxm4().nullkernel_duration().as_nanos_f64() - 1440.0).abs() < 1.0);
        assert!((GpuModel::h100_pcie().nullkernel_duration().as_nanos_f64() - 1235.2).abs() < 1.0);
        assert!((GpuModel::h100_gh200().nullkernel_duration().as_nanos_f64() - 1171.2).abs() < 1.0);
    }

    #[test]
    fn table_v_duration_ordering() {
        // A100 slowest null kernel, GH200 fastest (paper Table V).
        let a = GpuModel::a100_sxm4().nullkernel_duration();
        let h = GpuModel::h100_pcie().nullkernel_duration();
        let g = GpuModel::h100_gh200().nullkernel_duration();
        assert!(a > h && h > g);
    }

    #[test]
    fn hbm_capacity_bytes_matches_marketing_gb() {
        assert_eq!(GpuModel::a100_sxm4().hbm_capacity_bytes(), 80_000_000_000);
        assert_eq!(GpuModel::h100_gh200().hbm_capacity_bytes(), 96_000_000_000);
        assert_eq!(
            GpuModel::mi300a_cdna3().hbm_capacity_bytes(),
            128_000_000_000
        );
    }

    #[test]
    fn duration_is_monotone_in_work() {
        let gpu = GpuModel::h100_pcie();
        let mut last = SimDuration::ZERO;
        for m in [64u64, 256, 1024, 4096, 16384] {
            let d = gpu.kernel_duration(&KernelWork::gemm(m, 768, 768, 2));
            assert!(d > last, "m={m}: {d} <= {last}");
            last = d;
        }
    }

    #[test]
    fn small_gemm_is_memory_bound_large_is_compute_bound() {
        let gpu = GpuModel::h100_pcie();
        let small = KernelWork::gemm(512, 768, 768, 2);
        let large = KernelWork::gemm(65_536, 768, 768, 2);
        assert!(small.intensity() < gpu.ridge_point(KernelClass::Gemm));
        assert!(large.intensity() > gpu.ridge_point(KernelClass::Gemm));
    }

    #[test]
    fn gh200_wins_on_memory_bound_kernels() {
        // 2× HBM bandwidth halves memory-bound kernel bodies.
        let h100 = GpuModel::h100_pcie();
        let gh = GpuModel::h100_gh200();
        let w = KernelWork::elementwise(512 * 3072, 1, 1.0, 2);
        let t_h = h100.kernel_duration(&w).as_nanos_f64();
        let t_g = gh.kernel_duration(&w).as_nanos_f64();
        assert!(t_g < t_h, "{t_g} >= {t_h}");
    }

    #[test]
    fn a100_loses_on_compute_bound_gemms() {
        let a100 = GpuModel::a100_sxm4();
        let gh = GpuModel::h100_gh200();
        let w = KernelWork::gemm(32_768, 4096, 4096, 2);
        let ratio = a100.kernel_duration(&w).as_nanos_f64() / gh.kernel_duration(&w).as_nanos_f64();
        // Peak ratio is 990/312 ≈ 3.2; with identical efficiency and fixed
        // costs the large-GEMM ratio approaches it.
        assert!(ratio > 2.5, "ratio = {ratio}");
    }

    #[test]
    fn reduction_bandwidth_efficiency_below_copy() {
        let gpu = GpuModel::h100_pcie();
        let n = 8_000_000u64;
        let red = gpu.kernel_duration(&KernelWork::reduction(n, 4.0, 2));
        let cpy = gpu.kernel_duration(&KernelWork::memory((n * 2) as f64));
        // Same bytes, but reductions achieve less bandwidth.
        assert!(red > cpy);
    }
}
