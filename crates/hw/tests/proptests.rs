//! Property tests for the hardware cost models.

use proptest::prelude::*;
use skip_hw::{GpuModel, Interconnect, KernelClass, KernelWork, Platform};

fn gpus() -> Vec<GpuModel> {
    vec![
        GpuModel::a100_sxm4(),
        GpuModel::h100_pcie(),
        GpuModel::h100_gh200(),
        GpuModel::mi300a_cdna3(),
    ]
}

proptest! {
    /// Kernel duration is monotone in FLOPs and bytes on every GPU and for
    /// every kernel class.
    #[test]
    fn duration_monotone_in_work(
        flops in 0.0f64..1e13,
        bytes in 0.0f64..1e10,
        extra in 1.0f64..4.0,
        class_idx in 0usize..6,
    ) {
        let classes = [
            KernelClass::Gemm,
            KernelClass::Elementwise,
            KernelClass::Reduction,
            KernelClass::Gather,
            KernelClass::Memory,
            KernelClass::FusedAttention,
        ];
        let class = classes[class_idx];
        for gpu in gpus() {
            let base = gpu.kernel_duration(&KernelWork { class, flops, bytes });
            let more_flops = gpu.kernel_duration(&KernelWork { class, flops: flops * extra, bytes });
            let more_bytes = gpu.kernel_duration(&KernelWork { class, flops, bytes: bytes * extra });
            prop_assert!(more_flops >= base, "{}: flops", gpu.name);
            prop_assert!(more_bytes >= base, "{}: bytes", gpu.name);
        }
    }

    /// Durations never fall below the fixed kernel overhead.
    #[test]
    fn duration_at_least_overhead(flops in 0.0f64..1e12, bytes in 0.0f64..1e9) {
        for gpu in gpus() {
            let d = gpu.kernel_duration(&KernelWork {
                class: KernelClass::Elementwise,
                flops,
                bytes,
            });
            prop_assert!(d >= gpu.nullkernel_duration());
        }
    }

    /// Transfer time is monotone in byte count and superadditive-free
    /// (latency counted once): t(a+b) <= t(a) + t(b).
    #[test]
    fn transfer_time_monotone_and_subadditive(a in 0u64..1 << 30, b in 0u64..1 << 30) {
        for ic in [
            Interconnect::pcie_gen4(),
            Interconnect::pcie_gen5(),
            Interconnect::nvlink_c2c(),
            Interconnect::infinity_fabric(),
        ] {
            let ta = ic.transfer_time(a);
            let tb = ic.transfer_time(b);
            let tab = ic.transfer_time(a + b);
            prop_assert!(tab >= ta.max(tb));
            prop_assert!(tab <= ta + tb, "{}", ic.name);
        }
    }

    /// GEMM work scales exactly linearly in M.
    #[test]
    fn gemm_work_linear_in_m(m in 1u64..4096, n in 1u64..512, k in 1u64..512) {
        let w1 = KernelWork::gemm(m, n, k, 2);
        let w2 = KernelWork::gemm(2 * m, n, k, 2);
        prop_assert!((w2.flops - 2.0 * w1.flops).abs() < 1e-6);
        // Bytes grow sublinearly (the K×N weight tile is shared).
        prop_assert!(w2.bytes < 2.0 * w1.bytes + 1e-9);
        prop_assert!(w2.bytes > w1.bytes);
    }

    /// The ridge point separates memory-bound from compute-bound exactly.
    #[test]
    fn ridge_point_separates_regimes(intensity_scale in 0.1f64..10.0) {
        let gpu = GpuModel::h100_pcie();
        let ridge = gpu.ridge_point(KernelClass::Gemm);
        let bytes = 1e8;
        let flops = bytes * ridge * intensity_scale;
        let w = KernelWork { class: KernelClass::Gemm, flops, bytes };
        let d = gpu.kernel_duration(&w).as_nanos_f64();
        // Compute the two roofline terms directly.
        let compute_ns = flops / (gpu.fp16_tflops * 1e12 * 0.70) * 1e9;
        let memory_ns = bytes / (gpu.hbm_gbps * 1e9 * 0.80) * 1e9;
        let body = d - gpu.kernel_overhead_ns - 1_500.0; // gemm startup
        let expect = compute_ns.max(memory_ns);
        prop_assert!((body - expect).abs() / expect < 0.01);
        if intensity_scale > 1.01 {
            prop_assert!(compute_ns > memory_ns);
        } else if intensity_scale < 0.99 {
            prop_assert!(memory_ns > compute_ns);
        }
    }

    /// Platform launch overhead decomposes exactly into CPU call + wire.
    #[test]
    fn launch_overhead_decomposition(idx in 0usize..4) {
        let platforms = [
            Platform::amd_a100(),
            Platform::intel_h100(),
            Platform::gh200(),
            Platform::mi300a(),
        ];
        let p = &platforms[idx];
        let total = p.launch_overhead().as_nanos_f64();
        let parts = p.cpu.launch_call_cost().as_nanos_f64()
            + p.interconnect.launch_latency().as_nanos_f64();
        prop_assert!((total - parts).abs() < 1.0);
    }
}
