//! Golden-bytes regression tests for the Chrome exporter, plus property
//! tests over the name table and the export→import round trip.
//!
//! `golden_chrome.json` was captured from the exporter *before* event names
//! were interned; these tests pin the serialization boundary so interning
//! stays invisible in the on-disk format.

use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use skip_des::SimTime;
use skip_trace::{
    chrome, CorrelationId, CounterEvent, CpuOpEvent, KernelEvent, NameTable, OpId,
    RuntimeLaunchEvent, StreamId, ThreadId, Trace, TraceMeta,
};

const GOLDEN: &str = include_str!("golden_chrome.json");

fn golden_trace() -> Trace {
    let mut t = Trace::new(TraceMeta::default());
    let linear = t.intern("aten::linear");
    t.push_cpu_op(CpuOpEvent {
        id: OpId::new(0),
        name: linear,
        thread: ThreadId::MAIN,
        begin: SimTime::from_nanos(0),
        end: SimTime::from_nanos(1_000),
    });
    let launch = t.intern("cudaLaunchKernel");
    t.push_launch(RuntimeLaunchEvent {
        name: launch,
        thread: ThreadId::MAIN,
        begin: SimTime::from_nanos(100),
        end: SimTime::from_nanos(200),
        correlation: CorrelationId::new(42),
    });
    let gemm = t.intern("gemm_kernel");
    t.push_kernel(KernelEvent {
        name: gemm,
        stream: StreamId::DEFAULT,
        begin: SimTime::from_nanos(2_500),
        end: SimTime::from_nanos(3_500),
        correlation: CorrelationId::new(42),
    });
    t.push_counter(CounterEvent {
        track: "queue_depth".into(),
        at: SimTime::from_nanos(1_500),
        value: 4.0,
    });
    t
}

#[test]
fn export_matches_pre_interning_golden_bytes() {
    assert_eq!(chrome::to_chrome_trace(&golden_trace()), GOLDEN.trim_end());
}

#[test]
fn golden_imports_to_the_same_trace() {
    let back = chrome::from_chrome_trace(GOLDEN.trim_end()).unwrap();
    assert_eq!(back, golden_trace());
    // And re-exports to the identical bytes.
    assert_eq!(chrome::to_chrome_trace(&back), GOLDEN.trim_end());
}

/// A strategy over event-name strings that stays JSON-friendly but covers
/// the characters real kernel names use.
fn arb_name() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::sample::select(vec![
            "aten", "cuda", "gemm", "::", "_", "<", ">", "128x128", "fp16", "void ",
        ]),
        1..5,
    )
    .prop_map(|parts| parts.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn name_table_serde_round_trips(names in prop::collection::vec(arb_name(), 0..20)) {
        let mut table = NameTable::new();
        for n in &names {
            table.intern(n);
        }
        let back = NameTable::from_value(&table.to_value()).unwrap();
        prop_assert_eq!(&table, &back);
        for (id, name) in table.iter() {
            prop_assert_eq!(back.lookup(name), Some(id));
        }
    }

    #[test]
    fn chrome_export_import_round_trips(
        names in prop::collection::vec(arb_name(), 1..8),
        spans in prop::collection::vec((0u64..10_000, 1u64..5_000), 1..8),
    ) {
        // One launch+kernel pair per span, names drawn cyclically so some
        // repeat (exercising intern hits) and interleaved so import order
        // differs from intern order.
        let mut t = Trace::new(TraceMeta::default());
        let launch = t.intern("cudaLaunchKernel");
        let ids: Vec<_> = names.iter().map(|n| t.intern(n)).collect();
        for (i, (begin, dur)) in spans.iter().enumerate() {
            let corr = CorrelationId::new(i as u64 + 1);
            t.push_launch(RuntimeLaunchEvent {
                name: launch,
                thread: ThreadId::MAIN,
                begin: SimTime::from_nanos(*begin),
                end: SimTime::from_nanos(begin + dur),
                correlation: corr,
            });
            t.push_kernel(KernelEvent {
                name: ids[i % ids.len()],
                // Distinct streams so overlap never arises.
                stream: StreamId::new(i as u32),
                begin: SimTime::from_nanos(begin + dur),
                end: SimTime::from_nanos(begin + 2 * dur),
                correlation: corr,
            });
        }
        let json = chrome::to_chrome_trace(&t);
        let back = chrome::from_chrome_trace(&json).unwrap();
        prop_assert_eq!(&back, &t);
        prop_assert_eq!(chrome::to_chrome_trace(&back), json);
    }
}
