//! The three event kinds recorded in an inference trace.

use serde::{Deserialize, Serialize};
use skip_des::{SimDuration, SimTime};

use crate::ids::{CorrelationId, NameId, OpId, StreamId, ThreadId};

/// A CPU-side framework operator event (an ATen operator in PyTorch terms).
///
/// Operators nest: `aten::linear` contains `aten::addmm` which contains the
/// `cudaLaunchKernel` runtime call. Nesting is *not* stored here — like a
/// real profiler trace, only `(thread, begin, end)` is recorded, and the
/// SKIP profiler recovers the hierarchy by time containment.
///
/// The operator name is interned: `name` resolves through the owning
/// trace's [`NameTable`] (see [`Trace::name`]).
///
/// [`NameTable`]: crate::NameTable
/// [`Trace::name`]: crate::Trace::name
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CpuOpEvent {
    /// Unique ID within the trace.
    pub id: OpId,
    /// Interned operator name, e.g. `"aten::linear"`.
    pub name: NameId,
    /// The CPU thread the operator ran on.
    pub thread: ThreadId,
    /// Start timestamp.
    pub begin: SimTime,
    /// End timestamp.
    pub end: SimTime,
}

/// A CUDA runtime call on the CPU that launches a kernel
/// (`cudaLaunchKernel`), tagged with the correlation ID CUPTI uses to link
/// it to the resulting [`KernelEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RuntimeLaunchEvent {
    /// Interned runtime API name, e.g. `"cudaLaunchKernel"` or
    /// `"cudaGraphLaunch"`.
    pub name: NameId,
    /// The CPU thread the call ran on.
    pub thread: ThreadId,
    /// Start timestamp of the runtime call.
    pub begin: SimTime,
    /// End timestamp of the runtime call.
    pub end: SimTime,
    /// Correlation ID shared with the kernel this call triggered.
    pub correlation: CorrelationId,
}

/// One sample of a named time-series counter (queue depth, pool occupancy,
/// …), rendered by Perfetto as a counter track.
///
/// Counters are instantaneous: each event pins `track` to `value` at `at`
/// until the next sample on the same track. They carry no thread/stream —
/// a counter track is global to the trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEvent {
    /// Counter track name, e.g. `"queue_depth"`.
    pub track: String,
    /// Sample instant.
    pub at: SimTime,
    /// Sampled value.
    pub value: f64,
}

/// A kernel execution on a GPU stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelEvent {
    /// Interned kernel (mangled) name, e.g.
    /// `"ampere_fp16_s16816gemm_fp16_128x128"`.
    pub name: NameId,
    /// Stream the kernel executed on.
    pub stream: StreamId,
    /// Start of execution on the GPU.
    pub begin: SimTime,
    /// End of execution on the GPU.
    pub end: SimTime,
    /// Correlation ID shared with the launch call that triggered it.
    pub correlation: CorrelationId,
}

impl CpuOpEvent {
    /// Operator duration (`end − begin`).
    ///
    /// # Example
    ///
    /// ```
    /// # use skip_des::{SimDuration, SimTime};
    /// # use skip_trace::{CpuOpEvent, NameId, OpId, ThreadId};
    /// let op = CpuOpEvent {
    ///     id: OpId::new(0),
    ///     name: NameId::new(0), // interned "aten::linear"
    ///     thread: ThreadId::MAIN,
    ///     begin: SimTime::from_nanos(10),
    ///     end: SimTime::from_nanos(35),
    /// };
    /// assert_eq!(op.duration(), SimDuration::from_nanos(25));
    /// ```
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.end.duration_since(self.begin)
    }

    /// `true` if `instant` falls within `[begin, end)`.
    #[must_use]
    pub fn contains(&self, instant: SimTime) -> bool {
        instant >= self.begin && instant < self.end
    }
}

impl RuntimeLaunchEvent {
    /// Duration of the runtime call on the CPU.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.end.duration_since(self.begin)
    }
}

impl KernelEvent {
    /// Kernel execution duration (the `t_k` of the paper's Eq. 3).
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.end.duration_since(self.begin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(begin: u64, end: u64) -> CpuOpEvent {
        CpuOpEvent {
            id: OpId::new(1),
            name: NameId::new(0),
            thread: ThreadId::MAIN,
            begin: SimTime::from_nanos(begin),
            end: SimTime::from_nanos(end),
        }
    }

    #[test]
    fn op_contains_is_half_open() {
        let o = op(10, 20);
        assert!(!o.contains(SimTime::from_nanos(9)));
        assert!(o.contains(SimTime::from_nanos(10)));
        assert!(o.contains(SimTime::from_nanos(19)));
        assert!(!o.contains(SimTime::from_nanos(20)));
    }

    #[test]
    fn durations_subtract_begin_from_end() {
        assert_eq!(op(5, 9).duration(), SimDuration::from_nanos(4));
        let k = KernelEvent {
            name: NameId::new(1),
            stream: StreamId::DEFAULT,
            begin: SimTime::from_nanos(100),
            end: SimTime::from_nanos(130),
            correlation: CorrelationId::new(1),
        };
        assert_eq!(k.duration(), SimDuration::from_nanos(30));
        let l = RuntimeLaunchEvent {
            name: NameId::new(2),
            thread: ThreadId::MAIN,
            begin: SimTime::from_nanos(1),
            end: SimTime::from_nanos(3),
            correlation: CorrelationId::new(1),
        };
        assert_eq!(l.duration(), SimDuration::from_nanos(2));
    }
}
