//! Chrome-trace (a.k.a. Trace Event Format) import/export.
//!
//! Emits the JSON-array flavour consumed by `chrome://tracing` and Perfetto —
//! the same format PyTorch Profiler exports — so simulated traces can be
//! inspected with the familiar timeline UI. CPU operators and runtime calls
//! appear on CPU thread tracks, kernels on per-stream GPU tracks, each
//! launch→kernel correlation is drawn as a flow arrow, and (as in PyTorch
//! exports) the correlation ID is also carried in the event `args`.
//! Counter samples ([`CounterEvent`]) export as `ph: "C"` events and render
//! as Perfetto counter tracks — the serving simulator uses them for queue
//! depth, batch size, and KV-pool occupancy time series.
//!
//! [`from_chrome_trace`] parses the format back, which means the SKIP
//! profiler can consume timestamp-faithful Chrome-trace exports of *real*
//! PyTorch runs, not only simulated ones.

use serde::{Deserialize, Serialize};
use skip_des::{SimDuration, SimTime};

use crate::event::{CounterEvent, CpuOpEvent, KernelEvent, RuntimeLaunchEvent};
use crate::ids::{CorrelationId, OpId, StreamId, ThreadId};
use crate::trace::{Trace, TraceMeta};

/// Process IDs used in the exported timeline: CPU events under one pid, GPU
/// events under another, mirroring PyTorch Profiler's layout.
const CPU_PID: u32 = 1;
/// See [`CPU_PID`].
const GPU_PID: u32 = 2;
/// Counter tracks live under their own pid so Perfetto groups them apart
/// from the slice tracks.
const COUNTER_PID: u32 = 3;

#[derive(Serialize, Deserialize)]
struct EventArgs {
    #[serde(skip_serializing_if = "Option::is_none")]
    correlation: Option<u64>,
    /// Counter sample value (`ph: "C"` events only).
    #[serde(skip_serializing_if = "Option::is_none")]
    value: Option<f64>,
}

#[derive(Serialize, Deserialize)]
struct ChromeEvent<'a> {
    name: &'a str,
    cat: &'a str,
    ph: &'a str,
    ts: f64,
    #[serde(skip_serializing_if = "Option::is_none")]
    dur: Option<f64>,
    pid: u32,
    tid: u32,
    #[serde(skip_serializing_if = "Option::is_none")]
    id: Option<u64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    bp: Option<&'a str>,
    #[serde(skip_serializing_if = "Option::is_none")]
    args: Option<EventArgs>,
}

impl<'a> ChromeEvent<'a> {
    fn complete(
        name: &'a str,
        cat: &'a str,
        ts: f64,
        dur: f64,
        pid: u32,
        tid: u32,
        correlation: Option<u64>,
    ) -> Self {
        ChromeEvent {
            name,
            cat,
            ph: "X",
            ts,
            dur: Some(dur),
            pid,
            tid,
            id: None,
            bp: None,
            args: correlation.map(|c| EventArgs {
                correlation: Some(c),
                value: None,
            }),
        }
    }
}

/// Serializes `trace` to a Chrome-trace JSON string.
///
/// Timestamps are microseconds (floats) per the format; durations likewise.
///
/// # Example
///
/// ```
/// use skip_trace::{chrome, Trace, TraceMeta};
///
/// let trace = Trace::new(TraceMeta::default());
/// let json = chrome::to_chrome_trace(&trace);
/// assert!(json.starts_with('['));
/// ```
#[must_use]
pub fn to_chrome_trace(trace: &Trace) -> String {
    let mut events: Vec<ChromeEvent<'_>> = Vec::with_capacity(trace.len() * 2);

    for op in trace.cpu_ops() {
        events.push(ChromeEvent::complete(
            trace.name(op.name),
            "cpu_op",
            op.begin.as_micros_f64(),
            op.duration().as_micros_f64(),
            CPU_PID,
            op.thread.get(),
            None,
        ));
    }
    for l in trace.launches() {
        events.push(ChromeEvent::complete(
            trace.name(l.name),
            "cuda_runtime",
            l.begin.as_micros_f64(),
            l.duration().as_micros_f64(),
            CPU_PID,
            l.thread.get(),
            Some(l.correlation.get()),
        ));
        // Flow start at the launch call.
        events.push(ChromeEvent {
            name: "launch",
            cat: "ac2g",
            ph: "s",
            ts: l.begin.as_micros_f64(),
            dur: None,
            pid: CPU_PID,
            tid: l.thread.get(),
            id: Some(l.correlation.get()),
            bp: None,
            args: None,
        });
    }
    for k in trace.kernels() {
        events.push(ChromeEvent::complete(
            trace.name(k.name),
            "kernel",
            k.begin.as_micros_f64(),
            k.duration().as_micros_f64(),
            GPU_PID,
            k.stream.get(),
            Some(k.correlation.get()),
        ));
        // Flow end binding to the enclosing kernel slice.
        events.push(ChromeEvent {
            name: "launch",
            cat: "ac2g",
            ph: "f",
            ts: k.begin.as_micros_f64(),
            dur: None,
            pid: GPU_PID,
            tid: k.stream.get(),
            id: Some(k.correlation.get()),
            bp: Some("e"),
            args: None,
        });
    }
    for c in trace.counters() {
        events.push(ChromeEvent {
            name: &c.track,
            cat: "counter",
            ph: "C",
            ts: c.at.as_micros_f64(),
            dur: None,
            pid: COUNTER_PID,
            tid: 0,
            id: None,
            bp: None,
            args: Some(EventArgs {
                correlation: None,
                value: Some(c.value),
            }),
        });
    }

    serde_json::to_string(&events).expect("chrome trace serialization cannot fail")
}

/// Errors produced by [`from_chrome_trace`].
#[derive(Debug)]
#[non_exhaustive]
pub enum ImportError {
    /// The input was not valid Trace Event Format JSON.
    Json(serde_json::Error),
    /// A `cuda_runtime` or `kernel` event lacked a correlation ID.
    MissingCorrelation {
        /// The event's name.
        name: String,
    },
    /// A counter (`ph: "C"`) event lacked `args.value`.
    MissingCounterValue {
        /// The counter track's name.
        name: String,
    },
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Json(e) => write!(f, "invalid trace-event JSON: {e}"),
            ImportError::MissingCorrelation { name } => {
                write!(f, "event {name} lacks args.correlation")
            }
            ImportError::MissingCounterValue { name } => {
                write!(f, "counter event {name} lacks args.value")
            }
        }
    }
}

impl std::error::Error for ImportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImportError::Json(e) => Some(e),
            ImportError::MissingCorrelation { .. } | ImportError::MissingCounterValue { .. } => {
                None
            }
        }
    }
}

impl From<serde_json::Error> for ImportError {
    fn from(e: serde_json::Error) -> Self {
        ImportError::Json(e)
    }
}

fn micros_to_time(us: f64) -> SimTime {
    SimTime::from_nanos(SimDuration::from_nanos_f64(us * 1e3).as_nanos())
}

/// Parses a Chrome-trace JSON array (our export format, which mirrors
/// PyTorch Profiler's `cpu_op` / `cuda_runtime` / `kernel` categories and
/// `args.correlation`, plus `ph: "C"` counter samples) back into a
/// [`Trace`].
///
/// Flow events and unknown categories are skipped; operator IDs are
/// regenerated in event order. Timestamps are rounded to the nanosecond.
///
/// # Errors
///
/// Returns [`ImportError`] on malformed JSON, on runtime/kernel events
/// without a correlation ID, or on counter events without a value.
///
/// # Example
///
/// ```
/// use skip_trace::{chrome, Trace, TraceMeta};
///
/// let trace = Trace::new(TraceMeta::default());
/// let json = chrome::to_chrome_trace(&trace);
/// let back = chrome::from_chrome_trace(&json)?;
/// assert!(back.is_empty());
/// # Ok::<(), chrome::ImportError>(())
/// ```
pub fn from_chrome_trace(json: &str) -> Result<Trace, ImportError> {
    #[derive(Deserialize)]
    struct Raw {
        name: String,
        #[serde(default)]
        cat: String,
        ph: String,
        ts: f64,
        #[serde(default)]
        dur: f64,
        #[serde(default)]
        tid: u32,
        #[serde(default)]
        args: Option<EventArgs>,
    }

    let raw: Vec<Raw> = serde_json::from_str(json)?;
    let mut trace = Trace::new(TraceMeta::default());
    let mut next_op = 0u64;
    for ev in raw {
        if ev.ph == "C" {
            let value =
                ev.args
                    .as_ref()
                    .and_then(|a| a.value)
                    .ok_or(ImportError::MissingCounterValue {
                        name: ev.name.clone(),
                    })?;
            trace.push_counter(CounterEvent {
                track: ev.name,
                at: micros_to_time(ev.ts),
                value,
            });
            continue;
        }
        if ev.ph != "X" {
            continue; // flows, metadata
        }
        let begin = micros_to_time(ev.ts);
        let end = begin + SimDuration::from_nanos_f64(ev.dur * 1e3);
        match ev.cat.as_str() {
            "cpu_op" => {
                let name = trace.intern(&ev.name);
                trace.push_cpu_op(CpuOpEvent {
                    id: OpId::new(next_op),
                    name,
                    thread: ThreadId::new(ev.tid),
                    begin,
                    end,
                });
                next_op += 1;
            }
            "cuda_runtime" => {
                let corr = ev.args.as_ref().and_then(|a| a.correlation).ok_or(
                    ImportError::MissingCorrelation {
                        name: ev.name.clone(),
                    },
                )?;
                let name = trace.intern(&ev.name);
                trace.push_launch(RuntimeLaunchEvent {
                    name,
                    thread: ThreadId::new(ev.tid),
                    begin,
                    end,
                    correlation: CorrelationId::new(corr),
                });
            }
            "kernel" => {
                let corr = ev.args.as_ref().and_then(|a| a.correlation).ok_or(
                    ImportError::MissingCorrelation {
                        name: ev.name.clone(),
                    },
                )?;
                let name = trace.intern(&ev.name);
                trace.push_kernel(KernelEvent {
                    name,
                    stream: StreamId::new(ev.tid),
                    begin,
                    end,
                    correlation: CorrelationId::new(corr),
                });
            }
            _ => {}
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new(TraceMeta::default());
        let linear = t.intern("aten::linear");
        t.push_cpu_op(CpuOpEvent {
            id: OpId::new(0),
            name: linear,
            thread: ThreadId::MAIN,
            begin: SimTime::from_nanos(0),
            end: SimTime::from_nanos(1_000),
        });
        let launch = t.intern("cudaLaunchKernel");
        t.push_launch(RuntimeLaunchEvent {
            name: launch,
            thread: ThreadId::MAIN,
            begin: SimTime::from_nanos(100),
            end: SimTime::from_nanos(200),
            correlation: CorrelationId::new(42),
        });
        let gemm = t.intern("gemm_kernel");
        t.push_kernel(KernelEvent {
            name: gemm,
            stream: StreamId::DEFAULT,
            begin: SimTime::from_nanos(2_500),
            end: SimTime::from_nanos(3_500),
            correlation: CorrelationId::new(42),
        });
        t
    }

    #[test]
    fn export_contains_all_event_kinds_and_flows() {
        let json = to_chrome_trace(&sample());
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = parsed.as_array().unwrap();
        // 3 complete events + 2 flow events.
        assert_eq!(arr.len(), 5);
        assert!(json.contains("\"aten::linear\""));
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\""));
        assert!(json.contains("\"correlation\":42"));
        // Timestamps are microseconds: the kernel at 2500ns is ts=2.5us.
        assert!(json.contains("\"ts\":2.5"));
    }

    #[test]
    fn import_round_trips_every_field() {
        let original = sample();
        let back = from_chrome_trace(&to_chrome_trace(&original)).unwrap();
        assert_eq!(back.cpu_ops().len(), 1);
        assert_eq!(back.launches().len(), 1);
        assert_eq!(back.kernels().len(), 1);
        assert_eq!(back.name(back.cpu_ops()[0].name), "aten::linear");
        assert_eq!(back.cpu_ops()[0].begin, SimTime::from_nanos(0));
        assert_eq!(back.cpu_ops()[0].end, SimTime::from_nanos(1_000));
        assert_eq!(back.launches().get(0).correlation, CorrelationId::new(42));
        assert_eq!(back.kernels().get(0).begin, SimTime::from_nanos(2_500));
        assert_eq!(back.kernels().get(0).correlation, CorrelationId::new(42));
        back.validate().unwrap();
        // Semantic equality holds even though import interns in export
        // order, which may differ from the producer's interning order.
        assert_eq!(back, original);
    }

    #[test]
    fn kernel_names_are_json_escaped() {
        let mut t = Trace::new(TraceMeta::default());
        let evil = t.intern("aten::pad\"evil\\name");
        t.push_cpu_op(CpuOpEvent {
            id: OpId::new(0),
            name: evil,
            thread: ThreadId::MAIN,
            begin: SimTime::from_nanos(0),
            end: SimTime::from_nanos(1),
        });
        let json = to_chrome_trace(&t);
        let back = from_chrome_trace(&json).unwrap();
        assert_eq!(back.name(back.cpu_ops()[0].name), "aten::pad\"evil\\name");
    }

    #[test]
    fn empty_trace_exports_empty_array() {
        assert_eq!(to_chrome_trace(&Trace::default()), "[]");
        assert!(from_chrome_trace("[]").unwrap().is_empty());
    }

    #[test]
    fn counters_round_trip_as_ph_c_events() {
        let mut t = sample();
        t.push_counter(CounterEvent {
            track: "queue_depth".into(),
            at: SimTime::from_nanos(1_500),
            value: 4.0,
        });
        t.push_counter(CounterEvent {
            track: "queue_depth".into(),
            at: SimTime::from_nanos(3_000),
            value: 2.5,
        });
        let json = to_chrome_trace(&t);
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"value\":4.0") || json.contains("\"value\":4"));
        let back = from_chrome_trace(&json).unwrap();
        assert_eq!(back.counters().len(), 2);
        assert_eq!(back.counters()[0].track, "queue_depth");
        assert_eq!(back.counters()[0].at, SimTime::from_nanos(1_500));
        assert!((back.counters()[1].value - 2.5).abs() < 1e-12);
    }

    #[test]
    fn import_rejects_counters_without_value() {
        let json = r#"[{"name":"queue_depth","cat":"counter","ph":"C","ts":1.0,"pid":3,"tid":0}]"#;
        assert!(matches!(
            from_chrome_trace(json),
            Err(ImportError::MissingCounterValue { .. })
        ));
    }

    #[test]
    fn import_rejects_kernels_without_correlation() {
        let json = r#"[{"name":"k","cat":"kernel","ph":"X","ts":1.0,"dur":1.0,"pid":2,"tid":0}]"#;
        assert!(matches!(
            from_chrome_trace(json),
            Err(ImportError::MissingCorrelation { .. })
        ));
    }

    #[test]
    fn import_skips_unknown_categories_and_phases() {
        let json = r#"[
            {"name":"meta","cat":"__metadata","ph":"M","ts":0.0,"pid":1,"tid":0},
            {"name":"gc","cat":"python_gc","ph":"X","ts":0.0,"dur":1.0,"pid":1,"tid":0}
        ]"#;
        assert!(from_chrome_trace(json).unwrap().is_empty());
    }

    #[test]
    fn import_rejects_malformed_json() {
        assert!(matches!(
            from_chrome_trace("not json"),
            Err(ImportError::Json(_))
        ));
    }
}
