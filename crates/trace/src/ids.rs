//! Identifier newtypes for trace entities.
//!
//! Threads, streams, operators and correlations are all "just integers" in a
//! raw CUPTI trace; distinct newtypes keep them from being interchanged
//! ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name($inner);

        impl $name {
            /// Wraps a raw identifier value.
            #[must_use]
            pub const fn new(raw: $inner) -> Self {
                $name(raw)
            }

            /// The raw identifier value.
            #[must_use]
            pub const fn get(self) -> $inner {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(raw: $inner) -> Self {
                $name(raw)
            }
        }
    };
}

id_newtype!(
    /// A CPU thread identifier (`tid` in Chrome-trace terms).
    ThreadId,
    u32,
    "tid"
);

id_newtype!(
    /// A GPU stream identifier. Kernels on one stream execute FIFO.
    StreamId,
    u32,
    "stream"
);

id_newtype!(
    /// A CUDA correlation ID linking a `cudaLaunchKernel` call to the kernel
    /// execution it triggered — the key CUPTI concept SKIP's dependency graph
    /// is built on.
    CorrelationId,
    u64,
    "corr"
);

id_newtype!(
    /// A CPU operator event identifier, unique within a [`Trace`].
    ///
    /// [`Trace`]: crate::Trace
    OpId,
    u64,
    "op"
);

id_newtype!(
    /// An interned event-name identifier, resolved through the owning
    /// trace's [`NameTable`].
    ///
    /// Event structs store a `NameId` instead of a `String` so the hot
    /// simulation path never heap-allocates per event; names materialize
    /// only at serialization boundaries (Chrome export, error messages).
    ///
    /// [`NameTable`]: crate::NameTable
    NameId,
    u32,
    "name"
);

impl ThreadId {
    /// The main Python/launcher thread in a single-threaded inference run.
    pub const MAIN: ThreadId = ThreadId(0);
}

impl StreamId {
    /// The default CUDA stream (stream 7 in real traces, 0 here).
    pub const DEFAULT: StreamId = StreamId(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newtypes_roundtrip_raw_values() {
        assert_eq!(ThreadId::new(3).get(), 3);
        assert_eq!(StreamId::from(9).get(), 9);
        assert_eq!(CorrelationId::new(u64::MAX).get(), u64::MAX);
        assert_eq!(OpId::new(17).get(), 17);
        assert_eq!(NameId::new(5).get(), 5);
        assert_eq!(NameId::new(5).to_string(), "name5");
    }

    #[test]
    fn display_includes_prefix() {
        assert_eq!(ThreadId::new(1).to_string(), "tid1");
        assert_eq!(StreamId::DEFAULT.to_string(), "stream0");
        assert_eq!(CorrelationId::new(5).to_string(), "corr5");
        assert_eq!(OpId::new(2).to_string(), "op2");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(CorrelationId::new(1) < CorrelationId::new(2));
        assert!(OpId::new(10) > OpId::new(9));
    }
}
