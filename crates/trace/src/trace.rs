//! The [`Trace`] container: everything one profiled inference produced.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};
use skip_des::{SimDuration, SimTime};

use crate::event::{CounterEvent, CpuOpEvent, KernelEvent, RuntimeLaunchEvent};
use crate::ids::{CorrelationId, NameId, StreamId, ThreadId};
use crate::names::NameTable;

/// Descriptive metadata attached to a trace: which workload, which platform,
/// which execution mode produced it.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Model name, e.g. `"gpt2"`.
    pub model: String,
    /// Platform name, e.g. `"intel_h100"`.
    pub platform: String,
    /// Execution mode, e.g. `"eager"`.
    pub exec_mode: String,
    /// Inference phase, e.g. `"prefill"`.
    pub phase: String,
    /// Batch size.
    pub batch_size: u32,
    /// Input sequence length in tokens.
    pub seq_len: u32,
}

/// Errors produced by [`Trace::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// An event's end timestamp precedes its begin timestamp.
    NegativeDuration {
        /// Human-readable description of the offending event.
        what: String,
    },
    /// Two kernels share a correlation ID.
    DuplicateKernelCorrelation(CorrelationId),
    /// Two launch calls share a correlation ID.
    DuplicateLaunchCorrelation(CorrelationId),
    /// A kernel's correlation ID has no matching launch call.
    OrphanKernel(CorrelationId),
    /// A kernel begins before the launch call that triggered it.
    KernelBeforeLaunch(CorrelationId),
    /// Two kernels on the same stream overlap in time.
    StreamOverlap {
        /// The stream on which the overlap occurred.
        stream: StreamId,
    },
    /// A counter sample holds a NaN or infinite value.
    NonFiniteCounter {
        /// The counter track the bad sample belongs to.
        track: String,
    },
    /// An event's name id does not resolve through the trace's name table.
    UnknownName(NameId),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::NegativeDuration { what } => {
                write!(f, "event has end before begin: {what}")
            }
            TraceError::DuplicateKernelCorrelation(c) => {
                write!(f, "duplicate kernel correlation id {c}")
            }
            TraceError::DuplicateLaunchCorrelation(c) => {
                write!(f, "duplicate launch correlation id {c}")
            }
            TraceError::OrphanKernel(c) => {
                write!(f, "kernel correlation id {c} has no launch call")
            }
            TraceError::KernelBeforeLaunch(c) => {
                write!(f, "kernel {c} begins before its launch call")
            }
            TraceError::StreamOverlap { stream } => {
                write!(f, "overlapping kernels on {stream}")
            }
            TraceError::NonFiniteCounter { track } => {
                write!(f, "counter track {track} holds a non-finite sample")
            }
            TraceError::UnknownName(id) => {
                write!(f, "event name {id} is not in the trace's name table")
            }
        }
    }
}

impl Error for TraceError {}

/// Column-major (struct-of-arrays) storage for the launch array: each field
/// of [`RuntimeLaunchEvent`] lives in its own contiguous `Vec`, so analyses
/// that scan one field — the attribution sweep reads only the timestamp
/// columns — walk dense cache lines instead of striding over whole event
/// structs. Serialized as the row-major event list it replaced (see the
/// manual `Serialize`/`Deserialize` impls below), so the JSON encoding is
/// byte-identical to the AoS layout.
#[derive(Debug, Clone, Default)]
struct LaunchColumns {
    names: Vec<NameId>,
    threads: Vec<ThreadId>,
    begins: Vec<SimTime>,
    ends: Vec<SimTime>,
    correlations: Vec<CorrelationId>,
}

impl LaunchColumns {
    fn len(&self) -> usize {
        self.begins.len()
    }

    fn push(&mut self, ev: RuntimeLaunchEvent) {
        self.names.push(ev.name);
        self.threads.push(ev.thread);
        self.begins.push(ev.begin);
        self.ends.push(ev.end);
        self.correlations.push(ev.correlation);
    }

    fn get(&self, i: usize) -> RuntimeLaunchEvent {
        RuntimeLaunchEvent {
            name: self.names[i],
            thread: self.threads[i],
            begin: self.begins[i],
            end: self.ends[i],
            correlation: self.correlations[i],
        }
    }
}

impl From<Vec<RuntimeLaunchEvent>> for LaunchColumns {
    fn from(rows: Vec<RuntimeLaunchEvent>) -> Self {
        let mut cols = LaunchColumns::default();
        cols.names.reserve(rows.len());
        cols.threads.reserve(rows.len());
        cols.begins.reserve(rows.len());
        cols.ends.reserve(rows.len());
        cols.correlations.reserve(rows.len());
        for ev in rows {
            cols.push(ev);
        }
        cols
    }
}

impl From<LaunchColumns> for Vec<RuntimeLaunchEvent> {
    fn from(cols: LaunchColumns) -> Self {
        (0..cols.len()).map(|i| cols.get(i)).collect()
    }
}

// Columns encode as the row-major event list they replaced, keeping the
// serialized trace format identical to the AoS layout.
impl Serialize for LaunchColumns {
    fn to_value(&self) -> serde::Value {
        let rows: Vec<RuntimeLaunchEvent> = (0..self.len()).map(|i| self.get(i)).collect();
        rows.to_value()
    }
}

impl<'de> Deserialize<'de> for LaunchColumns {
    fn from_value(value: &'de serde::Value) -> Result<Self, serde::DeError> {
        Ok(Vec::<RuntimeLaunchEvent>::from_value(value)?.into())
    }
}

/// Column-major (struct-of-arrays) storage for the kernel array; see
/// [`LaunchColumns`] for the layout rationale and serialization contract.
#[derive(Debug, Clone, Default)]
struct KernelColumns {
    names: Vec<NameId>,
    streams: Vec<StreamId>,
    begins: Vec<SimTime>,
    ends: Vec<SimTime>,
    correlations: Vec<CorrelationId>,
}

impl KernelColumns {
    fn len(&self) -> usize {
        self.begins.len()
    }

    fn push(&mut self, ev: KernelEvent) {
        self.names.push(ev.name);
        self.streams.push(ev.stream);
        self.begins.push(ev.begin);
        self.ends.push(ev.end);
        self.correlations.push(ev.correlation);
    }

    fn get(&self, i: usize) -> KernelEvent {
        KernelEvent {
            name: self.names[i],
            stream: self.streams[i],
            begin: self.begins[i],
            end: self.ends[i],
            correlation: self.correlations[i],
        }
    }
}

impl From<Vec<KernelEvent>> for KernelColumns {
    fn from(rows: Vec<KernelEvent>) -> Self {
        let mut cols = KernelColumns::default();
        cols.names.reserve(rows.len());
        cols.streams.reserve(rows.len());
        cols.begins.reserve(rows.len());
        cols.ends.reserve(rows.len());
        cols.correlations.reserve(rows.len());
        for ev in rows {
            cols.push(ev);
        }
        cols
    }
}

impl From<KernelColumns> for Vec<KernelEvent> {
    fn from(cols: KernelColumns) -> Self {
        (0..cols.len()).map(|i| cols.get(i)).collect()
    }
}

impl Serialize for KernelColumns {
    fn to_value(&self) -> serde::Value {
        let rows: Vec<KernelEvent> = (0..self.len()).map(|i| self.get(i)).collect();
        rows.to_value()
    }
}

impl<'de> Deserialize<'de> for KernelColumns {
    fn from_value(value: &'de serde::Value) -> Result<Self, serde::DeError> {
        Ok(Vec::<KernelEvent>::from_value(value)?.into())
    }
}

/// Borrowed view over the trace's launch columns.
///
/// Iterating (`for l in trace.launches()`) yields *owned*
/// [`RuntimeLaunchEvent`]s materialized from the columns — events are
/// `Copy`, so this costs the same loads the AoS layout did. Sweeps that
/// only need one field should read the column accessors
/// ([`Launches::begins`], [`Launches::ends`], …) directly: those are the
/// contiguous arrays the struct-of-arrays layout exists for.
#[derive(Clone, Copy)]
pub struct Launches<'a> {
    cols: &'a LaunchColumns,
}

impl<'a> Launches<'a> {
    /// Number of launch events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// `true` if there are no launch events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cols.len() == 0
    }

    /// The `i`-th launch event, materialized from the columns.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (like slice indexing).
    #[must_use]
    pub fn get(&self, i: usize) -> RuntimeLaunchEvent {
        self.cols.get(i)
    }

    /// The first launch event, if any.
    #[must_use]
    pub fn first(&self) -> Option<RuntimeLaunchEvent> {
        (!self.is_empty()).then(|| self.get(0))
    }

    /// The last launch event, if any.
    #[must_use]
    pub fn last(&self) -> Option<RuntimeLaunchEvent> {
        self.len().checked_sub(1).map(|i| self.get(i))
    }

    /// Iterates over launch events in insertion order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = RuntimeLaunchEvent> + 'a {
        let cols = self.cols;
        (0..cols.len()).map(move |i| cols.get(i))
    }

    /// The interned-name column.
    #[must_use]
    pub fn names(&self) -> &'a [NameId] {
        &self.cols.names
    }

    /// The thread column.
    #[must_use]
    pub fn threads(&self) -> &'a [ThreadId] {
        &self.cols.threads
    }

    /// The begin-timestamp column.
    #[must_use]
    pub fn begins(&self) -> &'a [SimTime] {
        &self.cols.begins
    }

    /// The end-timestamp column.
    #[must_use]
    pub fn ends(&self) -> &'a [SimTime] {
        &self.cols.ends
    }

    /// The correlation-id column.
    #[must_use]
    pub fn correlations(&self) -> &'a [CorrelationId] {
        &self.cols.correlations
    }
}

impl<'a> IntoIterator for Launches<'a> {
    type Item = RuntimeLaunchEvent;
    type IntoIter = Box<dyn ExactSizeIterator<Item = RuntimeLaunchEvent> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        let cols = self.cols;
        Box::new((0..cols.len()).map(move |i| cols.get(i)))
    }
}

/// Borrowed view over the trace's kernel columns; see [`Launches`] for the
/// iteration/column-access contract.
#[derive(Clone, Copy)]
pub struct Kernels<'a> {
    cols: &'a KernelColumns,
}

impl<'a> Kernels<'a> {
    /// Number of kernel events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// `true` if there are no kernel events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cols.len() == 0
    }

    /// The `i`-th kernel event, materialized from the columns.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (like slice indexing).
    #[must_use]
    pub fn get(&self, i: usize) -> KernelEvent {
        self.cols.get(i)
    }

    /// The first kernel event, if any.
    #[must_use]
    pub fn first(&self) -> Option<KernelEvent> {
        (!self.is_empty()).then(|| self.get(0))
    }

    /// The last kernel event, if any.
    #[must_use]
    pub fn last(&self) -> Option<KernelEvent> {
        self.len().checked_sub(1).map(|i| self.get(i))
    }

    /// Iterates over kernel events in insertion order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = KernelEvent> + 'a {
        let cols = self.cols;
        (0..cols.len()).map(move |i| cols.get(i))
    }

    /// The interned-name column.
    #[must_use]
    pub fn names(&self) -> &'a [NameId] {
        &self.cols.names
    }

    /// The stream column.
    #[must_use]
    pub fn streams(&self) -> &'a [StreamId] {
        &self.cols.streams
    }

    /// The begin-timestamp column.
    #[must_use]
    pub fn begins(&self) -> &'a [SimTime] {
        &self.cols.begins
    }

    /// The end-timestamp column.
    #[must_use]
    pub fn ends(&self) -> &'a [SimTime] {
        &self.cols.ends
    }

    /// The correlation-id column.
    #[must_use]
    pub fn correlations(&self) -> &'a [CorrelationId] {
        &self.cols.correlations
    }
}

impl<'a> IntoIterator for Kernels<'a> {
    type Item = KernelEvent;
    type IntoIter = Box<dyn ExactSizeIterator<Item = KernelEvent> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        let cols = self.cols;
        Box::new((0..cols.len()).map(move |i| cols.get(i)))
    }
}

/// A complete profiled-inference trace: CPU operator events, runtime launch
/// calls and GPU kernel executions, plus metadata.
///
/// Events are stored in insertion order; producers append in timestamp order
/// per thread/stream (as a real profiler does), and consumers that need
/// global orderings sort themselves.
///
/// The launch and kernel arrays — the hot arrays every analysis sweeps —
/// are stored column-major (struct-of-arrays): one contiguous `Vec` per
/// field. [`Trace::launches`]/[`Trace::kernels`] return lightweight views
/// that iterate owned events for row-style consumers and expose the raw
/// timestamp/name/correlation columns for sweeps. CPU operator events stay
/// row-major: they are consumed whole (hierarchy recovery needs every
/// field). The serialized form is unchanged — columns encode as the
/// row-major event lists they replaced.
///
/// Event names are interned in the trace's [`NameTable`]: producers call
/// [`Trace::intern`] before pushing an event, consumers resolve with
/// [`Trace::name`]. Two traces compare equal when their events carry the
/// same *resolved* names — the numeric id assignment (which depends on
/// interning order) is not observable.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    meta: TraceMeta,
    /// Interned event names. Absent from traces serialized before interning
    /// existed (all of which carried names inline — see `chrome` import for
    /// the migration path).
    #[serde(default)]
    names: NameTable,
    cpu_ops: Vec<CpuOpEvent>,
    launches: LaunchColumns,
    kernels: KernelColumns,
    /// Absent from traces serialized before counter support existed.
    #[serde(default)]
    counters: Vec<CounterEvent>,
}

impl Trace {
    /// Creates an empty trace carrying `meta`.
    #[must_use]
    pub fn new(meta: TraceMeta) -> Self {
        Trace {
            meta,
            ..Trace::default()
        }
    }

    /// The trace metadata.
    #[must_use]
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Interns an event name, returning its stable id (idempotent).
    pub fn intern(&mut self, name: &str) -> NameId {
        self.names.intern(name)
    }

    /// Resolves an interned event name.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not interned in this trace.
    #[must_use]
    pub fn name(&self, id: NameId) -> &str {
        self.names.resolve(id)
    }

    /// The trace's name table.
    #[must_use]
    pub fn names(&self) -> &NameTable {
        &self.names
    }

    /// CPU operator events in insertion order.
    #[must_use]
    pub fn cpu_ops(&self) -> &[CpuOpEvent] {
        &self.cpu_ops
    }

    /// Runtime launch events in insertion order, as a column view.
    #[must_use]
    pub fn launches(&self) -> Launches<'_> {
        Launches {
            cols: &self.launches,
        }
    }

    /// Kernel events in insertion order, as a column view.
    #[must_use]
    pub fn kernels(&self) -> Kernels<'_> {
        Kernels {
            cols: &self.kernels,
        }
    }

    /// Appends a CPU operator event.
    pub fn push_cpu_op(&mut self, ev: CpuOpEvent) {
        self.cpu_ops.push(ev);
    }

    /// Appends a runtime launch event.
    pub fn push_launch(&mut self, ev: RuntimeLaunchEvent) {
        self.launches.push(ev);
    }

    /// Appends a kernel event.
    pub fn push_kernel(&mut self, ev: KernelEvent) {
        self.kernels.push(ev);
    }

    /// Bulk-appends `blocks` shifted copies of a probed periodic block
    /// (the [`EventSink::record_replicas`] fast path): each column is
    /// extended in its own tight loop, so replication writes dense arrays
    /// instead of round-robining across all five columns per event.
    ///
    /// [`EventSink::record_replicas`]: crate::EventSink::record_replicas
    pub(crate) fn push_replicas(&mut self, block: &crate::sink::ReplicaBlock<'_>, blocks: u64) {
        let n = blocks as usize;
        self.cpu_ops.reserve(block.cpu.len() * n);
        self.launches.names.reserve(block.launches.len() * n);
        self.launches.threads.reserve(block.launches.len() * n);
        self.launches.begins.reserve(block.launches.len() * n);
        self.launches.ends.reserve(block.launches.len() * n);
        self.launches.correlations.reserve(block.launches.len() * n);
        self.kernels.names.reserve(block.kernels.len() * n);
        self.kernels.streams.reserve(block.kernels.len() * n);
        self.kernels.begins.reserve(block.kernels.len() * n);
        self.kernels.ends.reserve(block.kernels.len() * n);
        self.kernels.correlations.reserve(block.kernels.len() * n);
        for m in 1..=blocks {
            let dc = crate::sink::scaled(block.cpu_shift, m);
            let dk = crate::sink::scaled(block.kernel_shift, m);
            self.cpu_ops.extend(block.cpu.iter().map(|ev| CpuOpEvent {
                id: crate::ids::OpId::new(ev.id.get() + m * block.op_stride),
                begin: ev.begin + dc,
                end: ev.end + dc,
                ..*ev
            }));
            self.launches
                .names
                .extend(block.launches.iter().map(|ev| ev.name));
            self.launches
                .threads
                .extend(block.launches.iter().map(|ev| ev.thread));
            self.launches
                .begins
                .extend(block.launches.iter().map(|ev| ev.begin + dc));
            self.launches
                .ends
                .extend(block.launches.iter().map(|ev| ev.end + dc));
            self.launches.correlations.extend(
                block
                    .launches
                    .iter()
                    .map(|ev| CorrelationId::new(ev.correlation.get() + m * block.corr_stride)),
            );
            self.kernels
                .names
                .extend(block.kernels.iter().map(|(ev, _)| ev.name));
            self.kernels
                .streams
                .extend(block.kernels.iter().map(|(ev, _)| ev.stream));
            self.kernels
                .begins
                .extend(block.kernels.iter().map(|(ev, _)| ev.begin + dk));
            self.kernels
                .ends
                .extend(block.kernels.iter().map(|(ev, _)| ev.end + dk));
            self.kernels.correlations.extend(
                block.kernels.iter().map(|(ev, _)| {
                    CorrelationId::new(ev.correlation.get() + m * block.corr_stride)
                }),
            );
        }
    }

    /// Counter samples in insertion order.
    #[must_use]
    pub fn counters(&self) -> &[CounterEvent] {
        &self.counters
    }

    /// Appends a counter sample.
    pub fn push_counter(&mut self, ev: CounterEvent) {
        self.counters.push(ev);
    }

    /// Earliest begin timestamp across all events, or `None` if empty.
    #[must_use]
    pub fn first_timestamp(&self) -> Option<SimTime> {
        let ops = self.cpu_ops.iter().map(|e| e.begin);
        let ls = self.launches.begins.iter().copied();
        let ks = self.kernels.begins.iter().copied();
        let cs = self.counters.iter().map(|e| e.at);
        ops.chain(ls).chain(ks).chain(cs).min()
    }

    /// Latest end timestamp across all events, or `None` if empty.
    #[must_use]
    pub fn last_timestamp(&self) -> Option<SimTime> {
        let ops = self.cpu_ops.iter().map(|e| e.end);
        let ls = self.launches.ends.iter().copied();
        let ks = self.kernels.ends.iter().copied();
        let cs = self.counters.iter().map(|e| e.at);
        ops.chain(ls).chain(ks).chain(cs).max()
    }

    /// Wall-clock span of the trace (last end − first begin).
    #[must_use]
    pub fn span(&self) -> SimDuration {
        match (self.first_timestamp(), self.last_timestamp()) {
            (Some(a), Some(b)) => b.duration_since(a),
            _ => SimDuration::ZERO,
        }
    }

    /// Total number of events of all kinds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cpu_ops.len() + self.launches.len() + self.kernels.len() + self.counters.len()
    }

    /// `true` if the trace holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The set of streams that executed at least one kernel, ascending.
    #[must_use]
    pub fn streams(&self) -> Vec<StreamId> {
        let set: BTreeSet<StreamId> = self.kernels.streams.iter().copied().collect();
        set.into_iter().collect()
    }

    /// Kernels of one stream, sorted by begin time.
    #[must_use]
    pub fn kernels_on(&self, stream: StreamId) -> Vec<KernelEvent> {
        let mut ks: Vec<KernelEvent> = (0..self.kernels.len())
            .filter(|&i| self.kernels.streams[i] == stream)
            .map(|i| self.kernels.get(i))
            .collect();
        ks.sort_by_key(|k| (k.begin, k.correlation));
        ks
    }

    /// Checks the structural invariants a CUPTI trace satisfies:
    /// non-negative durations, every event name resolvable, unique
    /// correlation IDs per side, every kernel matched to a launch that
    /// precedes it, and non-overlapping kernels per stream.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), TraceError> {
        let resolve = |id: NameId| self.names.get(id).ok_or(TraceError::UnknownName(id));
        for o in &self.cpu_ops {
            let name = resolve(o.name)?;
            if o.end < o.begin {
                return Err(TraceError::NegativeDuration {
                    what: format!("cpu op {} ({name})", o.id),
                });
            }
        }
        // Correlation id → launch begin, for the kernel-after-launch check
        // below (a map lookup per kernel, not a scan per kernel).
        let mut launch_begins = std::collections::BTreeMap::new();
        for i in 0..self.launches.len() {
            let corr = self.launches.correlations[i];
            resolve(self.launches.names[i])?;
            if self.launches.ends[i] < self.launches.begins[i] {
                return Err(TraceError::NegativeDuration {
                    what: format!("launch {corr}"),
                });
            }
            if launch_begins
                .insert(corr, self.launches.begins[i])
                .is_some()
            {
                return Err(TraceError::DuplicateLaunchCorrelation(corr));
            }
        }
        let mut kernel_ids = BTreeSet::new();
        for i in 0..self.kernels.len() {
            let corr = self.kernels.correlations[i];
            let name = resolve(self.kernels.names[i])?;
            if self.kernels.ends[i] < self.kernels.begins[i] {
                return Err(TraceError::NegativeDuration {
                    what: format!("kernel {corr} ({name})"),
                });
            }
            if !kernel_ids.insert(corr) {
                return Err(TraceError::DuplicateKernelCorrelation(corr));
            }
            // Kernel must begin at or after the begin of its launch call.
            match launch_begins.get(&corr) {
                None => return Err(TraceError::OrphanKernel(corr)),
                Some(&launch_begin) if self.kernels.begins[i] < launch_begin => {
                    return Err(TraceError::KernelBeforeLaunch(corr));
                }
                Some(_) => {}
            }
        }
        // Per-stream kernels must not overlap.
        for stream in self.streams() {
            let ks = self.kernels_on(stream);
            for w in ks.windows(2) {
                if w[1].begin < w[0].end {
                    return Err(TraceError::StreamOverlap { stream });
                }
            }
        }
        for c in &self.counters {
            if !c.value.is_finite() {
                return Err(TraceError::NonFiniteCounter {
                    track: c.track.clone(),
                });
            }
        }
        Ok(())
    }
}

/// Semantic equality: meta, counters, and events with *resolved* names.
///
/// Two traces that record identical events may still assign different
/// numeric name ids (interning order depends on the producer — e.g. a
/// Chrome-trace import interns in export order, not simulation order), so
/// comparing raw `NameId`s would be wrong. Names are compared through each
/// trace's own table instead.
impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.meta == other.meta
            && self.counters == other.counters
            && self.cpu_ops.len() == other.cpu_ops.len()
            && self.launches.len() == other.launches.len()
            && self.kernels.len() == other.kernels.len()
            && self.cpu_ops.iter().zip(&other.cpu_ops).all(|(a, b)| {
                a.id == b.id
                    && a.thread == b.thread
                    && a.begin == b.begin
                    && a.end == b.end
                    && self.names.get(a.name) == other.names.get(b.name)
            })
            && self.launches.threads == other.launches.threads
            && self.launches.begins == other.launches.begins
            && self.launches.ends == other.launches.ends
            && self.launches.correlations == other.launches.correlations
            && self
                .launches
                .names
                .iter()
                .zip(&other.launches.names)
                .all(|(&a, &b)| self.names.get(a) == other.names.get(b))
            && self.kernels.streams == other.kernels.streams
            && self.kernels.begins == other.kernels.begins
            && self.kernels.ends == other.kernels.ends
            && self.kernels.correlations == other.kernels.correlations
            && self
                .kernels
                .names
                .iter()
                .zip(&other.kernels.names)
                .all(|(&a, &b)| self.names.get(a) == other.names.get(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{OpId, ThreadId};

    fn ns(v: u64) -> SimTime {
        SimTime::from_nanos(v)
    }

    fn sample_trace() -> Trace {
        let mut t = Trace::new(TraceMeta {
            model: "gpt2".into(),
            platform: "intel_h100".into(),
            exec_mode: "eager".into(),
            phase: "prefill".into(),
            batch_size: 1,
            seq_len: 512,
        });
        let linear = t.intern("aten::linear");
        t.push_cpu_op(CpuOpEvent {
            id: OpId::new(0),
            name: linear,
            thread: ThreadId::MAIN,
            begin: ns(0),
            end: ns(100),
        });
        let launch = t.intern("cudaLaunchKernel");
        t.push_launch(RuntimeLaunchEvent {
            name: launch,
            thread: ThreadId::MAIN,
            begin: ns(10),
            end: ns(20),
            correlation: CorrelationId::new(1),
        });
        let gemm = t.intern("gemm");
        t.push_kernel(KernelEvent {
            name: gemm,
            stream: StreamId::DEFAULT,
            begin: ns(30),
            end: ns(80),
            correlation: CorrelationId::new(1),
        });
        t
    }

    #[test]
    fn sample_is_valid_and_spans_correctly() {
        let t = sample_trace();
        t.validate().unwrap();
        assert_eq!(t.first_timestamp(), Some(ns(0)));
        assert_eq!(t.last_timestamp(), Some(ns(100)));
        assert_eq!(t.span(), SimDuration::from_nanos(100));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.streams(), vec![StreamId::DEFAULT]);
    }

    #[test]
    fn names_resolve_through_the_trace() {
        let t = sample_trace();
        assert_eq!(t.name(t.cpu_ops()[0].name), "aten::linear");
        assert_eq!(t.name(t.launches().get(0).name), "cudaLaunchKernel");
        assert_eq!(t.name(t.kernels().get(0).name), "gemm");
        assert_eq!(t.names().len(), 3);
    }

    #[test]
    fn unknown_name_rejected() {
        let mut t = Trace::default();
        t.push_cpu_op(CpuOpEvent {
            id: OpId::new(0),
            name: NameId::new(7), // never interned
            thread: ThreadId::MAIN,
            begin: ns(0),
            end: ns(1),
        });
        assert_eq!(t.validate(), Err(TraceError::UnknownName(NameId::new(7))));
    }

    #[test]
    fn equality_is_by_resolved_name_not_raw_id() {
        // Same events, opposite interning order → equal anyway.
        let build = |flip: bool| {
            let mut t = Trace::default();
            let (a, b) = if flip {
                let b = t.intern("b");
                let a = t.intern("a");
                (a, b)
            } else {
                let a = t.intern("a");
                let b = t.intern("b");
                (a, b)
            };
            let l = t.intern("cudaLaunchKernel");
            for (corr, name) in [(1u64, a), (2, b)] {
                t.push_launch(RuntimeLaunchEvent {
                    name: l,
                    thread: ThreadId::MAIN,
                    begin: ns(corr * 10),
                    end: ns(corr * 10 + 1),
                    correlation: CorrelationId::new(corr),
                });
                t.push_kernel(KernelEvent {
                    name,
                    stream: StreamId::DEFAULT,
                    begin: ns(corr * 20),
                    end: ns(corr * 20 + 5),
                    correlation: CorrelationId::new(corr),
                });
            }
            t
        };
        assert_eq!(build(false), build(true));
        // …and different resolved names are unequal even with equal ids.
        let mut x = Trace::default();
        let nx = x.intern("x");
        x.push_kernel(KernelEvent {
            name: nx,
            stream: StreamId::DEFAULT,
            begin: ns(0),
            end: ns(1),
            correlation: CorrelationId::new(1),
        });
        let mut y = Trace::default();
        let ny = y.intern("y");
        y.push_kernel(KernelEvent {
            name: ny,
            stream: StreamId::DEFAULT,
            begin: ns(0),
            end: ns(1),
            correlation: CorrelationId::new(1),
        });
        assert_ne!(x, y);
    }

    #[test]
    fn orphan_kernel_rejected() {
        let mut t = sample_trace();
        let orphan = t.intern("orphan");
        t.push_kernel(KernelEvent {
            name: orphan,
            stream: StreamId::DEFAULT,
            begin: ns(90),
            end: ns(95),
            correlation: CorrelationId::new(99),
        });
        assert_eq!(
            t.validate(),
            Err(TraceError::OrphanKernel(CorrelationId::new(99)))
        );
    }

    #[test]
    fn duplicate_correlations_rejected() {
        let mut t = sample_trace();
        let launch = t.intern("cudaLaunchKernel");
        t.push_launch(RuntimeLaunchEvent {
            name: launch,
            thread: ThreadId::MAIN,
            begin: ns(40),
            end: ns(45),
            correlation: CorrelationId::new(1),
        });
        assert_eq!(
            t.validate(),
            Err(TraceError::DuplicateLaunchCorrelation(CorrelationId::new(
                1
            )))
        );
    }

    #[test]
    fn kernel_before_launch_rejected() {
        let mut t = Trace::default();
        let launch = t.intern("cudaLaunchKernel");
        let k = t.intern("k");
        t.push_launch(RuntimeLaunchEvent {
            name: launch,
            thread: ThreadId::MAIN,
            begin: ns(50),
            end: ns(60),
            correlation: CorrelationId::new(1),
        });
        t.push_kernel(KernelEvent {
            name: k,
            stream: StreamId::DEFAULT,
            begin: ns(40),
            end: ns(70),
            correlation: CorrelationId::new(1),
        });
        assert_eq!(
            t.validate(),
            Err(TraceError::KernelBeforeLaunch(CorrelationId::new(1)))
        );
    }

    #[test]
    fn stream_overlap_rejected() {
        let mut t = Trace::default();
        let launch = t.intern("cudaLaunchKernel");
        let k = t.intern("k");
        for (corr, (b, e)) in [(1u64, (10u64, 50u64)), (2, (40, 60))] {
            t.push_launch(RuntimeLaunchEvent {
                name: launch,
                thread: ThreadId::MAIN,
                begin: ns(0),
                end: ns(5),
                correlation: CorrelationId::new(corr),
            });
            t.push_kernel(KernelEvent {
                name: k,
                stream: StreamId::DEFAULT,
                begin: ns(b),
                end: ns(e),
                correlation: CorrelationId::new(corr),
            });
        }
        assert_eq!(
            t.validate(),
            Err(TraceError::StreamOverlap {
                stream: StreamId::DEFAULT
            })
        );
    }

    #[test]
    fn negative_duration_rejected() {
        let mut t = Trace::default();
        let bad = t.intern("aten::bad");
        t.push_cpu_op(CpuOpEvent {
            id: OpId::new(0),
            name: bad,
            thread: ThreadId::MAIN,
            begin: ns(10),
            end: ns(5),
        });
        assert!(matches!(
            t.validate(),
            Err(TraceError::NegativeDuration { .. })
        ));
    }

    #[test]
    fn empty_trace_is_valid() {
        let t = Trace::default();
        t.validate().unwrap();
        assert!(t.is_empty());
        assert_eq!(t.span(), SimDuration::ZERO);
        assert_eq!(t.first_timestamp(), None);
    }

    #[test]
    fn serde_roundtrip() {
        let t = sample_trace();
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
        // The id assignment itself round-trips too.
        assert_eq!(t.names(), back.names());
        assert_eq!(t.kernels().get(0).name, back.kernels().get(0).name);
    }

    #[test]
    fn counters_extend_span_and_len() {
        let mut t = sample_trace();
        let before = t.len();
        t.push_counter(CounterEvent {
            track: "queue_depth".into(),
            at: ns(500),
            value: 3.0,
        });
        t.validate().unwrap();
        assert_eq!(t.len(), before + 1);
        assert_eq!(t.counters().len(), 1);
        assert_eq!(t.last_timestamp(), Some(ns(500)));
    }

    #[test]
    fn non_finite_counter_rejected() {
        let mut t = Trace::default();
        t.push_counter(CounterEvent {
            track: "bad".into(),
            at: ns(0),
            value: f64::NAN,
        });
        assert_eq!(
            t.validate(),
            Err(TraceError::NonFiniteCounter {
                track: "bad".into()
            })
        );
    }

    #[test]
    fn pre_counter_serialization_still_parses() {
        // Traces written before counter (and name-table) support lack both
        // fields entirely.
        let t: Trace = serde_json::from_str(
            r#"{"meta":{"model":"","platform":"","exec_mode":"","phase":"",
                 "batch_size":0,"seq_len":0},
                "cpu_ops":[],"launches":[],"kernels":[]}"#,
        )
        .unwrap();
        assert!(t.counters().is_empty());
        assert!(t.names().is_empty());
    }

    #[test]
    fn kernels_on_sorts_by_begin() {
        let mut t = Trace::default();
        let launch = t.intern("cudaLaunchKernel");
        for (corr, b) in [(1u64, 100u64), (2, 10)] {
            t.push_launch(RuntimeLaunchEvent {
                name: launch,
                thread: ThreadId::MAIN,
                begin: ns(0),
                end: ns(1),
                correlation: CorrelationId::new(corr),
            });
            let name = t.intern(&format!("k{corr}"));
            t.push_kernel(KernelEvent {
                name,
                stream: StreamId::DEFAULT,
                begin: ns(b),
                end: ns(b + 5),
                correlation: CorrelationId::new(corr),
            });
        }
        let names: Vec<&str> = t
            .kernels_on(StreamId::DEFAULT)
            .iter()
            .map(|k| t.name(k.name))
            .collect();
        assert_eq!(names, vec!["k2", "k1"]);
    }
}
