//! # skip-trace — operator/kernel trace data model
//!
//! The paper's SKIP profiler consumes PyTorch-Profiler traces, which record
//! three kinds of timestamped events captured through CUPTI:
//!
//! 1. **CPU operator events** — ATen operators (`aten::linear`,
//!    `aten::softmax`, …) with a thread ID and a begin/end timestamp.
//!    Parent/child structure is *not* stored; SKIP derives it from time
//!    containment (§IV-A of the paper).
//! 2. **Runtime launch events** — `cudaLaunchKernel` (and friends) calls on
//!    the CPU, each carrying a CUDA *correlation ID*.
//! 3. **GPU kernel events** — kernel executions on a stream, carrying the
//!    same correlation ID as the launch call that triggered them.
//!
//! This crate defines exactly that data model ([`Trace`], [`CpuOpEvent`],
//! [`RuntimeLaunchEvent`], [`KernelEvent`]), trace-level invariant checking
//! ([`Trace::validate`]), and a Chrome-trace/Perfetto JSON exporter
//! ([`chrome::to_chrome_trace`]) so simulated traces can be inspected with
//! the same UI used for real PyTorch traces.
//!
//! The simulated runtime (`skip-runtime`) *produces* these traces and the
//! SKIP profiler (`skip-core`) *consumes* them; keeping the format in its own
//! crate enforces that the profiler never peeks at simulator internals — it
//! sees only what CUPTI would have shown it.
//!
//! # Example
//!
//! ```
//! use skip_des::SimTime;
//! use skip_trace::{
//!     CorrelationId, KernelEvent, RuntimeLaunchEvent, StreamId, ThreadId, Trace, TraceMeta,
//! };
//!
//! let mut trace = Trace::new(TraceMeta::default());
//! let launch = trace.intern("cudaLaunchKernel");
//! trace.push_launch(RuntimeLaunchEvent {
//!     name: launch,
//!     thread: ThreadId::MAIN,
//!     begin: SimTime::from_nanos(0),
//!     end: SimTime::from_nanos(500),
//!     correlation: CorrelationId::new(1),
//! });
//! let gemm = trace.intern("ampere_fp16_s16816gemm");
//! trace.push_kernel(KernelEvent {
//!     name: gemm,
//!     stream: StreamId::DEFAULT,
//!     begin: SimTime::from_nanos(1_000),
//!     end: SimTime::from_nanos(5_000),
//!     correlation: CorrelationId::new(1),
//! });
//! assert_eq!(trace.kernels().len(), 1);
//! assert_eq!(trace.name(trace.kernels().get(0).name), "ampere_fp16_s16816gemm");
//! trace.validate().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
mod event;
mod ids;
mod names;
mod sink;
mod trace;

pub use event::{CounterEvent, CpuOpEvent, KernelEvent, RuntimeLaunchEvent};
pub use ids::{CorrelationId, NameId, OpId, StreamId, ThreadId};
pub use names::NameTable;
pub use sink::{summarize_trace, EventSink, KernelClassTag, ReplicaBlock, RunSummary};
pub use trace::{Kernels, Launches, Trace, TraceError, TraceMeta};
