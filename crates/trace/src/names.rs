//! The [`NameTable`] string interner backing event names.
//!
//! A trace records the same handful of names (`"cudaLaunchKernel"`,
//! `"aten::linear"`, a few dozen kernel shapes) hundreds of thousands of
//! times. Storing a [`NameId`] per event instead of a `String` keeps events
//! `Copy`-cheap and keeps the simulator's hot path free of per-event heap
//! allocations; the table resolves ids back to `&str` at serialization
//! boundaries only.
//!
//! Ids are assigned in insertion order and are stable for the lifetime of
//! the table, so serializing the table as its ordered name list and
//! re-interning on deserialization reproduces the identical id assignment.

use std::collections::HashMap;

use serde::{DeError, Deserialize, Serialize, Value};

use crate::ids::NameId;

/// An insertion-ordered string interner: `NameId` ↔ `&str`.
///
/// # Example
///
/// ```
/// use skip_trace::NameTable;
///
/// let mut t = NameTable::new();
/// let a = t.intern("aten::linear");
/// let b = t.intern("gemm");
/// assert_eq!(t.intern("aten::linear"), a, "re-interning is idempotent");
/// assert_eq!(t.resolve(a), "aten::linear");
/// assert_eq!(t.resolve(b), "gemm");
/// assert_eq!(t.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NameTable {
    /// Names in insertion (= id) order.
    names: Vec<String>,
    /// Reverse lookup; rebuilt on deserialization.
    index: HashMap<String, u32>,
}

impl NameTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        NameTable::default()
    }

    /// Interns `name`, returning its stable id. Idempotent; allocates only
    /// on first sight of a name.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct names are interned.
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(&raw) = self.index.get(name) {
            return NameId::new(raw);
        }
        let raw = u32::try_from(self.names.len()).expect("name table overflow");
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), raw);
        NameId::new(raw)
    }

    /// The id of `name`, if it has been interned.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<NameId> {
        self.index.get(name).copied().map(NameId::new)
    }

    /// Resolves `id` back to its name.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    #[must_use]
    pub fn resolve(&self, id: NameId) -> &str {
        &self.names[id.get() as usize]
    }

    /// Resolves `id`, returning `None` for foreign ids.
    #[must_use]
    pub fn get(&self, id: NameId) -> Option<&str> {
        self.names.get(id.get() as usize).map(String::as_str)
    }

    /// Number of distinct interned names.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if no names have been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (NameId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (NameId::new(i as u32), n.as_str()))
    }
}

/// Tables are equal when they intern the same names in the same order
/// (the reverse index is derived state).
impl PartialEq for NameTable {
    fn eq(&self, other: &Self) -> bool {
        self.names == other.names
    }
}

impl Eq for NameTable {}

/// Serializes as the ordered name list; ids are implicit in the order.
impl Serialize for NameTable {
    fn to_value(&self) -> Value {
        Value::Seq(self.names.iter().map(|n| Value::Str(n.clone())).collect())
    }
}

impl<'de> Deserialize<'de> for NameTable {
    fn from_value(value: &'de Value) -> Result<Self, DeError> {
        let seq = value
            .as_seq()
            .ok_or_else(|| DeError::custom("expected a name-table array"))?;
        let mut table = NameTable::new();
        for v in seq {
            let name = v
                .as_str()
                .ok_or_else(|| DeError::custom("expected a name string"))?;
            table.intern(name);
        }
        if table.len() != seq.len() {
            return Err(DeError::custom("duplicate name in name table"));
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_insertion_order() {
        let mut t = NameTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let a2 = t.intern("a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.get(), 0);
        assert_eq!(b.get(), 1);
        assert_eq!(t.lookup("b"), Some(b));
        assert_eq!(t.lookup("missing"), None);
        assert_eq!(t.get(NameId::new(99)), None);
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs, vec![(a, "a"), (b, "b")]);
    }

    #[test]
    fn serde_round_trip_preserves_id_assignment() {
        let mut t = NameTable::new();
        for n in ["cudaLaunchKernel", "aten::linear", "gemm", "aten::linear"] {
            t.intern(n);
        }
        let v = t.to_value();
        let back = NameTable::from_value(&v).unwrap();
        assert_eq!(t, back);
        assert_eq!(back.lookup("gemm"), Some(NameId::new(2)));
    }

    #[test]
    fn deserialization_rejects_non_lists_and_duplicates() {
        assert!(NameTable::from_value(&Value::Str("x".into())).is_err());
        let dup = Value::Seq(vec![Value::Str("a".into()), Value::Str("a".into())]);
        assert!(NameTable::from_value(&dup).is_err());
        let non_str = Value::Seq(vec![Value::U64(3)]);
        assert!(NameTable::from_value(&non_str).is_err());
    }

    #[test]
    fn equality_ignores_the_reverse_index() {
        let mut a = NameTable::new();
        a.intern("x");
        let mut b = NameTable::new();
        b.intern("x");
        assert_eq!(a, b);
        b.intern("y");
        assert_ne!(a, b);
    }
}
