//! Event sinks: where a simulated run's events go.
//!
//! The execution engine (`skip-runtime`) is generic over an [`EventSink`].
//! Two implementations live here:
//!
//! 1. [`Trace`] — the full CUPTI-style recorder. Every event is interned
//!    and stored; this is what the SKIP profiler and the Chrome exporter
//!    consume, and its output is pinned byte-for-byte by the golden
//!    fixture.
//! 2. [`RunSummary`] — a zero-allocation aggregator for consumers that
//!    only need a handful of numbers (the serving latency model prices a
//!    cold key from `last kernel end − first op begin` alone). It tracks
//!    first/last timestamps, per-class kernel busy time and event counts
//!    in fixed-size fields and discards everything else, so summarising a
//!    run costs no heap traffic at all on the sink side.
//!
//! Kernel class attribution crosses a crate boundary: the hardware model's
//! kernel taxonomy lives in `skip-hw`, which this crate must not depend on
//! (the trace format is upstream of the platform model). Producers
//! therefore tag kernels with an opaque [`KernelClassTag`] slot index; the
//! runtime maps its `KernelClass` enum onto tags.

use skip_des::{SimDuration, SimTime};

use crate::event::{CpuOpEvent, KernelEvent, RuntimeLaunchEvent};
use crate::ids::{CorrelationId, NameId, OpId};
use crate::trace::Trace;

/// `d × m`, exact in integer nanoseconds.
///
/// # Panics
///
/// Panics on overflow — a replicated region long enough to overflow a
/// `u64` of nanoseconds is a simulation bug, not a rounding case.
#[must_use]
pub(crate) fn scaled(d: SimDuration, m: u64) -> SimDuration {
    SimDuration::from_nanos(d.as_nanos().checked_mul(m).expect("replica shift overflow"))
}

/// One simulated block of a periodic region, handed to
/// [`EventSink::record_replicas`] so the sink can materialize `blocks`
/// further copies shifted by constant per-block offsets.
///
/// Copy `m` (1-based) of the block shifts CPU-side events (operators and
/// launches) by `m × cpu_shift`, kernel events by `m × kernel_shift`, CPU
/// operator ids by `m × op_stride` and correlation ids by
/// `m × corr_stride`. The producer guarantees the shifts are exact (see
/// the periodicity analysis in the runtime crate), so a sink may exploit
/// the structure — e.g. aggregate a whole block in one pass — as long as
/// it lands in the same state the per-event default would reach.
pub struct ReplicaBlock<'a> {
    /// CPU operator events of the probed block, in emission order.
    pub cpu: &'a [CpuOpEvent],
    /// Runtime launch events of the probed block, in emission order.
    pub launches: &'a [RuntimeLaunchEvent],
    /// Kernel events of the probed block with their class tags, in
    /// emission order.
    pub kernels: &'a [(KernelEvent, KernelClassTag)],
    /// Per-block time shift of CPU-side events.
    pub cpu_shift: SimDuration,
    /// Per-block time shift of kernel events.
    pub kernel_shift: SimDuration,
    /// Per-block increment of CPU operator ids.
    pub op_stride: u64,
    /// Per-block increment of correlation ids.
    pub corr_stride: u64,
}

/// Opaque kernel-class slot for per-class busy-time attribution.
///
/// The producer (the runtime) owns the mapping from its kernel taxonomy to
/// slots; [`RunSummary`] just accumulates busy time per slot. Tags at or
/// beyond [`KernelClassTag::SLOTS`] are clamped into the last slot, so an
/// extended taxonomy degrades to "other" instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelClassTag(u8);

impl KernelClassTag {
    /// Number of distinct accumulation slots a [`RunSummary`] carries.
    pub const SLOTS: usize = 16;

    /// Creates a tag for `slot`, clamping into the last slot if out of
    /// range.
    #[must_use]
    pub const fn new(slot: u8) -> Self {
        if (slot as usize) < Self::SLOTS {
            KernelClassTag(slot)
        } else {
            KernelClassTag((Self::SLOTS - 1) as u8)
        }
    }

    /// The slot index.
    #[must_use]
    pub const fn slot(self) -> usize {
        self.0 as usize
    }
}

/// Destination for the events one engine run produces.
///
/// The engine calls [`intern_name`](Self::intern_name) before recording an
/// event that carries a name, exactly as it would against a [`Trace`]; a
/// sink that does not store names (like [`RunSummary`]) may return a dummy
/// id. Events arrive in the same order a real profiler would observe them
/// (per-thread/per-stream timestamp order).
pub trait EventSink {
    /// Interns an event name, returning the id to embed in events.
    fn intern_name(&mut self, name: &str) -> NameId;
    /// Records a CPU operator event.
    fn record_cpu_op(&mut self, ev: CpuOpEvent);
    /// Records a runtime launch event.
    fn record_launch(&mut self, ev: RuntimeLaunchEvent);
    /// Records a kernel event, tagged with its class slot.
    fn record_kernel(&mut self, ev: KernelEvent, class: KernelClassTag);

    /// Records `blocks` shifted copies of a probed periodic block (the
    /// engine's layer-replication fast path).
    ///
    /// The default implementation replays every copy through the
    /// per-event `record_*` methods; sinks with aggregate state override
    /// it to process a whole region in one pass over the block. Any
    /// override must leave the sink in exactly the state the default
    /// would.
    fn record_replicas(&mut self, block: &ReplicaBlock<'_>, blocks: u64) {
        for m in 1..=blocks {
            let dc = scaled(block.cpu_shift, m);
            let dk = scaled(block.kernel_shift, m);
            for ev in block.cpu {
                self.record_cpu_op(CpuOpEvent {
                    id: OpId::new(ev.id.get() + m * block.op_stride),
                    begin: ev.begin + dc,
                    end: ev.end + dc,
                    ..*ev
                });
            }
            for ev in block.launches {
                self.record_launch(RuntimeLaunchEvent {
                    correlation: CorrelationId::new(ev.correlation.get() + m * block.corr_stride),
                    begin: ev.begin + dc,
                    end: ev.end + dc,
                    ..*ev
                });
            }
            for &(ev, tag) in block.kernels {
                self.record_kernel(
                    KernelEvent {
                        correlation: CorrelationId::new(
                            ev.correlation.get() + m * block.corr_stride,
                        ),
                        begin: ev.begin + dk,
                        end: ev.end + dk,
                        ..ev
                    },
                    tag,
                );
            }
        }
    }
}

/// The full recorder: events land in the trace unchanged. The class tag is
/// dropped — a trace attributes kernels by name, not by class.
impl EventSink for Trace {
    fn intern_name(&mut self, name: &str) -> NameId {
        self.intern(name)
    }

    fn record_cpu_op(&mut self, ev: CpuOpEvent) {
        self.push_cpu_op(ev);
    }

    fn record_launch(&mut self, ev: RuntimeLaunchEvent) {
        self.push_launch(ev);
    }

    fn record_kernel(&mut self, ev: KernelEvent, _class: KernelClassTag) {
        self.push_kernel(ev);
    }

    fn record_replicas(&mut self, block: &ReplicaBlock<'_>, blocks: u64) {
        self.push_replicas(block, blocks);
    }
}

/// Aggregates of one engine run, accumulated without storing events.
///
/// Mirrors the reductions the serving stack applies to full traces: the
/// inference latency of the paper's Eq. 4 ([`latency`](Self::latency)),
/// the overall event span ([`span`](Self::span)), per-class kernel busy
/// time and event counts. All fields are fixed-size; recording an event
/// never allocates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunSummary {
    first_cpu_begin: Option<SimTime>,
    last_kernel_end: Option<SimTime>,
    first_begin: Option<SimTime>,
    last_end: Option<SimTime>,
    class_busy: [SimDuration; KernelClassTag::SLOTS],
    cpu_ops: u64,
    launches: u64,
    kernels: u64,
}

impl RunSummary {
    /// An empty summary (no events recorded yet).
    #[must_use]
    pub fn new() -> Self {
        RunSummary::default()
    }

    /// Inference latency (paper Eq. 4): last kernel end − first CPU
    /// operator begin.
    ///
    /// Matches the serving latency model's trace reduction exactly,
    /// including the edge cases: a missing first operator reads as time
    /// zero, the subtraction saturates, and a run with no kernels falls
    /// back to the event span.
    #[must_use]
    pub fn latency(&self) -> SimDuration {
        let first = self.first_cpu_begin.unwrap_or(SimTime::ZERO);
        match self.last_kernel_end {
            Some(end) => end.saturating_duration_since(first),
            None => self.span(),
        }
    }

    /// Wall-clock span across all recorded events (last end − first
    /// begin), zero when empty. Matches [`Trace::span`] for traces without
    /// counter samples (the engine emits none).
    #[must_use]
    pub fn span(&self) -> SimDuration {
        match (self.first_begin, self.last_end) {
            (Some(a), Some(b)) => b.duration_since(a),
            _ => SimDuration::ZERO,
        }
    }

    /// Earliest CPU operator begin, if any operator was recorded.
    #[must_use]
    pub fn first_cpu_begin(&self) -> Option<SimTime> {
        self.first_cpu_begin
    }

    /// Latest kernel end, if any kernel was recorded.
    #[must_use]
    pub fn last_kernel_end(&self) -> Option<SimTime> {
        self.last_kernel_end
    }

    /// Total kernel busy time attributed to `class`.
    #[must_use]
    pub fn class_busy(&self, class: KernelClassTag) -> SimDuration {
        self.class_busy[class.slot()]
    }

    /// Total kernel busy time across all classes.
    #[must_use]
    pub fn gpu_busy(&self) -> SimDuration {
        self.class_busy
            .iter()
            .fold(SimDuration::ZERO, |acc, &d| acc + d)
    }

    /// Number of CPU operator events recorded.
    #[must_use]
    pub fn cpu_ops(&self) -> u64 {
        self.cpu_ops
    }

    /// Number of runtime launch events recorded.
    #[must_use]
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// Number of kernel events recorded.
    #[must_use]
    pub fn kernels(&self) -> u64 {
        self.kernels
    }

    fn see(&mut self, begin: SimTime, end: SimTime) {
        self.first_begin = Some(self.first_begin.map_or(begin, |f| f.min(begin)));
        self.last_end = Some(self.last_end.map_or(end, |l| l.max(end)));
    }
}

impl EventSink for RunSummary {
    fn intern_name(&mut self, _name: &str) -> NameId {
        NameId::new(0)
    }

    fn record_cpu_op(&mut self, ev: CpuOpEvent) {
        self.first_cpu_begin = Some(self.first_cpu_begin.map_or(ev.begin, |f| f.min(ev.begin)));
        self.see(ev.begin, ev.end);
        self.cpu_ops += 1;
    }

    fn record_launch(&mut self, ev: RuntimeLaunchEvent) {
        self.see(ev.begin, ev.end);
        self.launches += 1;
    }

    fn record_kernel(&mut self, ev: KernelEvent, class: KernelClassTag) {
        self.last_kernel_end = Some(self.last_kernel_end.map_or(ev.end, |l| l.max(ev.end)));
        self.see(ev.begin, ev.end);
        self.class_busy[class.slot()] += ev.end.duration_since(ev.begin);
        self.kernels += 1;
    }

    /// One pass over the block instead of `blocks` replays: the shifts are
    /// non-negative, so copy 1 holds every replica's minimum begin and copy
    /// `blocks` every maximum end, and per-class busy time scales linearly
    /// (shifting never changes a duration). Exact in integer nanoseconds,
    /// so the aggregates match the per-event default bit for bit.
    fn record_replicas(&mut self, block: &ReplicaBlock<'_>, blocks: u64) {
        if blocks == 0 {
            return;
        }
        let dc_first = scaled(block.cpu_shift, 1);
        let dc_last = scaled(block.cpu_shift, blocks);
        let dk_first = scaled(block.kernel_shift, 1);
        let dk_last = scaled(block.kernel_shift, blocks);
        for ev in block.cpu {
            let first = ev.begin + dc_first;
            self.first_cpu_begin = Some(self.first_cpu_begin.map_or(first, |f| f.min(first)));
            self.see(first, ev.end + dc_last);
        }
        for ev in block.launches {
            self.see(ev.begin + dc_first, ev.end + dc_last);
        }
        for &(ev, tag) in block.kernels {
            let last = ev.end + dk_last;
            self.last_kernel_end = Some(self.last_kernel_end.map_or(last, |l| l.max(last)));
            self.see(ev.begin + dk_first, last);
            self.class_busy[tag.slot()] += scaled(ev.end.duration_since(ev.begin), blocks);
        }
        self.cpu_ops += blocks * block.cpu.len() as u64;
        self.launches += blocks * block.launches.len() as u64;
        self.kernels += blocks * block.kernels.len() as u64;
    }
}

/// Reduces an existing trace to the same aggregates a [`RunSummary`] sink
/// would have accumulated during the run (counter samples carry no class
/// information and are ignored, as the engine never emits them). Kernel
/// busy time all lands in slot 0 — a stored trace does not retain the
/// producer's class tags.
#[must_use]
pub fn summarize_trace(trace: &Trace) -> RunSummary {
    let mut s = RunSummary::new();
    for ev in trace.cpu_ops() {
        s.record_cpu_op(*ev);
    }
    for ev in trace.launches() {
        s.record_launch(ev);
    }
    for ev in trace.kernels() {
        s.record_kernel(ev, KernelClassTag::new(0));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{CorrelationId, OpId, StreamId, ThreadId};

    fn ns(v: u64) -> SimTime {
        SimTime::from_nanos(v)
    }

    fn op(begin: u64, end: u64) -> CpuOpEvent {
        CpuOpEvent {
            id: OpId::new(0),
            name: NameId::new(0),
            thread: ThreadId::MAIN,
            begin: ns(begin),
            end: ns(end),
        }
    }

    fn kernel(begin: u64, end: u64) -> KernelEvent {
        KernelEvent {
            name: NameId::new(0),
            stream: StreamId::DEFAULT,
            begin: ns(begin),
            end: ns(end),
            correlation: CorrelationId::new(1),
        }
    }

    #[test]
    fn latency_is_last_kernel_end_minus_first_cpu_begin() {
        let mut s = RunSummary::new();
        s.record_cpu_op(op(10, 40));
        s.record_cpu_op(op(5, 20)); // earlier begin recorded out of order
        s.record_kernel(kernel(50, 90), KernelClassTag::new(0));
        s.record_kernel(kernel(90, 120), KernelClassTag::new(1));
        assert_eq!(s.latency(), SimDuration::from_nanos(115));
        assert_eq!(s.first_cpu_begin(), Some(ns(5)));
        assert_eq!(s.last_kernel_end(), Some(ns(120)));
        assert_eq!(s.cpu_ops(), 2);
        assert_eq!(s.kernels(), 2);
    }

    /// Pinned semantics for kernel-free runs: `latency()` falls back to
    /// the overall event span, exactly like the serving model's reduction
    /// of a kernel-free trace.
    #[test]
    fn zero_kernel_latency_falls_back_to_span() {
        let mut s = RunSummary::new();
        s.record_cpu_op(op(100, 160));
        s.record_cpu_op(op(160, 400));
        assert_eq!(s.last_kernel_end(), None);
        assert_eq!(s.span(), SimDuration::from_nanos(300));
        assert_eq!(s.latency(), SimDuration::from_nanos(300));
        // Entirely empty: both reductions are zero, not a panic.
        let empty = RunSummary::new();
        assert_eq!(empty.latency(), SimDuration::ZERO);
        assert_eq!(empty.span(), SimDuration::ZERO);
    }

    #[test]
    fn latency_saturates_when_kernels_end_before_first_op() {
        let mut s = RunSummary::new();
        s.record_cpu_op(op(500, 600));
        s.record_kernel(kernel(0, 100), KernelClassTag::new(0));
        assert_eq!(s.latency(), SimDuration::ZERO);
    }

    #[test]
    fn class_busy_accumulates_per_slot_and_clamps() {
        let mut s = RunSummary::new();
        s.record_kernel(kernel(0, 10), KernelClassTag::new(2));
        s.record_kernel(kernel(10, 25), KernelClassTag::new(2));
        s.record_kernel(kernel(25, 30), KernelClassTag::new(200)); // clamped
        assert_eq!(
            s.class_busy(KernelClassTag::new(2)),
            SimDuration::from_nanos(25)
        );
        assert_eq!(
            s.class_busy(KernelClassTag::new((KernelClassTag::SLOTS - 1) as u8)),
            SimDuration::from_nanos(5)
        );
        assert_eq!(s.gpu_busy(), SimDuration::from_nanos(30));
    }

    #[test]
    fn trace_sink_matches_direct_pushes() {
        let mut via_sink = Trace::default();
        let name = EventSink::intern_name(&mut via_sink, "aten::linear");
        via_sink.record_cpu_op(CpuOpEvent { name, ..op(0, 10) });
        via_sink.record_launch(RuntimeLaunchEvent {
            name,
            thread: ThreadId::MAIN,
            begin: ns(2),
            end: ns(4),
            correlation: CorrelationId::new(1),
        });
        via_sink.record_kernel(kernel(5, 9), KernelClassTag::new(3));

        let mut direct = Trace::default();
        let n = direct.intern("aten::linear");
        direct.push_cpu_op(CpuOpEvent {
            name: n,
            ..op(0, 10)
        });
        direct.push_launch(RuntimeLaunchEvent {
            name: n,
            thread: ThreadId::MAIN,
            begin: ns(2),
            end: ns(4),
            correlation: CorrelationId::new(1),
        });
        direct.push_kernel(kernel(5, 9));
        assert_eq!(via_sink, direct);
    }

    #[test]
    fn summarize_trace_matches_sink_reductions() {
        let mut t = Trace::default();
        let n = t.intern("x");
        t.push_cpu_op(CpuOpEvent {
            name: n,
            ..op(3, 8)
        });
        t.push_launch(RuntimeLaunchEvent {
            name: n,
            thread: ThreadId::MAIN,
            begin: ns(4),
            end: ns(5),
            correlation: CorrelationId::new(1),
        });
        t.push_kernel(KernelEvent {
            name: n,
            ..kernel(6, 20)
        });
        let s = summarize_trace(&t);
        assert_eq!(s.latency(), SimDuration::from_nanos(17));
        assert_eq!(s.span(), t.span());
        assert_eq!((s.cpu_ops(), s.launches(), s.kernels()), (1, 1, 1));
        assert_eq!(s.gpu_busy(), SimDuration::from_nanos(14));
    }
}
