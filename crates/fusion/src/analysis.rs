//! Chain statistics and the idealized fusion payoff (paper Eqs. 6–8,
//! Figs. 7–8).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use skip_trace::Trace;

use crate::sequence::KernelSequences;

/// Full chain analysis of a kernel stream at one chain length `L` — one
/// cell of each Fig. 7 heatmap, plus the Fig. 8 speedup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusionAnalysis {
    /// The chain length `L` analyzed.
    pub chain_len: usize,
    /// Number of distinct length-`L` chains in the stream (Fig. 7a).
    pub unique_chains: usize,
    /// Total chain instances, overlapping occurrences included (Fig. 7b).
    pub total_instances: usize,
    /// Non-overlapping deterministic (PS = 1) chains fused by the greedy
    /// cover — the paper's `C_fused`.
    pub fused_chains: usize,
    /// Kernels participating in fused chains: `C_fused · L` (Fig. 7c).
    pub kernels_fused: usize,
    /// Total eager kernel launches, `K_eager` (Fig. 7d).
    pub k_eager: usize,
    /// Launches after fusion, `K_fused = K_eager − C_fused · (L−1)`
    /// (Eq. 7).
    pub k_fused: usize,
}

impl FusionAnalysis {
    /// Analyzes the kernel stream of `trace` at chain length `chain_len`.
    ///
    /// # Panics
    ///
    /// Panics if `chain_len < 2` (a chain of one kernel is not a fusion).
    #[must_use]
    pub fn of_trace(trace: &Trace, chain_len: usize) -> Self {
        Self::of_sequences(&KernelSequences::from_trace(trace), chain_len)
    }

    /// Analyzes pre-extracted sequences at chain length `chain_len`.
    ///
    /// # Panics
    ///
    /// Panics if `chain_len < 2`.
    #[must_use]
    pub fn of_sequences(seqs: &KernelSequences, chain_len: usize) -> Self {
        assert!(chain_len >= 2, "a fusion chain needs at least two kernels");
        let l = chain_len;
        let k_eager = seqs.total_kernels();

        // f(C): occurrences of each distinct window (overlap allowed).
        let mut chain_freq: BTreeMap<&[u32], usize> = BTreeMap::new();
        // f(k_i): *every* occurrence of the kernel in the stream (Eq. 6).
        // An occurrence too close to the end of its sequence cannot start
        // the chain, so it automatically counts against determinism.
        let mut anchor_freq: BTreeMap<u32, usize> = BTreeMap::new();
        for seq in seqs.sequences() {
            for &k in seq {
                *anchor_freq.entry(k).or_insert(0) += 1;
            }
            for w in seq.windows(l) {
                *chain_freq.entry(w).or_insert(0) += 1;
            }
        }
        let unique_chains = chain_freq.len();
        let total_instances: usize = chain_freq.values().sum();

        // A window is deterministic iff *every* occurrence of its anchor
        // kernel is followed by exactly this window: f(C) == f(k_i).
        let deterministic = |w: &[u32]| -> bool {
            let fc = chain_freq.get(w).copied().unwrap_or(0);
            let fk = anchor_freq.get(&w[0]).copied().unwrap_or(0);
            fk > 0 && fc == fk
        };

        // Greedy left-to-right non-overlapping cover by deterministic
        // chains (the paper: "actual fusions are limited to a few
        // non-overlapping chains").
        let mut fused_chains = 0usize;
        for seq in seqs.sequences() {
            let mut i = 0;
            while i + l <= seq.len() {
                if deterministic(&seq[i..i + l]) {
                    fused_chains += 1;
                    i += l;
                } else {
                    i += 1;
                }
            }
        }

        let k_fused = k_eager - fused_chains * (l - 1);
        FusionAnalysis {
            chain_len: l,
            unique_chains,
            total_instances,
            fused_chains,
            kernels_fused: fused_chains * l,
            k_eager,
            k_fused,
        }
    }

    /// The idealized speedup from pure launch savings, `K_eager / K_fused`
    /// (Eq. 8). `1.0` when nothing fused or the stream is empty.
    #[must_use]
    pub fn ideal_speedup(&self) -> f64 {
        if self.k_fused == 0 || self.k_eager == 0 {
            1.0
        } else {
            self.k_eager as f64 / self.k_fused as f64
        }
    }

    /// Runs the analysis across several chain lengths (one Fig. 8 series).
    ///
    /// # Panics
    ///
    /// Panics if any length is below 2.
    #[must_use]
    pub fn sweep(seqs: &KernelSequences, chain_lens: &[usize]) -> Vec<FusionAnalysis> {
        chain_lens
            .iter()
            .map(|&l| FusionAnalysis::of_sequences(seqs, l))
            .collect()
    }
}

/// Computes the proximity score of the specific chain starting at
/// `position` in `sequence_idx` (Eq. 6). Returns `None` if the window runs
/// off the end of the sequence.
#[must_use]
pub fn proximity_score_at(
    seqs: &KernelSequences,
    sequence_idx: usize,
    position: usize,
    chain_len: usize,
) -> Option<f64> {
    let seq = seqs.sequences().get(sequence_idx)?;
    if position + chain_len > seq.len() {
        return None;
    }
    let target = &seq[position..position + chain_len];
    let anchor = target[0];
    let mut fc = 0usize;
    let mut fk = 0usize;
    for s in seqs.sequences() {
        fk += s.iter().filter(|&&k| k == anchor).count();
        for w in s.windows(chain_len) {
            if w == target {
                fc += 1;
            }
        }
    }
    (fk > 0).then(|| fc as f64 / fk as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(names: &[&str]) -> KernelSequences {
        KernelSequences::from_name_sequences(&[names.to_vec()])
    }

    #[test]
    fn fully_periodic_stream_fuses_everything() {
        // abcabcabcabc (4 periods), L=3: "abc" is deterministic; greedy
        // fuses 4 non-overlapping chains.
        let s = seqs(&["a", "b", "c"].repeat(4));
        let a = FusionAnalysis::of_sequences(&s, 3);
        assert_eq!(a.k_eager, 12);
        assert_eq!(a.fused_chains, 4);
        assert_eq!(a.k_fused, 12 - 4 * 2);
        assert_eq!(a.kernels_fused, 12);
        assert!((a.ideal_speedup() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn non_deterministic_anchor_blocks_fusion() {
        // "ab" sometimes continues "abx", sometimes "aby" → PS(abx) = 0.5,
        // so no chain anchored at "a" fuses. The chain "xab" anchored at
        // the unique "x" *is* deterministic.
        let s = seqs(&["a", "b", "x", "a", "b", "y"]);
        let a = FusionAnalysis::of_sequences(&s, 3);
        assert_eq!(a.fused_chains, 1);
        // L=2: "ab" is deterministic (both a-anchored windows are "ab").
        let a2 = FusionAnalysis::of_sequences(&s, 2);
        assert!(a2.fused_chains >= 2);
    }

    #[test]
    fn unique_and_total_instances_count_windows() {
        let s = seqs(&["a", "b", "a", "b", "a"]);
        let a = FusionAnalysis::of_sequences(&s, 2);
        // Windows: ab, ba, ab, ba → 2 unique, 4 total.
        assert_eq!(a.unique_chains, 2);
        assert_eq!(a.total_instances, 4);
    }

    #[test]
    fn chain_longer_than_stream_fuses_nothing() {
        let s = seqs(&["a", "b", "c"]);
        let a = FusionAnalysis::of_sequences(&s, 8);
        assert_eq!(a.unique_chains, 0);
        assert_eq!(a.fused_chains, 0);
        assert_eq!(a.k_fused, a.k_eager);
    }

    #[test]
    #[should_panic(expected = "at least two kernels")]
    fn chain_len_one_rejected() {
        let s = seqs(&["a"]);
        let _ = FusionAnalysis::of_sequences(&s, 1);
    }

    #[test]
    fn tail_breaks_chains_anchored_before_it() {
        // Periodic body with a distinct tail (decoder LM-head analogue).
        let mut names = ["a", "b", "c"].repeat(4);
        names.push("T");
        let s = seqs(&names);
        // L=4: chains anchored at 'a' see mixed continuations (a b c a)
        // vs (a b c T); chains anchored at 'b'/'c' have final occurrences
        // too close to the end to complete — under strict Eq. 6 both count
        // against determinism, so nothing fuses.
        let a4 = FusionAnalysis::of_sequences(&s, 4);
        assert_eq!(a4.fused_chains, 0);
        // L=3 is deterministic at anchor 'a' (every occurrence completes
        // as "abc", including the one just before the tail).
        let a3 = FusionAnalysis::of_sequences(&s, 3);
        assert_eq!(a3.fused_chains, 4);
    }

    #[test]
    fn proximity_score_at_positions() {
        let s = seqs(&["a", "b", "x", "a", "b", "y"]);
        let ps = proximity_score_at(&s, 0, 0, 3).unwrap();
        assert!((ps - 0.5).abs() < 1e-12);
        assert_eq!(proximity_score_at(&s, 0, 5, 3), None);
        let ps2 = proximity_score_at(&s, 0, 0, 2).unwrap();
        assert!((ps2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strict_ps_requires_every_occurrence_to_complete() {
        let s = seqs(&["a", "b", "c", "d"].repeat(16));
        let sweep = FusionAnalysis::sweep(&s, &[2, 4, 8, 16, 32]);
        for a in &sweep {
            assert_eq!(a.k_eager, 64);
            assert!(a.ideal_speedup() >= 1.0);
        }
        // L=2: both (a b) and (c d) are deterministic → 32 fused pairs.
        assert_eq!(sweep[0].fused_chains, 32);
        assert!((sweep[0].ideal_speedup() - 2.0).abs() < 1e-12);
        // L=4: the full period is deterministic → 16 fused chains.
        assert_eq!(sweep[1].fused_chains, 16);
        assert!((sweep[1].ideal_speedup() - 4.0).abs() < 1e-12);
        // L≥8: the final period's anchors cannot complete an 8-chain, so
        // under strict Eq. 6 no chain is deterministic.
        assert_eq!(sweep[2].fused_chains, 0);
        assert_eq!(sweep[4].ideal_speedup(), 1.0);
    }
}
