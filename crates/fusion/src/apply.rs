//! Applying fusion recommendations — the paper's §VI future work.
//!
//! §V-C computes only the *idealized* payoff of fusing deterministic
//! chains (Eqs. 7–8: pure launch-count arithmetic). This module actually
//! *performs* the fusion on a kernel stream: it finds the greedy
//! non-overlapping deterministic cover at a chain length and merges each
//! covered window into a single [`KernelClass::FusedChain`] kernel whose
//! work is the sum of its members. Replaying the fused stream through the
//! execution engine then yields a *measured* speedup to compare against
//! Eq. 8 — including the second-order effects the idealized number
//! ignores (per-kernel device overhead collapsing, CPU dispatch that is
//! not per-launch, queuing interactions).
//!
//! [`KernelClass::FusedChain`]: skip_hw::KernelClass::FusedChain

use serde::{Deserialize, Serialize};
use skip_hw::{KernelClass, KernelWork};
use skip_llm::KernelSpec;

use crate::sequence::KernelSequences;

/// The result of applying fusion to a kernel stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusedStream {
    /// The transformed stream: fused chains replaced by single kernels.
    pub kernels: Vec<KernelSpec>,
    /// Number of chains fused (`C_fused`).
    pub chains_fused: usize,
    /// Launches eliminated (`C_fused · (L − 1)`).
    pub launches_saved: usize,
    /// The chain length used.
    pub chain_len: usize,
}

impl FusedStream {
    /// `K_fused` of the transformed stream.
    #[must_use]
    pub fn launch_count(&self) -> usize {
        self.kernels.len()
    }
}

/// Applies proximity-score fusion at `chain_len` to `kernels` (a launch
/// stream with work annotations, e.g. from
/// [`OperatorGraph::kernels_in_order`]).
///
/// Deterministic chains are identified exactly as in
/// [`FusionAnalysis`](crate::FusionAnalysis) (strict Eq. 6 over the name
/// stream) and covered greedily left-to-right without overlap. Each
/// covered window becomes one fused kernel:
///
/// * FLOPs and bytes are the member sums (the work still happens);
/// * the class becomes [`KernelClass::FusedChain`], so the device pays the
///   fixed kernel overhead *once* instead of `L` times.
///
/// # Panics
///
/// Panics if `chain_len < 2`.
///
/// [`OperatorGraph::kernels_in_order`]: skip_llm::OperatorGraph::kernels_in_order
#[must_use]
pub fn apply_fusion(kernels: &[KernelSpec], chain_len: usize) -> FusedStream {
    assert!(chain_len >= 2, "a fusion chain needs at least two kernels");
    let l = chain_len;
    let names: Vec<Vec<&str>> = vec![kernels.iter().map(|k| k.name.as_str()).collect()];
    let seqs = KernelSequences::from_name_sequences(&names);
    let seq = &seqs.sequences()[0];

    // Strict Eq. 6 determinism, as in FusionAnalysis.
    let mut anchor_freq = std::collections::BTreeMap::new();
    let mut chain_freq = std::collections::BTreeMap::new();
    for &k in seq {
        *anchor_freq.entry(k).or_insert(0usize) += 1;
    }
    for w in seq.windows(l) {
        *chain_freq.entry(w).or_insert(0usize) += 1;
    }
    let deterministic = |w: &[u32]| chain_freq.get(w) == anchor_freq.get(&w[0]);

    let mut out = Vec::with_capacity(kernels.len());
    let mut chains_fused = 0usize;
    let mut i = 0;
    while i < kernels.len() {
        if i + l <= kernels.len() && deterministic(&seq[i..i + l]) {
            let members = &kernels[i..i + l];
            let flops: f64 = members.iter().map(|k| k.work.flops).sum();
            let bytes: f64 = members.iter().map(|k| k.work.bytes).sum();
            out.push(KernelSpec::new(
                format!("fused_chain_{}_{l}", members[0].name),
                KernelWork {
                    class: KernelClass::FusedChain,
                    flops,
                    bytes,
                },
            ));
            chains_fused += 1;
            i += l;
        } else {
            out.push(kernels[i].clone());
            i += 1;
        }
    }

    FusedStream {
        kernels: out,
        chains_fused,
        launches_saved: chains_fused * (l - 1),
        chain_len: l,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str) -> KernelSpec {
        KernelSpec::new(
            name,
            KernelWork {
                class: KernelClass::Elementwise,
                flops: 10.0,
                bytes: 100.0,
            },
        )
    }

    #[test]
    fn periodic_stream_fuses_and_preserves_work() {
        let kernels: Vec<KernelSpec> = ["a", "b", "c"].repeat(4).into_iter().map(spec).collect();
        let fused = apply_fusion(&kernels, 3);
        assert_eq!(fused.chains_fused, 4);
        assert_eq!(fused.launch_count(), 4);
        assert_eq!(fused.launches_saved, 8);
        let flops: f64 = fused.kernels.iter().map(|k| k.work.flops).sum();
        assert_eq!(flops, 120.0);
        assert!(fused
            .kernels
            .iter()
            .all(|k| k.work.class == KernelClass::FusedChain));
    }

    #[test]
    fn launch_arithmetic_matches_eq7() {
        let kernels: Vec<KernelSpec> = ["x", "y"].repeat(8).into_iter().map(spec).collect();
        let fused = apply_fusion(&kernels, 2);
        assert_eq!(
            fused.launch_count() + fused.launches_saved,
            kernels.len(),
            "Eq. 7 bookkeeping"
        );
    }

    #[test]
    fn non_deterministic_streams_pass_through() {
        let kernels: Vec<KernelSpec> = ["a", "b", "x", "a", "b", "y"]
            .into_iter()
            .map(spec)
            .collect();
        let fused = apply_fusion(&kernels, 3);
        // Only the x-anchored chain is deterministic.
        assert_eq!(fused.chains_fused, 1);
        assert_eq!(fused.launch_count(), 4);
    }

    #[test]
    #[should_panic(expected = "at least two kernels")]
    fn rejects_unit_chains() {
        let _ = apply_fusion(&[spec("a")], 1);
    }
}
