//! Threshold-based fusion recommendation (paper §III-C: "to recommend
//! fusion based on a proximity score threshold T, we suggest PS(C) ≥ T").

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use skip_trace::Trace;

use crate::sequence::KernelSequences;

/// One recommended kernel chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusionRecommendation {
    /// The kernel names of the chain, in launch order.
    pub chain: Vec<String>,
    /// The chain's proximity score (Eq. 6).
    pub proximity_score: f64,
    /// Occurrences of the chain in the stream (overlap allowed).
    pub occurrences: usize,
    /// Launches saved if every *non-overlapping* occurrence is fused:
    /// `⌊occurrences-per-cover⌋ · (L−1)` approximated by greedy cover count.
    pub est_launch_savings: usize,
}

/// Recommends chains of length `chain_len` with `PS(C) ≥ threshold`,
/// ordered by estimated launch savings (descending), then lexicographically
/// (deterministic output).
///
/// # Panics
///
/// Panics if `chain_len < 2` or `threshold` is not within `(0, 1]`.
///
/// # Example
///
/// ```
/// use skip_hw::Platform;
/// use skip_llm::{zoo, Phase, Workload};
/// use skip_runtime::{Engine, ExecMode};
///
/// let trace = Engine::new(Platform::intel_h100())
///     .run(&Workload::new(zoo::gpt2(), Phase::Prefill, 1, 512), ExecMode::Eager);
/// let recs = skip_fusion::recommend(&trace, 8, 1.0);
/// assert!(!recs.is_empty());
/// assert!(recs.iter().all(|r| r.proximity_score >= 1.0));
/// ```
#[must_use]
pub fn recommend(trace: &Trace, chain_len: usize, threshold: f64) -> Vec<FusionRecommendation> {
    recommend_sequences(&KernelSequences::from_trace(trace), chain_len, threshold)
}

/// [`recommend`] over pre-extracted sequences.
///
/// # Panics
///
/// Panics if `chain_len < 2` or `threshold` is not within `(0, 1]`.
#[must_use]
pub fn recommend_sequences(
    seqs: &KernelSequences,
    chain_len: usize,
    threshold: f64,
) -> Vec<FusionRecommendation> {
    assert!(chain_len >= 2, "a fusion chain needs at least two kernels");
    assert!(
        threshold > 0.0 && threshold <= 1.0,
        "threshold must be in (0, 1]"
    );
    let l = chain_len;

    let mut chain_freq: BTreeMap<&[u32], usize> = BTreeMap::new();
    // Strict Eq. 6: f(k_i) counts every occurrence of the anchor kernel.
    let mut anchor_freq: BTreeMap<u32, usize> = BTreeMap::new();
    for seq in seqs.sequences() {
        for &k in seq {
            *anchor_freq.entry(k).or_insert(0) += 1;
        }
        for w in seq.windows(l) {
            *chain_freq.entry(w).or_insert(0) += 1;
        }
    }

    let mut recs: Vec<FusionRecommendation> = chain_freq
        .iter()
        .filter_map(|(&w, &fc)| {
            let fk = anchor_freq[&w[0]];
            let ps = fc as f64 / fk as f64;
            if ps + 1e-12 < threshold {
                return None;
            }
            // Greedy non-overlapping occurrences of this specific chain.
            let mut covers = 0usize;
            for seq in seqs.sequences() {
                let mut i = 0;
                while i + l <= seq.len() {
                    if &seq[i..i + l] == w {
                        covers += 1;
                        i += l;
                    } else {
                        i += 1;
                    }
                }
            }
            Some(FusionRecommendation {
                chain: w.iter().map(|&id| seqs.name(id).to_owned()).collect(),
                proximity_score: ps,
                occurrences: fc,
                est_launch_savings: covers * (l - 1),
            })
        })
        .collect();

    recs.sort_by(|a, b| {
        b.est_launch_savings
            .cmp(&a.est_launch_savings)
            .then_with(|| a.chain.cmp(&b.chain))
    });
    recs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(names: &[&str]) -> KernelSequences {
        KernelSequences::from_name_sequences(&[names.to_vec()])
    }

    #[test]
    fn deterministic_chain_is_recommended_at_threshold_one() {
        let s = seqs(&["a", "b", "c"].repeat(3));
        let recs = recommend_sequences(&s, 3, 1.0);
        assert!(recs
            .iter()
            .any(|r| r.chain == vec!["a".to_owned(), "b".into(), "c".into()]));
        for r in &recs {
            assert!((r.proximity_score - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn threshold_filters_probabilistic_chains() {
        // "ab" continues to x twice, to y once → PS(abx)=2/3, PS(aby)=1/3.
        let s = seqs(&["a", "b", "x", "a", "b", "y", "a", "b", "x"]);
        let strict = recommend_sequences(&s, 3, 1.0);
        assert!(strict.iter().all(|r| r.chain[0] != "a"));
        let loose = recommend_sequences(&s, 3, 0.6);
        assert!(loose
            .iter()
            .any(|r| r.chain == vec!["a".to_owned(), "b".into(), "x".into()]));
    }

    #[test]
    fn recommendations_sorted_by_savings() {
        let mut names = vec![];
        for _ in 0..8 {
            names.extend(["p", "q"]); // frequent deterministic pair
        }
        names.extend(["r", "s"]); // rare deterministic pair
        let recs = recommend_sequences(&seqs(&names), 2, 1.0);
        assert!(recs[0].est_launch_savings >= recs.last().unwrap().est_launch_savings);
        assert_eq!(recs[0].chain, vec!["p".to_owned(), "q".into()]);
    }

    #[test]
    fn savings_use_non_overlapping_occurrences() {
        // "aaaa": windows of "aa" occur 3 times overlapping, but only 2
        // non-overlapping fusions are possible. Under strict Eq. 6 the
        // final 'a' cannot complete a pair, so PS = 3/4 — recommended only
        // below threshold 1.
        let s = seqs(&["a", "a", "a", "a"]);
        assert!(recommend_sequences(&s, 2, 1.0).is_empty());
        let recs = recommend_sequences(&s, 2, 0.7);
        assert_eq!(recs[0].occurrences, 3);
        assert!((recs[0].proximity_score - 0.75).abs() < 1e-12);
        assert_eq!(recs[0].est_launch_savings, 2);
    }

    #[test]
    #[should_panic(expected = "threshold must be in (0, 1]")]
    fn threshold_out_of_range_panics() {
        let _ = recommend_sequences(&seqs(&["a", "b"]), 2, 1.5);
    }

    #[test]
    fn empty_stream_yields_no_recommendations() {
        let s = KernelSequences::from_name_sequences::<&str>(&[]);
        assert!(recommend_sequences(&s, 2, 1.0).is_empty());
    }
}
