//! Kernel-launch sequence extraction and name interning.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use skip_trace::Trace;

/// The kernel streams of a trace, one per GPU stream, with kernel names
/// interned to dense IDs for fast chain analysis.
///
/// Kernels within a stream are ordered by execution begin time (identical
/// to launch order under FIFO semantics). The paper's "kernel execution
/// sequences separated by intervening CPU operator dependency" map to one
/// sequence per stream here: within one eager forward pass the CPU only
/// synchronizes at the very end, so each stream's launch order forms a
/// single unbroken sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelSequences {
    names: Vec<String>,
    sequences: Vec<Vec<u32>>,
}

impl KernelSequences {
    /// Extracts sequences from `trace`.
    ///
    /// The trace's kernel names are already interned, so this remaps trace
    /// [`NameId`]s to dense first-seen ids through a direct-indexed table —
    /// no string hashing or per-kernel allocation. The dense-id assignment
    /// (first appearance across streams) is identical to interning the name
    /// strings directly.
    ///
    /// [`NameId`]: skip_trace::NameId
    #[must_use]
    pub fn from_trace(trace: &Trace) -> Self {
        let mut remap: Vec<Option<u32>> = vec![None; trace.names().len()];
        let mut names: Vec<String> = Vec::new();
        let mut sequences = Vec::new();
        for s in trace.streams() {
            let kernels = trace.kernels_on(s);
            let mut ids = Vec::with_capacity(kernels.len());
            for k in kernels {
                let slot = &mut remap[k.name.get() as usize];
                let id = match *slot {
                    Some(id) => id,
                    None => {
                        let id = names.len() as u32;
                        names.push(trace.name(k.name).to_owned());
                        *slot = Some(id);
                        id
                    }
                };
                ids.push(id);
            }
            sequences.push(ids);
        }
        KernelSequences { names, sequences }
    }

    /// Builds sequences directly from name lists (useful for tests and for
    /// analyzing streams that did not come from a trace).
    #[must_use]
    pub fn from_name_sequences<S: AsRef<str>>(seqs: &[Vec<S>]) -> Self {
        let mut intern: BTreeMap<&str, u32> = BTreeMap::new();
        let mut names: Vec<String> = Vec::new();
        let mut sequences = Vec::with_capacity(seqs.len());
        for seq in seqs {
            let mut ids = Vec::with_capacity(seq.len());
            for name in seq {
                let name = name.as_ref();
                let id = *intern.entry(name).or_insert_with(|| {
                    names.push(name.to_owned());
                    (names.len() - 1) as u32
                });
                ids.push(id);
            }
            sequences.push(ids);
        }
        KernelSequences { names, sequences }
    }

    /// The interned sequences.
    #[must_use]
    pub fn sequences(&self) -> &[Vec<u32>] {
        &self.sequences
    }

    /// Resolves an interned ID back to its kernel name.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this instance.
    #[must_use]
    pub fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Total number of kernel launches across all sequences — the paper's
    /// `K_eager` when the trace was eager.
    #[must_use]
    pub fn total_kernels(&self) -> usize {
        self.sequences.iter().map(Vec::len).sum()
    }

    /// Number of distinct kernel names.
    #[must_use]
    pub fn distinct_names(&self) -> usize {
        self.names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_reversible() {
        let ks = KernelSequences::from_name_sequences(&[vec!["a", "b", "a", "c"]]);
        let seq = &ks.sequences()[0];
        assert_eq!(seq.len(), 4);
        assert_eq!(seq[0], seq[2]);
        assert_eq!(ks.name(seq[0]), "a");
        assert_eq!(ks.name(seq[3]), "c");
        assert_eq!(ks.distinct_names(), 3);
        assert_eq!(ks.total_kernels(), 4);
    }

    #[test]
    fn multiple_sequences_share_the_intern_table() {
        let ks = KernelSequences::from_name_sequences(&[vec!["x", "y"], vec!["y", "z"]]);
        assert_eq!(ks.distinct_names(), 3);
        assert_eq!(ks.sequences()[0][1], ks.sequences()[1][0]);
    }

    #[test]
    fn empty_input_is_fine() {
        let ks = KernelSequences::from_name_sequences::<&str>(&[]);
        assert_eq!(ks.total_kernels(), 0);
        assert_eq!(ks.distinct_names(), 0);
    }
}
