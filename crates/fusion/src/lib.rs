//! # skip-fusion — proximity-score kernel-fusion recommendation
//!
//! Implements the paper's §III-C: a general, trace-driven method for
//! finding kernel sequences worth fusing, targeting the CPU-bound region
//! where reducing kernel launches directly reduces TKLQT and therefore
//! latency.
//!
//! Given the kernel launch stream of a trace, a **chain** `C = (k_i, …,
//! k_{i+L-1})` of length `L` has **proximity score**
//!
//! ```text
//! PS(C) = f(C) / f(k_i)              (Eq. 6)
//! ```
//!
//! where `f(C)` counts occurrences of the chain and `f(k_i)` counts the
//! *assessable* occurrences of its anchor kernel — those with at least
//! `L−1` successors in the same sequence (a chain can only be evaluated
//! where `L` kernels exist). `PS(C) = 1` marks a *deterministic* pattern:
//! every time the anchor runs, the exact same `L`-kernel sequence follows —
//! the ideal fusion candidate.
//!
//! The analysis then covers the stream greedily with non-overlapping
//! deterministic chains and evaluates the idealized launch-saving payoff:
//!
//! ```text
//! K_fused = K_eager − C_fused · (L − 1)   (Eq. 7)
//! Speedup = K_eager / K_fused             (Eq. 8)
//! ```
//!
//! Because transformer layers repeat exactly, long deterministic chains
//! exist in encoder streams (no trailing LM head breaks the periodicity)
//! but are cut short in decoder streams — reproducing the paper's Fig. 8
//! asymmetry (XLM-R up to ~6.8× vs GPT2 ~2.7× idealized speedup).
//!
//! # Example
//!
//! ```
//! use skip_hw::Platform;
//! use skip_llm::{zoo, Phase, Workload};
//! use skip_runtime::{Engine, ExecMode};
//! use skip_fusion::FusionAnalysis;
//!
//! let trace = Engine::new(Platform::intel_h100())
//!     .run(&Workload::new(zoo::gpt2(), Phase::Prefill, 1, 512), ExecMode::Eager);
//! let analysis = FusionAnalysis::of_trace(&trace, 256);
//! // Paper Fig. 8: up to ~2.7x idealized speedup for GPT2.
//! assert!(analysis.ideal_speedup() > 2.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod apply;
mod recommend;
mod sequence;

pub use analysis::{proximity_score_at, FusionAnalysis};
pub use apply::{apply_fusion, FusedStream};
pub use recommend::{recommend, FusionRecommendation};
pub use sequence::KernelSequences;
