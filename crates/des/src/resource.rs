//! Serial FIFO resources — the queueing primitive behind GPU streams.
//!
//! A CUDA stream executes kernels strictly in submission order; a kernel
//! starts at the later of (a) the instant it becomes available to the stream
//! and (b) the instant the previous kernel finishes. [`FifoResource`]
//! captures exactly that admission rule and additionally tracks busy
//! intervals so utilization and idle time can be computed afterwards.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// One busy interval on a [`FifoResource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Busy {
    /// Start of the interval.
    pub start: SimTime,
    /// End of the interval (exclusive).
    pub end: SimTime,
}

impl Busy {
    /// Length of the interval.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.end.duration_since(self.start)
    }
}

/// A serial first-come-first-served resource.
///
/// # Example
///
/// ```
/// use skip_des::{FifoResource, SimDuration, SimTime};
///
/// let mut stream = FifoResource::new();
/// // First kernel arrives at t=10 and runs 100ns.
/// let a = stream.admit(SimTime::from_nanos(10), SimDuration::from_nanos(100));
/// assert_eq!(a.start, SimTime::from_nanos(10));
/// // Second arrives at t=20 but must queue behind the first.
/// let b = stream.admit(SimTime::from_nanos(20), SimDuration::from_nanos(50));
/// assert_eq!(b.start, SimTime::from_nanos(110));
/// assert_eq!(stream.busy_total(), SimDuration::from_nanos(150));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FifoResource {
    free_at: SimTime,
    intervals: Vec<Busy>,
    busy_total: SimDuration,
}

impl FifoResource {
    /// Creates a resource that is free from the simulation epoch.
    #[must_use]
    pub fn new() -> Self {
        FifoResource::default()
    }

    /// Admits a unit of work that becomes available at `available` and takes
    /// `duration` to execute. Returns the busy interval assigned to it.
    ///
    /// Admission order is the caller's responsibility: calls must be made in
    /// the order work is submitted (as a CPU thread launches kernels), which
    /// is naturally the case when driven from a simulation event loop.
    pub fn admit(&mut self, available: SimTime, duration: SimDuration) -> Busy {
        let start = available.max(self.free_at);
        let end = start + duration;
        self.free_at = end;
        let busy = Busy { start, end };
        if !duration.is_zero() {
            self.intervals.push(busy);
            self.busy_total += duration;
        }
        busy
    }

    /// The instant at which the resource next becomes free.
    #[must_use]
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total busy time accumulated so far.
    #[must_use]
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// The recorded busy intervals, in admission order.
    #[must_use]
    pub fn intervals(&self) -> &[Busy] {
        &self.intervals
    }

    /// Idle time between the epoch and `horizon`, i.e. `horizon − busy`.
    ///
    /// Busy intervals on a FIFO resource never overlap, so the subtraction
    /// is exact. Busy time beyond `horizon` is not counted.
    #[must_use]
    pub fn idle_until(&self, horizon: SimTime) -> SimDuration {
        let mut busy_before = SimDuration::ZERO;
        for iv in &self.intervals {
            if iv.start >= horizon {
                break;
            }
            let end = iv.end.min(horizon);
            busy_before += end.duration_since(iv.start);
        }
        horizon
            .duration_since(SimTime::ZERO)
            .saturating_sub(busy_before)
    }

    /// Fraction of `[0, horizon)` the resource was busy, in `[0, 1]`.
    ///
    /// Returns 0 for a zero horizon.
    #[must_use]
    pub fn utilization_until(&self, horizon: SimTime) -> f64 {
        let total = horizon.as_nanos();
        if total == 0 {
            return 0.0;
        }
        let idle = self.idle_until(horizon).as_nanos();
        (total - idle) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> SimTime {
        SimTime::from_nanos(v)
    }
    fn d(v: u64) -> SimDuration {
        SimDuration::from_nanos(v)
    }

    #[test]
    fn back_to_back_work_queues() {
        let mut r = FifoResource::new();
        let a = r.admit(ns(0), d(10));
        let b = r.admit(ns(0), d(10));
        assert_eq!(a.end, ns(10));
        assert_eq!(b.start, ns(10));
        assert_eq!(b.end, ns(20));
    }

    #[test]
    fn idle_gap_when_work_arrives_late() {
        let mut r = FifoResource::new();
        r.admit(ns(0), d(10));
        let b = r.admit(ns(50), d(5));
        assert_eq!(b.start, ns(50));
        assert_eq!(r.busy_total(), d(15));
        assert_eq!(r.idle_until(ns(55)), d(40));
    }

    #[test]
    fn zero_duration_work_does_not_record_interval() {
        let mut r = FifoResource::new();
        let a = r.admit(ns(5), SimDuration::ZERO);
        assert_eq!(a.start, a.end);
        assert!(r.intervals().is_empty());
        assert_eq!(r.busy_total(), SimDuration::ZERO);
    }

    #[test]
    fn utilization_fraction() {
        let mut r = FifoResource::new();
        r.admit(ns(0), d(25));
        r.admit(ns(75), d(25));
        let u = r.utilization_until(ns(100));
        assert!((u - 0.5).abs() < 1e-12, "u = {u}");
        assert_eq!(r.utilization_until(SimTime::ZERO), 0.0);
    }

    #[test]
    fn idle_until_clips_at_horizon() {
        let mut r = FifoResource::new();
        r.admit(ns(0), d(100));
        // Horizon in the middle of the busy interval: idle is zero.
        assert_eq!(r.idle_until(ns(50)), SimDuration::ZERO);
    }

    #[test]
    fn intervals_are_in_order_and_disjoint() {
        let mut r = FifoResource::new();
        for i in 0..10 {
            r.admit(ns(i * 3), d(5));
        }
        let iv = r.intervals();
        for w in iv.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
    }
}
