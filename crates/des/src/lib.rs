//! # skip-des — deterministic discrete-event simulation core
//!
//! This crate is the timing substrate for the whole `skip-rs` stack. Every
//! latency the reproduction reports — kernel launch overheads, queueing
//! delays, TTFT — is computed on the deterministic nanosecond clock defined
//! here, so that every table and figure of the paper regenerates
//! bit-identically from the same inputs.
//!
//! The crate provides four building blocks:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated
//!   timestamps and durations with checked arithmetic.
//! * [`EventQueue`] — a priority queue of timestamped events with a
//!   deterministic FIFO tiebreak for simultaneous events.
//! * [`Simulator`] — an event loop driving handlers that may schedule
//!   further events.
//! * [`FifoResource`] — a serial resource (a GPU stream, a CPU dispatch
//!   thread) that admits work in first-come-first-served order and tracks
//!   busy time for utilization accounting.
//!
//! # Example
//!
//! ```
//! use skip_des::{SimDuration, SimTime, Simulator};
//!
//! // Count ticks of a self-rescheduling event until the horizon.
//! let mut sim = Simulator::new();
//! sim.schedule(SimTime::ZERO, ());
//! let mut ticks = 0u32;
//! sim.run_until(SimTime::from_nanos(1_000), |ctx, ()| {
//!     ticks += 1;
//!     let next = ctx.now() + SimDuration::from_nanos(100);
//!     ctx.schedule(next, ());
//! });
//! assert_eq!(ticks, 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capacity;
mod event;
mod ids;
mod resource;
mod sim;
mod stats;
mod time;

pub use capacity::{CapacityResource, Placement};
pub use event::{EventQueue, HeapEventQueue, Scheduled};
pub use ids::IdAllocator;
pub use resource::{Busy, FifoResource};
pub use sim::{SimContext, Simulator};
pub use stats::{attainment, mean, percentile, Summary};
pub use time::{SimDuration, SimTime};
