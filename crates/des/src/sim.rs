//! The event loop: a clock plus an [`EventQueue`], driven by a handler.

use crate::event::{EventQueue, Scheduled};
use crate::time::SimTime;

/// A discrete-event simulator: a monotone clock and a pending-event queue.
///
/// The handler passed to [`Simulator::run`] receives each event together with
/// a [`SimContext`] through which it can read the clock and schedule further
/// events. The clock never moves backwards; scheduling an event in the past
/// is a logic error and panics.
///
/// # Example
///
/// ```
/// use skip_des::{SimDuration, SimTime, Simulator};
///
/// #[derive(Debug)]
/// enum Ev { Ping(u32) }
///
/// let mut sim = Simulator::new();
/// sim.schedule(SimTime::ZERO, Ev::Ping(0));
/// let mut last = 0;
/// sim.run(|ctx, Ev::Ping(n)| {
///     last = n;
///     if n < 3 {
///         ctx.schedule(ctx.now() + SimDuration::from_nanos(10), Ev::Ping(n + 1));
///     }
/// });
/// assert_eq!(last, 3);
/// assert_eq!(sim.now(), SimTime::from_nanos(30));
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
}

/// Handle given to event handlers for reading the clock and scheduling
/// follow-up events.
#[derive(Debug)]
pub struct SimContext<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
}

impl<E> SimContext<'_, E> {
    /// The current simulated instant (the firing time of the event being
    /// handled).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current instant.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {now}",
            now = self.now
        );
        self.queue.push(at, event);
    }
}

impl<E> Simulator<E> {
    /// Creates a simulator with the clock at [`SimTime::ZERO`] and no
    /// pending events.
    #[must_use]
    pub fn new() -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            processed: 0,
        }
    }

    /// The current simulated instant.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events handled so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` at instant `at` from outside the event loop.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current instant.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {now}",
            now = self.now
        );
        self.queue.push(at, event);
    }

    /// Pops and handles a single event, advancing the clock to its firing
    /// time. Returns `false` if the queue was empty.
    pub fn step<F>(&mut self, mut handler: F) -> bool
    where
        F: FnMut(&mut SimContext<'_, E>, E),
    {
        let Some(Scheduled { at, event, .. }) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "event queue yielded a past event");
        self.now = at;
        self.processed += 1;
        let mut ctx = SimContext {
            now: at,
            queue: &mut self.queue,
        };
        handler(&mut ctx, event);
        true
    }

    /// Runs until the queue drains, returning the final clock value.
    pub fn run<F>(&mut self, mut handler: F) -> SimTime
    where
        F: FnMut(&mut SimContext<'_, E>, E),
    {
        while self.step(&mut handler) {}
        self.now
    }

    /// Runs until the queue drains or the next event would fire after
    /// `horizon` (exclusive), returning the final clock value. Events at or
    /// beyond the horizon remain queued.
    pub fn run_until<F>(&mut self, horizon: SimTime, mut handler: F) -> SimTime
    where
        F: FnMut(&mut SimContext<'_, E>, E),
    {
        while let Some(t) = self.queue.peek_time() {
            if t >= horizon {
                break;
            }
            self.step(&mut handler);
        }
        self.now
    }
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Simulator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn clock_advances_with_events() {
        let mut sim = Simulator::new();
        sim.schedule(SimTime::from_nanos(10), 1u32);
        sim.schedule(SimTime::from_nanos(20), 2u32);
        let mut seen = Vec::new();
        sim.run(|ctx, ev| seen.push((ctx.now().as_nanos(), ev)));
        assert_eq!(seen, vec![(10, 1), (20, 2)]);
        assert_eq!(sim.now(), SimTime::from_nanos(20));
        assert_eq!(sim.events_processed(), 2);
    }

    #[test]
    fn handlers_can_cascade() {
        let mut sim = Simulator::new();
        sim.schedule(SimTime::ZERO, 0u32);
        let mut count = 0;
        sim.run(|ctx, depth| {
            count += 1;
            if depth < 5 {
                ctx.schedule(ctx.now() + SimDuration::from_nanos(1), depth + 1);
            }
        });
        assert_eq!(count, 6);
        assert_eq!(sim.now(), SimTime::from_nanos(5));
    }

    #[test]
    fn run_until_leaves_future_events_queued() {
        let mut sim = Simulator::new();
        for t in [5u64, 15, 25] {
            sim.schedule(SimTime::from_nanos(t), t);
        }
        let mut fired = Vec::new();
        sim.run_until(SimTime::from_nanos(20), |_, ev| fired.push(ev));
        assert_eq!(fired, vec![5, 15]);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulator::new();
        sim.schedule(SimTime::from_nanos(10), ());
        sim.run(|ctx, ()| {
            ctx.schedule(SimTime::from_nanos(5), ());
        });
    }

    #[test]
    fn step_on_empty_returns_false() {
        let mut sim: Simulator<()> = Simulator::new();
        assert!(!sim.step(|_, _| {}));
    }
}
