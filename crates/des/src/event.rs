//! Timestamped event queue with deterministic ordering.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event extracted from an [`EventQueue`], paired with its firing time and
/// the monotone sequence number that broke any timestamp tie.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// The instant at which the event fires.
    pub at: SimTime,
    /// Insertion order; events scheduled earlier pop first among equal times.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

/// A min-priority queue of events ordered by `(time, insertion order)`.
///
/// Binary heaps are not stable, so a bare `BinaryHeap<(SimTime, E)>` would
/// pop simultaneous events in an unspecified order and simulations would not
/// be reproducible. `EventQueue` tags every insertion with a monotone
/// sequence number, guaranteeing FIFO order among events scheduled for the
/// same instant.
///
/// # Example
///
/// ```
/// use skip_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(5), "b");
/// q.push(SimTime::from_nanos(5), "c");
/// q.push(SimTime::from_nanos(1), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
/// assert_eq!(order, vec!["a", "b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// Manual ordering impls: only `at` and `seq` participate, and the heap is a
// max-heap so comparisons are reversed to obtain min-first behaviour.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `at`. Returns the sequence number used
    /// for tie-breaking, which is unique per queue.
    pub fn push(&mut self, at: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        seq
    }

    /// Removes and returns the earliest event, FIFO among equal timestamps.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop().map(|e| Scheduled {
            at: e.at,
            seq: e.seq,
            event: e.event,
        })
    }

    /// The firing time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events, keeping the sequence counter monotone.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (at, event) in iter {
            self.push(at, event);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut EventQueue<u32>) -> Vec<(u64, u32)> {
        std::iter::from_fn(|| q.pop())
            .map(|s| (s.at.as_nanos(), s.event))
            .collect()
    }

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        assert_eq!(drain(&mut q), vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(SimTime::from_nanos(42), i);
        }
        let popped: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(7), 0);
        q.push(SimTime::from_nanos(3), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
    }

    #[test]
    fn len_and_clear() {
        let mut q: EventQueue<u32> = (0..5).map(|i| (SimTime::from_nanos(i), i as u32)).collect();
        assert_eq!(q.len(), 5);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        // Sequence numbers stay monotone across clear.
        let s = q.push(SimTime::ZERO, 9);
        assert_eq!(s, 5);
    }

    #[test]
    fn seq_numbers_are_unique_and_monotone() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_nanos(1), 0);
        let b = q.push(SimTime::from_nanos(1), 1);
        assert!(b > a);
    }
}
