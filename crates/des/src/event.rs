//! Timestamped event queue with deterministic ordering.
//!
//! Two implementations live here:
//!
//! * [`EventQueue`] — a calendar (bucket) queue: O(1) amortized push/pop
//!   against the clock-advancing access pattern a discrete-event
//!   simulation produces. This is what [`Simulator`](crate::Simulator)
//!   runs on.
//! * [`HeapEventQueue`] — the original `BinaryHeap` implementation, kept
//!   as the differential oracle: the calendar queue must pop the exact
//!   same `(time, seq)` sequence for any workload, and the property tests
//!   pin that equivalence.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event extracted from an [`EventQueue`], paired with its firing time and
/// the monotone sequence number that broke any timestamp tie.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// The instant at which the event fires.
    pub at: SimTime,
    /// Insertion order; events scheduled earlier pop first among equal times.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

/// Initial (and minimum) bucket count. A power of two so the ring index is
/// a mask.
const MIN_BUCKETS: usize = 16;

/// Hard ceiling on the ring size: `resize` doubles on demand, and one
/// bucket per ~million pending events is already far past any simulation
/// this stack runs.
const MAX_BUCKETS: usize = 1 << 20;

/// How many entry timestamps `resize` samples to estimate the mean
/// inter-event gap that sets the new bucket width.
const WIDTH_SAMPLE: usize = 64;

/// A min-priority queue of events ordered by `(time, insertion order)`.
///
/// `EventQueue` tags every insertion with a monotone sequence number,
/// guaranteeing FIFO order among events scheduled for the same instant —
/// an unstable priority queue would pop simultaneous events in an
/// unspecified order and simulations would not be reproducible.
///
/// # Implementation: calendar queue
///
/// Events live in a ring of `n` buckets of `width` nanoseconds each;
/// an event at time `t` sits in bucket `(t / width) mod n`. A cursor
/// tracks the *current window* `[floor, floor + width)`: `pop` scans the
/// cursor's bucket for the earliest `(time, seq)` entry inside the window
/// and otherwise advances the cursor one window at a time. Because every
/// pending event's time is `>= floor` (pushes behind the cursor rewind
/// it), an in-window entry is the global minimum — no other bucket can
/// hold a time inside the current window. If a whole ring revolution
/// finds nothing in-window (all events far in the future), the queue
/// jumps the cursor straight to the global minimum instead of crawling.
///
/// The ring is resized (and the width re-estimated from a sample of
/// inter-event gaps) whenever the population outgrows two entries per
/// bucket or shrinks below half an entry per bucket, keeping bucket scans
/// O(1) amortized for any stationary event-density regime.
///
/// # Example
///
/// ```
/// use skip_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(5), "b");
/// q.push(SimTime::from_nanos(5), "c");
/// q.push(SimTime::from_nanos(1), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
/// assert_eq!(order, vec!["a", "b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    buckets: Vec<Vec<Entry<E>>>,
    /// Bucket width in nanoseconds, always >= 1.
    width: u64,
    /// Lower edge of the current window; no pending event is earlier.
    floor: u64,
    /// Bucket holding the current window: `(floor / width) mod n`.
    cursor: usize,
    len: usize,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width: 1,
            floor: 0,
            cursor: 0,
            len: 0,
            next_seq: 0,
        }
    }

    fn bucket_of(&self, at_ns: u64) -> usize {
        ((at_ns / self.width) as usize) & (self.buckets.len() - 1)
    }

    /// Points the cursor at the window containing `at_ns`.
    fn seek(&mut self, at_ns: u64) {
        self.floor = at_ns - at_ns % self.width;
        self.cursor = self.bucket_of(at_ns);
    }

    /// Schedules `event` to fire at `at`. Returns the sequence number used
    /// for tie-breaking, which is unique per queue.
    pub fn push(&mut self, at: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let at_ns = at.as_nanos();
        // An event behind the cursor (or into an empty queue) re-anchors
        // the window, restoring the "nothing earlier than floor" invariant
        // the pop scan relies on.
        if self.len == 0 || at_ns < self.floor {
            self.seek(at_ns);
        }
        let b = self.bucket_of(at_ns);
        self.buckets[b].push(Entry { at, seq, event });
        self.len += 1;
        if self.len > self.buckets.len() * 2 && self.buckets.len() < MAX_BUCKETS {
            self.resize(self.buckets.len() * 2);
        }
        seq
    }

    /// Finds the position `(bucket, slot)` of the earliest `(time, seq)`
    /// entry, advancing the cursor to its window. `None` when empty.
    fn locate_min(&mut self) -> Option<(usize, usize)> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len();
        for _ in 0..n {
            let top = self.floor.saturating_add(self.width);
            let hit = self.buckets[self.cursor]
                .iter()
                .enumerate()
                .filter(|(_, e)| e.at.as_nanos() < top || top == u64::MAX)
                .min_by_key(|(_, e)| (e.at, e.seq))
                .map(|(i, _)| i);
            if let Some(slot) = hit {
                return Some((self.cursor, slot));
            }
            self.floor = top;
            self.cursor = (self.cursor + 1) & (n - 1);
        }
        // A full revolution with nothing in-window: every event is at
        // least a "year" ahead. Jump straight to the global minimum.
        let (b, slot, at_ns) = self
            .buckets
            .iter()
            .enumerate()
            .flat_map(|(b, bucket)| bucket.iter().enumerate().map(move |(i, e)| (b, i, e)))
            .min_by_key(|(_, _, e)| (e.at, e.seq))
            .map(|(b, i, e)| (b, i, e.at.as_nanos()))
            .expect("len > 0 but no entry found");
        self.seek(at_ns);
        debug_assert_eq!(self.cursor, b);
        Some((b, slot))
    }

    /// Removes and returns the earliest event, FIFO among equal timestamps.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let (b, slot) = self.locate_min()?;
        let e = self.buckets[b].swap_remove(slot);
        self.len -= 1;
        if self.buckets.len() > MIN_BUCKETS && self.len < self.buckets.len() / 2 {
            self.resize(self.buckets.len() / 2);
        }
        Some(Scheduled {
            at: e.at,
            seq: e.seq,
            event: e.event,
        })
    }

    /// The firing time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        // The cursor advance `locate_min` performs is invisible to callers
        // (it never skips a pending event), but `peek_time` takes `&self`,
        // so scan without it: walk windows from `floor` locally.
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len();
        let (mut floor, mut cursor) = (self.floor, self.cursor);
        for _ in 0..n {
            let top = floor.saturating_add(self.width);
            let hit = self.buckets[cursor]
                .iter()
                .filter(|e| e.at.as_nanos() < top || top == u64::MAX)
                .map(|e| e.at)
                .min();
            if hit.is_some() {
                return hit;
            }
            floor = top;
            cursor = (cursor + 1) & (n - 1);
        }
        self.buckets.iter().flatten().map(|e| e.at).min()
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Discards all pending events, keeping the sequence counter monotone.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
        self.floor = 0;
        self.cursor = 0;
    }

    /// Rebuilds the ring at `new_n` buckets, re-estimating the bucket
    /// width from the mean gap between a sorted sample of pending
    /// timestamps (Brown's calendar-queue heuristic): the width tracks the
    /// event density, so the current window holds O(1) events no matter
    /// whether timestamps are nanoseconds or seconds apart.
    fn resize(&mut self, new_n: usize) {
        let entries: Vec<Entry<E>> = self.buckets.iter_mut().flat_map(std::mem::take).collect();

        let mut sample: Vec<u64> = entries
            .iter()
            .take(WIDTH_SAMPLE)
            .map(|e| e.at.as_nanos())
            .collect();
        sample.sort_unstable();
        let gaps: Vec<u64> = sample.windows(2).map(|w| w[1] - w[0]).collect();
        let positive: Vec<u64> = gaps.iter().copied().filter(|&g| g > 0).collect();
        if !positive.is_empty() {
            let mean = positive.iter().sum::<u64>() / positive.len() as u64;
            // Three mean gaps per bucket: wide enough that consecutive
            // events usually share a window, narrow enough that a window
            // scan stays O(1).
            self.width = mean.saturating_mul(3).max(1);
        }

        self.buckets = (0..new_n).map(|_| Vec::new()).collect();
        let min = entries.iter().map(|e| e.at.as_nanos()).min();
        if let Some(min) = min {
            self.seek(min);
        } else {
            self.floor = 0;
            self.cursor = 0;
        }
        for e in entries {
            let b = self.bucket_of(e.at.as_nanos());
            self.buckets[b].push(e);
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (at, event) in iter {
            self.push(at, event);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

/// The original `BinaryHeap`-backed event queue, kept as the differential
/// oracle for [`EventQueue`]: same API, same `(time, insertion order)`
/// contract. Binary heaps are not stable, so the entry carries the same
/// monotone sequence number to break timestamp ties deterministically.
#[derive(Debug, Clone)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct HeapEntry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// Manual ordering impls: only `at` and `seq` participate, and the heap is a
// max-heap so comparisons are reversed to obtain min-first behaviour.
impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `at`, returning the tie-break sequence
    /// number.
    pub fn push(&mut self, at: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { at, seq, event });
        seq
    }

    /// Removes and returns the earliest event, FIFO among equal timestamps.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop().map(|e| Scheduled {
            at: e.at,
            seq: e.seq,
            event: e.event,
        })
    }

    /// The firing time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events, keeping the sequence counter monotone.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        HeapEventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut EventQueue<u32>) -> Vec<(u64, u32)> {
        std::iter::from_fn(|| q.pop())
            .map(|s| (s.at.as_nanos(), s.event))
            .collect()
    }

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        assert_eq!(drain(&mut q), vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(SimTime::from_nanos(42), i);
        }
        let popped: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(7), 0);
        q.push(SimTime::from_nanos(3), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
    }

    #[test]
    fn len_and_clear() {
        let mut q: EventQueue<u32> = (0..5).map(|i| (SimTime::from_nanos(i), i as u32)).collect();
        assert_eq!(q.len(), 5);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        // Sequence numbers stay monotone across clear.
        let s = q.push(SimTime::ZERO, 9);
        assert_eq!(s, 5);
    }

    #[test]
    fn seq_numbers_are_unique_and_monotone() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_nanos(1), 0);
        let b = q.push(SimTime::from_nanos(1), 1);
        assert!(b > a);
    }

    #[test]
    fn push_earlier_than_cursor_rewinds() {
        // Drain forward, then push behind the advanced cursor: the queue
        // must still surface the early event first.
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(1_000_000), 1);
        assert_eq!(q.pop().unwrap().event, 1);
        q.push(SimTime::from_nanos(5), 2);
        q.push(SimTime::from_nanos(2_000_000), 3);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(5)));
        assert_eq!(drain(&mut q), vec![(5, 2), (2_000_000, 3)]);
    }

    #[test]
    fn far_future_jump_does_not_crawl_or_misorder() {
        // Events separated by huge gaps force the "full revolution, jump
        // to global min" path.
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(u64::from(u32::MAX) * 1000), 2);
        q.push(SimTime::from_nanos(3), 1);
        q.push(SimTime::from_nanos(u64::MAX - 1), 3);
        assert_eq!(
            drain(&mut q),
            vec![(3, 1), (u64::from(u32::MAX) * 1000, 2), (u64::MAX - 1, 3)]
        );
    }

    #[test]
    fn resize_preserves_order_across_growth_and_shrink() {
        let mut q = EventQueue::new();
        // Push enough to trigger several doublings, with colliding times.
        for i in 0..10_000u32 {
            q.push(SimTime::from_nanos(u64::from(i % 997) * 10), i);
        }
        let mut prev: Option<(SimTime, u64)> = None;
        let mut n = 0;
        while let Some(s) = q.pop() {
            if let Some(p) = prev {
                assert!((s.at, s.seq) > p, "pop order violated at {n}");
            }
            prev = Some((s.at, s.seq));
            n += 1;
        }
        assert_eq!(n, 10_000);
    }

    /// The differential pin: calendar queue and heap oracle pop identical
    /// `(time, seq, event)` sequences for an interleaved workload with
    /// heavy timestamp collisions.
    #[test]
    fn matches_heap_oracle_on_interleaved_workload() {
        let mut cal = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut x: u64 = 0x2545_F491_4F6C_DD1D;
        let mut rnd = || {
            // xorshift
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut last_pop = 0u64;
        for i in 0..5_000u64 {
            let r = rnd();
            if r % 3 == 0 && !cal.is_empty() {
                let a = cal.pop().unwrap();
                let b = heap.pop().unwrap();
                assert_eq!((a.at, a.seq, a.event), (b.at, b.seq, b.event), "pop {i}");
                last_pop = a.at.as_nanos();
            } else {
                // Schedule at or after the last popped time (the simulator
                // contract), with frequent exact collisions.
                let at = SimTime::from_nanos(last_pop + r % 50);
                cal.push(at, i);
                heap.push(at, i);
            }
        }
        while let Some(a) = cal.pop() {
            let b = heap.pop().unwrap();
            assert_eq!((a.at, a.seq, a.event), (b.at, b.seq, b.event));
        }
        assert!(heap.is_empty());
    }
}
