//! K-server resources: FIFO admission onto the first-free of `k` lanes.
//!
//! Where [`FifoResource`](crate::FifoResource) models a single serial lane
//! (one CUDA stream), `CapacityResource` models `k` interchangeable lanes —
//! replica fleets, multi-stream copy engines, SM partitions. Work is
//! admitted in submission order onto whichever lane frees first.

use serde::{Deserialize, Serialize};

use crate::resource::Busy;
use crate::time::{SimDuration, SimTime};

/// A pool of `k` identical serial lanes with FIFO admission.
///
/// # Example
///
/// ```
/// use skip_des::{CapacityResource, SimDuration, SimTime};
///
/// let mut pool = CapacityResource::new(2);
/// let a = pool.admit(SimTime::ZERO, SimDuration::from_nanos(100));
/// let b = pool.admit(SimTime::ZERO, SimDuration::from_nanos(100));
/// // Two lanes: both start immediately.
/// assert_eq!(a.busy.start, b.busy.start);
/// // A third job queues behind the earliest-finishing lane.
/// let c = pool.admit(SimTime::ZERO, SimDuration::from_nanos(10));
/// assert_eq!(c.busy.start, SimTime::from_nanos(100));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapacityResource {
    free_at: Vec<SimTime>,
    busy_total: SimDuration,
    admitted: u64,
}

/// The placement a [`CapacityResource`] assigned to one admitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Index of the lane the job ran on.
    pub lane: usize,
    /// The busy interval occupied.
    pub busy: Busy,
}

impl CapacityResource {
    /// Creates a pool of `lanes` lanes, all free from the epoch.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    #[must_use]
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "a resource needs at least one lane");
        CapacityResource {
            free_at: vec![SimTime::ZERO; lanes],
            busy_total: SimDuration::ZERO,
            admitted: 0,
        }
    }

    /// Number of lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.free_at.len()
    }

    /// Admits a job available at `available` with the given duration onto
    /// the earliest-free lane (ties broken by lowest index —
    /// deterministic).
    pub fn admit(&mut self, available: SimTime, duration: SimDuration) -> Placement {
        let (lane, &free) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|&(i, &t)| (t, i))
            .expect("at least one lane");
        let start = available.max(free);
        let end = start + duration;
        self.free_at[lane] = end;
        self.busy_total += duration;
        self.admitted += 1;
        Placement {
            lane,
            busy: Busy { start, end },
        }
    }

    /// The instant at which *some* lane is next free.
    #[must_use]
    pub fn next_free(&self) -> SimTime {
        self.free_at.iter().copied().min().expect("non-empty")
    }

    /// The instant at which *all* lanes are free.
    #[must_use]
    pub fn all_free(&self) -> SimTime {
        self.free_at.iter().copied().max().expect("non-empty")
    }

    /// Total busy time across all lanes.
    #[must_use]
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Jobs admitted so far.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Mean lane utilization over `[0, horizon)`.
    #[must_use]
    pub fn utilization_until(&self, horizon: SimTime) -> f64 {
        let total = horizon.as_nanos() as f64 * self.lanes() as f64;
        if total == 0.0 {
            return 0.0;
        }
        // busy_total may exceed the horizon portion if jobs run past it;
        // clamp for a [0, 1] answer.
        (self.busy_total.as_nanos_f64() / total).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> SimTime {
        SimTime::from_nanos(v)
    }
    fn d(v: u64) -> SimDuration {
        SimDuration::from_nanos(v)
    }

    #[test]
    fn jobs_spread_across_lanes() {
        let mut pool = CapacityResource::new(3);
        let lanes: Vec<usize> = (0..3).map(|_| pool.admit(ns(0), d(50)).lane).collect();
        let mut sorted = lanes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn fourth_job_queues_behind_earliest_finisher() {
        let mut pool = CapacityResource::new(2);
        pool.admit(ns(0), d(100));
        pool.admit(ns(0), d(30));
        let p = pool.admit(ns(0), d(10));
        assert_eq!(p.busy.start, ns(30), "joins the lane freeing at 30");
        assert_eq!(p.lane, 1);
    }

    #[test]
    fn single_lane_behaves_like_fifo_resource() {
        let mut pool = CapacityResource::new(1);
        let a = pool.admit(ns(0), d(10));
        let b = pool.admit(ns(0), d(10));
        assert_eq!(a.busy.end, b.busy.start);
        assert_eq!(pool.next_free(), ns(20));
        assert_eq!(pool.all_free(), ns(20));
    }

    #[test]
    fn k_lanes_give_k_fold_throughput() {
        let run = |lanes: usize| {
            let mut pool = CapacityResource::new(lanes);
            for _ in 0..32 {
                pool.admit(ns(0), d(10));
            }
            pool.all_free()
        };
        assert_eq!(run(1), ns(320));
        assert_eq!(run(4), ns(80));
    }

    #[test]
    fn utilization_bounded() {
        let mut pool = CapacityResource::new(2);
        pool.admit(ns(0), d(50));
        let u = pool.utilization_until(ns(100));
        assert!((u - 0.25).abs() < 1e-12);
        assert_eq!(pool.utilization_until(SimTime::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let _ = CapacityResource::new(0);
    }
}
