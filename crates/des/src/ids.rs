//! Monotone ID allocation.

use serde::{Deserialize, Serialize};

/// Allocates monotonically increasing `u64` identifiers starting from an
/// arbitrary base.
///
/// Used across the stack for CUDA-style correlation IDs, operator IDs and
/// event IDs. A plain counter rather than randomness keeps traces
/// deterministic.
///
/// # Example
///
/// ```
/// use skip_des::IdAllocator;
///
/// let mut ids = IdAllocator::starting_at(100);
/// assert_eq!(ids.next_id(), 100);
/// assert_eq!(ids.next_id(), 101);
/// assert_eq!(ids.peek(), 102);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdAllocator {
    next: u64,
}

impl IdAllocator {
    /// Creates an allocator starting at zero.
    #[must_use]
    pub fn new() -> Self {
        IdAllocator::default()
    }

    /// Creates an allocator whose first ID is `base`.
    #[must_use]
    pub fn starting_at(base: u64) -> Self {
        IdAllocator { next: base }
    }

    /// Returns the next ID and advances the counter.
    ///
    /// # Panics
    ///
    /// Panics on counter overflow (after 2^64 allocations).
    pub fn next_id(&mut self) -> u64 {
        let id = self.next;
        self.next = self.next.checked_add(1).expect("IdAllocator overflow");
        id
    }

    /// The ID that the next call to [`next_id`](Self::next_id) will return.
    #[must_use]
    pub fn peek(&self) -> u64 {
        self.next
    }

    /// Skips the next `n` IDs, as if [`next_id`](Self::next_id) had been
    /// called `n` times. Used when a caller materializes a batch of
    /// sequential IDs itself (e.g. replicating a periodic event block) and
    /// the allocator must land where per-ID allocation would have.
    ///
    /// # Panics
    ///
    /// Panics on counter overflow.
    pub fn advance(&mut self, n: u64) {
        self.next = self.next.checked_add(n).expect("IdAllocator overflow");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sequential_and_unique() {
        let mut a = IdAllocator::new();
        let ids: Vec<u64> = (0..5).map(|_| a.next_id()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn starting_at_offsets_base() {
        let mut a = IdAllocator::starting_at(7);
        assert_eq!(a.next_id(), 7);
        assert_eq!(a.peek(), 8);
    }

    #[test]
    fn advance_matches_repeated_next_id() {
        let mut a = IdAllocator::starting_at(3);
        a.advance(4);
        let mut b = IdAllocator::starting_at(3);
        for _ in 0..4 {
            b.next_id();
        }
        assert_eq!(a.peek(), b.peek());
        assert_eq!(a.next_id(), 7);
    }
}
