//! Small statistics helpers shared across the stack.
//!
//! The profiler and the experiment harness repeatedly need means,
//! percentiles and min/max summaries of nanosecond samples; centralizing
//! them here keeps the implementations consistent (nearest-rank percentile,
//! empty-input behaviour) everywhere a figure is produced.

use serde::{Deserialize, Serialize};

/// Arithmetic mean of `samples`; `0.0` for an empty slice.
///
/// # Example
///
/// ```
/// assert_eq!(skip_des::mean(&[1.0, 2.0, 3.0]), 2.0);
/// assert_eq!(skip_des::mean(&[]), 0.0);
/// ```
#[must_use]
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Nearest-rank percentile of `samples` (``p`` in ``[0, 100]``).
///
/// Selects the nearest-rank element in O(n) expected time (one scratch
/// copy, no full sort); `0.0` for an empty slice. `p = 0` yields the
/// minimum and `p = 100` the maximum.
///
/// # Example
///
/// ```
/// let xs = [10.0, 20.0, 30.0, 40.0];
/// assert_eq!(skip_des::percentile(&xs, 50.0), 20.0);
/// assert_eq!(skip_des::percentile(&xs, 100.0), 40.0);
/// ```
#[must_use]
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut scratch = samples.to_vec();
    select_nearest_rank(&mut scratch, p)
}

/// Nearest-rank index for `p` percent of `len` samples.
fn nearest_rank_index(len: usize, p: f64) -> usize {
    let p = p.clamp(0.0, 100.0);
    if p == 0.0 {
        return 0;
    }
    let rank = ((p / 100.0) * len as f64).ceil() as usize;
    rank.saturating_sub(1).min(len - 1)
}

/// In-place nearest-rank selection over a reusable scratch buffer.
///
/// Equivalent to sorting `scratch` and indexing the nearest rank, but via
/// `select_nth_unstable_by` — O(n) expected instead of O(n log n). The
/// buffer is partially reordered, not sorted. Panics on NaN samples, like
/// the sorted path did.
fn select_nearest_rank(scratch: &mut [f64], p: f64) -> f64 {
    debug_assert!(!scratch.is_empty());
    let idx = nearest_rank_index(scratch.len(), p);
    let (_, nth, _) = scratch.select_nth_unstable_by(idx, |a, b| {
        a.partial_cmp(b).expect("NaN sample in percentile")
    });
    *nth
}

/// Fraction of `samples` at or below `threshold` — SLO attainment.
///
/// An empty slice attains vacuously (`1.0`): no sample violated the
/// threshold.
///
/// # Example
///
/// ```
/// let lat = [80.0, 120.0, 95.0, 400.0];
/// assert_eq!(skip_des::attainment(&lat, 100.0), 0.5);
/// assert_eq!(skip_des::attainment(&lat, 400.0), 1.0);
/// assert_eq!(skip_des::attainment(&[], 1.0), 1.0);
/// ```
#[must_use]
pub fn attainment(samples: &[f64], threshold: f64) -> f64 {
    if samples.is_empty() {
        return 1.0;
    }
    samples.iter().filter(|&&s| s <= threshold).count() as f64 / samples.len() as f64
}

/// A five-number-ish summary of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes `samples`; all fields zero for an empty slice.
    ///
    /// # Example
    ///
    /// ```
    /// use skip_des::Summary;
    ///
    /// let s = Summary::of(&[3.0, 1.0, 2.0]);
    /// assert_eq!(s.count, 3);
    /// assert_eq!(s.min, 1.0);
    /// assert_eq!(s.max, 3.0);
    /// assert_eq!(s.p50, 2.0);
    /// ```
    #[must_use]
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Summary::default();
        }
        // One scratch buffer serves all four selections; each is an O(n)
        // partial reorder, so the summary costs one allocation total.
        let mut scratch = samples.to_vec();
        Summary {
            count: samples.len(),
            mean: mean(samples),
            min: select_nearest_rank(&mut scratch, 0.0),
            p50: select_nearest_rank(&mut scratch, 50.0),
            p99: select_nearest_rank(&mut scratch, 99.0),
            max: select_nearest_rank(&mut scratch, 100.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn percentile_bounds() {
        let xs = [5.0, 1.0, 9.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 9.0);
        assert_eq!(percentile(&xs, 50.0), 5.0);
    }

    #[test]
    fn percentile_clamps_out_of_range() {
        let xs = [1.0, 2.0];
        assert_eq!(percentile(&xs, -10.0), 1.0);
        assert_eq!(percentile(&xs, 400.0), 2.0);
    }

    #[test]
    fn summary_consistency() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = Summary::of(&xs);
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p99, 99.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_is_default() {
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    /// The sorted-oracle implementation `percentile` replaced: full sort,
    /// then nearest-rank index. Kept here as the differential reference.
    fn percentile_sorted_oracle(samples: &[f64], p: f64) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample in percentile"));
        let p = p.clamp(0.0, 100.0);
        if p == 0.0 {
            return sorted[0];
        }
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.saturating_sub(1)]
    }

    #[test]
    fn selection_matches_sorted_oracle_at_every_percentile() {
        // Deterministic LCG samples, including duplicates and a broad value
        // range; every integer percentile plus fractional edge cases must
        // agree bit-for-bit with the clone-and-sort oracle.
        let mut state = 0x2545F4914F6CDD1Du64;
        for len in [1usize, 2, 3, 7, 100, 1023] {
            let samples: Vec<f64> = (0..len)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) % 997) as f64 / 7.0
                })
                .collect();
            for p in 0..=100 {
                let p = f64::from(p);
                assert_eq!(
                    percentile(&samples, p),
                    percentile_sorted_oracle(&samples, p),
                    "len={len} p={p}"
                );
            }
            for p in [0.001, 0.5, 33.3, 49.999, 50.001, 98.9, 99.99] {
                assert_eq!(
                    percentile(&samples, p),
                    percentile_sorted_oracle(&samples, p),
                    "len={len} p={p}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "NaN sample in percentile")]
    fn percentile_still_panics_on_nan() {
        let _ = percentile(&[1.0, f64::NAN, 2.0], 50.0);
    }

    #[test]
    fn attainment_is_inclusive_and_vacuous_on_empty() {
        assert_eq!(attainment(&[1.0, 2.0, 3.0, 4.0], 2.0), 0.5);
        assert_eq!(attainment(&[1.0], 1.0), 1.0, "threshold is inclusive");
        assert_eq!(attainment(&[2.0], 1.0), 0.0);
        assert_eq!(attainment(&[], 0.0), 1.0);
    }
}
