//! Small statistics helpers shared across the stack.
//!
//! The profiler and the experiment harness repeatedly need means,
//! percentiles and min/max summaries of nanosecond samples; centralizing
//! them here keeps the implementations consistent (nearest-rank percentile,
//! empty-input behaviour) everywhere a figure is produced.

use serde::{Deserialize, Serialize};

/// Arithmetic mean of `samples`; `0.0` for an empty slice.
///
/// # Example
///
/// ```
/// assert_eq!(skip_des::mean(&[1.0, 2.0, 3.0]), 2.0);
/// assert_eq!(skip_des::mean(&[]), 0.0);
/// ```
#[must_use]
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Nearest-rank percentile of `samples` (``p`` in ``[0, 100]``).
///
/// Sorts a copy; `0.0` for an empty slice. `p = 0` yields the minimum and
/// `p = 100` the maximum.
///
/// # Example
///
/// ```
/// let xs = [10.0, 20.0, 30.0, 40.0];
/// assert_eq!(skip_des::percentile(&xs, 50.0), 20.0);
/// assert_eq!(skip_des::percentile(&xs, 100.0), 40.0);
/// ```
#[must_use]
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample in percentile"));
    let p = p.clamp(0.0, 100.0);
    if p == 0.0 {
        return sorted[0];
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1)]
}

/// Fraction of `samples` at or below `threshold` — SLO attainment.
///
/// An empty slice attains vacuously (`1.0`): no sample violated the
/// threshold.
///
/// # Example
///
/// ```
/// let lat = [80.0, 120.0, 95.0, 400.0];
/// assert_eq!(skip_des::attainment(&lat, 100.0), 0.5);
/// assert_eq!(skip_des::attainment(&lat, 400.0), 1.0);
/// assert_eq!(skip_des::attainment(&[], 1.0), 1.0);
/// ```
#[must_use]
pub fn attainment(samples: &[f64], threshold: f64) -> f64 {
    if samples.is_empty() {
        return 1.0;
    }
    samples.iter().filter(|&&s| s <= threshold).count() as f64 / samples.len() as f64
}

/// A five-number-ish summary of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes `samples`; all fields zero for an empty slice.
    ///
    /// # Example
    ///
    /// ```
    /// use skip_des::Summary;
    ///
    /// let s = Summary::of(&[3.0, 1.0, 2.0]);
    /// assert_eq!(s.count, 3);
    /// assert_eq!(s.min, 1.0);
    /// assert_eq!(s.max, 3.0);
    /// assert_eq!(s.p50, 2.0);
    /// ```
    #[must_use]
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Summary::default();
        }
        Summary {
            count: samples.len(),
            mean: mean(samples),
            min: percentile(samples, 0.0),
            p50: percentile(samples, 50.0),
            p99: percentile(samples, 99.0),
            max: percentile(samples, 100.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn percentile_bounds() {
        let xs = [5.0, 1.0, 9.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 9.0);
        assert_eq!(percentile(&xs, 50.0), 5.0);
    }

    #[test]
    fn percentile_clamps_out_of_range() {
        let xs = [1.0, 2.0];
        assert_eq!(percentile(&xs, -10.0), 1.0);
        assert_eq!(percentile(&xs, 400.0), 2.0);
    }

    #[test]
    fn summary_consistency() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = Summary::of(&xs);
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p99, 99.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_is_default() {
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn attainment_is_inclusive_and_vacuous_on_empty() {
        assert_eq!(attainment(&[1.0, 2.0, 3.0, 4.0], 2.0), 0.5);
        assert_eq!(attainment(&[1.0], 1.0), 1.0, "threshold is inclusive");
        assert_eq!(attainment(&[2.0], 1.0), 0.0);
        assert_eq!(attainment(&[], 0.0), 1.0);
    }
}
