//! Nanosecond-resolution simulated time.
//!
//! [`SimTime`] is an absolute instant on the simulation clock; [`SimDuration`]
//! is a span between instants. Both wrap `u64` nanoseconds — enough for ~584
//! years of simulated time, far beyond any inference trace. The newtypes keep
//! instants and spans from being confused ([C-NEWTYPE]) and all the arithmetic
//! that could overflow panics loudly in debug builds via checked operations.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An absolute instant on the simulated clock, in nanoseconds since the
/// simulation epoch.
///
/// # Example
///
/// ```
/// use skip_des::{SimDuration, SimTime};
///
/// let t = SimTime::from_nanos(1_500);
/// assert_eq!(t + SimDuration::from_micros(1), SimTime::from_nanos(2_500));
/// assert_eq!(t.as_nanos(), 1_500);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use skip_des::SimDuration;
///
/// let d = SimDuration::from_micros(2) + SimDuration::from_nanos(500);
/// assert_eq!(d.as_nanos(), 2_500);
/// assert!((d.as_micros_f64() - 2.5).abs() < 1e-12);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "unset" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the epoch.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after the epoch.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows the nanosecond representation.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        match micros.checked_mul(1_000) {
            Some(ns) => SimTime(ns),
            None => panic!("SimTime::from_micros overflow"),
        }
    }

    /// Creates an instant `millis` milliseconds after the epoch.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows the nanosecond representation.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        match millis.checked_mul(1_000_000) {
            Some(ns) => SimTime(ns),
            None => panic!("SimTime::from_millis overflow"),
        }
    }

    /// Nanoseconds since the epoch.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch, as a float (lossy above 2^53 ns).
    #[must_use]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Milliseconds since the epoch, as a float (lossy above 2^53 ns).
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    #[must_use]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is after self"),
        )
    }

    /// The span from `other` to `self`, or [`SimDuration::ZERO`] if `other`
    /// is after `self`.
    #[must_use]
    pub fn saturating_duration_since(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `nanos` nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows the nanosecond representation.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        match micros.checked_mul(1_000) {
            Some(ns) => SimDuration(ns),
            None => panic!("SimDuration::from_micros overflow"),
        }
    }

    /// Creates a span of `millis` milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows the nanosecond representation.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        match millis.checked_mul(1_000_000) {
            Some(ns) => SimDuration(ns),
            None => panic!("SimDuration::from_millis overflow"),
        }
    }

    /// Creates a span of `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows the nanosecond representation.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        match secs.checked_mul(1_000_000_000) {
            Some(ns) => SimDuration(ns),
            None => panic!("SimDuration::from_secs overflow"),
        }
    }

    /// Creates a span from a float of nanoseconds, rounding to the nearest
    /// whole nanosecond and clamping negatives to zero.
    ///
    /// Cost models produce fractional nanoseconds; quantizing at the boundary
    /// keeps the rest of the engine exact-integer and deterministic.
    #[must_use]
    pub fn from_nanos_f64(nanos: f64) -> Self {
        if nanos <= 0.0 || nanos.is_nan() {
            SimDuration(0)
        } else if nanos >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(nanos.round() as u64)
        }
    }

    /// Length of the span in nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length of the span in nanoseconds, as a float.
    #[must_use]
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64
    }

    /// Length of the span in microseconds, as a float.
    #[must_use]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Length of the span in milliseconds, as a float.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Length of the span in seconds, as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` if the span is empty.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtraction clamping at zero rather than panicking.
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The longer of two spans.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The shorter of two spans.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime + SimDuration overflow"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime - SimDuration underflow"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration add overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration sub underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration mul overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a SimDuration> for SimDuration {
    fn sum<I: Iterator<Item = &'a SimDuration>>(iter: I) -> SimDuration {
        iter.copied().sum()
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl From<SimDuration> for f64 {
    /// Nanoseconds as a float — convenient for cost-model arithmetic.
    fn from(d: SimDuration) -> f64 {
        d.as_nanos_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(40);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).duration_since(t), d);
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_duration_since(a), SimDuration::from_nanos(10));
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_negative() {
        let _ = SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }

    #[test]
    fn from_nanos_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_nanos_f64(1.4).as_nanos(), 1);
        assert_eq!(SimDuration::from_nanos_f64(1.6).as_nanos(), 2);
        assert_eq!(SimDuration::from_nanos_f64(-5.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_nanos_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_nanos_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_nanos(1_500).to_string(), "1.500us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn min_max_behave() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_nanos(1);
        let y = SimDuration::from_nanos(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }

    #[test]
    fn mul_div_scale() {
        let d = SimDuration::from_nanos(7);
        assert_eq!((d * 3).as_nanos(), 21);
        assert_eq!((d / 2).as_nanos(), 3);
    }
}
