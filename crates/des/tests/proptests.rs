//! Property-based tests for the DES core invariants.

use proptest::prelude::*;
use skip_des::{EventQueue, FifoResource, SimDuration, SimTime, Simulator};

proptest! {
    /// Events always pop in non-decreasing time order regardless of
    /// insertion order, and FIFO among ties.
    #[test]
    fn queue_pops_in_time_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, u64)> = None;
        while let Some(s) = q.pop() {
            if let Some((lt, lseq)) = last {
                prop_assert!(s.at > lt || (s.at == lt && s.seq > lseq),
                    "ordering violated: {:?} after {:?}", (s.at, s.seq), (lt, lseq));
            }
            last = Some((s.at, s.seq));
        }
    }

    /// The simulator clock is monotone for any event cascade.
    #[test]
    fn simulator_clock_monotone(delays in proptest::collection::vec(0u64..100, 1..100)) {
        let mut sim = Simulator::new();
        for (i, &d) in delays.iter().enumerate() {
            sim.schedule(SimTime::from_nanos(d), i);
        }
        let mut last = SimTime::ZERO;
        sim.run(|ctx, _| {
            assert!(ctx.now() >= last);
            last = ctx.now();
        });
    }

    /// FIFO resource invariants: intervals are disjoint, ordered, start no
    /// earlier than availability, and busy_total equals the interval sum.
    #[test]
    fn fifo_resource_invariants(
        work in proptest::collection::vec((0u64..10_000, 0u64..500), 1..100)
    ) {
        let mut r = FifoResource::new();
        let mut last_avail = 0u64;
        for (gap, dur) in work {
            // Availability must be non-decreasing (serial submitter).
            last_avail += gap;
            let busy = r.admit(SimTime::from_nanos(last_avail), SimDuration::from_nanos(dur));
            prop_assert!(busy.start >= SimTime::from_nanos(last_avail));
            prop_assert_eq!(busy.end.duration_since(busy.start), SimDuration::from_nanos(dur));
        }
        let sum: SimDuration = r.intervals().iter().map(|iv| iv.duration()).sum();
        prop_assert_eq!(sum, r.busy_total());
        for w in r.intervals().windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
    }

    /// idle + busy within a horizon equals the horizon length.
    #[test]
    fn idle_busy_partition(
        work in proptest::collection::vec((0u64..1_000, 1u64..200), 1..50)
    ) {
        let mut r = FifoResource::new();
        let mut avail = 0u64;
        for (gap, dur) in work {
            avail += gap;
            r.admit(SimTime::from_nanos(avail), SimDuration::from_nanos(dur));
        }
        let horizon = r.free_at();
        let idle = r.idle_until(horizon);
        prop_assert_eq!(idle + r.busy_total(), horizon.duration_since(SimTime::ZERO));
    }

    /// Percentile is always an element of the input and bounded by min/max.
    #[test]
    fn percentile_within_bounds(
        xs in proptest::collection::vec(0u64..1_000_000, 1..100),
        p in 0.0f64..100.0
    ) {
        let xs: Vec<f64> = xs.into_iter().map(|v| v as f64).collect();
        let v = skip_des::percentile(&xs, p);
        prop_assert!(xs.contains(&v));
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min && v <= max);
    }
}
