//! Property-based tests for the DES core invariants.

use proptest::prelude::*;
use skip_des::{EventQueue, FifoResource, HeapEventQueue, SimDuration, SimTime, Simulator};

proptest! {
    /// Differential pin for the calendar queue: for arbitrary interleaved
    /// push/pop workloads — heavy timestamp collisions included — the
    /// calendar queue and the original heap pop identical
    /// `(time, seq, event)` sequences.
    ///
    /// Each workload step is `(kind, gap)`: a pop (`kind == 0`), or a push
    /// `gap` nanoseconds after the last popped time (the simulator's
    /// no-scheduling-into-the-past contract; `gap == 0` is the
    /// schedule-at-`now` case). The small gap range forces many events
    /// onto the same instant, exercising the FIFO tiebreak.
    #[test]
    fn calendar_queue_matches_heap_oracle(
        ops in prop::collection::vec((0u32..2, 0u64..40), 1..400)
    ) {
        let mut cal = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut now = 0u64;
        for (i, &(kind, gap)) in ops.iter().enumerate() {
            if kind == 0 {
                let a = cal.pop();
                let b = heap.pop();
                match (&a, &b) {
                    (Some(a), Some(b)) => {
                        prop_assert_eq!(
                            (a.at, a.seq, &a.event),
                            (b.at, b.seq, &b.event),
                            "divergence at step {}", i
                        );
                        now = a.at.as_nanos();
                    }
                    (None, None) => {}
                    _ => prop_assert!(false, "one queue empty, the other not"),
                }
                prop_assert_eq!(cal.len(), heap.len());
                prop_assert_eq!(cal.peek_time(), heap.peek_time());
            } else {
                let at = SimTime::from_nanos(now + gap);
                let sa = cal.push(at, i);
                let sb = heap.push(at, i);
                prop_assert_eq!(sa, sb, "sequence numbers diverged");
            }
        }
        // Drain: the tails must agree too.
        loop {
            match (cal.pop(), heap.pop()) {
                (Some(a), Some(b)) => {
                    prop_assert_eq!((a.at, a.seq, a.event), (b.at, b.seq, b.event));
                }
                (None, None) => break,
                _ => prop_assert!(false, "tail lengths diverged"),
            }
        }
    }

    /// Unrestricted pushes (no simulator contract): events may land far in
    /// the past or future relative to the pop cursor, forcing the
    /// calendar queue's rewind and far-future-jump paths. Order must still
    /// match the heap exactly.
    #[test]
    fn calendar_queue_matches_heap_on_unordered_pushes(
        ops in prop::collection::vec((0u32..4, 0u64..u64::MAX / 2), 1..300)
    ) {
        let mut cal = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        for (i, &(kind, at)) in ops.iter().enumerate() {
            if kind == 0 {
                let (a, b) = (cal.pop(), heap.pop());
                prop_assert_eq!(
                    a.as_ref().map(|s| (s.at, s.seq, s.event)),
                    b.as_ref().map(|s| (s.at, s.seq, s.event))
                );
            } else {
                let at = SimTime::from_nanos(at);
                cal.push(at, i);
                heap.push(at, i);
            }
        }
    }

    /// Schedule-at-`now` from inside a handler: a handler that re-schedules
    /// `fanout` immediate events must observe them at the same instant, in
    /// the order it scheduled them, before any later-time event fires.
    #[test]
    fn schedule_at_now_fires_fifo_before_later_events(fanout in 1usize..20) {
        let mut sim = Simulator::new();
        sim.schedule(SimTime::from_nanos(10), usize::MAX); // the trigger
        sim.schedule(SimTime::from_nanos(11), usize::MAX - 1); // a later event
        let mut seen: Vec<(u64, usize)> = Vec::new();
        sim.run(|ctx, ev: usize| {
            if ev == usize::MAX {
                for k in 0..fanout {
                    ctx.schedule(ctx.now(), k);
                }
            }
            seen.push((ctx.now().as_nanos(), ev));
        });
        let mut expect = vec![(10, usize::MAX)];
        expect.extend((0..fanout).map(|k| (10, k)));
        expect.push((11, usize::MAX - 1));
        prop_assert_eq!(seen, expect);
    }

    /// Events always pop in non-decreasing time order regardless of
    /// insertion order, and FIFO among ties.
    #[test]
    fn queue_pops_in_time_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, u64)> = None;
        while let Some(s) = q.pop() {
            if let Some((lt, lseq)) = last {
                prop_assert!(s.at > lt || (s.at == lt && s.seq > lseq),
                    "ordering violated: {:?} after {:?}", (s.at, s.seq), (lt, lseq));
            }
            last = Some((s.at, s.seq));
        }
    }

    /// The simulator clock is monotone for any event cascade.
    #[test]
    fn simulator_clock_monotone(delays in proptest::collection::vec(0u64..100, 1..100)) {
        let mut sim = Simulator::new();
        for (i, &d) in delays.iter().enumerate() {
            sim.schedule(SimTime::from_nanos(d), i);
        }
        let mut last = SimTime::ZERO;
        sim.run(|ctx, _| {
            assert!(ctx.now() >= last);
            last = ctx.now();
        });
    }

    /// FIFO resource invariants: intervals are disjoint, ordered, start no
    /// earlier than availability, and busy_total equals the interval sum.
    #[test]
    fn fifo_resource_invariants(
        work in proptest::collection::vec((0u64..10_000, 0u64..500), 1..100)
    ) {
        let mut r = FifoResource::new();
        let mut last_avail = 0u64;
        for (gap, dur) in work {
            // Availability must be non-decreasing (serial submitter).
            last_avail += gap;
            let busy = r.admit(SimTime::from_nanos(last_avail), SimDuration::from_nanos(dur));
            prop_assert!(busy.start >= SimTime::from_nanos(last_avail));
            prop_assert_eq!(busy.end.duration_since(busy.start), SimDuration::from_nanos(dur));
        }
        let sum: SimDuration = r.intervals().iter().map(|iv| iv.duration()).sum();
        prop_assert_eq!(sum, r.busy_total());
        for w in r.intervals().windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
    }

    /// idle + busy within a horizon equals the horizon length.
    #[test]
    fn idle_busy_partition(
        work in proptest::collection::vec((0u64..1_000, 1u64..200), 1..50)
    ) {
        let mut r = FifoResource::new();
        let mut avail = 0u64;
        for (gap, dur) in work {
            avail += gap;
            r.admit(SimTime::from_nanos(avail), SimDuration::from_nanos(dur));
        }
        let horizon = r.free_at();
        let idle = r.idle_until(horizon);
        prop_assert_eq!(idle + r.busy_total(), horizon.duration_since(SimTime::ZERO));
    }

    /// Percentile is always an element of the input and bounded by min/max.
    #[test]
    fn percentile_within_bounds(
        xs in proptest::collection::vec(0u64..1_000_000, 1..100),
        p in 0.0f64..100.0
    ) {
        let xs: Vec<f64> = xs.into_iter().map(|v| v as f64).collect();
        let v = skip_des::percentile(&xs, p);
        prop_assert!(xs.contains(&v));
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min && v <= max);
    }
}
