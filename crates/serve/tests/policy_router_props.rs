//! Property tests over the scheduler seams: any batching policy behind
//! any router, with or without KV pressure, must complete every request
//! and keep the counter conservation law at every iteration boundary.
//!
//! These are the invariants the golden fixtures cannot cover — fixtures
//! pin a handful of known configurations byte-for-byte, while these
//! properties sweep the policy × router × replica × memory cross product
//! the composable floor makes reachable.

use proptest::prelude::*;
use skip_des::SimDuration;
use skip_hw::Platform;
use skip_llm::zoo;
use skip_mem::OffloadPolicy;
use skip_serve::{simulate_traced, KvCacheConfig, Policy, RouterPolicy, ServingConfig, SloTargets};

fn arb_policy() -> impl Strategy<Value = Policy> {
    (
        0usize..3,
        1u32..10,
        5u64..80,
        prop::sample::select(vec![32u32, 64, 128, 256]),
    )
        .prop_map(|(kind, batch, wait_ms, chunk_tokens)| match kind {
            0 => Policy::Static {
                batch_size: batch.min(5),
                max_wait: SimDuration::from_millis(wait_ms),
            },
            1 => Policy::Continuous { max_batch: batch },
            _ => Policy::ChunkedPrefill {
                max_batch: batch,
                chunk_tokens,
            },
        })
}

fn arb_router() -> impl Strategy<Value = RouterPolicy> {
    prop::sample::select(vec![
        RouterPolicy::SharedQueue,
        RouterPolicy::RoundRobin,
        RouterPolicy::JoinShortestQueue,
    ])
}

fn arb_platform() -> impl Strategy<Value = Platform> {
    prop::sample::select(vec![
        Platform::amd_a100(),
        Platform::intel_h100(),
        Platform::gh200(),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every policy × router × replica-count combination completes all
    /// requests, conserves them at every counter sample, and reports
    /// sane latency orderings.
    #[test]
    fn any_policy_router_combo_conserves_requests(
        policy in arb_policy(),
        router in arb_router(),
        platform in arb_platform(),
        replicas in 1u32..5,
        requests in 1u32..25,
        rate in prop::sample::select(vec![5.0f64, 50.0, 400.0]),
        prompt_len in prop::sample::select(vec![16u32, 96, 384]),
        new_tokens in 1u32..6,
        // 0 => no KV bound; otherwise blocks above the one-request floor.
        kv_slack in prop::sample::select(vec![0u32, 2, 16, 256]),
    ) {
        let kv = (kv_slack > 0).then(|| {
            let probe = KvCacheConfig::with_blocks(1, OffloadPolicy::Auto);
            let spec = skip_mem::KvSpec::for_model(&zoo::gpt2(), probe.block_tokens);
            let floor = spec.blocks_for(u64::from(prompt_len) + u64::from(new_tokens));
            KvCacheConfig::with_blocks(floor + kv_slack, OffloadPolicy::Auto)
        });
        let cfg = ServingConfig {
            platform,
            model: zoo::gpt2(),
            policy,
            requests,
            arrival_rate_per_s: rate,
            prompt_len,
            new_tokens,
            seed: 7,
            kv,
            slo: SloTargets::default(),
            router,
        };
        prop_assert!(cfg.validate().is_ok(), "generated config must be valid");
        let (report, trace) = simulate_traced(&cfg, replicas);

        prop_assert_eq!(report.completed, requests, "every request completes");
        prop_assert!(
            trace.conserves_requests(),
            "admitted = completed + running + parked must hold at every sample"
        );
        prop_assert_eq!(trace.lifecycles.len() as u32, requests);
        prop_assert!(report.ttft_p50 <= report.ttft_p95);
        prop_assert!(report.ttft_p95 <= report.ttft_p99);
        prop_assert!(report.e2e_p50 <= report.e2e_p95);
        prop_assert!(
            report.ttft_p99 <= report.makespan,
            "no first token lands after the run ends"
        );
        // Without a KV bound there is nothing to preempt or park.
        if kv.is_none() {
            prop_assert_eq!(report.preemptions, 0);
            prop_assert_eq!(report.kv_peak_occupancy, 0.0);
        }
    }

    /// The same config simulated twice is bitwise-identical — the floor
    /// stays deterministic under every seam combination.
    #[test]
    fn any_policy_router_combo_is_deterministic(
        policy in arb_policy(),
        router in arb_router(),
        replicas in 1u32..4,
        requests in 1u32..15,
    ) {
        let cfg = ServingConfig {
            platform: Platform::intel_h100(),
            model: zoo::gpt2(),
            policy,
            requests,
            arrival_rate_per_s: 80.0,
            prompt_len: 64,
            new_tokens: 4,
            seed: 11,
            kv: None,
            slo: SloTargets::default(),
            router,
        };
        let (ra, ta) = simulate_traced(&cfg, replicas);
        let (rb, tb) = simulate_traced(&cfg, replicas);
        prop_assert_eq!(ra, rb);
        prop_assert_eq!(ta, tb);
    }
}
