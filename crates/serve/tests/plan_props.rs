//! Property tests over the pruned planner sweep: for any traffic
//! envelope, SLO, attainment floor, and replica ceiling, the pruned
//! generational sweep must be *invisible* — same frontier, same cheapest
//! pick, same feasible outcomes as the exhaustive reference — and every
//! candidate it resolves without a full simulation must be honestly
//! marked (aborted report, never feasible).
//!
//! The unit tests in `fleet::plan` pin one envelope; these sweep the
//! envelope space, which is where an unsound analytic bound or a
//! too-eager abort would actually bite.

use proptest::prelude::*;
use skip_des::SimDuration;
use skip_llm::zoo;
use skip_serve::fleet::plan;
use skip_serve::{
    simulate_fleet_bounded, FleetBatchPolicy, PlannerConfig, Resolution, SloTargets, StopCondition,
    TrafficEnvelope,
};

/// A small random planner: tight enough to run dozens of cases, varied
/// enough to exercise Poisson and diurnal arrivals, one- and two-axis
/// SLOs, and floors from permissive to strict.
fn arb_planner() -> impl Strategy<Value = PlannerConfig> {
    (
        (
            20.0f64..160.0,           // qps
            (0usize..2, 2.0f64..4.0), // peak multiplier (diurnal when on)
            6u32..16,                 // requests
            32u32..192,               // prompt_len
            1u32..5,                  // new_tokens
            0u64..64,                 // seed
        ),
        (
            // SLO axes: 0 = off, otherwise the target in ms. At least
            // one axis is forced on below so the floor judges something.
            (0usize..2, 50u64..2000),  // ttft target
            (0usize..2, 200u64..6000), // e2e target
            0.55f64..1.0,              // attainment floor
            1u32..3,                   // max_replicas
            0usize..2,                 // batching policy
        ),
    )
        .prop_map(
            |((qps, peak, requests, prompt, new_tokens, seed), (ttft, e2e, floor, max_r, pol))| {
                let ttft_on = ttft.0 == 1 || e2e.0 == 0;
                let mut cfg = PlannerConfig::new(TrafficEnvelope {
                    model: zoo::gpt2(),
                    qps,
                    peak_qps: (peak.0 == 1).then_some(qps * peak.1),
                    requests,
                    prompt_len: prompt,
                    new_tokens,
                    seed,
                    slo: SloTargets {
                        ttft: ttft_on.then(|| SimDuration::from_millis(ttft.1)),
                        e2e: (e2e.0 == 1).then(|| SimDuration::from_millis(e2e.1)),
                    },
                });
                cfg.max_replicas = max_r;
                cfg.attainment_floor = floor;
                if pol == 1 {
                    cfg.policy = FleetBatchPolicy::ChunkedPrefill { chunk_tokens: 64 };
                }
                cfg
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline soundness property: pruning and early aborts never
    /// change what the planner recommends.
    #[test]
    fn pruned_sweep_is_invisible_to_the_frontier(cfg in arb_planner()) {
        prop_assert!(cfg.validate().is_ok());
        let exhaustive = plan::plan(&cfg);
        let pruned = plan::plan_pruned(&cfg);
        prop_assert_eq!(pruned.outcomes.len(), exhaustive.len());
        prop_assert_eq!(
            plan::frontier(&pruned.outcomes),
            plan::frontier(&exhaustive),
            "frontier must be byte-identical"
        );
        prop_assert_eq!(
            plan::cheapest(&pruned.outcomes),
            plan::cheapest(&exhaustive),
            "cheapest pick must be byte-identical"
        );
        let front = plan::frontier(&exhaustive);
        for (p, e) in pruned.outcomes.iter().zip(&exhaustive) {
            if p.feasible {
                // Anything the pruned sweep calls feasible was fully
                // simulated and matches the exhaustive run bit for bit.
                prop_assert_eq!(p, e, "pruned-feasible must equal exhaustive");
            } else if e.feasible {
                // Dropping an exhaustively-feasible candidate is legal
                // only through dominance (analytic or mid-run cost cap),
                // and only for candidates off the exhaustive frontier —
                // which is what keeps the frontier identical.
                prop_assert!(
                    matches!(
                        p.resolution,
                        Resolution::PrunedDominated | Resolution::Aborted
                    ),
                    "{}: feasible candidate dropped as {:?}", p.label, p.resolution
                );
                prop_assert!(
                    !front.iter().any(|f| std::ptr::eq(*f, e)),
                    "{}: a frontier member may never be pruned", e.label
                );
            }
        }
        let s = pruned.stats;
        prop_assert_eq!(
            s.simulated + s.resolved_without_full_simulation(),
            s.candidates,
            "every candidate resolved exactly once: {:?}", s
        );
    }

    /// Honesty of shortcuts: any outcome not fully simulated carries an
    /// aborted report and is never counted feasible.
    #[test]
    fn shortcut_outcomes_are_marked_and_never_feasible(cfg in arb_planner()) {
        for o in plan::plan_pruned(&cfg).outcomes {
            if o.resolution != Resolution::Simulated {
                prop_assert!(o.report.aborted, "{}: shortcut must set aborted", o.label);
                prop_assert!(!o.feasible, "{}: shortcut is never feasible", o.label);
            } else {
                prop_assert!(!o.report.aborted, "{}: full run must not set aborted", o.label);
            }
        }
    }

    /// The frontier itself (satellite of this PR: sort-then-scan
    /// replacement) must match the quadratic reference filter on every
    /// outcome set the planner can produce.
    #[test]
    fn frontier_matches_the_quadratic_reference(cfg in arb_planner()) {
        let outcomes = plan::plan(&cfg);
        let fast = plan::frontier(&outcomes);
        // Reference: keep every feasible outcome no other feasible
        // outcome strictly dominates, sorted by (cost, p95, index).
        let feasible: Vec<_> = outcomes.iter().filter(|o| o.feasible).collect();
        let mut reference: Vec<_> = feasible
            .iter()
            .filter(|a| {
                !feasible.iter().any(|b| {
                    b.cost() <= a.cost()
                        && b.report.e2e_p95 <= a.report.e2e_p95
                        && (b.cost() < a.cost() || b.report.e2e_p95 < a.report.e2e_p95)
                })
            })
            .copied()
            .collect();
        reference.sort_by(|a, b| {
            a.cost()
                .total_cmp(&b.cost())
                .then(a.report.e2e_p95.cmp(&b.report.e2e_p95))
        });
        prop_assert_eq!(fast, reference);
    }
}

/// Regression: an aborted fleet report must never clear the feasibility
/// gate, even when its truncated prefix happens to look perfect (every
/// completed request inside SLO). A one-request miss budget of zero with
/// an SLO no request can meet aborts on the first completion.
#[test]
fn aborted_reports_are_never_feasible() {
    let cfg = PlannerConfig::new(TrafficEnvelope {
        model: zoo::gpt2(),
        qps: 50.0,
        peak_qps: None,
        requests: 8,
        prompt_len: 64,
        new_tokens: 2,
        seed: 3,
        slo: SloTargets {
            ttft: Some(SimDuration::from_nanos(1)),
            e2e: None,
        },
    });
    let cand = plan::enumerate(&cfg)
        .into_iter()
        .next()
        .expect("non-empty enumeration");
    let fleet = plan::fleet_config(&cfg, &cand);
    let stop =
        StopCondition::for_attainment(cfg.envelope.requests, cfg.attainment_floor, fleet.slo);
    let report = simulate_fleet_bounded(&fleet, stop);
    assert!(report.aborted, "a 1ns TTFT must blow the miss budget early");
    assert!(
        report.completed < cfg.envelope.requests,
        "aborted run covers only a prefix"
    );
    // The planner-side gate: feed the aborted report through outcome
    // classification via evaluate_bounded on a bounds object that chooses
    // to simulate, and confirm it is not feasible.
    let bounds = plan::SweepBounds::new(&cfg);
    let o = plan::evaluate_bounded(&cfg, &cand, &bounds);
    assert!(!o.feasible, "aborted or pruned outcomes are never feasible");
}
