//! Golden fixtures for the disaggregated fleet floor.
//!
//! Each fixture pins the serde JSON of both the [`FleetReport`] and the
//! complete [`FleetTrace`] (every lifecycle transition, counter sample,
//! and scaling event) of a fixed-seed fleet run, byte for byte — the
//! fleet-level counterpart of `tests/golden.rs`. Any reordering of
//! routing decisions, repricing of handoffs, or drift in sampling shows
//! up as a byte diff here. Regenerate (only when intentionally changing
//! fleet semantics) with:
//!
//! ```text
//! SKIP_BLESS_GOLDEN=1 cargo test -p skip-serve --test golden_fleet
//! ```

use std::path::PathBuf;

use skip_des::SimDuration;
use skip_hw::Platform;
use skip_llm::zoo;
use skip_serve::{
    simulate_fleet_traced, ArrivalProcess, AutoscaleConfig, FleetBatchPolicy, FleetConfig,
    FleetRouterPolicy, FleetSpec, SloTargets,
};

fn base(spec: FleetSpec) -> FleetConfig {
    FleetConfig {
        spec,
        model: zoo::gpt2(),
        max_batch: 8,
        requests: 36,
        arrivals: ArrivalProcess::Poisson { rate_per_s: 60.0 },
        prompt_len: 128,
        new_tokens: 6,
        seed: 13,
        slo: SloTargets {
            ttft: Some(SimDuration::from_millis(150)),
            e2e: Some(SimDuration::from_millis(1200)),
        },
        router: FleetRouterPolicy::CostModelJsq,
        policy: FleetBatchPolicy::Continuous,
        autoscale: None,
    }
}

/// The fleet fixture grid: the 2-prefill/2-decode disaggregated floor
/// (the new subsystem's canonical shape), a bursty autoscaled unified
/// fleet (pinning scaling-event order and launch pricing), and the same
/// disaggregated shape under chunked prefill (pinning the chunk plan's
/// handoff-aware retire order).
fn grid() -> Vec<(String, FleetConfig)> {
    let disagg = base(FleetSpec::disaggregated(
        Platform::gh200(),
        2,
        Platform::intel_h100(),
        2,
    ));
    let mut scaled = base(FleetSpec::homogeneous(Platform::intel_h100(), 1));
    scaled.arrivals = ArrivalProcess::Bursty {
        base_rate_per_s: 5.0,
        burst_rate_per_s: 300.0,
        burst_len: SimDuration::from_millis(400),
        lull_len: SimDuration::from_secs(2),
    };
    scaled.autoscale = Some(AutoscaleConfig::default());
    let mut chunked = disagg.clone();
    chunked.policy = FleetBatchPolicy::ChunkedPrefill { chunk_tokens: 64 };
    vec![
        ("fleet_disagg_2p2d".to_owned(), disagg),
        ("fleet_autoscale_bursty".to_owned(), scaled),
        ("fleet_chunked_disagg".to_owned(), chunked),
    ]
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("{name}.json"))
}

fn render(cfg: &FleetConfig) -> String {
    let (report, trace) = simulate_fleet_traced(cfg);
    format!(
        "{{\"report\":{},\"trace\":{}}}\n",
        serde_json::to_string(&report).expect("report serializes"),
        serde_json::to_string(&trace).expect("trace serializes"),
    )
}

#[test]
fn fleet_floor_reproduces_golden_fixtures() {
    let bless = std::env::var_os("SKIP_BLESS_GOLDEN").is_some();
    let mut missing = Vec::new();
    for (name, cfg) in grid() {
        let got = render(&cfg);
        let path = fixture_path(&name);
        if bless {
            std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir");
            std::fs::write(&path, &got).expect("write fixture");
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(want) => assert_eq!(
                got, want,
                "{name}: fleet output drifted from the golden fixture"
            ),
            Err(_) => missing.push(name),
        }
    }
    assert!(
        missing.is_empty(),
        "missing golden fixtures {missing:?}; regenerate with SKIP_BLESS_GOLDEN=1"
    );
}
