//! Property tests over the fleet floor: any platform mix, disaggregated
//! or unified, autoscaled or fixed, under any arrival process, must
//! complete every request, satisfy the fleet conservation law (arrivals =
//! completions + queued + running + in-handoff) at every event boundary,
//! and be bitwise deterministic.
//!
//! These sweep the configuration space the two golden fixtures cannot:
//! fixtures pin known shapes byte-for-byte, properties guarantee nothing
//! leaks anywhere in the fleet-mix × disagg × autoscale cross product.

use proptest::prelude::*;
use skip_des::SimDuration;
use skip_hw::Platform;
use skip_llm::zoo;
use skip_serve::{
    simulate_fleet_traced, ArrivalProcess, AutoscaleConfig, FleetBatchPolicy, FleetConfig,
    FleetRouterPolicy, FleetSpec, PoolRole, ReplicaGroup, SloTargets,
};

fn arb_platform() -> impl Strategy<Value = Platform> {
    prop::sample::select(vec![
        Platform::amd_a100(),
        Platform::intel_h100(),
        Platform::gh200(),
        Platform::mi300a(),
    ])
}

/// Any fleet shape: a unified fleet of 1–2 heterogeneous groups, or a
/// disaggregated prefill/decode split (possibly cross-platform).
fn arb_spec() -> impl Strategy<Value = FleetSpec> {
    (
        0usize..2,
        prop::collection::vec((arb_platform(), 1u32..3), 1..3),
        arb_platform(),
        1u32..3,
        arb_platform(),
        1u32..3,
    )
        .prop_map(|(kind, unified, pf, pc, dec, dc)| {
            if kind == 0 {
                FleetSpec {
                    groups: unified
                        .into_iter()
                        .map(|(platform, count)| ReplicaGroup {
                            platform,
                            count,
                            role: PoolRole::Unified,
                        })
                        .collect(),
                }
            } else {
                FleetSpec::disaggregated(pf, pc, dec, dc)
            }
        })
}

fn arb_router() -> impl Strategy<Value = FleetRouterPolicy> {
    prop::sample::select(vec![
        FleetRouterPolicy::RoundRobin,
        FleetRouterPolicy::JoinShortestQueue,
        FleetRouterPolicy::CostModelJsq,
    ])
}

fn arb_policy() -> impl Strategy<Value = FleetBatchPolicy> {
    (0usize..2, 16u32..512).prop_map(|(kind, chunk_tokens)| {
        if kind == 0 {
            FleetBatchPolicy::Continuous
        } else {
            FleetBatchPolicy::ChunkedPrefill { chunk_tokens }
        }
    })
}

fn arb_arrivals() -> impl Strategy<Value = ArrivalProcess> {
    (
        0usize..3,
        20.0f64..200.0,
        5.0f64..40.0,
        100.0f64..400.0,
        100u64..600,
        500u64..2000,
    )
        .prop_map(|(kind, rate, base, peak, a_ms, b_ms)| match kind {
            0 => ArrivalProcess::Poisson { rate_per_s: rate },
            1 => ArrivalProcess::Diurnal {
                base_rate_per_s: base,
                peak_rate_per_s: peak,
                period: SimDuration::from_millis(a_ms * 4),
            },
            _ => ArrivalProcess::Bursty {
                base_rate_per_s: base,
                burst_rate_per_s: peak,
                burst_len: SimDuration::from_millis(a_ms),
                lull_len: SimDuration::from_millis(b_ms),
            },
        })
}

fn arb_autoscale() -> impl Strategy<Value = Option<AutoscaleConfig>> {
    (
        0usize..2,
        50u64..400,
        2.0f64..10.0,
        1u32..3,
        3u32..8,
        50u64..600,
    )
        .prop_map(|(kind, interval_ms, high, min, max, provision_ms)| {
            if kind == 0 {
                None
            } else {
                Some(AutoscaleConfig {
                    interval: SimDuration::from_millis(interval_ms),
                    high_load: high,
                    low_load: high / 8.0,
                    min_per_pool: min,
                    max_per_pool: max.max(min),
                    provision_delay: SimDuration::from_millis(provision_ms),
                })
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Any fleet mix × disagg × autoscale × arrival process completes
    /// every request and conserves them at every event boundary, and the
    /// whole recording is bitwise deterministic.
    #[test]
    fn any_fleet_conserves_requests_and_is_deterministic(
        spec in arb_spec(),
        router in arb_router(),
        policy in arb_policy(),
        arrivals in arb_arrivals(),
        autoscale in arb_autoscale(),
        requests in 1u32..40,
        max_batch in 1u32..10,
        prompt_len in 16u32..256,
        new_tokens in 1u32..8,
        seed in 0u64..1_000,
    ) {
        let cfg = FleetConfig {
            spec,
            model: zoo::gpt2(),
            max_batch,
            requests,
            arrivals,
            prompt_len,
            new_tokens,
            seed,
            slo: SloTargets::default(),
            router,
            policy,
            autoscale,
        };
        prop_assert_eq!(cfg.validate(), Ok(()));
        let (report, trace) = simulate_fleet_traced(&cfg);

        prop_assert_eq!(report.completed, requests, "every request completes");
        prop_assert_eq!(trace.arrived_total(), requests);
        prop_assert_eq!(trace.completed_total(), requests);
        prop_assert!(trace.conserves_requests(), "conservation law violated");
        prop_assert_eq!(trace.lifecycles.len(), requests as usize);

        // Disaggregated fleets hand off exactly the multi-token requests;
        // unified fleets never touch the links.
        if cfg.spec.is_disaggregated() && new_tokens > 1 {
            prop_assert_eq!(report.handoffs, u64::from(requests));
            prop_assert!(report.handoff_bytes > 0);
        } else {
            prop_assert_eq!(report.handoffs, 0);
            prop_assert_eq!(report.handoff_bytes, 0);
        }

        // Latency sanity: first token can't follow completion.
        prop_assert!(report.e2e_p50 >= report.ttft_p50);
        prop_assert!(report.e2e_p95 >= report.ttft_p95);

        // Autoscaling never exceeds its ceiling.
        if let Some(auto) = &cfg.autoscale {
            let base = cfg.spec.total_replicas();
            let pools = if cfg.spec.is_disaggregated() { 2 } else { 1 };
            prop_assert!(
                report.peak_replicas <= base + auto.max_per_pool * pools,
                "peak {} above ceiling", report.peak_replicas
            );
        } else {
            prop_assert_eq!(report.scale_ups, 0);
            prop_assert_eq!(report.peak_replicas, cfg.spec.total_replicas());
        }

        // Bitwise determinism: the same config reproduces the entire
        // recording, not just the scalars.
        let (report2, trace2) = simulate_fleet_traced(&cfg);
        prop_assert_eq!(report, report2);
        prop_assert_eq!(trace, trace2);
    }
}
