//! Allocation budget of the serving and fleet floors' hot paths.
//!
//! The population-scale allocation audit moved every per-event `Vec` off
//! the floors' hot paths: router load snapshots and flush-expiry masks
//! fill reused buffers, lifecycle records and counter samples are
//! preallocated from the request count, iteration scratch (chunk plans,
//! retire ping-pong buffers, handoff staging) is reused across events.
//! What remains per *request* is amortized growth of a few long-lived
//! vectors — so the marginal allocation cost of a request must be a
//! small constant, not a multiple of its event count.
//!
//! The budget is measured differentially: the same configuration at two
//! request counts, bounding allocations per *additional* request. The
//! subtraction cancels the setup constant (latency-model cold keys run
//! engine simulations that allocate freely, but once per shape signature,
//! not per request).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use skip_hw::Platform;
use skip_llm::zoo;
use skip_serve::{
    simulate_fleet_traced, simulate_traced, ArrivalProcess, FleetBatchPolicy, FleetConfig,
    FleetRouterPolicy, FleetSpec, Policy, RouterPolicy, ServingConfig, SloTargets,
};

/// System allocator wrapper counting every `alloc`/`realloc` call.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn count(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

fn serve_cfg(requests: u32) -> ServingConfig {
    ServingConfig {
        platform: Platform::intel_h100(),
        model: zoo::gpt2(),
        policy: Policy::Continuous { max_batch: 8 },
        requests,
        arrival_rate_per_s: 400.0,
        prompt_len: 128,
        new_tokens: 4,
        seed: 17,
        kv: None,
        slo: SloTargets::default(),
        router: RouterPolicy::JoinShortestQueue,
    }
}

fn fleet_cfg(requests: u32) -> FleetConfig {
    FleetConfig {
        spec: FleetSpec::disaggregated(Platform::gh200(), 1, Platform::intel_h100(), 2),
        model: zoo::gpt2(),
        max_batch: 8,
        requests,
        arrivals: ArrivalProcess::Poisson { rate_per_s: 400.0 },
        prompt_len: 128,
        new_tokens: 4,
        seed: 17,
        slo: SloTargets::default(),
        router: FleetRouterPolicy::CostModelJsq,
        policy: FleetBatchPolicy::Continuous,
        autoscale: None,
    }
}

/// The degenerate fleet the unified floor reduces to: one homogeneous
/// unified group, no handoff links exercised. Its hot path is the same
/// event loop as the serving floor's, so it must meet the same budget.
fn one_group_cfg(requests: u32) -> FleetConfig {
    FleetConfig {
        spec: FleetSpec::homogeneous(Platform::intel_h100(), 3),
        ..fleet_cfg(requests)
    }
}

/// Marginal allocations per additional request the serving floor may pay.
/// Each request records 4 lifecycle events and drives ~1.5 iterations; the
/// pre-audit floor paid 2 fresh `Vec`s per *event* (router snapshot +
/// flush mask) before any recording, so a budget of 8 both proves the
/// audit held and leaves room for amortized growth of the long vectors.
const SERVE_BUDGET_PER_REQUEST: u64 = 8;

/// The fleet floor adds handoff staging and per-pool routing to the same
/// per-request story (7 lifecycle events on a disaggregated fleet).
const FLEET_BUDGET_PER_REQUEST: u64 = 8;

#[test]
fn serving_floor_allocations_per_request_are_bounded() {
    let (small, large) = (2_000u32, 6_000u32);
    // Warm-up run keeps one-time process setup out of both measurements.
    let _ = simulate_traced(&serve_cfg(64), 4);
    let base = count(|| {
        let (r, _) = simulate_traced(&serve_cfg(small), 4);
        assert_eq!(r.completed, small);
    });
    let full = count(|| {
        let (r, _) = simulate_traced(&serve_cfg(large), 4);
        assert_eq!(r.completed, large);
    });
    let extra = u64::from(large - small);
    let marginal = full.saturating_sub(base);
    assert!(
        marginal < extra * SERVE_BUDGET_PER_REQUEST,
        "serving floor allocated {marginal} times for {extra} additional requests \
         ({:.2}/request; budget {SERVE_BUDGET_PER_REQUEST})",
        marginal as f64 / extra as f64
    );
}

#[test]
fn one_group_fleet_allocations_per_request_are_bounded() {
    let (small, large) = (2_000u32, 6_000u32);
    let _ = simulate_fleet_traced(&one_group_cfg(64));
    let base = count(|| {
        let (r, _) = simulate_fleet_traced(&one_group_cfg(small));
        assert_eq!(r.completed, small);
    });
    let full = count(|| {
        let (r, _) = simulate_fleet_traced(&one_group_cfg(large));
        assert_eq!(r.completed, large);
    });
    let extra = u64::from(large - small);
    let marginal = full.saturating_sub(base);
    assert!(
        marginal < extra * FLEET_BUDGET_PER_REQUEST,
        "one-group fleet allocated {marginal} times for {extra} additional requests \
         ({:.2}/request; budget {FLEET_BUDGET_PER_REQUEST})",
        marginal as f64 / extra as f64
    );
}

#[test]
fn fleet_floor_allocations_per_request_are_bounded() {
    let (small, large) = (2_000u32, 6_000u32);
    let _ = simulate_fleet_traced(&fleet_cfg(64));
    let base = count(|| {
        let (r, _) = simulate_fleet_traced(&fleet_cfg(small));
        assert_eq!(r.completed, small);
    });
    let full = count(|| {
        let (r, _) = simulate_fleet_traced(&fleet_cfg(large));
        assert_eq!(r.completed, large);
    });
    let extra = u64::from(large - small);
    let marginal = full.saturating_sub(base);
    assert!(
        marginal < extra * FLEET_BUDGET_PER_REQUEST,
        "fleet floor allocated {marginal} times for {extra} additional requests \
         ({:.2}/request; budget {FLEET_BUDGET_PER_REQUEST})",
        marginal as f64 / extra as f64
    );
}
