//! Early-abort stop conditions: budgets that let a simulation stop the
//! moment its outcome is decided.
//!
//! A planner scoring hundreds of candidate fleets does not need the full
//! run of a candidate that has already blown its SLO attainment floor or
//! already bills more than a known-better incumbent — both quantities are
//! monotone in simulated time, so the verdict at the abort instant is the
//! verdict of the full run. [`StopCondition`] carries those budgets into
//! the serving and fleet floors; a run stopped by one returns a
//! truncated-but-honest report with its `aborted` flag set, which callers
//! must never count as a completed envelope.

use skip_des::SimDuration;

use crate::observe::SloTargets;

/// Budgets after which a bounded simulation run aborts.
///
/// All fields are *exceed* thresholds: the run stops once a counter goes
/// strictly above its budget, so a budget of `k` misses tolerates exactly
/// `k` of them. [`StopCondition::UNBOUNDED`] (all `None`) reproduces the
/// unbounded run byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StopCondition {
    /// Abort once more than this many completed requests missed the TTFT
    /// target. `None` leaves the axis unbounded.
    pub ttft_miss_budget: Option<u32>,
    /// Abort once more than this many completed requests missed the
    /// end-to-end target. `None` leaves the axis unbounded.
    pub e2e_miss_budget: Option<u32>,
    /// Abort once accrued replica-seconds exceed this ceiling — the run
    /// provably bills more than the incumbent it competes with. `None`
    /// leaves cost unbounded.
    pub cost_ceiling: Option<f64>,
}

impl StopCondition {
    /// No budgets: the bounded runners degenerate to the unbounded run.
    pub const UNBOUNDED: StopCondition = StopCondition {
        ttft_miss_budget: None,
        e2e_miss_budget: None,
        cost_ceiling: None,
    };

    /// `true` when no budget is set and the run can use the fast
    /// no-bookkeeping event loop.
    #[must_use]
    pub fn is_unbounded(&self) -> bool {
        *self == Self::UNBOUNDED
    }

    /// Miss budgets equivalent to "attainment on every set axis of `slo`
    /// must reach `floor` over `requests` completions": each set axis gets
    /// [`allowed_misses`]`(requests, floor)`; unset axes stay unbounded.
    #[must_use]
    pub fn for_attainment(requests: u32, floor: f64, slo: SloTargets) -> Self {
        let allowed = allowed_misses(requests, floor);
        StopCondition {
            ttft_miss_budget: slo.ttft.map(|_| allowed),
            e2e_miss_budget: slo.e2e.map(|_| allowed),
            cost_ceiling: None,
        }
    }
}

/// The largest miss count `m` such that completing `requests - m` of
/// `requests` requests within target still clears `floor` under the exact
/// `met as f64 / requests as f64 >= floor` division
/// [`SloReport::evaluate`](crate::observe::SloReport::evaluate) performs.
///
/// Computed against that float predicate rather than by rounding, so an
/// abort decision can never disagree with the final report's attainment
/// check.
#[must_use]
pub fn allowed_misses(requests: u32, floor: f64) -> u32 {
    if requests == 0 {
        return 0;
    }
    let n = f64::from(requests);
    let clears = |misses: u32| f64::from(requests - misses) / n >= floor;
    let mut m = (((1.0 - floor) * n).floor().max(0.0) as u32).min(requests);
    while m > 0 && !clears(m) {
        m -= 1;
    }
    while m < requests && clears(m + 1) {
        m += 1;
    }
    m
}

/// Incremental miss/cost bookkeeping for one bounded run. The floors feed
/// it each newly-finished request and ask whether a budget is blown.
#[derive(Debug)]
pub(crate) struct StopGuard {
    stop: StopCondition,
    ttft_target: Option<SimDuration>,
    e2e_target: Option<SimDuration>,
    ttft_misses: u32,
    e2e_misses: u32,
}

impl StopGuard {
    pub(crate) fn new(stop: StopCondition, slo: SloTargets) -> Self {
        StopGuard {
            stop,
            ttft_target: slo.ttft,
            e2e_target: slo.e2e,
            ttft_misses: 0,
            e2e_misses: 0,
        }
    }

    /// Records one finished request's latencies. Comparison is the same
    /// inclusive `<=` the final report uses (integer-nanosecond
    /// `SimDuration` ordering equals the report's f64 comparison for any
    /// latency under ~104 days).
    pub(crate) fn note(&mut self, ttft: SimDuration, e2e: SimDuration) {
        if self.ttft_target.is_some_and(|t| ttft > t) {
            self.ttft_misses += 1;
        }
        if self.e2e_target.is_some_and(|t| e2e > t) {
            self.e2e_misses += 1;
        }
    }

    /// `true` once either miss counter exceeds its budget — misses only
    /// grow, so the full run's attainment is already below the floor the
    /// budgets encode.
    pub(crate) fn miss_budget_blown(&self) -> bool {
        let blown = |budget: Option<u32>, misses: u32| budget.is_some_and(|b| misses > b);
        blown(self.stop.ttft_miss_budget, self.ttft_misses)
            || blown(self.stop.e2e_miss_budget, self.e2e_misses)
    }

    /// `true` when a cost ceiling is set at all — lets the floors skip
    /// computing the accrued bill on every event otherwise.
    pub(crate) fn wants_cost(&self) -> bool {
        self.stop.cost_ceiling.is_some()
    }

    /// `true` once `accrued_replica_seconds` strictly exceeds the ceiling
    /// — the bill only grows, so the full run is already more expensive.
    pub(crate) fn cost_blown(&self, accrued_replica_seconds: f64) -> bool {
        self.stop
            .cost_ceiling
            .is_some_and(|c| accrued_replica_seconds > c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowed_misses_matches_the_report_division() {
        // Exhaustively agree with the float predicate over a grid.
        for requests in [1u32, 2, 3, 7, 24, 64, 100, 1000] {
            for floor in [0.01, 0.5, 0.9, 0.95, 0.99, 1.0] {
                let m = allowed_misses(requests, floor);
                let n = f64::from(requests);
                assert!(
                    f64::from(requests - m) / n >= floor,
                    "n={requests} floor={floor}: {m} misses must still clear"
                );
                if m < requests {
                    assert!(
                        f64::from(requests - m - 1) / n < floor,
                        "n={requests} floor={floor}: {} misses must not clear",
                        m + 1
                    );
                }
            }
        }
    }

    #[test]
    fn unbounded_condition_never_trips() {
        let mut g = StopGuard::new(
            StopCondition::UNBOUNDED,
            SloTargets {
                ttft: Some(SimDuration::from_millis(1)),
                e2e: Some(SimDuration::from_millis(1)),
            },
        );
        for _ in 0..100 {
            g.note(SimDuration::from_secs(10), SimDuration::from_secs(10));
        }
        assert!(!g.miss_budget_blown());
        assert!(!g.wants_cost());
        assert!(!g.cost_blown(f64::INFINITY));
    }

    #[test]
    fn miss_budgets_trip_only_past_the_budget() {
        let slo = SloTargets {
            ttft: Some(SimDuration::from_millis(100)),
            e2e: Some(SimDuration::from_millis(500)),
        };
        let stop = StopCondition::for_attainment(10, 0.8, slo);
        assert_eq!(stop.ttft_miss_budget, Some(2));
        assert_eq!(stop.e2e_miss_budget, Some(2));
        let mut g = StopGuard::new(stop, slo);
        let hit = (SimDuration::from_millis(50), SimDuration::from_millis(200));
        let miss = (SimDuration::from_millis(200), SimDuration::from_secs(1));
        g.note(hit.0, hit.1);
        g.note(miss.0, miss.1);
        g.note(miss.0, miss.1);
        assert!(!g.miss_budget_blown(), "two misses are within budget");
        g.note(miss.0, miss.1);
        assert!(g.miss_budget_blown(), "the third miss blows the budget");
    }

    #[test]
    fn one_axis_can_trip_alone() {
        let slo = SloTargets {
            ttft: Some(SimDuration::from_millis(100)),
            e2e: Some(SimDuration::from_secs(60)),
        };
        let mut g = StopGuard::new(StopCondition::for_attainment(4, 1.0, slo), slo);
        g.note(SimDuration::from_millis(200), SimDuration::from_millis(300));
        assert!(g.miss_budget_blown(), "a 100% floor tolerates zero misses");
    }

    #[test]
    fn cost_ceiling_is_strict() {
        let g = StopGuard::new(
            StopCondition {
                cost_ceiling: Some(4.0),
                ..StopCondition::UNBOUNDED
            },
            SloTargets::default(),
        );
        assert!(g.wants_cost());
        assert!(!g.cost_blown(4.0), "equality cannot prove a worse bill");
        assert!(g.cost_blown(4.0 + 1e-9));
    }
}
