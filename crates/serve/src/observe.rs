//! Serving-floor observability: per-request lifecycle records, time-series
//! counters, and SLO attainment.
//!
//! The serving simulator used to fold thousands of scheduler decisions into
//! nine scalars, which is exactly how latency-accounting bugs went
//! unnoticed. This module records what actually happened — every request's
//! arrival → admission → prefill-done → preemption/resume → completion
//! path with the reason and cost of each transition ([`RequestLifecycle`]),
//! plus deterministic counter tracks sampled at iteration boundaries
//! ([`CounterSample`]) — and evaluates latency SLOs over the completions
//! ([`SloReport`]).
//!
//! [`ServingTrace::to_trace`] exports all of it through the `skip-trace`
//! data model: lifecycle phases become duration slices on one track per
//! request, each preemption→resume hand-off becomes a correlated
//! launch/kernel pair (drawn by the Chrome exporter as a flow arrow), and
//! counters become Perfetto counter tracks. A serving run therefore opens
//! in the same Perfetto UI as an engine trace, via
//! `skip_trace::chrome::to_chrome_trace`.

use serde::{Deserialize, Serialize};
use skip_des::{SimDuration, SimTime};
use skip_trace::{
    CorrelationId, CounterEvent, CpuOpEvent, KernelEvent, OpId, RuntimeLaunchEvent, StreamId,
    ThreadId, Trace, TraceMeta,
};

/// Latency targets a serving run is evaluated against.
///
/// `None` targets are vacuously met; [`SloTargets::default`] disables SLO
/// accounting entirely (attainment reports 1.0).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SloTargets {
    /// Time-to-first-token target.
    pub ttft: Option<SimDuration>,
    /// End-to-end latency target.
    pub e2e: Option<SimDuration>,
}

impl SloTargets {
    /// `true` if at least one target is configured.
    #[must_use]
    pub fn is_set(&self) -> bool {
        self.ttft.is_some() || self.e2e.is_some()
    }

    /// `true` if a completion with the given latencies meets every
    /// configured target.
    #[must_use]
    pub fn met(&self, ttft: SimDuration, e2e: SimDuration) -> bool {
        self.ttft.is_none_or(|t| ttft <= t) && self.e2e.is_none_or(|t| e2e <= t)
    }
}

/// SLO attainment over a serving run's completions.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SloReport {
    /// The targets evaluated against.
    pub targets: SloTargets,
    /// Completions inspected.
    pub completed: u32,
    /// Fraction of completions meeting the TTFT target (1.0 when unset).
    pub ttft_attainment: f64,
    /// Fraction of completions meeting the e2e target (1.0 when unset).
    pub e2e_attainment: f64,
    /// Completions meeting every configured target.
    pub slo_completions: u32,
    /// SLO-meeting completions per second over the makespan.
    pub goodput_req_s: f64,
    /// Output tokens of SLO-meeting completions per second.
    pub goodput_tok_s: f64,
}

impl SloReport {
    /// Evaluates `targets` over per-request `(ttft, e2e)` latencies.
    ///
    /// `tokens_per_request` prices goodput; `makespan` is the span the
    /// goodput rates are normalized by. Empty input yields vacuous
    /// attainment (1.0) and zero goodput.
    #[must_use]
    pub fn evaluate(
        targets: SloTargets,
        latencies: &[(SimDuration, SimDuration)],
        tokens_per_request: u32,
        makespan: SimDuration,
    ) -> Self {
        // Attainment counts inline over the latency pairs (same inclusive
        // `<=` and empty-set semantics as `skip_des::attainment`) instead
        // of materializing per-axis sample vectors.
        let frac = |target: Option<SimDuration>, pick: fn(&(SimDuration, SimDuration)) -> f64| {
            let Some(t) = target else { return 1.0 };
            if latencies.is_empty() {
                return 1.0;
            }
            let t = t.as_nanos_f64();
            latencies.iter().filter(|l| pick(l) <= t).count() as f64 / latencies.len() as f64
        };
        let slo_completions = latencies
            .iter()
            .filter(|&&(ttft, e2e)| targets.met(ttft, e2e))
            .count() as u32;
        let span_s = makespan.as_secs_f64();
        let goodput_req_s = if span_s > 0.0 {
            f64::from(slo_completions) / span_s
        } else {
            0.0
        };
        SloReport {
            targets,
            completed: latencies.len() as u32,
            ttft_attainment: frac(targets.ttft, |&(t, _)| t.as_nanos_f64()),
            e2e_attainment: frac(targets.e2e, |&(_, e)| e.as_nanos_f64()),
            slo_completions,
            goodput_req_s,
            goodput_tok_s: goodput_req_s * f64::from(tokens_per_request),
        }
    }
}

/// How a preemption victim's KV state comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResumeAction {
    /// Blocks were copied to host memory and copy back on resume.
    SwapIn,
    /// Blocks were dropped; the context re-prefills on resume.
    Recompute,
}

impl ResumeAction {
    /// Short label used in exported track names.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ResumeAction::SwapIn => "swap",
            ResumeAction::Recompute => "recompute",
        }
    }
}

/// One transition in a request's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LifecycleKind {
    /// The request entered the pending queue.
    Arrived,
    /// The scheduler placed the request on a replica (static batch start
    /// or continuous admission).
    Admitted {
        /// The replica the request was placed on.
        replica: u32,
    },
    /// Prefill finished; the first output token left the engine.
    FirstToken,
    /// The KV pool evicted the request.
    Preempted {
        /// The replica it was evicted from.
        replica: u32,
        /// How its KV state will come back.
        action: ResumeAction,
        /// Engine stall charged at eviction time (the copy-out for swaps;
        /// zero for recompute, which defers its cost to resume).
        stall: SimDuration,
    },
    /// A parked request re-entered the running batch.
    Resumed {
        /// The replica it resumed on.
        replica: u32,
        /// How its KV state came back.
        action: ResumeAction,
        /// Cost of the resume iteration it rode in on. Requests resumed in
        /// the same iteration share one batched charge, so they carry the
        /// same value.
        cost: SimDuration,
    },
    /// The request generated its last token and released its blocks.
    Completed {
        /// The replica it completed on.
        replica: u32,
    },
    /// Prefill finished on a disaggregated prefill replica and the
    /// request's KV cache was queued on the destination's handoff link.
    HandoffQueued {
        /// The prefill replica handing the KV off.
        from: u32,
        /// KV bytes to move (whole blocks).
        bytes: u64,
    },
    /// The KV handoff transfer landed on the decode replica.
    HandoffDone {
        /// The decode replica that received the KV.
        to: u32,
        /// Time spent queued on the link before the transfer started.
        wait: SimDuration,
        /// The interconnect transfer time itself (D2H + H2D legs).
        transfer: SimDuration,
    },
    /// The request joined a decode replica's running batch (disaggregated
    /// fleets only; unified admission is [`LifecycleKind::Admitted`]).
    DecodeAdmitted {
        /// The decode replica it joined.
        replica: u32,
    },
}

/// A timestamped lifecycle transition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifecycleEvent {
    /// When the transition happened.
    pub at: SimTime,
    /// What happened.
    pub kind: LifecycleKind,
}

/// The full recorded lifecycle of one request, events in time order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestLifecycle {
    /// The request's ID (arrival order).
    pub id: u64,
    /// Transitions in time order.
    pub events: Vec<LifecycleEvent>,
}

impl RequestLifecycle {
    fn instant_of(&self, pred: impl Fn(&LifecycleKind) -> bool) -> Option<SimTime> {
        self.events.iter().find(|e| pred(&e.kind)).map(|e| e.at)
    }

    /// Arrival instant.
    #[must_use]
    pub fn arrived_at(&self) -> Option<SimTime> {
        self.instant_of(|k| matches!(k, LifecycleKind::Arrived))
    }

    /// First admission instant.
    #[must_use]
    pub fn admitted_at(&self) -> Option<SimTime> {
        self.instant_of(|k| matches!(k, LifecycleKind::Admitted { .. }))
    }

    /// First-token instant.
    #[must_use]
    pub fn first_token_at(&self) -> Option<SimTime> {
        self.instant_of(|k| matches!(k, LifecycleKind::FirstToken))
    }

    /// Completion instant.
    #[must_use]
    pub fn completed_at(&self) -> Option<SimTime> {
        self.instant_of(|k| matches!(k, LifecycleKind::Completed { .. }))
    }

    /// Time-to-first-token, when both endpoints were recorded.
    #[must_use]
    pub fn ttft(&self) -> Option<SimDuration> {
        Some(
            self.first_token_at()?
                .saturating_duration_since(self.arrived_at()?),
        )
    }

    /// End-to-end latency, when both endpoints were recorded.
    #[must_use]
    pub fn e2e(&self) -> Option<SimDuration> {
        Some(
            self.completed_at()?
                .saturating_duration_since(self.arrived_at()?),
        )
    }

    /// Number of preemptions the request suffered.
    #[must_use]
    pub fn preemptions(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, LifecycleKind::Preempted { .. }))
            .count()
    }
}

/// One deterministic sample of the serving-floor counters, taken at an
/// iteration boundary (after each simulator event).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Sample instant.
    pub at: SimTime,
    /// Requests waiting in the shared pending queue.
    pub queue_depth: u32,
    /// Requests running across all replicas (continuous actives plus
    /// in-flight static jobs).
    pub running: u32,
    /// Preempted requests parked for a later resume.
    pub parked: u32,
    /// Replicas currently executing an iteration or job.
    pub busy_replicas: u32,
    /// KV blocks in use across all replica pools (0 without a budget).
    pub kv_used_blocks: u32,
    /// KV blocks configured across all replica pools (0 without a budget).
    pub kv_total_blocks: u32,
    /// Requests ever admitted, cumulative.
    pub admitted_total: u32,
    /// Requests completed, cumulative.
    pub completed_total: u32,
}

impl CounterSample {
    /// The conservation law every sample must satisfy: everything admitted
    /// is either still running, parked, or completed.
    #[must_use]
    pub fn conserves_requests(&self) -> bool {
        self.admitted_total == self.completed_total + self.running + self.parked
    }
}

/// Anything that can absorb lifecycle transitions. The memory layer and
/// the batch policies record through this seam, so the same scheduling
/// code serves both the single-node [`ServingTrace`] and the fleet
/// recording without knowing which is behind it.
pub(crate) trait RecordSink {
    /// Appends a lifecycle transition for request `id`.
    fn record(&mut self, id: u64, at: SimTime, kind: LifecycleKind);
}

impl<S: RecordSink + ?Sized> RecordSink for &mut S {
    fn record(&mut self, id: u64, at: SimTime, kind: LifecycleKind) {
        (**self).record(id, at, kind);
    }
}

impl RecordSink for ServingTrace {
    fn record(&mut self, id: u64, at: SimTime, kind: LifecycleKind) {
        ServingTrace::record(self, id, at, kind);
    }
}

/// Everything a serving run recorded beyond the scalar report: lifecycle
/// records and counter tracks, exportable to the Chrome-trace timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingTrace {
    /// Model served.
    pub model: String,
    /// Platform name.
    pub platform: String,
    /// Replica count.
    pub replicas: u32,
    /// One lifecycle per request, indexed by request ID.
    pub lifecycles: Vec<RequestLifecycle>,
    /// Counter samples in time order.
    pub samples: Vec<CounterSample>,
    admitted: u32,
    completed: u32,
}

impl ServingTrace {
    /// Creates an empty recording for a run of `replicas` instances of
    /// `platform` serving `model`.
    #[must_use]
    pub fn new(model: impl Into<String>, platform: impl Into<String>, replicas: u32) -> Self {
        ServingTrace {
            model: model.into(),
            platform: platform.into(),
            replicas,
            lifecycles: Vec::new(),
            samples: Vec::new(),
            admitted: 0,
            completed: 0,
        }
    }

    /// Requests ever admitted.
    #[must_use]
    pub fn admitted_total(&self) -> u32 {
        self.admitted
    }

    /// Requests completed.
    #[must_use]
    pub fn completed_total(&self) -> u32 {
        self.completed
    }

    /// Preallocates lifecycle and sample storage for `requests` requests
    /// of ~`events_per_request` lifecycle events each, so a sized run
    /// records without reallocating mid-simulation. Purely a capacity
    /// hint: recorded content (and its serialized form) is unchanged,
    /// because every id below `requests` arrives eventually and
    /// [`record`](Self::record) would have created the same entries.
    pub fn reserve(&mut self, requests: u32, events_per_request: usize) {
        let requests = requests as usize;
        self.lifecycles
            .reserve(requests.saturating_sub(self.lifecycles.len()));
        while self.lifecycles.len() < requests {
            self.lifecycles.push(RequestLifecycle {
                id: self.lifecycles.len() as u64,
                events: Vec::with_capacity(events_per_request),
            });
        }
        // Sample count tracks handled events; start near the floor of two
        // boundaries per request and let growth amortize the rest.
        self.samples.reserve(requests.saturating_mul(2));
    }

    /// Appends a lifecycle transition for request `id`.
    ///
    /// IDs are dense arrival-order indices; the first transition recorded
    /// for a new ID allocates its lifecycle record.
    pub fn record(&mut self, id: u64, at: SimTime, kind: LifecycleKind) {
        while self.lifecycles.len() <= id as usize {
            self.lifecycles.push(RequestLifecycle {
                id: self.lifecycles.len() as u64,
                events: Vec::new(),
            });
        }
        match kind {
            LifecycleKind::Admitted { .. } => self.admitted += 1,
            LifecycleKind::Completed { .. } => self.completed += 1,
            _ => {}
        }
        self.lifecycles[id as usize]
            .events
            .push(LifecycleEvent { at, kind });
    }

    /// Appends a counter sample, replacing the previous one when several
    /// simulator events fire at the same instant (the iteration boundary's
    /// final state wins).
    pub fn push_sample(&mut self, sample: CounterSample) {
        if let Some(last) = self.samples.last_mut() {
            if last.at == sample.at {
                *last = sample;
                return;
            }
        }
        self.samples.push(sample);
    }

    /// `true` if every sample satisfies admitted = completed + running +
    /// parked.
    #[must_use]
    pub fn conserves_requests(&self) -> bool {
        self.samples.iter().all(CounterSample::conserves_requests)
    }

    /// Exports the recording as a [`Trace`]:
    ///
    /// * each request becomes one track (thread = request ID) of duration
    ///   slices named `queued`, `prefill`, `decode`, `parked:swap`, or
    ///   `parked:recompute`;
    /// * each preemption→resume hand-off becomes a correlated
    ///   launch/kernel pair, which the Chrome exporter draws as a flow
    ///   arrow from eviction to resume;
    /// * each counter sample becomes one event per counter track
    ///   (`queue_depth`, `running`, `parked`, `busy_replicas`,
    ///   `completed_total`, and `kv_used_blocks` when a pool is
    ///   configured).
    ///
    /// The result round-trips through
    /// `skip_trace::chrome::to_chrome_trace` / `from_chrome_trace` and
    /// passes [`Trace::validate`].
    #[must_use]
    pub fn to_trace(&self) -> Trace {
        let mut t = Trace::new(TraceMeta {
            model: self.model.clone(),
            platform: self.platform.clone(),
            exec_mode: "serving".into(),
            phase: "serving".into(),
            batch_size: self.replicas,
            seq_len: 0,
        });
        let mut next_op = 0u64;
        let mut next_corr = 1u64;
        for lc in &self.lifecycles {
            let tid = ThreadId::new(lc.id as u32);
            let mut pending_preempt: Option<SimTime> = None;
            for pair in lc.events.windows(2) {
                let (cur, next) = (&pair[0], &pair[1]);
                let name = match cur.kind {
                    LifecycleKind::Arrived => t.intern("queued"),
                    LifecycleKind::Admitted { .. } => t.intern("prefill"),
                    LifecycleKind::FirstToken
                    | LifecycleKind::Resumed { .. }
                    | LifecycleKind::DecodeAdmitted { .. } => t.intern("decode"),
                    LifecycleKind::Preempted { action, .. } => {
                        t.intern(&format!("parked:{}", action.label()))
                    }
                    LifecycleKind::HandoffQueued { .. } => t.intern("handoff"),
                    LifecycleKind::HandoffDone { .. } => t.intern("queued"),
                    LifecycleKind::Completed { .. } => continue,
                };
                t.push_cpu_op(CpuOpEvent {
                    id: OpId::new(next_op),
                    name,
                    thread: tid,
                    begin: cur.at,
                    end: next.at,
                });
                next_op += 1;
            }
            let mut pending_handoff: Option<SimTime> = None;
            for ev in &lc.events {
                match ev.kind {
                    LifecycleKind::Preempted { .. } => pending_preempt = Some(ev.at),
                    LifecycleKind::HandoffQueued { .. } => pending_handoff = Some(ev.at),
                    LifecycleKind::Resumed { .. } => {
                        if let Some(preempted_at) = pending_preempt.take() {
                            let corr = CorrelationId::new(next_corr);
                            next_corr += 1;
                            let preempt = t.intern("preempt");
                            t.push_launch(RuntimeLaunchEvent {
                                name: preempt,
                                thread: tid,
                                begin: preempted_at,
                                end: preempted_at,
                                correlation: corr,
                            });
                            let resume = t.intern("resume");
                            t.push_kernel(KernelEvent {
                                name: resume,
                                stream: StreamId::new(lc.id as u32),
                                begin: ev.at,
                                end: ev.at,
                                correlation: corr,
                            });
                        }
                    }
                    LifecycleKind::HandoffDone { .. } => {
                        if let Some(queued_at) = pending_handoff.take() {
                            let corr = CorrelationId::new(next_corr);
                            next_corr += 1;
                            let depart = t.intern("kv_depart");
                            t.push_launch(RuntimeLaunchEvent {
                                name: depart,
                                thread: tid,
                                begin: queued_at,
                                end: queued_at,
                                correlation: corr,
                            });
                            let land = t.intern("kv_land");
                            t.push_kernel(KernelEvent {
                                name: land,
                                stream: StreamId::new(lc.id as u32),
                                begin: ev.at,
                                end: ev.at,
                                correlation: corr,
                            });
                        }
                    }
                    _ => {}
                }
            }
        }
        let kv_tracked = self.samples.iter().any(|s| s.kv_total_blocks > 0);
        for s in &self.samples {
            let mut counter = |track: &str, value: f64| {
                t.push_counter(CounterEvent {
                    track: track.to_owned(),
                    at: s.at,
                    value,
                });
            };
            counter("queue_depth", f64::from(s.queue_depth));
            counter("running", f64::from(s.running));
            counter("parked", f64::from(s.parked));
            counter("busy_replicas", f64::from(s.busy_replicas));
            counter("completed_total", f64::from(s.completed_total));
            if kv_tracked {
                counter("kv_used_blocks", f64::from(s.kv_used_blocks));
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn dur_ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn preempted_lifecycle() -> ServingTrace {
        let mut st = ServingTrace::new("gpt2", "gh200", 1);
        st.record(0, ms(0), LifecycleKind::Arrived);
        st.record(0, ms(10), LifecycleKind::Admitted { replica: 0 });
        st.record(0, ms(30), LifecycleKind::FirstToken);
        st.record(
            0,
            ms(50),
            LifecycleKind::Preempted {
                replica: 0,
                action: ResumeAction::SwapIn,
                stall: dur_ms(2),
            },
        );
        st.record(
            0,
            ms(70),
            LifecycleKind::Resumed {
                replica: 0,
                action: ResumeAction::SwapIn,
                cost: dur_ms(2),
            },
        );
        st.record(0, ms(90), LifecycleKind::Completed { replica: 0 });
        st
    }

    #[test]
    fn lifecycle_accessors_read_transitions() {
        let st = preempted_lifecycle();
        let lc = &st.lifecycles[0];
        assert_eq!(lc.arrived_at(), Some(ms(0)));
        assert_eq!(lc.admitted_at(), Some(ms(10)));
        assert_eq!(lc.ttft(), Some(dur_ms(30)));
        assert_eq!(lc.e2e(), Some(dur_ms(90)));
        assert_eq!(lc.preemptions(), 1);
        assert_eq!(st.admitted_total(), 1);
        assert_eq!(st.completed_total(), 1);
    }

    #[test]
    fn to_trace_builds_slices_flows_and_counters() {
        let mut st = preempted_lifecycle();
        st.push_sample(CounterSample {
            at: ms(10),
            queue_depth: 0,
            running: 1,
            parked: 0,
            busy_replicas: 1,
            kv_used_blocks: 8,
            kv_total_blocks: 16,
            admitted_total: 1,
            completed_total: 0,
        });
        let t = st.to_trace();
        t.validate().unwrap();
        // queued, prefill, decode, parked:swap, decode — five slices.
        let names: Vec<&str> = t.cpu_ops().iter().map(|o| t.name(o.name)).collect();
        assert_eq!(
            names,
            vec!["queued", "prefill", "decode", "parked:swap", "decode"]
        );
        // One preempt→resume flow pair.
        assert_eq!(t.launches().len(), 1);
        assert_eq!(t.kernels().len(), 1);
        assert_eq!(
            t.launches().get(0).correlation,
            t.kernels().get(0).correlation
        );
        assert_eq!(t.launches().get(0).begin, ms(50));
        assert_eq!(t.kernels().get(0).begin, ms(70));
        // Six counter tracks (kv tracked).
        assert_eq!(t.counters().len(), 6);
        assert!(t.counters().iter().any(|c| c.track == "kv_used_blocks"));
    }

    /// A disaggregated request's extra transitions export as slices —
    /// handoff occupancy, the decode-side queue wait — plus one
    /// kv_depart→kv_land flow pair, and the decode-side admission must not
    /// double-count the request as admitted.
    #[test]
    fn disaggregated_lifecycle_exports_handoff_slices_and_flow() {
        let mut st = ServingTrace::new("gpt2", "fleet", 2);
        st.record(0, ms(0), LifecycleKind::Arrived);
        st.record(0, ms(5), LifecycleKind::Admitted { replica: 0 });
        st.record(0, ms(20), LifecycleKind::FirstToken);
        st.record(
            0,
            ms(20),
            LifecycleKind::HandoffQueued {
                from: 0,
                bytes: 1 << 20,
            },
        );
        st.record(
            0,
            ms(24),
            LifecycleKind::HandoffDone {
                to: 1,
                wait: dur_ms(1),
                transfer: dur_ms(3),
            },
        );
        st.record(0, ms(30), LifecycleKind::DecodeAdmitted { replica: 1 });
        st.record(0, ms(60), LifecycleKind::Completed { replica: 1 });
        let t = st.to_trace();
        t.validate().unwrap();
        let names: Vec<&str> = t.cpu_ops().iter().map(|o| t.name(o.name)).collect();
        assert_eq!(
            names,
            vec!["queued", "prefill", "decode", "handoff", "queued", "decode"]
        );
        assert_eq!(t.launches().len(), 1);
        assert_eq!(t.kernels().len(), 1);
        assert_eq!(t.name(t.launches().get(0).name), "kv_depart");
        assert_eq!(t.name(t.kernels().get(0).name), "kv_land");
        assert_eq!(st.admitted_total(), 1);
        assert_eq!(st.completed_total(), 1);
    }

    #[test]
    fn kv_track_omitted_without_a_pool() {
        let mut st = ServingTrace::new("gpt2", "gh200", 1);
        st.push_sample(CounterSample {
            at: ms(1),
            queue_depth: 2,
            running: 0,
            parked: 0,
            busy_replicas: 0,
            kv_used_blocks: 0,
            kv_total_blocks: 0,
            admitted_total: 0,
            completed_total: 0,
        });
        let t = st.to_trace();
        assert_eq!(t.counters().len(), 5);
        assert!(t.counters().iter().all(|c| c.track != "kv_used_blocks"));
    }

    #[test]
    fn same_instant_samples_collapse_to_the_last() {
        let mut st = ServingTrace::new("m", "p", 1);
        let base = CounterSample {
            at: ms(5),
            queue_depth: 3,
            running: 0,
            parked: 0,
            busy_replicas: 0,
            kv_used_blocks: 0,
            kv_total_blocks: 0,
            admitted_total: 0,
            completed_total: 0,
        };
        st.push_sample(base);
        st.push_sample(CounterSample {
            queue_depth: 1,
            ..base
        });
        st.push_sample(CounterSample { at: ms(6), ..base });
        assert_eq!(st.samples.len(), 2);
        assert_eq!(st.samples[0].queue_depth, 1);
    }

    #[test]
    fn conservation_law_checks_every_sample() {
        let mut st = ServingTrace::new("m", "p", 1);
        let ok = CounterSample {
            at: ms(1),
            queue_depth: 0,
            running: 2,
            parked: 1,
            busy_replicas: 1,
            kv_used_blocks: 0,
            kv_total_blocks: 0,
            admitted_total: 4,
            completed_total: 1,
        };
        st.push_sample(ok);
        assert!(st.conserves_requests());
        st.push_sample(CounterSample {
            at: ms(2),
            admitted_total: 5,
            ..ok
        });
        assert!(!st.conserves_requests());
    }

    #[test]
    fn slo_report_scores_attainment_and_goodput() {
        let targets = SloTargets {
            ttft: Some(dur_ms(100)),
            e2e: Some(dur_ms(500)),
        };
        let latencies = [
            (dur_ms(50), dur_ms(200)),  // meets both
            (dur_ms(150), dur_ms(300)), // misses ttft
            (dur_ms(80), dur_ms(600)),  // misses e2e
            (dur_ms(100), dur_ms(500)), // exactly on target: meets
        ];
        let r = SloReport::evaluate(targets, &latencies, 10, SimDuration::from_secs(2));
        assert_eq!(r.completed, 4);
        assert_eq!(r.slo_completions, 2);
        assert!((r.ttft_attainment - 0.75).abs() < 1e-12);
        assert!((r.e2e_attainment - 0.75).abs() < 1e-12);
        assert!((r.goodput_req_s - 1.0).abs() < 1e-12);
        assert!((r.goodput_tok_s - 10.0).abs() < 1e-12);
    }

    #[test]
    fn unset_targets_are_vacuously_met() {
        let r = SloReport::evaluate(
            SloTargets::default(),
            &[(dur_ms(999), dur_ms(9999))],
            4,
            SimDuration::from_secs(1),
        );
        assert!(!r.targets.is_set());
        assert_eq!(r.ttft_attainment, 1.0);
        assert_eq!(r.e2e_attainment, 1.0);
        assert_eq!(r.slo_completions, 1);
    }

    #[test]
    fn empty_run_yields_vacuous_slo_report() {
        let r = SloReport::evaluate(SloTargets::default(), &[], 4, SimDuration::ZERO);
        assert_eq!(r.completed, 0);
        assert_eq!(r.ttft_attainment, 1.0);
        assert_eq!(r.goodput_req_s, 0.0);
    }

    #[test]
    fn serde_round_trips_the_serving_trace() {
        let st = preempted_lifecycle();
        let json = serde_json::to_string(&st).unwrap();
        let back: ServingTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(st, back);
    }
}
