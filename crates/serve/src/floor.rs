//! The single-node serving front: a thin constructor over the unified
//! floor.
//!
//! This module owns the public single-node API — [`simulate`],
//! [`simulate_replicas`], [`simulate_traced`], and the bounded variant —
//! plus the [`ServingReport`] shape. The event loop itself lives in
//! `crate::unified`: a single-node endpoint is the degenerate
//! [`ReplicaSet`](crate::unified::ReplicaSet) — one homogeneous
//! always-up group in one unified pool, with inert handoff links and
//! broadcast (flush-timer-driven) wake-ups.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use skip_des::{percentile, SimDuration, SimTime, Simulator};

use crate::config::ServingConfig;
use crate::memctx::MemoryLayer;
use crate::observe::{ServingTrace, SloReport};
use crate::policy::{Finished, ReplicaState};
use crate::request::RequestStream;
use crate::stop::StopCondition;
use crate::unified::{
    run_unified, CostBasis, Event, FloorObs, FlushTimer, ReplicaSet, UnifiedFloor,
};

/// Measured serving behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Requests completed (equals the configured count for every
    /// well-formed run).
    pub completed: u32,
    /// Median time-to-first-token.
    pub ttft_p50: SimDuration,
    /// 95th-percentile time-to-first-token.
    pub ttft_p95: SimDuration,
    /// 99th-percentile time-to-first-token.
    pub ttft_p99: SimDuration,
    /// Median end-to-end latency.
    pub e2e_p50: SimDuration,
    /// 95th-percentile end-to-end latency.
    pub e2e_p95: SimDuration,
    /// Output tokens per second over the simulation span, counting only
    /// completed requests.
    pub throughput_tok_s: f64,
    /// Wall-clock span from first arrival to last completion.
    pub makespan: SimDuration,
    /// KV-pool preemptions (0 without a memory budget).
    pub preemptions: u64,
    /// Preemptions resolved by swapping blocks to host memory.
    pub swap_outs: u64,
    /// KV bytes moved host-ward by those swaps (the same amount returns
    /// on resume).
    pub swapped_bytes: u64,
    /// Context tokens re-prefilled because their blocks were dropped.
    pub recomputed_tokens: u64,
    /// High-water fraction of the per-replica KV pool in use (0 without a
    /// memory budget).
    pub kv_peak_occupancy: f64,
    /// SLO attainment against [`ServingConfig::slo`] (vacuous when no
    /// target is configured).
    pub slo: SloReport,
    /// `true` when the run was stopped early by a
    /// [`StopCondition`](crate::StopCondition): every metric covers only
    /// the simulated prefix. Omitted from serialization when `false`, so
    /// unbounded runs keep their pinned serde bytes.
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub aborted: bool,
}

/// Runs the serving simulation on a single replica.
///
/// Deterministic for a fixed config (seeded arrivals, memoized engine).
///
/// # Panics
///
/// Panics if the configuration fails [`ServingConfig::validate`] — front
/// ends wanting a graceful error path validate first.
#[must_use]
pub fn simulate(cfg: &ServingConfig) -> ServingReport {
    simulate_replicas(cfg, 1)
}

/// Runs the serving simulation across `replicas` identical instances of
/// the platform — endpoint fleet sizing. Arrivals are dispatched by the
/// configured [`RouterPolicy`](crate::RouterPolicy): one shared queue idle
/// replicas pull from, or partitioned per-replica queues.
///
/// # Panics
///
/// Panics if `replicas` is zero or the configuration fails
/// [`ServingConfig::validate`].
#[must_use]
pub fn simulate_replicas(cfg: &ServingConfig, replicas: u32) -> ServingReport {
    simulate_traced(cfg, replicas).0
}

/// Runs the serving simulation under `stop`, aborting the moment a budget
/// is blown — the single-platform twin of
/// [`simulate_fleet_bounded`](crate::fleet::floor::simulate_fleet_bounded).
/// An aborted run returns the truncated report of the simulated prefix
/// with [`ServingReport::aborted`] set; the cost ceiling prices the fixed
/// fleet at `replicas × elapsed` seconds. A run no budget stops is
/// byte-identical to [`simulate_replicas`].
///
/// # Panics
///
/// Panics if `replicas` is zero or the configuration fails
/// [`ServingConfig::validate`].
#[must_use]
pub fn simulate_replicas_bounded(
    cfg: &ServingConfig,
    replicas: u32,
    stop: StopCondition,
) -> ServingReport {
    run_floor(cfg, replicas, stop).0
}

/// Runs the serving simulation and additionally returns the full
/// observability recording: per-request lifecycle records and the counter
/// tracks sampled at every iteration boundary.
///
/// The [`ServingTrace`] exports to the Chrome-trace timeline via
/// [`ServingTrace::to_trace`] and `skip_trace::chrome::to_chrome_trace`.
///
/// # Panics
///
/// Panics if `replicas` is zero or the configuration fails
/// [`ServingConfig::validate`] (an invalid config is a caller bug here;
/// validate first for a graceful error path).
#[must_use]
pub fn simulate_traced(cfg: &ServingConfig, replicas: u32) -> (ServingReport, ServingTrace) {
    run_floor(cfg, replicas, StopCondition::UNBOUNDED)
}

fn run_floor(
    cfg: &ServingConfig,
    replicas: u32,
    stop: StopCondition,
) -> (ServingReport, ServingTrace) {
    assert!(replicas > 0, "need at least one replica");
    if let Err(e) = cfg.validate() {
        panic!("{e}");
    }

    let n = replicas as usize;
    let mut sim: Simulator<Event> = Simulator::new();
    let mut first_arrival: Option<SimTime> = None;
    for req in RequestStream::poisson(
        cfg.arrival_rate_per_s,
        cfg.prompt_len,
        cfg.new_tokens,
        cfg.seed,
    )
    .take(cfg.requests as usize)
    {
        first_arrival.get_or_insert(req.arrival);
        sim.schedule(req.arrival, Event::Arrival(req));
    }

    let router = cfg.router.build();
    let nq = router.queue_count(n).clamp(1, n);
    let mut obs = ServingTrace::new(cfg.model.name.clone(), cfg.platform.name.clone(), replicas);
    // Every request records at least arrive/admit/first-token/complete;
    // memory pressure adds preempt/resume pairs.
    obs.reserve(cfg.requests, if cfg.kv.is_some() { 6 } else { 4 });
    let mut floor = UnifiedFloor {
        set: ReplicaSet::single_group(cfg.platform.clone(), &cfg.model, n, router),
        policy: cfg.policy.build(),
        queues: (0..nq).map(|_| VecDeque::new()).collect(),
        queue_of: (0..n).map(|r| r.min(nq - 1)).collect(),
        states: (0..n).map(|_| ReplicaState::default()).collect(),
        mem: cfg.kv.map(|kv| MemoryLayer::new(cfg, kv, n)),
        finished: Vec::with_capacity(cfg.requests as usize),
        last_completion: SimTime::ZERO,
        flush: (0..nq).map(|_| FlushTimer::default()).collect(),
        obs: FloorObs::Serve(obs),
        expired_buf: vec![false; nq],
        load_buf: Vec::with_capacity(n),
        scratch_actives: Vec::new(),
        scratch_handoffs: Vec::new(),
        prompt_len: cfg.prompt_len,
        new_tokens: cfg.new_tokens,
        max_batch: 0,
        requests: cfg.requests,
    };

    let aborted = run_unified(
        &mut floor,
        &mut sim,
        stop,
        cfg.slo,
        CostBasis::FixedReplicas(replicas),
    );

    let mut report = assemble_report(
        cfg,
        &floor.finished,
        floor.last_completion,
        first_arrival,
        floor.mem.as_ref(),
    );
    report.aborted = aborted;
    let FloorObs::Serve(trace) = floor.obs else {
        unreachable!("single-node front records a ServingTrace")
    };
    (report, trace)
}

/// Folds the finished set into percentile metrics.
///
/// Total tokens count completed requests only, and an empty finished set
/// yields an all-zero (but well-formed) report rather than a panic.
fn assemble_report(
    cfg: &ServingConfig,
    finished: &[Finished],
    last_completion: SimTime,
    first_arrival: Option<SimTime>,
    mem: Option<&MemoryLayer>,
) -> ServingReport {
    let latencies: Vec<(SimDuration, SimDuration)> =
        finished.iter().map(|f| (f.ttft, f.e2e)).collect();
    let ttfts: Vec<f64> = latencies.iter().map(|(t, _)| t.as_nanos_f64()).collect();
    let e2es: Vec<f64> = latencies.iter().map(|(_, e)| e.as_nanos_f64()).collect();
    let makespan =
        last_completion.saturating_duration_since(first_arrival.unwrap_or(SimTime::ZERO));
    let completed = finished.len() as u32;
    let total_tokens = u64::from(completed) * u64::from(cfg.new_tokens.max(1));
    let throughput_tok_s = if completed == 0 {
        0.0
    } else {
        total_tokens as f64 / makespan.as_secs_f64().max(1e-12)
    };
    let d = |v: f64| SimDuration::from_nanos_f64(v);
    ServingReport {
        completed,
        ttft_p50: d(percentile(&ttfts, 50.0)),
        ttft_p95: d(percentile(&ttfts, 95.0)),
        ttft_p99: d(percentile(&ttfts, 99.0)),
        e2e_p50: d(percentile(&e2es, 50.0)),
        e2e_p95: d(percentile(&e2es, 95.0)),
        throughput_tok_s,
        makespan,
        preemptions: mem.map_or(0, |m| m.counters().preemptions),
        swap_outs: mem.map_or(0, |m| m.counters().swap_outs),
        swapped_bytes: mem.map_or(0, |m| m.counters().swapped_bytes),
        recomputed_tokens: mem.map_or(0, |m| m.counters().recomputed_tokens),
        kv_peak_occupancy: mem.map_or(0.0, MemoryLayer::peak_occupancy),
        slo: SloReport::evaluate(cfg.slo, &latencies, cfg.new_tokens.max(1), makespan),
        aborted: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{KvCacheConfig, Policy, RouterPolicy};
    use crate::latency::LatencyModel;
    use crate::observe::SloTargets;
    use skip_hw::Platform;
    use skip_llm::zoo;
    use skip_mem::{KvSpec, OffloadPolicy};

    fn base_cfg(policy: Policy) -> ServingConfig {
        ServingConfig {
            platform: Platform::intel_h100(),
            model: zoo::gpt2(),
            policy,
            requests: 30,
            arrival_rate_per_s: 20.0,
            prompt_len: 128,
            new_tokens: 4,
            seed: 11,
            kv: None,
            slo: SloTargets::default(),
            router: RouterPolicy::SharedQueue,
        }
    }

    /// A config under enough memory pressure to force preemptions:
    /// Llama-2-7B with ~900-token contexts and a pool that admits two
    /// prompts but cannot hold two full lifetimes. At this context size
    /// the PCIe gen4 swap round-trip (~34 ms) exceeds a re-prefill
    /// (~28 ms) while NVLink-C2C swaps in ~2 ms — the coupling asymmetry
    /// the offload policy is meant to exploit.
    fn pressured_cfg(offload: OffloadPolicy) -> ServingConfig {
        let mut cfg = base_cfg(Policy::Continuous { max_batch: 4 });
        cfg.model = zoo::llama2_7b();
        cfg.requests = 12;
        cfg.arrival_rate_per_s = 50.0;
        cfg.prompt_len = 1024;
        cfg.new_tokens = 128;
        let spec = KvSpec::for_model(&cfg.model, KvSpec::DEFAULT_BLOCK_TOKENS);
        let full = spec.blocks_for(u64::from(cfg.prompt_len) + u64::from(cfg.new_tokens));
        cfg.kv = Some(KvCacheConfig::with_blocks(full * 2 - 2, offload));
        cfg
    }

    #[test]
    fn continuous_serving_completes_every_request() {
        let r = simulate(&base_cfg(Policy::Continuous { max_batch: 8 }));
        assert_eq!(r.completed, 30);
        assert!(r.ttft_p50 > SimDuration::ZERO);
        assert!(r.e2e_p50 >= r.ttft_p50);
        assert!(r.ttft_p95 >= r.ttft_p50);
        assert!(r.throughput_tok_s > 0.0);
        assert_eq!(r.preemptions, 0);
        assert_eq!(r.kv_peak_occupancy, 0.0);
    }

    #[test]
    fn static_serving_completes_every_request() {
        let r = simulate(&base_cfg(Policy::Static {
            batch_size: 8,
            max_wait: SimDuration::from_millis(50),
        }));
        assert_eq!(r.completed, 30);
        assert!(r.e2e_p95 >= r.e2e_p50);
    }

    #[test]
    fn simulation_is_deterministic() {
        let cfg = base_cfg(Policy::Continuous { max_batch: 4 });
        assert_eq!(simulate(&cfg), simulate(&cfg));
        assert_eq!(simulate_replicas(&cfg, 3), simulate_replicas(&cfg, 3));
    }

    #[test]
    fn continuous_batching_beats_static_ttft_under_load() {
        // The vLLM/Orca claim: joining at iteration boundaries avoids
        // waiting for a full static batch.
        let cont = simulate(&base_cfg(Policy::Continuous { max_batch: 8 }));
        let stat = simulate(&base_cfg(Policy::Static {
            batch_size: 8,
            max_wait: SimDuration::from_millis(200),
        }));
        assert!(
            cont.ttft_p95 < stat.ttft_p95,
            "continuous {} vs static {}",
            cont.ttft_p95,
            stat.ttft_p95
        );
    }

    #[test]
    fn higher_load_raises_tail_latency() {
        let mut light = base_cfg(Policy::Continuous { max_batch: 8 });
        light.arrival_rate_per_s = 5.0;
        let mut heavy = light.clone();
        heavy.arrival_rate_per_s = 200.0;
        let l = simulate(&light);
        let h = simulate(&heavy);
        assert!(h.ttft_p95 >= l.ttft_p95);
    }

    #[test]
    fn more_replicas_cut_tail_latency_under_heavy_load() {
        let mut cfg = base_cfg(Policy::Continuous { max_batch: 4 });
        cfg.arrival_rate_per_s = 400.0;
        cfg.requests = 80;
        let one = simulate_replicas(&cfg, 1);
        let four = simulate_replicas(&cfg, 4);
        assert_eq!(four.completed, 80);
        assert!(
            four.ttft_p95 < one.ttft_p95,
            "4 replicas {} vs 1 replica {}",
            four.ttft_p95,
            one.ttft_p95
        );
    }

    #[test]
    fn replicas_also_help_static_batching() {
        let mut cfg = base_cfg(Policy::Static {
            batch_size: 4,
            max_wait: SimDuration::from_millis(20),
        });
        cfg.arrival_rate_per_s = 400.0;
        cfg.requests = 80;
        let one = simulate_replicas(&cfg, 1);
        let four = simulate_replicas(&cfg, 4);
        assert_eq!(four.completed, 80);
        assert!(four.e2e_p95 <= one.e2e_p95);
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn zero_requests_rejected() {
        let mut cfg = base_cfg(Policy::Continuous { max_batch: 1 });
        cfg.requests = 0;
        let _ = simulate(&cfg);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        let _ = simulate_replicas(&base_cfg(Policy::Continuous { max_batch: 1 }), 0);
    }

    #[test]
    #[should_panic(expected = "cannot hold one full request")]
    fn undersized_kv_pool_rejected() {
        let mut cfg = base_cfg(Policy::Continuous { max_batch: 4 });
        cfg.kv = Some(KvCacheConfig::with_blocks(1, OffloadPolicy::Auto));
        let _ = simulate(&cfg);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn bad_arrival_rate_rejected_up_front() {
        // Used to surface as a panic deep inside `RequestStream`; now the
        // validation layer catches it at the entry point.
        let mut cfg = base_cfg(Policy::Continuous { max_batch: 1 });
        cfg.arrival_rate_per_s = 0.0;
        let _ = simulate(&cfg);
    }

    #[test]
    fn roomy_kv_pool_matches_infinite_cache() {
        // A pool big enough for the whole workload never preempts, so the
        // latency metrics must be identical to the unbounded simulation.
        let unbounded = base_cfg(Policy::Continuous { max_batch: 8 });
        let mut bounded = unbounded.clone();
        bounded.kv = Some(KvCacheConfig::with_blocks(1 << 20, OffloadPolicy::Auto));
        let a = simulate(&unbounded);
        let b = simulate(&bounded);
        assert_eq!(b.preemptions, 0);
        assert!(b.kv_peak_occupancy > 0.0);
        assert_eq!(
            (a.ttft_p50, a.e2e_p95, a.makespan),
            (b.ttft_p50, b.e2e_p95, b.makespan)
        );
    }

    #[test]
    fn memory_pressure_forces_preemptions_but_completes() {
        let r = simulate(&pressured_cfg(OffloadPolicy::Auto));
        assert_eq!(r.completed, 12);
        assert!(r.preemptions > 0, "overcommitted pool must preempt");
        assert!(r.kv_peak_occupancy > 0.5);
    }

    #[test]
    fn offload_policies_route_evictions_differently() {
        let swap = simulate(&pressured_cfg(OffloadPolicy::SwapToHost));
        assert!(swap.swap_outs > 0 && swap.swap_outs == swap.preemptions);
        assert_eq!(swap.recomputed_tokens, 0);
        assert!(swap.swapped_bytes > 0);

        let rec = simulate(&pressured_cfg(OffloadPolicy::Recompute));
        assert_eq!(rec.swap_outs, 0);
        assert!(rec.recomputed_tokens > 0);
    }

    #[test]
    fn swap_penalty_follows_the_coupling() {
        // In this engine's calibration a swap round-trip undercuts a full
        // re-prefill everywhere (prefill pays the launch floor plus
        // quadratic attention), so Auto resolves every eviction to a swap —
        // but the *price* of each swap is set by the coupling: ~14x between
        // PCIe gen4 and NVLink-C2C for the same bytes. To isolate that
        // term from platform compute differences, run the same pressured
        // workload on the same platform with only the interconnect
        // replaced, and normalize each variant by its own unpressured
        // makespan (cancelling the launch-path difference the interconnect
        // also carries).
        use skip_hw::Interconnect;
        let slowdown = |interconnect: Interconnect| {
            let mut tight = pressured_cfg(OffloadPolicy::Auto);
            tight.platform = Platform::amd_a100();
            tight.platform.interconnect = interconnect;
            let mut roomy = tight.clone();
            roomy.kv = Some(KvCacheConfig::with_blocks(1 << 20, OffloadPolicy::Auto));
            let t = simulate(&tight);
            let r = simulate(&roomy);
            assert!(t.preemptions > 0, "pressure must preempt");
            assert_eq!(t.swap_outs, t.preemptions, "auto swaps in this regime");
            assert_eq!(r.preemptions, 0, "roomy pool must not preempt");
            t.makespan.as_nanos_f64() / r.makespan.as_nanos_f64()
        };
        let loose = slowdown(Interconnect::pcie_gen4());
        let close = slowdown(Interconnect::nvlink_c2c());
        assert!(
            loose > close,
            "PCIe swaps should hurt more than C2C swaps: {loose:.4} vs {close:.4}"
        );
    }

    #[test]
    fn memory_aware_runs_are_deterministic() {
        let cfg = pressured_cfg(OffloadPolicy::Auto);
        assert_eq!(simulate(&cfg), simulate(&cfg));
        assert_eq!(simulate_replicas(&cfg, 2), simulate_replicas(&cfg, 2));
    }

    #[test]
    fn empty_finished_set_yields_zeroed_report() {
        // Defensive: percentile collection must tolerate zero completions.
        let cfg = base_cfg(Policy::Continuous { max_batch: 1 });
        let r = assemble_report(&cfg, &[], SimTime::ZERO, None, None);
        assert_eq!(r.completed, 0);
        assert_eq!(r.ttft_p99, SimDuration::ZERO);
        assert_eq!(r.throughput_tok_s, 0.0);
        assert_eq!(r.slo.ttft_attainment, 1.0);
    }

    /// Regression for the sliding flush timer: the pre-fix scheduler
    /// re-armed the static-batch timer on every arrival, so under a steady
    /// trickle that never fills the batch the oldest request's wait grew
    /// with the queue. The timer must bound the oldest wait by `max_wait`
    /// plus at most one in-flight job (the replica may be busy when the
    /// deadline hits).
    #[test]
    fn static_oldest_waiter_flushes_within_max_wait() {
        let max_wait = SimDuration::from_millis(50);
        let mut cfg = base_cfg(Policy::Static {
            batch_size: 64, // never fills: every flush is timer-driven
            max_wait,
        });
        cfg.arrival_rate_per_s = 100.0;
        let (_, strace) = simulate_traced(&cfg, 1);
        // Longest a flush can be delayed past the deadline: the job
        // occupying the replica when the timer fires. Bound it by the
        // largest batch this run can form.
        let lat = LatencyModel::new(cfg.platform.clone(), cfg.model.clone());
        let mut job_bound = lat.prefill(cfg.requests, cfg.prompt_len);
        for step in 1..cfg.new_tokens.max(1) {
            job_bound += lat.decode_step(cfg.requests, cfg.prompt_len + step);
        }
        let bound = max_wait + job_bound;
        for lc in &strace.lifecycles {
            let waited = lc
                .admitted_at()
                .expect("all requests admitted")
                .saturating_duration_since(lc.arrived_at().expect("all requests arrived"));
            assert!(
                waited <= bound,
                "request {} waited {waited}, bound {bound}",
                lc.id
            );
        }
    }

    /// Regression for the zero-arrival-stream flush interaction: a static
    /// batch holding one lone straggler — the stream ends and the batch
    /// can never fill — must still flush exactly when the configured
    /// timeout expires, not hang waiting for more arrivals.
    #[test]
    fn static_lone_straggler_flushes_at_timeout() {
        let max_wait = SimDuration::from_millis(40);
        let mut cfg = base_cfg(Policy::Static {
            batch_size: 8,
            max_wait,
        });
        cfg.requests = 1;
        let (report, strace) = simulate_traced(&cfg, 1);
        assert_eq!(report.completed, 1);
        let lc = &strace.lifecycles[0];
        let waited = lc
            .admitted_at()
            .expect("straggler admitted")
            .saturating_duration_since(lc.arrived_at().expect("straggler arrived"));
        assert_eq!(
            waited, max_wait,
            "lone straggler must flush exactly at the timeout"
        );
    }

    #[test]
    fn counters_conserve_requests_at_every_sample() {
        for cfg in [
            base_cfg(Policy::Continuous { max_batch: 8 }),
            base_cfg(Policy::Static {
                batch_size: 8,
                max_wait: SimDuration::from_millis(50),
            }),
            base_cfg(Policy::ChunkedPrefill {
                max_batch: 8,
                chunk_tokens: 64,
            }),
            pressured_cfg(OffloadPolicy::Auto),
        ] {
            let (report, strace) = simulate_traced(&cfg, 2);
            assert_eq!(report.completed, cfg.requests);
            assert!(!strace.samples.is_empty());
            assert!(strace.conserves_requests(), "violated for {:?}", cfg.policy);
        }
    }

    #[test]
    fn lifecycles_agree_with_the_scalar_report() {
        let cfg = pressured_cfg(OffloadPolicy::Auto);
        let (report, strace) = simulate_traced(&cfg, 1);
        assert_eq!(strace.lifecycles.len() as u32, cfg.requests);
        assert_eq!(strace.completed_total(), report.completed);
        let preemptions: usize = strace.lifecycles.iter().map(|lc| lc.preemptions()).sum();
        assert_eq!(preemptions as u64, report.preemptions);
        // Per-request latencies reproduce the report percentiles.
        let mut e2es: Vec<f64> = strace
            .lifecycles
            .iter()
            .map(|lc| lc.e2e().expect("completed").as_nanos_f64())
            .collect();
        e2es.sort_by(f64::total_cmp);
        assert_eq!(
            SimDuration::from_nanos_f64(percentile(&e2es, 50.0)),
            report.e2e_p50
        );
    }

    #[test]
    fn serving_trace_round_trips_through_chrome_format() {
        let cfg = pressured_cfg(OffloadPolicy::Auto);
        let (_, strace) = simulate_traced(&cfg, 1);
        let t = strace.to_trace();
        t.validate().expect("exported trace must validate");
        assert!(!t.cpu_ops().is_empty(), "lifecycle slices present");
        assert!(!t.counters().is_empty(), "counter tracks present");
        assert!(!t.launches().is_empty(), "preempt→resume flows present");
        let json = skip_trace::chrome::to_chrome_trace(&t);
        let back = skip_trace::chrome::from_chrome_trace(&json).expect("import");
        assert_eq!(back.cpu_ops().len(), t.cpu_ops().len());
        assert_eq!(back.counters().len(), t.counters().len());
        assert_eq!(back.kernels().len(), t.kernels().len());
    }

    #[test]
    fn slo_report_reflects_configured_targets() {
        let mut cfg = base_cfg(Policy::Continuous { max_batch: 8 });
        cfg.slo = SloTargets {
            ttft: Some(SimDuration::from_secs(3600)),
            e2e: Some(SimDuration::from_secs(3600)),
        };
        let generous = simulate(&cfg);
        assert_eq!(generous.slo.slo_completions, generous.completed);
        assert_eq!(generous.slo.ttft_attainment, 1.0);
        assert!(generous.slo.goodput_tok_s > 0.0);

        cfg.slo = SloTargets {
            ttft: Some(SimDuration::from_nanos(1)),
            e2e: None,
        };
        let strict = simulate(&cfg);
        assert_eq!(strict.slo.slo_completions, 0);
        assert_eq!(strict.slo.goodput_req_s, 0.0);
        assert_eq!(strict.slo.e2e_attainment, 1.0, "unset target is vacuous");
    }

    #[test]
    fn chunked_prefill_completes_and_is_deterministic() {
        let mut cfg = base_cfg(Policy::ChunkedPrefill {
            max_batch: 8,
            chunk_tokens: 64,
        });
        cfg.prompt_len = 160; // 3 chunks per prompt
        let r = simulate(&cfg);
        assert_eq!(r.completed, 30);
        assert!(r.ttft_p50 > SimDuration::ZERO);
        assert!(r.e2e_p50 >= r.ttft_p50);
        assert_eq!(simulate(&cfg), simulate(&cfg));
        assert_eq!(simulate_replicas(&cfg, 4).completed, 30);
    }

    /// Chunking splits each prompt's prefill across several iterations, so
    /// the same workload must produce strictly more iteration boundaries
    /// (counter samples) than whole-prompt continuous batching.
    #[test]
    fn chunked_prefill_runs_more_iterations_than_continuous() {
        let mut chunked = base_cfg(Policy::ChunkedPrefill {
            max_batch: 4,
            chunk_tokens: 128,
        });
        chunked.prompt_len = 512; // 4 chunks per prompt
        let mut cont = chunked.clone();
        cont.policy = Policy::Continuous { max_batch: 4 };
        let (rc, tc) = simulate_traced(&chunked, 1);
        let (rn, tn) = simulate_traced(&cont, 1);
        assert_eq!(rc.completed, rn.completed);
        assert!(
            tc.samples.len() > tn.samples.len(),
            "chunked {} samples vs continuous {}",
            tc.samples.len(),
            tn.samples.len()
        );
    }

    #[test]
    fn chunked_prefill_survives_memory_pressure() {
        let mut cfg = pressured_cfg(OffloadPolicy::Auto);
        cfg.policy = Policy::ChunkedPrefill {
            max_batch: 4,
            chunk_tokens: 256,
        };
        let r = simulate(&cfg);
        assert_eq!(r.completed, 12);
        assert!(r.kv_peak_occupancy > 0.5);
        assert_eq!(simulate(&cfg), simulate(&cfg));
        let (_, strace) = simulate_traced(&cfg, 2);
        assert!(strace.conserves_requests());
    }

    #[test]
    fn partitioned_routers_complete_and_stay_deterministic() {
        for router in [RouterPolicy::RoundRobin, RouterPolicy::JoinShortestQueue] {
            let mut cfg = base_cfg(Policy::Continuous { max_batch: 4 });
            cfg.router = router;
            cfg.arrival_rate_per_s = 200.0;
            cfg.requests = 60;
            let r = simulate_replicas(&cfg, 4);
            assert_eq!(r.completed, 60, "{router}");
            assert_eq!(simulate_replicas(&cfg, 4), simulate_replicas(&cfg, 4));
            let (_, strace) = simulate_traced(&cfg, 4);
            assert!(strace.conserves_requests(), "{router}");
        }
    }

    #[test]
    fn single_replica_routers_agree_with_shared_queue() {
        // With one replica there is nothing to route: every policy
        // degenerates to the shared queue and must price identically.
        let shared = base_cfg(Policy::Continuous { max_batch: 4 });
        for router in [RouterPolicy::RoundRobin, RouterPolicy::JoinShortestQueue] {
            let mut cfg = shared.clone();
            cfg.router = router;
            assert_eq!(simulate(&cfg), simulate(&shared), "{router}");
        }
    }
}
