//! # skip-serve — online serving simulation
//!
//! The paper's batch-size story is ultimately about *serving*: §II-A frames
//! everything in user-visible latency under ~200 ms SLOs, cites vLLM's
//! continuous batching and Orca's iteration-level scheduling, and concludes
//! that each application–system pair has a balanced batch-size region.
//! This crate closes that loop: it simulates an online serving endpoint —
//! Poisson request arrivals, a batching policy, the platform executing each
//! iteration at the cost the `skip-runtime` engine reports — and measures
//! what the user actually sees: TTFT/end-to-end percentiles and sustained
//! throughput as functions of offered load.
//!
//! The simulator is layered: a slim DES core (the *floor*) dispatches
//! events and prices iterations via the [`LatencyModel`], while every
//! scheduling decision flows through three seams — a `BatchPolicy` (which
//! requests run next iteration: [`Policy`]), a `Router` (which replica an
//! arrival joins: [`RouterPolicy`]), and a memory layer wrapping the
//! `skip-mem` paged KV-cache ([`KvCacheConfig`]). New policies plug into
//! the seams without touching the event loop.
//!
//! Components:
//!
//! * [`RequestStream`] — seeded Poisson arrivals with configurable prompt
//!   and output lengths.
//! * [`LatencyModel`] — memoized per-iteration latencies from the engine
//!   (prefill and decode, bucketed by batch size and context length).
//! * [`Policy`] — static batching (collect B requests or time out),
//!   continuous iteration-level batching, or chunked prefill
//!   (fixed-token prompt chunks co-scheduled with decode steps).
//! * [`RouterPolicy`] — multi-replica dispatch: one shared queue,
//!   round-robin dealing, or join-shortest-queue.
//! * [`KvCacheConfig`] — optional paged KV-cache budget (from `skip-mem`);
//!   when set, iteration-level batching becomes memory-aware: admission
//!   reserves prompt blocks, decode grows tables, and exhaustion preempts
//!   the newest request, resolving each victim by recompute or
//!   coupling-priced swap-to-host.
//! * [`ServingConfig::validate`] — up-front configuration checking with
//!   actionable [`ConfigError`]s; the `simulate*` entry points panic on
//!   invalid configs, so graceful front ends validate first.
//! * [`simulate`] — the discrete-event serving loop, returning a
//!   [`ServingReport`] of latency percentiles, throughput, memory-pressure
//!   counters, and SLO attainment.
//! * [`simulate_traced`] — the same loop, additionally returning the full
//!   [`ServingTrace`] observability recording: per-request lifecycle
//!   records, counter tracks sampled at iteration boundaries, all
//!   exportable to the Perfetto/Chrome timeline via `skip-trace`.
//!
//! # Example
//!
//! ```
//! use skip_des::SimDuration;
//! use skip_hw::Platform;
//! use skip_llm::zoo;
//! use skip_serve::{simulate_traced, Policy, RouterPolicy, ServingConfig, SloTargets};
//!
//! let (report, trace) = simulate_traced(
//!     &ServingConfig {
//!         platform: Platform::gh200(),
//!         model: zoo::gpt2(),
//!         policy: Policy::Continuous { max_batch: 16 },
//!         requests: 40,
//!         arrival_rate_per_s: 20.0,
//!         prompt_len: 128,
//!         new_tokens: 8,
//!         seed: 7,
//!         kv: None, // infinite KV cache; Some(..) bounds it
//!         slo: SloTargets {
//!             ttft: Some(SimDuration::from_millis(200)),
//!             e2e: None,
//!         },
//!         router: RouterPolicy::SharedQueue,
//!     },
//!     1,
//! );
//! assert_eq!(report.completed, 40);
//! assert!(report.ttft_p50.as_millis_f64() > 0.0);
//! assert!(report.slo.ttft_attainment > 0.0);
//! assert_eq!(trace.lifecycles.len(), 40);
//! assert!(trace.conserves_requests());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod fleet;
mod floor;
mod latency;
#[cfg(test)]
mod legacy;
mod memctx;
mod observe;
mod policy;
mod request;
mod router;
mod stop;
mod unified;

pub use config::{ConfigError, KvCacheConfig, Policy, RouterPolicy, ServingConfig};
pub use fleet::{
    simulate_fleet, simulate_fleet_bounded, simulate_fleet_traced, ArrivalProcess, AutoscaleConfig,
    FleetBatchPolicy, FleetConfig, FleetError, FleetReport, FleetRouterPolicy, FleetSample,
    FleetSpec, FleetTrace, PlanCandidate, PlanError, PlanOutcome, PlanSweep, PlannerConfig,
    PoolRole, ReplicaGroup, Resolution, ScaleAction, ScalingEvent, SweepBounds, SweepStats,
    TrafficEnvelope,
};
pub use floor::{
    simulate, simulate_replicas, simulate_replicas_bounded, simulate_traced, ServingReport,
};
pub use latency::LatencyModel;
pub use observe::{
    CounterSample, LifecycleEvent, LifecycleKind, RequestLifecycle, ResumeAction, ServingTrace,
    SloReport, SloTargets,
};
pub use request::{Request, RequestStream};
pub use router::{ReplicaLoad, Router};
pub use skip_mem::OffloadPolicy;
pub use stop::{allowed_misses, StopCondition};
