//! Memoized per-iteration latencies from the execution engine.
//!
//! A serving simulation executes thousands of scheduler iterations; running
//! the full operator-graph simulation for each would be wasteful when the
//! result is fully determined by (phase, batch size, context length). This
//! model buckets context lengths to powers of two and memoizes engine runs
//! per (phase, batch, bucket).

use std::cell::RefCell;
use std::collections::BTreeMap;

use skip_des::{SimDuration, SimTime};
use skip_hw::Platform;
use skip_llm::{ModelConfig, Phase, Workload};
use skip_runtime::{Engine, ExecMode};
use skip_trace::Trace;

/// Memoizing wrapper around [`Engine`] for serving simulations.
#[derive(Debug)]
pub struct LatencyModel {
    engine: Engine,
    model: ModelConfig,
    cache: RefCell<BTreeMap<(u8, u32, u32), SimDuration>>,
}

fn latency(trace: &Trace) -> SimDuration {
    let first = trace
        .cpu_ops()
        .iter()
        .map(|o| o.begin)
        .min()
        .unwrap_or(SimTime::ZERO);
    match trace.kernels().iter().map(|k| k.end).max() {
        Some(end) => end.saturating_duration_since(first),
        None => trace.span(),
    }
}

fn bucket(len: u32) -> u32 {
    len.max(1).next_power_of_two()
}

impl LatencyModel {
    /// Creates a latency model for `model` on `platform`.
    #[must_use]
    pub fn new(platform: Platform, model: ModelConfig) -> Self {
        LatencyModel {
            engine: Engine::new(platform),
            model,
            cache: RefCell::new(BTreeMap::new()),
        }
    }

    /// The model being served.
    #[must_use]
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// Latency of a prefill pass over `prompt_len` tokens at `batch`.
    #[must_use]
    pub fn prefill(&self, batch: u32, prompt_len: u32) -> SimDuration {
        self.cached(0, batch, bucket(prompt_len), || {
            Workload::new(
                self.model.clone(),
                Phase::Prefill,
                batch,
                bucket(prompt_len),
            )
        })
    }

    /// Latency of one decode step at `batch` with `ctx` cached tokens.
    #[must_use]
    pub fn decode_step(&self, batch: u32, ctx: u32) -> SimDuration {
        self.cached(1, batch, bucket(ctx), || {
            Workload::new(
                self.model.clone(),
                Phase::DecodeStep {
                    past_len: bucket(ctx),
                },
                batch,
                bucket(ctx),
            )
        })
    }

    /// Number of distinct engine runs performed so far.
    #[must_use]
    pub fn cache_entries(&self) -> usize {
        self.cache.borrow().len()
    }

    fn cached<F: FnOnce() -> Workload>(
        &self,
        phase: u8,
        batch: u32,
        len: u32,
        wl: F,
    ) -> SimDuration {
        let key = (phase, batch, len);
        if let Some(&d) = self.cache.borrow().get(&key) {
            return d;
        }
        let d = latency(&self.engine.run(&wl(), ExecMode::Eager));
        self.cache.borrow_mut().insert(key, d);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skip_llm::zoo;

    #[test]
    fn memoization_hits_after_first_run() {
        let m = LatencyModel::new(Platform::intel_h100(), zoo::gpt2());
        let a = m.prefill(2, 100); // buckets to 128
        assert_eq!(m.cache_entries(), 1);
        let b = m.prefill(2, 128);
        assert_eq!(m.cache_entries(), 1, "bucketed to the same entry");
        assert_eq!(a, b);
        let _ = m.decode_step(2, 128);
        assert_eq!(m.cache_entries(), 2);
    }

    #[test]
    fn decode_steps_are_cheaper_than_prefill() {
        let m = LatencyModel::new(Platform::gh200(), zoo::gpt2());
        assert!(m.decode_step(4, 512) < m.prefill(4, 512));
    }

    #[test]
    fn bucket_rounds_up_to_power_of_two() {
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(100), 128);
        assert_eq!(bucket(128), 128);
        assert_eq!(bucket(129), 256);
        assert_eq!(bucket(0), 1);
    }
}
