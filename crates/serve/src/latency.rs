//! Memoized per-iteration latencies from the execution engine.
//!
//! A serving simulation executes thousands of scheduler iterations; running
//! the full operator-graph simulation for each would be wasteful when the
//! result is fully determined by (phase, batch size, context length). This
//! model memoizes engine runs at power-of-two context lengths and prices an
//! arbitrary length by interpolating linearly between the two surrounding
//! memoized runs, so the charged latency is monotone in the actual length
//! instead of jumping to the next bucket's price (a 520-token prompt used
//! to be charged as 1024 tokens — up to ~2× TTFT error that also corrupted
//! the recompute-vs-swap break-even of the offload policy).

use std::collections::BTreeMap;
use std::sync::Mutex;

use skip_des::{SimDuration, SimTime};
use skip_hw::Platform;
use skip_llm::{ModelConfig, Phase, Workload};
use skip_runtime::{Engine, ExecMode};
use skip_trace::Trace;

/// Memoizing wrapper around [`Engine`] for serving simulations.
///
/// The memo is behind a [`Mutex`] (not a `RefCell`) so a `LatencyModel` is
/// `Sync` and one instance can serve concurrent sweep workers. Engine runs
/// happen outside the lock; two workers racing on the same cold key both
/// compute the same deterministic value, and the second insert is a no-op.
#[derive(Debug)]
pub struct LatencyModel {
    engine: Engine,
    model: ModelConfig,
    cache: Mutex<BTreeMap<(u8, u32, u32), SimDuration>>,
}

fn latency(trace: &Trace) -> SimDuration {
    let first = trace
        .cpu_ops()
        .iter()
        .map(|o| o.begin)
        .min()
        .unwrap_or(SimTime::ZERO);
    match trace.kernels().iter().map(|k| k.end).max() {
        Some(end) => end.saturating_duration_since(first),
        None => trace.span(),
    }
}

fn bucket(len: u32) -> u32 {
    len.max(1).next_power_of_two()
}

impl LatencyModel {
    /// Creates a latency model for `model` on `platform`.
    #[must_use]
    pub fn new(platform: Platform, model: ModelConfig) -> Self {
        LatencyModel {
            engine: Engine::new(platform),
            model,
            cache: Mutex::new(BTreeMap::new()),
        }
    }

    /// The model being served.
    #[must_use]
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// Latency of a prefill pass over `prompt_len` tokens at `batch`.
    ///
    /// Interpolated between the surrounding power-of-two engine runs, so
    /// the price is monotone in `prompt_len` (exact at powers of two).
    #[must_use]
    pub fn prefill(&self, batch: u32, prompt_len: u32) -> SimDuration {
        self.interpolated(0, batch, prompt_len, |len| {
            Workload::new(self.model.clone(), Phase::Prefill, batch, len)
        })
    }

    /// Latency of one decode step at `batch` with `ctx` cached tokens.
    ///
    /// Interpolated between the surrounding power-of-two engine runs, so
    /// the price is monotone in `ctx` (exact at powers of two).
    #[must_use]
    pub fn decode_step(&self, batch: u32, ctx: u32) -> SimDuration {
        self.interpolated(1, batch, ctx, |len| {
            Workload::new(
                self.model.clone(),
                Phase::DecodeStep { past_len: len },
                batch,
                len,
            )
        })
    }

    /// Number of distinct engine runs performed so far.
    #[must_use]
    pub fn cache_entries(&self) -> usize {
        self.cache.lock().expect("latency cache poisoned").len()
    }

    /// Prices `len` by linear interpolation between the memoized engine
    /// runs at the surrounding powers of two (one run when `len` is itself
    /// a power of two).
    fn interpolated<F: Fn(u32) -> Workload>(
        &self,
        phase: u8,
        batch: u32,
        len: u32,
        wl: F,
    ) -> SimDuration {
        let len = len.max(1);
        let hi = bucket(len);
        if hi == len {
            return self.cached(phase, batch, hi, &wl);
        }
        let lo = hi / 2;
        let d_lo = self.cached(phase, batch, lo, &wl).as_nanos_f64();
        let d_hi = self.cached(phase, batch, hi, &wl).as_nanos_f64();
        let frac = f64::from(len - lo) / f64::from(hi - lo);
        SimDuration::from_nanos_f64(d_lo + (d_hi - d_lo) * frac)
    }

    fn cached<F: Fn(u32) -> Workload>(
        &self,
        phase: u8,
        batch: u32,
        len: u32,
        wl: F,
    ) -> SimDuration {
        let key = (phase, batch, len);
        if let Some(&d) = self.cache.lock().expect("latency cache poisoned").get(&key) {
            return d;
        }
        // Compute outside the lock: an engine run is milliseconds of work
        // and the result is deterministic, so a racing duplicate is benign.
        let d = latency(&self.engine.run(&wl(len), ExecMode::Eager));
        self.cache
            .lock()
            .expect("latency cache poisoned")
            .insert(key, d);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skip_llm::zoo;

    #[test]
    fn memoization_hits_after_first_run() {
        let m = LatencyModel::new(Platform::intel_h100(), zoo::gpt2());
        let a = m.prefill(2, 128); // exact power of two: one engine run
        assert_eq!(m.cache_entries(), 1);
        let b = m.prefill(2, 100); // interpolates between 64 and 128
        assert_eq!(m.cache_entries(), 2, "only the 64-run is new");
        assert!(b < a, "interpolated 100 must undercut the 128 run");
        let c = m.prefill(2, 100);
        assert_eq!(m.cache_entries(), 2, "repeat lengths hit the memo");
        assert_eq!(b, c);
        let _ = m.decode_step(2, 128);
        assert_eq!(m.cache_entries(), 3);
    }

    /// Regression test for the power-of-two overcharge: a 520-token prompt
    /// used to be priced as a 1024-token one. The charge must now sit
    /// strictly between the surrounding bucket runs and be monotone in the
    /// actual prompt length.
    #[test]
    fn charged_latency_is_monotone_in_prompt_length() {
        let m = LatencyModel::new(Platform::intel_h100(), zoo::gpt2());
        let at_512 = m.prefill(1, 512);
        let at_520 = m.prefill(1, 520);
        let at_1024 = m.prefill(1, 1024);
        assert!(
            at_520 > at_512 && at_520 < at_1024,
            "520 tokens must price between the 512 and 1024 runs, \
             got {at_512} / {at_520} / {at_1024}"
        );
        let lens = [1u32, 37, 64, 100, 128, 129, 200, 512, 520, 900, 1024];
        let mut prev = SimDuration::ZERO;
        for len in lens {
            let d = m.prefill(1, len);
            assert!(d >= prev, "prefill({len}) = {d} undercuts {prev}");
            prev = d;
        }
        let mut prev = SimDuration::ZERO;
        for len in lens {
            let d = m.decode_step(1, len);
            assert!(d >= prev, "decode_step({len}) = {d} undercuts {prev}");
            prev = d;
        }
    }

    #[test]
    fn decode_steps_are_cheaper_than_prefill() {
        let m = LatencyModel::new(Platform::gh200(), zoo::gpt2());
        assert!(m.decode_step(4, 512) < m.prefill(4, 512));
    }

    #[test]
    fn bucket_rounds_up_to_power_of_two() {
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(100), 128);
        assert_eq!(bucket(128), 128);
        assert_eq!(bucket(129), 256);
        assert_eq!(bucket(0), 1);
    }
}
