//! Memoized per-iteration latencies from the execution engine.
//!
//! A serving simulation executes thousands of scheduler iterations; running
//! the full operator-graph simulation for each would be wasteful when the
//! result is fully determined by (phase, batch size, context length). This
//! model memoizes engine runs at power-of-two context lengths and prices an
//! arbitrary length by interpolating linearly between the two surrounding
//! memoized runs, so the charged latency is monotone in the actual length
//! instead of jumping to the next bucket's price (a 520-token prompt used
//! to be charged as 1024 tokens — up to ~2× TTFT error that also corrupted
//! the recompute-vs-swap break-even of the offload policy).
//!
//! Cold keys are priced through [`Engine::run_summary`] — the engine run
//! aggregates in place instead of materializing a trace that would be
//! reduced to one number and dropped — and are *single-flight*: each key
//! owns a [`OnceLock`] cell, so concurrent sweep workers racing on the same
//! cold key perform exactly one engine run between them (the losers block
//! on the cell instead of burning milliseconds on a duplicate simulation).
//!
//! On top of the per-instance memo sits a process-global *priced-pattern
//! table*: the serving analogue of the engine's periodic-layer trick. A
//! batch's price is fully determined by its shape signature — the canonical
//! serialization of (platform, model) — plus (phase, batch, bucketed
//! length); nothing else about a serving simulation reaches the engine. So
//! when one floor (or one sweep configuration, or one fleet replica) has
//! already priced a pattern, every later [`LatencyModel`] over the same
//! signature resolves it by table lookup instead of re-simulating. The
//! signature is the *full* serialized string, not a hash of it, so distinct
//! platforms or models can never collide into each other's prices.
//! [`LatencyModel::isolated`] opts out of the shared table for callers
//! (and tests) that need per-instance engine-run accounting.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use skip_des::SimDuration;
#[cfg(test)]
use skip_des::SimTime;
use skip_hw::Platform;
use skip_llm::{ModelConfig, Phase, Workload};
use skip_runtime::{Engine, ExecMode};
#[cfg(test)]
use skip_trace::Trace;

/// Single-flight cell map: each key owns a lazily-filled latency cell.
type KeyCells = BTreeMap<(u8, u32, u32), Arc<OnceLock<SimDuration>>>;

/// A priced-pattern key: shape signature (canonical platform + model
/// serialization) plus the serving key. The signature `Arc` is shared by
/// every key of one model, so the per-key cost is one pointer, not a
/// string copy.
type PatternKey = (Arc<str>, u8, u32, u32);

/// One shard of the process-global priced-pattern table.
type PatternShard = Mutex<HashMap<PatternKey, Arc<OnceLock<SimDuration>>>>;

/// The process-global priced-pattern table, sharded like the per-instance
/// memo so concurrent floors touching different keys rarely contend.
fn pattern_table() -> &'static [PatternShard; CACHE_SHARDS] {
    static TABLE: OnceLock<[PatternShard; CACHE_SHARDS]> = OnceLock::new();
    TABLE.get_or_init(|| std::array::from_fn(|_| Mutex::new(HashMap::new())))
}

/// Number of independent key-map shards. A power of two so the shard
/// selector is a mask; 16 is comfortably above any sweep's worker count,
/// so two workers only contend when their keys land in the same shard.
const CACHE_SHARDS: usize = 16;

/// Memoizing wrapper around [`Engine`] for serving simulations.
///
/// The key map is split into [`CACHE_SHARDS`] independently-locked shards
/// (selected by a mix of the key's fields) so a `LatencyModel` is `Sync`
/// and concurrent sweep workers touching *different* keys rarely contend
/// on the same `Mutex` — the former single map made every lookup serialize
/// on one lock. Each shard lock is still taken exactly once per call, only
/// to resolve the key to its cell; engine runs happen outside it, inside
/// the key's [`OnceLock`], preserving the single-flight guarantee.
#[derive(Debug)]
pub struct LatencyModel {
    engine: Engine,
    model: ModelConfig,
    shards: [Mutex<KeyCells>; CACHE_SHARDS],
    engine_runs: AtomicU64,
    pattern_hits: AtomicU64,
    /// Shape signature for the shared pattern table; `None` opts out
    /// ([`LatencyModel::isolated`]).
    signature: Option<Arc<str>>,
}

/// Inference latency of one trace (Eq. 4: last kernel end − first operator
/// begin). The latency model itself prices through the summary sink; this
/// reduction is kept as the reference the summary path is asserted against.
#[cfg(test)]
fn latency(trace: &Trace) -> SimDuration {
    let first = trace
        .cpu_ops()
        .iter()
        .map(|o| o.begin)
        .min()
        .unwrap_or(SimTime::ZERO);
    match trace.kernels().iter().map(|k| k.end).max() {
        Some(end) => end.saturating_duration_since(first),
        None => trace.span(),
    }
}

fn bucket(len: u32) -> u32 {
    len.max(1).next_power_of_two()
}

/// Shard index for a cache key: a Fibonacci-style multiplicative mix of
/// the fields, masked down to [`CACHE_SHARDS`]. The bucketed lengths are
/// powers of two, so hashing (rather than e.g. `len % SHARDS`) is what
/// actually spreads neighbouring keys across shards.
fn shard_of(key: (u8, u32, u32)) -> usize {
    let (phase, batch, len) = key;
    let mut h = u64::from(phase) ^ (u64::from(batch) << 8) ^ (u64::from(len) << 40);
    h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 57) as usize) & (CACHE_SHARDS - 1)
}

impl LatencyModel {
    /// Creates a latency model for `model` on `platform`.
    ///
    /// Prices resolve through the process-global priced-pattern table:
    /// keys another model over the same (platform, model) signature has
    /// already priced are looked up instead of re-simulated. Use
    /// [`LatencyModel::isolated`] to opt out.
    #[must_use]
    pub fn new(platform: Platform, model: ModelConfig) -> Self {
        let sig = serde_json::to_string(&(&platform, &model))
            .expect("platform and model serialize")
            .into();
        Self::with_signature(platform, model, Some(sig))
    }

    /// Creates a latency model that does *not* share the process-global
    /// pattern table: every cold key runs the engine in this instance,
    /// and [`engine_runs`](Self::engine_runs) counts them exactly.
    #[must_use]
    pub fn isolated(platform: Platform, model: ModelConfig) -> Self {
        Self::with_signature(platform, model, None)
    }

    fn with_signature(platform: Platform, model: ModelConfig, signature: Option<Arc<str>>) -> Self {
        LatencyModel {
            engine: Engine::new(platform),
            model,
            shards: std::array::from_fn(|_| Mutex::new(BTreeMap::new())),
            engine_runs: AtomicU64::new(0),
            pattern_hits: AtomicU64::new(0),
            signature,
        }
    }

    /// The model being served.
    #[must_use]
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// Latency of a prefill pass over `prompt_len` tokens at `batch`.
    ///
    /// Interpolated between the surrounding power-of-two engine runs, so
    /// the price is monotone in `prompt_len` (exact at powers of two).
    #[must_use]
    pub fn prefill(&self, batch: u32, prompt_len: u32) -> SimDuration {
        self.interpolated(0, batch, prompt_len, |len| {
            Workload::new(self.model.clone(), Phase::Prefill, batch, len)
        })
    }

    /// Latency of one decode step at `batch` with `ctx` cached tokens.
    ///
    /// Interpolated between the surrounding power-of-two engine runs, so
    /// the price is monotone in `ctx` (exact at powers of two).
    #[must_use]
    pub fn decode_step(&self, batch: u32, ctx: u32) -> SimDuration {
        self.interpolated(1, batch, ctx, |len| {
            Workload::new(
                self.model.clone(),
                Phase::DecodeStep { past_len: len },
                batch,
                len,
            )
        })
    }

    /// Number of distinct keys priced so far, summed over all shards.
    #[must_use]
    pub fn cache_entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("latency cache poisoned").len())
            .sum()
    }

    /// Number of engine runs actually performed *by this instance*. For an
    /// [`isolated`](Self::isolated) model, single-flight coalescing makes
    /// this equal [`cache_entries`](Self::cache_entries) no matter how many
    /// workers raced on the same cold keys; a sharing model may run fewer —
    /// keys already in the pattern table cost no engine run at all.
    #[must_use]
    pub fn engine_runs(&self) -> u64 {
        self.engine_runs.load(Ordering::Relaxed)
    }

    /// Number of cold keys this instance resolved from the process-global
    /// priced-pattern table instead of running the engine. Always zero for
    /// an [`isolated`](Self::isolated) model.
    #[must_use]
    pub fn pattern_hits(&self) -> u64 {
        self.pattern_hits.load(Ordering::Relaxed)
    }

    /// Prices `len` by linear interpolation between the memoized engine
    /// runs at the surrounding powers of two (one run when `len` is itself
    /// a power of two).
    fn interpolated<F: Fn(u32) -> Workload>(
        &self,
        phase: u8,
        batch: u32,
        len: u32,
        wl: F,
    ) -> SimDuration {
        let len = len.max(1);
        let hi = bucket(len);
        if hi == len {
            return self.cached(phase, batch, hi, &wl);
        }
        let lo = hi / 2;
        let d_lo = self.cached(phase, batch, lo, &wl).as_nanos_f64();
        let d_hi = self.cached(phase, batch, hi, &wl).as_nanos_f64();
        let frac = f64::from(len - lo) / f64::from(hi - lo);
        SimDuration::from_nanos_f64(d_lo + (d_hi - d_lo) * frac)
    }

    fn cached<F: Fn(u32) -> Workload>(
        &self,
        phase: u8,
        batch: u32,
        len: u32,
        wl: F,
    ) -> SimDuration {
        let key = (phase, batch, len);
        // One shard-lock acquisition resolves the key to its cell; cloning
        // the Arc lets the lock drop before any simulation work starts.
        let cell = Arc::clone(
            self.shards[shard_of(key)]
                .lock()
                .expect("latency cache poisoned")
                .entry(key)
                .or_default(),
        );
        *cell.get_or_init(|| match &self.signature {
            // Shared: resolve through the priced-pattern table. The key's
            // pattern cell is itself single-flight, so racing *instances*
            // (not just racing workers of one instance) coalesce onto one
            // engine run per (signature, key) process-wide.
            Some(sig) => {
                let pattern = Arc::clone(
                    pattern_table()[shard_of(key)]
                        .lock()
                        .expect("pattern table poisoned")
                        .entry((Arc::clone(sig), phase, batch, len))
                        .or_default(),
                );
                let mut ran = false;
                let priced = *pattern.get_or_init(|| {
                    ran = true;
                    self.engine_runs.fetch_add(1, Ordering::Relaxed);
                    self.engine.run_summary(&wl(len), ExecMode::Eager).latency()
                });
                if !ran {
                    self.pattern_hits.fetch_add(1, Ordering::Relaxed);
                }
                priced
            }
            None => {
                self.engine_runs.fetch_add(1, Ordering::Relaxed);
                self.engine.run_summary(&wl(len), ExecMode::Eager).latency()
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skip_llm::zoo;

    #[test]
    fn memoization_hits_after_first_run() {
        // Isolated: the engine-run counts below must not depend on what
        // other tests have already fed the shared pattern table.
        let m = LatencyModel::isolated(Platform::intel_h100(), zoo::gpt2());
        let a = m.prefill(2, 128); // exact power of two: one engine run
        assert_eq!(m.cache_entries(), 1);
        let b = m.prefill(2, 100); // interpolates between 64 and 128
        assert_eq!(m.cache_entries(), 2, "only the 64-run is new");
        assert!(b < a, "interpolated 100 must undercut the 128 run");
        let c = m.prefill(2, 100);
        assert_eq!(m.cache_entries(), 2, "repeat lengths hit the memo");
        assert_eq!(b, c);
        let _ = m.decode_step(2, 128);
        assert_eq!(m.cache_entries(), 3);
        assert_eq!(m.engine_runs(), 3, "one engine run per distinct key");
    }

    /// Regression test for the power-of-two overcharge: a 520-token prompt
    /// used to be priced as a 1024-token one. The charge must now sit
    /// strictly between the surrounding bucket runs and be monotone in the
    /// actual prompt length.
    #[test]
    fn charged_latency_is_monotone_in_prompt_length() {
        let m = LatencyModel::new(Platform::intel_h100(), zoo::gpt2());
        let at_512 = m.prefill(1, 512);
        let at_520 = m.prefill(1, 520);
        let at_1024 = m.prefill(1, 1024);
        assert!(
            at_520 > at_512 && at_520 < at_1024,
            "520 tokens must price between the 512 and 1024 runs, \
             got {at_512} / {at_520} / {at_1024}"
        );
        let lens = [1u32, 37, 64, 100, 128, 129, 200, 512, 520, 900, 1024];
        let mut prev = SimDuration::ZERO;
        for len in lens {
            let d = m.prefill(1, len);
            assert!(d >= prev, "prefill({len}) = {d} undercuts {prev}");
            prev = d;
        }
        let mut prev = SimDuration::ZERO;
        for len in lens {
            let d = m.decode_step(1, len);
            assert!(d >= prev, "decode_step({len}) = {d} undercuts {prev}");
            prev = d;
        }
    }

    #[test]
    fn decode_steps_are_cheaper_than_prefill() {
        let m = LatencyModel::new(Platform::gh200(), zoo::gpt2());
        assert!(m.decode_step(4, 512) < m.prefill(4, 512));
    }

    /// The shard selector must actually spread the serving key grid —
    /// bucketed lengths are all powers of two, which is exactly the input
    /// a naive modulo would clump onto a few shards.
    #[test]
    fn shard_selector_spreads_serving_keys() {
        let mut used = std::collections::BTreeSet::new();
        for phase in [0u8, 1] {
            for batch in [1u32, 2, 4, 8, 16] {
                for len in [32u32, 64, 128, 256, 512, 1024] {
                    let s = shard_of((phase, batch, len));
                    assert!(s < CACHE_SHARDS);
                    used.insert(s);
                }
            }
        }
        assert!(
            used.len() >= CACHE_SHARDS / 2,
            "serving keys clump onto {} of {CACHE_SHARDS} shards",
            used.len()
        );
    }

    #[test]
    fn bucket_rounds_up_to_power_of_two() {
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(100), 128);
        assert_eq!(bucket(128), 128);
        assert_eq!(bucket(129), 256);
        assert_eq!(bucket(0), 1);
    }

    /// Single-flight: 8 workers hammering the same handful of keys must
    /// trigger exactly one engine run per distinct key — the losers of
    /// each race block on the key's cell instead of re-simulating.
    #[test]
    fn concurrent_hammer_runs_engine_once_per_key() {
        // Isolated for exact per-instance run accounting.
        let m = LatencyModel::isolated(Platform::intel_h100(), zoo::qwen25_05b());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..4 {
                        let _ = m.prefill(1, 64);
                        let _ = m.prefill(1, 100); // buckets 64 + 128
                        let _ = m.decode_step(2, 128);
                        let _ = m.decode_step(2, 37); // buckets 32 + 64
                    }
                });
            }
        });
        // Keys: prefill(1,{64,128}), decode(2,{128,32,64}).
        assert_eq!(m.cache_entries(), 5);
        assert_eq!(
            m.engine_runs(),
            5,
            "racing workers must coalesce onto one run per key"
        );
    }

    /// Shape-signature pattern sharing: a second model over the same
    /// (platform, model) signature must resolve already-priced keys by
    /// table lookup — zero engine runs, identical prices — while a
    /// different platform must price its own pattern from scratch. Uses a
    /// uniquely-named config so other tests' table entries can't leak in.
    #[test]
    fn pattern_table_shares_prices_across_instances() {
        let mut cfg = zoo::qwen25_05b();
        cfg.name = "qwen2.5-0.5b/pattern-sharing-test".to_owned();

        let first = LatencyModel::new(Platform::intel_h100(), cfg.clone());
        let a = first.prefill(3, 64);
        let b = first.decode_step(3, 128);
        assert_eq!(first.engine_runs(), 2, "cold pattern: both keys simulate");
        assert_eq!(first.pattern_hits(), 0);

        let second = LatencyModel::new(Platform::intel_h100(), cfg.clone());
        assert_eq!(second.prefill(3, 64), a);
        assert_eq!(second.decode_step(3, 128), b);
        assert_eq!(
            second.engine_runs(),
            0,
            "previously priced pattern must be a table lookup"
        );
        assert_eq!(second.pattern_hits(), 2);

        // Same model on a different platform is a different signature:
        // nothing to hit, prices re-derived.
        let other = LatencyModel::new(Platform::gh200(), cfg.clone());
        let _ = other.prefill(3, 64);
        assert_eq!(other.engine_runs(), 1);
        assert_eq!(other.pattern_hits(), 0);

        // Isolated instances never touch the table in either direction.
        let lone = LatencyModel::isolated(Platform::intel_h100(), cfg);
        assert_eq!(
            lone.prefill(3, 64),
            a,
            "isolation changes sharing, not prices"
        );
        assert_eq!(lone.engine_runs(), 1);
        assert_eq!(lone.pattern_hits(), 0);
    }

    /// The serving experiments' key set, asserted (not sampled): every
    /// (phase, batch, bucketed length) the gpt2 serving sweeps can touch
    /// must price identically through the summary sink and the full-trace
    /// reduction.
    #[test]
    fn summary_pricing_matches_trace_reduction_on_serving_key_grid() {
        let engine = Engine::new(Platform::intel_h100());
        let model = zoo::gpt2();
        for phase_key in [0u8, 1] {
            for batch in [1u32, 2, 4, 8, 16] {
                for len in [32u32, 64, 128, 256, 512] {
                    let wl = if phase_key == 0 {
                        Workload::new(model.clone(), Phase::Prefill, batch, len)
                    } else {
                        Workload::new(
                            model.clone(),
                            Phase::DecodeStep { past_len: len },
                            batch,
                            len,
                        )
                    };
                    let summary = engine.run_summary(&wl, ExecMode::Eager).latency();
                    let full = latency(&engine.run(&wl, ExecMode::Eager));
                    assert_eq!(
                        summary, full,
                        "phase {phase_key} batch {batch} len {len} priced differently"
                    );
                }
            }
        }
    }
}
