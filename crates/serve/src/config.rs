//! Serving configuration: batching policy, KV budget, replica routing,
//! and up-front validation.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};
use skip_des::SimDuration;
use skip_hw::Platform;
use skip_llm::ModelConfig;
use skip_mem::{KvSpec, OffloadPolicy};

use crate::observe::SloTargets;

/// Canonical wording for the checks every validator shares.
///
/// [`ConfigError`], [`FleetError`](crate::FleetError), and
/// [`PlanError`](crate::fleet::plan::PlanError) all reject the same
/// classes of mistake — zero requests, non-positive rates, zero batch and
/// replica counts — and historically each spelled the message its own
/// way. Routing every Display impl through these helpers keeps the three
/// validators (and the CLIs built on them) word-for-word identical for
/// identical mistakes.
pub(crate) mod check {
    /// A zero-request configuration: nothing to simulate.
    pub(crate) const ZERO_REQUESTS: &str = "simulate at least one request";

    /// A rate-like knob that must be positive and finite.
    pub(crate) fn positive_rate(label: &str, v: f64) -> String {
        format!("{label} must be positive and finite, got {v}")
    }

    /// A count-like knob that must be at least one.
    pub(crate) fn at_least_one(label: &str) -> String {
        format!("{label} must be at least 1")
    }
}

/// Batching policy of the serving endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// Classic static batching: wait until `batch_size` requests are
    /// queued (or `max_wait` has passed since the oldest arrival), then
    /// run the whole batch to completion as one job.
    Static {
        /// Target batch size.
        batch_size: u32,
        /// Longest a request may wait for the batch to fill.
        max_wait: SimDuration,
    },
    /// Iteration-level continuous batching (Orca/vLLM style): new requests
    /// join at the next iteration boundary; each iteration is either a
    /// prefill for the newcomers or one decode step for the running batch.
    /// With [`ServingConfig::kv`] set, the batch is additionally bounded by
    /// the paged KV-cache pool: admission reserves prompt blocks, decode
    /// steps grow tables, and exhaustion preempts the newest request.
    Continuous {
        /// Maximum concurrent requests in the running batch.
        max_batch: u32,
    },
    /// Chunked prefill (Sarathi/vLLM style): prompts are split into
    /// fixed-token chunks and each iteration co-schedules at most
    /// `chunk_tokens` of prefill work with one decode step for every
    /// request already generating. Long prompts no longer monopolize the
    /// engine for a full-prompt prefill, bounding the per-iteration stall
    /// decode-phase requests see.
    ChunkedPrefill {
        /// Maximum concurrent requests in the running batch.
        max_batch: u32,
        /// Prefill-token budget per iteration.
        chunk_tokens: u32,
    },
}

/// Replica-routing policy of a multi-replica endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterPolicy {
    /// One shared pending queue; idle replicas pull from it at iteration
    /// boundaries (the single-queue M/G/k discipline — the pre-router
    /// behaviour).
    SharedQueue,
    /// Arrivals are dealt to per-replica queues in rotation, blind to
    /// load.
    RoundRobin,
    /// Each arrival joins the replica with the least outstanding work
    /// (queued + running + parked), ties to the lowest replica index.
    JoinShortestQueue,
}

impl RouterPolicy {
    /// Parses a CLI spelling: `shared`, `rr`/`round-robin`,
    /// `jsq`/`join-shortest-queue`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted spellings on anything else.
    pub fn parse(s: &str) -> Result<Self, String> {
        Ok(match s {
            "shared" | "shared-queue" => RouterPolicy::SharedQueue,
            "rr" | "round-robin" => RouterPolicy::RoundRobin,
            "jsq" | "join-shortest-queue" => RouterPolicy::JoinShortestQueue,
            other => {
                return Err(format!(
                    "unknown router '{other}' (expected shared, rr, or jsq)"
                ))
            }
        })
    }

    /// Short label used in experiment tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RouterPolicy::SharedQueue => "shared",
            RouterPolicy::RoundRobin => "rr",
            RouterPolicy::JoinShortestQueue => "jsq",
        }
    }
}

impl fmt::Display for RouterPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Paged KV-cache budget and eviction policy for continuous batching.
///
/// `None` in [`ServingConfig::kv`] models an infinite cache (the
/// pre-memory-subsystem behaviour); `Some` bounds each replica to a block
/// pool and makes the scheduler memory-aware.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KvCacheConfig {
    /// Device KV blocks available per replica.
    pub blocks_per_replica: u32,
    /// Token slots per block (16 is vLLM's default).
    pub block_tokens: u32,
    /// What to do with a preemption victim's blocks.
    pub offload: OffloadPolicy,
}

impl KvCacheConfig {
    /// A budget of `blocks` default-sized pages with the given offload
    /// policy.
    #[must_use]
    pub fn with_blocks(blocks: u32, offload: OffloadPolicy) -> Self {
        KvCacheConfig {
            blocks_per_replica: blocks,
            block_tokens: KvSpec::DEFAULT_BLOCK_TOKENS,
            offload,
        }
    }

    /// Sizes the per-replica pool from what is left of `platform`'s HBM
    /// after the FP16 weights of `model`, holding back `reserve_fraction`
    /// for activations.
    #[must_use]
    pub fn for_platform(
        platform: &Platform,
        model: &ModelConfig,
        reserve_fraction: f64,
        offload: OffloadPolicy,
    ) -> Self {
        let spec = KvSpec::for_model(model, KvSpec::DEFAULT_BLOCK_TOKENS);
        KvCacheConfig {
            blocks_per_replica: spec.pool_blocks(
                &platform.gpu,
                model.weight_bytes_fp16(),
                reserve_fraction,
            ),
            block_tokens: KvSpec::DEFAULT_BLOCK_TOKENS,
            offload,
        }
    }
}

/// One serving experiment's configuration.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// The platform serving the model.
    pub platform: Platform,
    /// The model being served.
    pub model: ModelConfig,
    /// Batching policy.
    pub policy: Policy,
    /// Number of requests to simulate.
    pub requests: u32,
    /// Poisson arrival rate, requests per second.
    pub arrival_rate_per_s: f64,
    /// Prompt length of every request, tokens.
    pub prompt_len: u32,
    /// Output tokens per request.
    pub new_tokens: u32,
    /// RNG seed for the arrival process.
    pub seed: u64,
    /// Paged KV-cache budget; `None` simulates an infinite cache.
    pub kv: Option<KvCacheConfig>,
    /// Latency SLO targets the run is scored against (all-`None` disables
    /// SLO accounting).
    pub slo: SloTargets,
    /// How arrivals are dispatched across replicas.
    pub router: RouterPolicy,
}

/// Why a [`ServingConfig`] cannot be simulated.
///
/// Returned by [`ServingConfig::validate`]; the `simulate*` entry points
/// treat an invalid config as a caller bug and panic with the same
/// message, so front ends that want a graceful error path (the CLI does)
/// validate first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// `requests` was zero.
    ZeroRequests,
    /// `arrival_rate_per_s` was not positive and finite.
    BadArrivalRate(
        /// The offending rate.
        f64,
    ),
    /// A static policy with `batch_size` zero.
    ZeroStaticBatch,
    /// A continuous policy with `max_batch` zero.
    ZeroContinuousBatch,
    /// A chunked-prefill policy with `max_batch` zero.
    ZeroChunkedBatch,
    /// A chunked-prefill policy with `chunk_tokens` zero.
    ZeroChunkTokens,
    /// A KV budget with zero blocks.
    ZeroKvBlocks,
    /// A KV budget with zero tokens per block.
    ZeroBlockTokens,
    /// The KV pool cannot hold even one full request lifetime, so no
    /// schedule could ever complete it.
    KvPoolTooSmall {
        /// Configured blocks per replica.
        blocks: u32,
        /// Blocks one full request (prompt + all generated tokens) needs.
        needed: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::ZeroRequests => f.write_str(check::ZERO_REQUESTS),
            ConfigError::BadArrivalRate(rate) => {
                f.write_str(&check::positive_rate("arrival rate", rate))
            }
            ConfigError::ZeroStaticBatch => f.write_str(&check::at_least_one("static batch_size")),
            ConfigError::ZeroContinuousBatch => {
                f.write_str(&check::at_least_one("continuous max_batch"))
            }
            ConfigError::ZeroChunkedBatch => {
                f.write_str(&check::at_least_one("chunked-prefill max_batch"))
            }
            ConfigError::ZeroChunkTokens => {
                f.write_str(&check::at_least_one("chunked-prefill chunk_tokens"))
            }
            ConfigError::ZeroKvBlocks => f.write_str(&check::at_least_one("KV pool blocks")),
            ConfigError::ZeroBlockTokens => f.write_str(&check::at_least_one("KV block_tokens")),
            ConfigError::KvPoolTooSmall { blocks, needed } => write!(
                f,
                "KV pool of {blocks} blocks cannot hold one full request ({needed} blocks); \
                 no schedule can complete it — raise the budget to at least {needed} blocks"
            ),
        }
    }
}

impl Error for ConfigError {}

impl ServingConfig {
    /// Checks every knob the simulator depends on, returning the first
    /// violation.
    ///
    /// The `simulate*` entry points call this and panic on `Err` (an
    /// invalid config is a caller bug there); call it yourself first to
    /// turn bad input into an actionable message instead — see
    /// [`ConfigError`].
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] the configuration violates.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.requests == 0 {
            return Err(ConfigError::ZeroRequests);
        }
        if !(self.arrival_rate_per_s.is_finite() && self.arrival_rate_per_s > 0.0) {
            return Err(ConfigError::BadArrivalRate(self.arrival_rate_per_s));
        }
        match self.policy {
            Policy::Static { batch_size: 0, .. } => {
                return Err(ConfigError::ZeroStaticBatch);
            }
            Policy::Continuous { max_batch: 0 } => {
                return Err(ConfigError::ZeroContinuousBatch);
            }
            Policy::ChunkedPrefill {
                max_batch,
                chunk_tokens,
            } => {
                if max_batch == 0 {
                    return Err(ConfigError::ZeroChunkedBatch);
                }
                if chunk_tokens == 0 {
                    return Err(ConfigError::ZeroChunkTokens);
                }
            }
            _ => {}
        }
        if let Some(kv) = self.kv {
            if kv.blocks_per_replica == 0 {
                return Err(ConfigError::ZeroKvBlocks);
            }
            if kv.block_tokens == 0 {
                return Err(ConfigError::ZeroBlockTokens);
            }
            let spec = KvSpec::for_model(&self.model, kv.block_tokens);
            let needed =
                spec.blocks_for(u64::from(self.prompt_len) + u64::from(self.new_tokens.max(1)));
            if kv.blocks_per_replica < needed {
                return Err(ConfigError::KvPoolTooSmall {
                    blocks: kv.blocks_per_replica,
                    needed,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skip_llm::zoo;

    fn valid() -> ServingConfig {
        ServingConfig {
            platform: Platform::intel_h100(),
            model: zoo::gpt2(),
            policy: Policy::Continuous { max_batch: 8 },
            requests: 10,
            arrival_rate_per_s: 20.0,
            prompt_len: 128,
            new_tokens: 4,
            seed: 1,
            kv: None,
            slo: SloTargets::default(),
            router: RouterPolicy::SharedQueue,
        }
    }

    #[test]
    fn valid_config_passes() {
        assert_eq!(valid().validate(), Ok(()));
    }

    #[test]
    fn each_violation_maps_to_its_error() {
        let mut c = valid();
        c.requests = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroRequests));

        let mut c = valid();
        c.arrival_rate_per_s = 0.0;
        assert_eq!(c.validate(), Err(ConfigError::BadArrivalRate(0.0)));
        c.arrival_rate_per_s = f64::INFINITY;
        assert!(matches!(c.validate(), Err(ConfigError::BadArrivalRate(_))));

        let mut c = valid();
        c.policy = Policy::Static {
            batch_size: 0,
            max_wait: SimDuration::from_millis(10),
        };
        assert_eq!(c.validate(), Err(ConfigError::ZeroStaticBatch));

        let mut c = valid();
        c.policy = Policy::Continuous { max_batch: 0 };
        assert_eq!(c.validate(), Err(ConfigError::ZeroContinuousBatch));

        let mut c = valid();
        c.policy = Policy::ChunkedPrefill {
            max_batch: 0,
            chunk_tokens: 64,
        };
        assert_eq!(c.validate(), Err(ConfigError::ZeroChunkedBatch));
        c.policy = Policy::ChunkedPrefill {
            max_batch: 4,
            chunk_tokens: 0,
        };
        assert_eq!(c.validate(), Err(ConfigError::ZeroChunkTokens));

        let mut c = valid();
        c.kv = Some(KvCacheConfig::with_blocks(0, OffloadPolicy::Auto));
        assert_eq!(c.validate(), Err(ConfigError::ZeroKvBlocks));

        let mut c = valid();
        c.kv = Some(KvCacheConfig {
            blocks_per_replica: 8,
            block_tokens: 0,
            offload: OffloadPolicy::Auto,
        });
        assert_eq!(c.validate(), Err(ConfigError::ZeroBlockTokens));

        let mut c = valid();
        c.kv = Some(KvCacheConfig::with_blocks(1, OffloadPolicy::Auto));
        assert!(matches!(
            c.validate(),
            Err(ConfigError::KvPoolTooSmall { blocks: 1, .. })
        ));
    }

    #[test]
    fn errors_render_actionable_messages() {
        let msg = ConfigError::KvPoolTooSmall {
            blocks: 3,
            needed: 9,
        }
        .to_string();
        assert!(msg.contains("cannot hold one full request"));
        assert!(msg.contains("at least 9 blocks"));
        assert!(ConfigError::ZeroRequests
            .to_string()
            .contains("at least one request"));
    }

    #[test]
    fn router_parse_round_trips_labels() {
        for r in [
            RouterPolicy::SharedQueue,
            RouterPolicy::RoundRobin,
            RouterPolicy::JoinShortestQueue,
        ] {
            assert_eq!(RouterPolicy::parse(r.label()), Ok(r));
        }
        assert_eq!(
            RouterPolicy::parse("round-robin"),
            Ok(RouterPolicy::RoundRobin)
        );
        assert!(RouterPolicy::parse("nope").is_err());
    }
}
