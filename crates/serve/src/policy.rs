//! Batch-formation policies: what the next engine iteration runs.
//!
//! A [`BatchPolicy`] owns two scheduler decisions — picking and pricing the
//! next iteration for one replica ([`BatchPolicy::next_iteration`]) and
//! crediting the iteration that just completed ([`BatchPolicy::retire`]).
//! Everything a policy may touch is handed to it through a [`Lane`]: the
//! replica's pending queue, its running state, an optional
//! [`MemLane`](crate::memctx::MemLane) for KV bookkeeping, and the
//! observability recorder. The DES loop, flush timers, and replica routing
//! live in `unified.rs` and never depend on which policy runs.
//!
//! One trait covers both serving floors. The single-node policies
//! ([`Policy::build`]) admit through memory-aware seams and track TTFT on
//! the [`Active`] itself; the fleet policies ([`FleetBatchPolicy::build`])
//! admit inside the iteration (recording pool-aware lifecycle events),
//! give prefill strict priority over decode, and route finished prefills
//! to the lane's handoff buffer when the replica sits in a prefill pool.

use std::collections::VecDeque;

use skip_des::{SimDuration, SimTime};

use crate::config::Policy;
use crate::fleet::spec::{FleetBatchPolicy, PoolRole};
use crate::latency::LatencyModel;
use crate::memctx::MemLane;
use crate::observe::LifecycleKind;
use crate::request::Request;
use crate::unified::FloorObs;

/// A request in the running batch.
pub(crate) struct Active {
    pub(crate) req: Request,
    /// Tokens generated so far (0 while still prefilling).
    pub(crate) generated: u32,
    /// Prompt tokens prefilled so far. Whole-prompt policies set this to
    /// `prompt_len` at admission; chunked prefill advances it chunk by
    /// chunk, and it is what preemption/resume sizing reads, so a request
    /// parked mid-prefill swaps or recomputes only what it actually holds.
    pub(crate) prefilled: u32,
    pub(crate) ttft: Option<SimDuration>,
}

/// A completed request's user-visible latencies.
pub(crate) struct Finished {
    pub(crate) ttft: SimDuration,
    pub(crate) e2e: SimDuration,
}

/// One unit of work inside a chunked-prefill iteration plan.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PlanStep {
    /// Prefill `tokens` more prompt tokens of request `id`.
    Chunk { id: u64, tokens: u32 },
    /// One decode step for request `id`.
    Decode { id: u64 },
}

/// One replica's scheduling state.
#[derive(Default)]
pub(crate) struct ReplicaState {
    /// Running batch (iteration-level policies).
    pub(crate) actives: Vec<Active>,
    /// In-flight static job: each request with its first-token instant.
    pub(crate) static_job: Vec<(Request, SimTime)>,
    /// The in-flight iteration's plan (single-node chunked prefill).
    pub(crate) plan: Vec<PlanStep>,
    /// Fleet chunked-prefill plan for the running iteration:
    /// `chunk_plan[i]` is the prompt-token budget granted to `actives[i]`
    /// (0 = no chunk). Reused across iterations; empty otherwise.
    pub(crate) chunk_plan: Vec<u32>,
    pub(crate) busy: bool,
}

impl ReplicaState {
    /// Requests this replica is responsible for right now.
    pub(crate) fn running(&self) -> usize {
        self.actives.len() + self.static_job.len()
    }
}

/// Everything a batch policy may touch while scheduling one replica:
/// the replica's queue and state, the shared pricing model, the optional
/// memory lane, the pool the replica serves, and the trace/metrics sinks.
/// Borrowed afresh from the floor for each decision, so policies hold no
/// state of their own beyond their knobs.
pub(crate) struct Lane<'a> {
    pub(crate) prompt_len: u32,
    pub(crate) new_tokens: u32,
    pub(crate) lat: &'a LatencyModel,
    pub(crate) now: SimTime,
    pub(crate) replica: usize,
    /// The pool this replica serves; single-node floors always say
    /// [`PoolRole::Unified`].
    pub(crate) pool: PoolRole,
    pub(crate) queue: &'a mut VecDeque<Request>,
    pub(crate) state: &'a mut ReplicaState,
    pub(crate) mem: Option<MemLane<'a>>,
    pub(crate) obs: &'a mut FloorObs,
    pub(crate) done: &'a mut Vec<Finished>,
    /// Finished prefills awaiting a KV handoff to the decode pool; the
    /// floor drains this after every retire.
    pub(crate) handoffs_out: &'a mut Vec<Request>,
    /// Reusable retire scratch: the drained running set ping-pongs between
    /// here and `state.actives`, so fleet retires allocate nothing once
    /// the buffers have grown to batch size.
    pub(crate) scratch: &'a mut Vec<Active>,
    pub(crate) last_completion: &'a mut SimTime,
}

impl Lane<'_> {
    fn complete(&mut self, a: Active) {
        if let Some(mem) = self.mem.as_mut() {
            mem.release(a.req.id);
        }
        self.obs.record(
            a.req.id,
            self.now,
            LifecycleKind::Completed {
                replica: self.replica as u32,
            },
        );
        self.done.push(Finished {
            ttft: a.ttft.expect("prefill completed before retirement"),
            e2e: self.now.saturating_duration_since(a.req.arrival),
        });
        *self.last_completion = self.now;
    }
}

/// Forms and retires engine iterations for one replica.
pub(crate) trait BatchPolicy {
    /// Picks and prices the next iteration; `None` when the replica has
    /// nothing to do. `flush` forces a partial static batch (the oldest
    /// waiter's timeout expired).
    fn next_iteration(&self, lane: &mut Lane<'_>, flush: bool) -> Option<SimDuration>;

    /// Credits the iteration/job that just completed.
    fn retire(&self, lane: &mut Lane<'_>);

    /// `Some(max_wait)` when the floor must arm a flush timer for the
    /// oldest pending arrival (static batching); `None` for policies that
    /// admit at every iteration boundary.
    fn flush_after(&self) -> Option<SimDuration> {
        None
    }
}

impl Policy {
    /// Instantiates the configured batch policy.
    pub(crate) fn build(self) -> Box<dyn BatchPolicy> {
        match self {
            Policy::Static {
                batch_size,
                max_wait,
            } => Box::new(StaticBatch {
                batch_size,
                max_wait,
            }),
            Policy::Continuous { max_batch } => Box::new(ContinuousBatch { max_batch }),
            Policy::ChunkedPrefill {
                max_batch,
                chunk_tokens,
            } => Box::new(ChunkedPrefillBatch {
                max_batch,
                chunk_tokens,
            }),
        }
    }
}

impl FleetBatchPolicy {
    /// Instantiates the configured fleet batch policy for `max_batch`
    /// admission slots per replica.
    pub(crate) fn build(self, max_batch: u32) -> Box<dyn BatchPolicy> {
        match self {
            FleetBatchPolicy::Continuous => Box::new(FleetContinuous { max_batch }),
            FleetBatchPolicy::ChunkedPrefill { chunk_tokens } => Box::new(FleetChunked {
                max_batch,
                chunk_tokens,
            }),
        }
    }
}

/// Classic static batching: collect `batch_size` requests (or time out
/// waiting), run the whole batch to completion as one job.
pub(crate) struct StaticBatch {
    batch_size: u32,
    max_wait: SimDuration,
}

impl BatchPolicy for StaticBatch {
    fn next_iteration(&self, lane: &mut Lane<'_>, flush: bool) -> Option<SimDuration> {
        let enough = lane.queue.len() as u32 >= self.batch_size;
        if lane.queue.is_empty() || !(enough || flush) {
            return None;
        }
        let take = (lane.queue.len() as u32).min(self.batch_size);
        let batch: Vec<Request> = (0..take).filter_map(|_| lane.queue.pop_front()).collect();
        let b = batch.len() as u32;
        let prefill = lane.lat.prefill(b, lane.prompt_len);
        let mut total = prefill;
        for step in 1..lane.new_tokens.max(1) {
            total += lane.lat.decode_step(b, lane.prompt_len + step);
        }
        let first_token_at = lane.now + prefill;
        for req in batch {
            lane.obs.record(
                req.id,
                lane.now,
                LifecycleKind::Admitted {
                    replica: lane.replica as u32,
                },
            );
            lane.state.static_job.push((req, first_token_at));
        }
        Some(total)
    }

    fn retire(&self, lane: &mut Lane<'_>) {
        let now = lane.now;
        let replica_id = lane.replica as u32;
        for (req, first_token_at) in std::mem::take(&mut lane.state.static_job) {
            lane.obs
                .record(req.id, first_token_at, LifecycleKind::FirstToken);
            lane.obs.record(
                req.id,
                now,
                LifecycleKind::Completed {
                    replica: replica_id,
                },
            );
            lane.done.push(Finished {
                ttft: first_token_at.saturating_duration_since(req.arrival),
                e2e: now.saturating_duration_since(req.arrival),
            });
            *lane.last_completion = now;
        }
    }

    fn flush_after(&self) -> Option<SimDuration> {
        Some(self.max_wait)
    }
}

/// Iteration-level continuous batching (Orca/vLLM style): newcomers join
/// at the next iteration boundary; each iteration is either a batched
/// prefill for the newcomers or one decode step for the running batch.
/// With a memory lane, admission reserves prompt blocks, decode grows
/// tables, and exhaustion preempts the newest request.
pub(crate) struct ContinuousBatch {
    max_batch: u32,
}

impl ContinuousBatch {
    /// The unbounded-cache iteration: prefill newcomers, else decode.
    fn plain_iteration(&self, lane: &mut Lane<'_>) -> Option<SimDuration> {
        let slots = self.max_batch as usize - lane.state.actives.len().min(self.max_batch as usize);
        let newcomers = lane.queue.len().min(slots);
        if newcomers > 0 {
            // Prefill iteration for the newcomers.
            for _ in 0..newcomers {
                let req = lane.queue.pop_front().expect("counted above");
                lane.obs.record(
                    req.id,
                    lane.now,
                    LifecycleKind::Admitted {
                        replica: lane.replica as u32,
                    },
                );
                let prefilled = req.prompt_len;
                lane.state.actives.push(Active {
                    req,
                    generated: 0,
                    prefilled,
                    ttft: None,
                });
            }
            Some(lane.lat.prefill(newcomers as u32, lane.prompt_len))
        } else if !lane.state.actives.is_empty() {
            // One decode step for the whole running batch.
            let ctx = lane
                .state
                .actives
                .iter()
                .map(|a| a.req.prompt_len + a.generated)
                .max()
                .expect("non-empty");
            Some(lane.lat.decode_step(lane.state.actives.len() as u32, ctx))
        } else {
            None
        }
    }

    /// The memory-aware iteration: resume parked requests first, then
    /// admit newcomers whose prompts fit, else run one decode step,
    /// preempting the newest requests until the whole batch's next token
    /// fits.
    fn memory_iteration(&self, lane: &mut Lane<'_>) -> Option<SimDuration> {
        let Lane {
            prompt_len,
            lat,
            now,
            replica,
            queue,
            state,
            mem,
            obs,
            ..
        } = lane;
        let mem = mem.as_mut().expect("memory path requires a lane");
        let now = *now;
        let replica_id = *replica as u32;
        let slots = (self.max_batch as usize).saturating_sub(state.actives.len());

        // 1. Resume preempted requests; the cohort rides one iteration.
        if let Some(cost) = mem.resume_cohort(slots, lat, now, &mut state.actives, obs) {
            return Some(cost);
        }

        // 2. Admit newcomers whose prompt blocks fit (only when no
        //    preempted request is waiting — they have priority).
        if mem.parked_is_empty() && slots > 0 && !queue.is_empty() {
            let mut admitted = 0u32;
            while (admitted as usize) < slots {
                let Some(req) = queue.front() else { break };
                if !mem.try_reserve(req.id, u64::from(req.prompt_len)) {
                    break;
                }
                let req = queue.pop_front().expect("front probed above");
                obs.record(
                    req.id,
                    now,
                    LifecycleKind::Admitted {
                        replica: replica_id,
                    },
                );
                let prefilled = req.prompt_len;
                state.actives.push(Active {
                    req,
                    generated: 0,
                    prefilled,
                    ttft: None,
                });
                admitted += 1;
            }
            if admitted > 0 {
                return Some(lat.prefill(admitted, *prompt_len));
            }
        }

        // 3. One decode step. First make the whole batch's next token fit
        //    (a lone request always fits because validation guarantees the
        //    pool holds at least one full request).
        if state.actives.is_empty() {
            return None;
        }
        let swap_stall = mem.fit_and_grow(
            &mut state.actives,
            |a| Some(u64::from(a.prefilled) + u64::from(a.generated) + 1),
            lat,
            now,
            obs,
            |_| {},
        );
        let ctx = state
            .actives
            .iter()
            .map(|a| a.prefilled + a.generated)
            .max()
            .expect("non-empty");
        Some(lat.decode_step(state.actives.len() as u32, ctx) + swap_stall)
    }
}

impl BatchPolicy for ContinuousBatch {
    fn next_iteration(&self, lane: &mut Lane<'_>, _flush: bool) -> Option<SimDuration> {
        if lane.mem.is_some() {
            self.memory_iteration(lane)
        } else {
            self.plain_iteration(lane)
        }
    }

    fn retire(&self, lane: &mut Lane<'_>) {
        let now = lane.now;
        let mut i = 0;
        while i < lane.state.actives.len() {
            let a = &mut lane.state.actives[i];
            if a.generated == 0 {
                // Prefill just finished: first token out.
                a.generated = 1;
                a.ttft = Some(now.saturating_duration_since(a.req.arrival));
                lane.obs.record(a.req.id, now, LifecycleKind::FirstToken);
            } else {
                a.generated += 1;
            }
            let a = &lane.state.actives[i];
            if a.generated >= a.req.new_tokens.max(1) {
                let a = lane.state.actives.swap_remove(i);
                lane.complete(a);
            } else {
                i += 1;
            }
        }
    }
}

/// Chunked prefill (Sarathi/vLLM style): each iteration spends at most
/// `chunk_tokens` of prefill work — continuing in-flight prompts first,
/// then admitting newcomers — and co-schedules one decode step for every
/// request already generating. Long prompts no longer monopolize the
/// engine, bounding the stall decode-phase requests see; the price is that
/// a prompt needs several iterations to finish prefilling.
pub(crate) struct ChunkedPrefillBatch {
    max_batch: u32,
    chunk_tokens: u32,
}

impl BatchPolicy for ChunkedPrefillBatch {
    fn next_iteration(&self, lane: &mut Lane<'_>, _flush: bool) -> Option<SimDuration> {
        let Lane {
            lat,
            now,
            replica,
            queue,
            state,
            mem,
            obs,
            ..
        } = lane;
        let now = *now;
        let replica_id = *replica as u32;
        let slots = (self.max_batch as usize).saturating_sub(state.actives.len());

        // Preempted requests have priority; the resume cohort rides one
        // iteration of its own, like memory-aware continuous batching.
        if let Some(mem) = mem.as_mut() {
            if let Some(cost) = mem.resume_cohort(slots, lat, now, &mut state.actives, obs) {
                return Some(cost);
            }
        }

        let mut plan: Vec<PlanStep> = Vec::new();
        let mut budget = self.chunk_tokens;

        // 1. Continue in-flight prefills, oldest first, within the token
        //    budget. KV growth is reserved chunk by chunk; a reservation
        //    failure stops the scan (FCFS — younger prompts must not
        //    overtake on memory).
        for a in state.actives.iter() {
            if budget == 0 {
                break;
            }
            if a.prefilled >= a.req.prompt_len {
                continue;
            }
            let tokens = (a.req.prompt_len - a.prefilled).min(budget);
            if let Some(mem) = mem.as_mut() {
                if !mem.try_reserve(a.req.id, u64::from(a.prefilled) + u64::from(tokens)) {
                    break;
                }
            }
            plan.push(PlanStep::Chunk {
                id: a.req.id,
                tokens,
            });
            budget -= tokens;
        }

        // 2. Admit newcomers into the leftover budget (blocked while
        //    anything is parked — preempted requests are older than the
        //    whole queue).
        let parked_clear = mem.as_ref().is_none_or(MemLane::parked_is_empty);
        let mut admitted = state.actives.len();
        while parked_clear && budget > 0 && admitted < self.max_batch as usize {
            let Some(req) = queue.front() else { break };
            let tokens = req.prompt_len.min(budget);
            if let Some(mem) = mem.as_mut() {
                if !mem.try_reserve(req.id, u64::from(tokens)) {
                    break;
                }
            }
            let req = queue.pop_front().expect("front probed above");
            obs.record(
                req.id,
                now,
                LifecycleKind::Admitted {
                    replica: replica_id,
                },
            );
            plan.push(PlanStep::Chunk { id: req.id, tokens });
            state.actives.push(Active {
                req,
                generated: 0,
                prefilled: 0,
                ttft: None,
            });
            budget -= tokens;
            admitted += 1;
        }

        // 3. Co-schedule one decode step for every request already in its
        //    decode phase, preempting (newest first) until the growth fits.
        //    Evicted requests lose their plan steps.
        let mut swap_stall = SimDuration::ZERO;
        if let Some(mem) = mem.as_mut() {
            swap_stall = mem.fit_and_grow(
                &mut state.actives,
                |a| {
                    (a.prefilled >= a.req.prompt_len)
                        .then(|| u64::from(a.prefilled) + u64::from(a.generated) + 1)
                },
                lat,
                now,
                obs,
                |victim| plan.retain(|s| s.id() != victim),
            );
        }
        for a in state.actives.iter() {
            if a.prefilled >= a.req.prompt_len {
                plan.push(PlanStep::Decode { id: a.req.id });
            }
        }

        if plan.is_empty() {
            // Every planned step was evicted: the iteration degenerates to
            // the swap stall (if any); otherwise the replica idles.
            return (swap_stall > SimDuration::ZERO).then_some(swap_stall);
        }

        // Price: one batched prefill over the chunk rows (sized by the
        // largest chunk) plus one decode step over the decode rows (sized
        // by the longest context), plus any eviction stall.
        let mut chunk_rows = 0u32;
        let mut max_chunk = 0u32;
        let mut decode_rows = 0u32;
        for step in &plan {
            match *step {
                PlanStep::Chunk { tokens, .. } => {
                    chunk_rows += 1;
                    max_chunk = max_chunk.max(tokens);
                }
                PlanStep::Decode { .. } => decode_rows += 1,
            }
        }
        let mut cost = swap_stall;
        if chunk_rows > 0 {
            cost += lat.prefill(chunk_rows, max_chunk);
        }
        if decode_rows > 0 {
            let ctx = state
                .actives
                .iter()
                .filter(|a| a.prefilled >= a.req.prompt_len)
                .map(|a| a.prefilled + a.generated)
                .max()
                .expect("decode rows counted above");
            cost += lat.decode_step(decode_rows, ctx);
        }
        state.plan = plan;
        Some(cost)
    }

    fn retire(&self, lane: &mut Lane<'_>) {
        let now = lane.now;
        for step in std::mem::take(&mut lane.state.plan) {
            match step {
                PlanStep::Chunk { id, tokens } => {
                    let a = lane
                        .state
                        .actives
                        .iter_mut()
                        .find(|a| a.req.id == id)
                        .expect("planned request still active");
                    a.prefilled += tokens;
                    if a.prefilled >= a.req.prompt_len {
                        // Final chunk: first token out with it.
                        a.generated = 1;
                        a.ttft = Some(now.saturating_duration_since(a.req.arrival));
                        lane.obs.record(id, now, LifecycleKind::FirstToken);
                    }
                }
                PlanStep::Decode { id } => {
                    lane.state
                        .actives
                        .iter_mut()
                        .find(|a| a.req.id == id)
                        .expect("planned request still active")
                        .generated += 1;
                }
            }
        }
        let mut i = 0;
        while i < lane.state.actives.len() {
            let a = &lane.state.actives[i];
            if a.prefilled >= a.req.prompt_len && a.generated >= a.req.new_tokens.max(1) {
                let a = lane.state.actives.swap_remove(i);
                lane.complete(a);
            } else {
                i += 1;
            }
        }
    }
}

/// Admits newcomers at the iteration boundary, fleet style: up to
/// `max_batch` actives, recording pool-aware lifecycle events. Requests
/// joining a decode replica arrive with their prompt prefilled and their
/// first token already produced by the prefill pool.
fn fleet_admit(lane: &mut Lane<'_>, max_batch: u32) {
    let room = (max_batch as usize).saturating_sub(lane.state.actives.len());
    let decode_side = lane.pool == PoolRole::Decode;
    for _ in 0..room {
        let Some(req) = lane.queue.pop_front() else {
            break;
        };
        let kind = if decode_side {
            LifecycleKind::DecodeAdmitted {
                replica: lane.replica as u32,
            }
        } else {
            LifecycleKind::Admitted {
                replica: lane.replica as u32,
            }
        };
        lane.obs.record(req.id, lane.now, kind);
        lane.state.actives.push(Active {
            generated: u32::from(decode_side),
            prefilled: if decode_side { req.prompt_len } else { 0 },
            ttft: None,
            req,
        });
    }
}

/// Routes a request that just produced a token: complete at its budget,
/// hand off from the prefill pool, else keep decoding.
fn fleet_finish_or_keep(lane: &mut Lane<'_>, a: Active, target: u32) {
    if a.generated >= target {
        fleet_complete(lane, a.req);
    } else if lane.pool == PoolRole::Prefill {
        lane.handoffs_out.push(a.req);
    } else {
        lane.state.actives.push(a);
    }
}

/// Completes a fleet request, deriving its latencies from the recorded
/// lifecycle (a handed-off request's TTFT happened on another replica).
fn fleet_complete(lane: &mut Lane<'_>, req: Request) {
    lane.obs.record(
        req.id,
        lane.now,
        LifecycleKind::Completed {
            replica: lane.replica as u32,
        },
    );
    let (ttft, e2e) = lane.obs.recorded_latencies(req.id);
    lane.done.push(Finished { ttft, e2e });
    *lane.last_completion = (*lane.last_completion).max(lane.now);
}

/// Fleet continuous batching with strict prefill priority: when any
/// admitted request still needs its prompt, the iteration prefills those
/// whole while decoders idle; otherwise one decode step advances the
/// entire batch.
pub(crate) struct FleetContinuous {
    max_batch: u32,
}

impl BatchPolicy for FleetContinuous {
    fn next_iteration(&self, lane: &mut Lane<'_>, _flush: bool) -> Option<SimDuration> {
        fleet_admit(lane, self.max_batch);
        if lane.state.actives.is_empty() {
            return None;
        }
        // Price the iteration in a single counting pass.
        let mut fresh_rows = 0u32;
        let mut fresh_len = 0u32;
        let mut batch_ctx = 0u32;
        for a in &lane.state.actives {
            if a.generated == 0 {
                fresh_rows += 1;
                fresh_len = fresh_len.max(a.req.prompt_len);
            }
            batch_ctx = batch_ctx.max(a.req.prompt_len + a.generated);
        }
        Some(if fresh_rows == 0 {
            lane.lat
                .decode_step(lane.state.actives.len() as u32, batch_ctx)
        } else {
            lane.lat.prefill(fresh_rows, fresh_len)
        })
    }

    fn retire(&self, lane: &mut Lane<'_>) {
        let was_prefill = lane.state.actives.iter().any(|a| a.generated == 0);
        let target = lane.new_tokens.max(1);
        let now = lane.now;
        // Drain through the reusable scratch buffer: swap the running set
        // out, push survivors straight back, and keep both capacities for
        // the next retire.
        let mut work = std::mem::replace(&mut lane.state.actives, std::mem::take(lane.scratch));
        for mut a in work.drain(..) {
            if was_prefill {
                if a.generated == 0 {
                    a.generated = 1;
                    a.prefilled = a.req.prompt_len;
                    lane.obs.record(a.req.id, now, LifecycleKind::FirstToken);
                } else {
                    // Decoding requests idled through the prefill
                    // iteration (prefill-priority continuous batching).
                    lane.state.actives.push(a);
                    continue;
                }
            } else {
                a.generated += 1;
            }
            fleet_finish_or_keep(lane, a, target);
        }
        *lane.scratch = work;
    }
}

/// Fleet chunked prefill: a token-budgeted chunk plan (oldest first) with
/// co-scheduled decode steps, mirroring [`ChunkedPrefillBatch`] without
/// the memory seams. The plan lives in [`ReplicaState::chunk_plan`]
/// (reused across iterations) and is applied at retire.
pub(crate) struct FleetChunked {
    max_batch: u32,
    chunk_tokens: u32,
}

impl BatchPolicy for FleetChunked {
    fn next_iteration(&self, lane: &mut Lane<'_>, _flush: bool) -> Option<SimDuration> {
        fleet_admit(lane, self.max_batch);
        let state = &mut *lane.state;
        if state.actives.is_empty() {
            return None;
        }
        state.chunk_plan.clear();
        state.chunk_plan.resize(state.actives.len(), 0);
        let mut budget = self.chunk_tokens;
        for (i, a) in state.actives.iter().enumerate() {
            if budget == 0 {
                break;
            }
            if a.prefilled >= a.req.prompt_len {
                continue;
            }
            let tokens = (a.req.prompt_len - a.prefilled).min(budget);
            state.chunk_plan[i] = tokens;
            budget -= tokens;
        }
        // Price: one batched prefill over the chunk rows (sized by the
        // largest chunk) plus one decode step over the decode rows (sized
        // by the longest context).
        let mut chunk_rows = 0u32;
        let mut max_chunk = 0u32;
        let mut decode_rows = 0u32;
        let mut decode_ctx = 0u32;
        for (i, a) in state.actives.iter().enumerate() {
            if state.chunk_plan[i] > 0 {
                chunk_rows += 1;
                max_chunk = max_chunk.max(state.chunk_plan[i]);
            } else if a.prefilled >= a.req.prompt_len {
                decode_rows += 1;
                decode_ctx = decode_ctx.max(a.prefilled + a.generated);
            }
        }
        let mut cost = SimDuration::ZERO;
        if chunk_rows > 0 {
            cost += lane.lat.prefill(chunk_rows, max_chunk);
        }
        if decode_rows > 0 {
            cost += lane.lat.decode_step(decode_rows, decode_ctx);
        }
        (chunk_rows + decode_rows > 0).then_some(cost)
    }

    fn retire(&self, lane: &mut Lane<'_>) {
        let target = lane.new_tokens.max(1);
        let now = lane.now;
        let plan = std::mem::take(&mut lane.state.chunk_plan);
        let mut work = std::mem::replace(&mut lane.state.actives, std::mem::take(lane.scratch));
        for (i, mut a) in work.drain(..).enumerate() {
            if a.prefilled >= a.req.prompt_len {
                // Spent the iteration in its decode phase.
                a.generated += 1;
            } else if plan[i] > 0 {
                a.prefilled += plan[i];
                if a.prefilled >= a.req.prompt_len {
                    // Final chunk: first token out with it.
                    a.generated = 1;
                    lane.obs.record(a.req.id, now, LifecycleKind::FirstToken);
                } else {
                    lane.state.actives.push(a);
                    continue;
                }
            } else {
                // Out of chunk budget this iteration; stays admitted.
                lane.state.actives.push(a);
                continue;
            }
            fleet_finish_or_keep(lane, a, target);
        }
        *lane.scratch = work;
        lane.state.chunk_plan = plan;
    }
}

impl PlanStep {
    fn id(self) -> u64 {
        match self {
            PlanStep::Chunk { id, .. } | PlanStep::Decode { id } => id,
        }
    }
}
