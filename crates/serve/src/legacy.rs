//! The pre-unification serve floor, frozen as a differential oracle.
//!
//! This module is a verbatim copy of the single-node DES loop — floor,
//! batch policies, and routers — exactly as it stood before the unified
//! floor landed. It compiles only under `cfg(test)` and exists so the
//! `unified_floor_equivalence` proptest can prove, byte for byte, that a
//! one-group replica set driven through the unified floor reproduces the
//! legacy behaviour across random policy × router × KV × arrival
//! configurations. Nothing outside the test tree may depend on it, and
//! nothing here should ever be "improved": drift would blind the oracle.

use std::collections::VecDeque;

use skip_des::{percentile, SimContext, SimDuration, SimTime, Simulator};

use crate::config::{Policy, RouterPolicy, ServingConfig};
use crate::floor::ServingReport;
use crate::latency::LatencyModel;
use crate::memctx::{MemLane, MemoryLayer};
use crate::observe::{CounterSample, LifecycleKind, ServingTrace, SloReport};
use crate::policy::{Active, Finished, PlanStep, ReplicaState};
use crate::request::{Request, RequestStream};

fn plan_step_id(step: PlanStep) -> u64 {
    match step {
        PlanStep::Chunk { id, .. } | PlanStep::Decode { id } => id,
    }
}

/// Load snapshot of one replica, as the pre-unification router saw it.
#[derive(Clone, Copy)]
struct Load {
    queued: u32,
    running: u32,
    parked: u32,
}

impl Load {
    fn total(self) -> u32 {
        self.queued + self.running + self.parked
    }
}

/// The three pre-unification routers, frozen.
enum LegacyRouter {
    Shared,
    RoundRobin { next: usize },
    Jsq,
}

impl LegacyRouter {
    fn build(policy: RouterPolicy) -> Self {
        match policy {
            RouterPolicy::SharedQueue => LegacyRouter::Shared,
            RouterPolicy::RoundRobin => LegacyRouter::RoundRobin { next: 0 },
            RouterPolicy::JoinShortestQueue => LegacyRouter::Jsq,
        }
    }

    fn queue_count(&self, replicas: usize) -> usize {
        match self {
            LegacyRouter::Shared => 1,
            LegacyRouter::RoundRobin { .. } | LegacyRouter::Jsq => replicas,
        }
    }

    fn route(&mut self, load: &[Load]) -> usize {
        match self {
            LegacyRouter::Shared => 0,
            LegacyRouter::RoundRobin { next } => {
                let q = *next % load.len().max(1);
                *next = next.wrapping_add(1);
                q
            }
            LegacyRouter::Jsq => load
                .iter()
                .enumerate()
                .min_by_key(|(i, l)| (l.total(), *i))
                .map_or(0, |(i, _)| i),
        }
    }
}

/// The pre-unification lane: one replica's scheduling context.
struct Lane<'a> {
    cfg: &'a ServingConfig,
    lat: &'a LatencyModel,
    now: SimTime,
    replica: usize,
    queue: &'a mut VecDeque<Request>,
    state: &'a mut ReplicaState,
    mem: Option<MemLane<'a>>,
    obs: &'a mut ServingTrace,
    done: &'a mut Vec<Finished>,
    last_completion: &'a mut SimTime,
}

impl Lane<'_> {
    fn complete(&mut self, a: Active) {
        if let Some(mem) = self.mem.as_mut() {
            mem.release(a.req.id);
        }
        self.obs.record(
            a.req.id,
            self.now,
            LifecycleKind::Completed {
                replica: self.replica as u32,
            },
        );
        self.done.push(Finished {
            ttft: a.ttft.expect("prefill completed before retirement"),
            e2e: self.now.saturating_duration_since(a.req.arrival),
        });
        *self.last_completion = self.now;
    }
}

trait BatchPolicy {
    fn next_iteration(&self, lane: &mut Lane<'_>, flush: bool) -> Option<SimDuration>;
    fn retire(&self, lane: &mut Lane<'_>);
    fn flush_after(&self) -> Option<SimDuration> {
        None
    }
}

fn build_policy(policy: Policy) -> Box<dyn BatchPolicy> {
    match policy {
        Policy::Static {
            batch_size,
            max_wait,
        } => Box::new(StaticBatch {
            batch_size,
            max_wait,
        }),
        Policy::Continuous { max_batch } => Box::new(ContinuousBatch { max_batch }),
        Policy::ChunkedPrefill {
            max_batch,
            chunk_tokens,
        } => Box::new(ChunkedPrefillBatch {
            max_batch,
            chunk_tokens,
        }),
    }
}

struct StaticBatch {
    batch_size: u32,
    max_wait: SimDuration,
}

impl BatchPolicy for StaticBatch {
    fn next_iteration(&self, lane: &mut Lane<'_>, flush: bool) -> Option<SimDuration> {
        let enough = lane.queue.len() as u32 >= self.batch_size;
        if lane.queue.is_empty() || !(enough || flush) {
            return None;
        }
        let take = (lane.queue.len() as u32).min(self.batch_size);
        let batch: Vec<Request> = (0..take).filter_map(|_| lane.queue.pop_front()).collect();
        let b = batch.len() as u32;
        let prefill = lane.lat.prefill(b, lane.cfg.prompt_len);
        let mut total = prefill;
        for step in 1..lane.cfg.new_tokens.max(1) {
            total += lane.lat.decode_step(b, lane.cfg.prompt_len + step);
        }
        let first_token_at = lane.now + prefill;
        for req in batch {
            lane.obs.record(
                req.id,
                lane.now,
                LifecycleKind::Admitted {
                    replica: lane.replica as u32,
                },
            );
            lane.state.static_job.push((req, first_token_at));
        }
        Some(total)
    }

    fn retire(&self, lane: &mut Lane<'_>) {
        let now = lane.now;
        let replica_id = lane.replica as u32;
        for (req, first_token_at) in std::mem::take(&mut lane.state.static_job) {
            lane.obs
                .record(req.id, first_token_at, LifecycleKind::FirstToken);
            lane.obs.record(
                req.id,
                now,
                LifecycleKind::Completed {
                    replica: replica_id,
                },
            );
            lane.done.push(Finished {
                ttft: first_token_at.saturating_duration_since(req.arrival),
                e2e: now.saturating_duration_since(req.arrival),
            });
            *lane.last_completion = now;
        }
    }

    fn flush_after(&self) -> Option<SimDuration> {
        Some(self.max_wait)
    }
}

struct ContinuousBatch {
    max_batch: u32,
}

impl ContinuousBatch {
    fn plain_iteration(&self, lane: &mut Lane<'_>) -> Option<SimDuration> {
        let slots = self.max_batch as usize - lane.state.actives.len().min(self.max_batch as usize);
        let newcomers = lane.queue.len().min(slots);
        if newcomers > 0 {
            for _ in 0..newcomers {
                let req = lane.queue.pop_front().expect("counted above");
                lane.obs.record(
                    req.id,
                    lane.now,
                    LifecycleKind::Admitted {
                        replica: lane.replica as u32,
                    },
                );
                let prefilled = req.prompt_len;
                lane.state.actives.push(Active {
                    req,
                    generated: 0,
                    prefilled,
                    ttft: None,
                });
            }
            Some(lane.lat.prefill(newcomers as u32, lane.cfg.prompt_len))
        } else if !lane.state.actives.is_empty() {
            let ctx = lane
                .state
                .actives
                .iter()
                .map(|a| a.req.prompt_len + a.generated)
                .max()
                .expect("non-empty");
            Some(lane.lat.decode_step(lane.state.actives.len() as u32, ctx))
        } else {
            None
        }
    }

    fn memory_iteration(&self, lane: &mut Lane<'_>) -> Option<SimDuration> {
        let Lane {
            cfg,
            lat,
            now,
            replica,
            queue,
            state,
            mem,
            obs,
            ..
        } = lane;
        let mem = mem.as_mut().expect("memory path requires a lane");
        let now = *now;
        let replica_id = *replica as u32;
        let slots = (self.max_batch as usize).saturating_sub(state.actives.len());

        if let Some(cost) = mem.resume_cohort(slots, lat, now, &mut state.actives, obs) {
            return Some(cost);
        }

        if mem.parked_is_empty() && slots > 0 && !queue.is_empty() {
            let mut admitted = 0u32;
            while (admitted as usize) < slots {
                let Some(req) = queue.front() else { break };
                if !mem.try_reserve(req.id, u64::from(req.prompt_len)) {
                    break;
                }
                let req = queue.pop_front().expect("front probed above");
                obs.record(
                    req.id,
                    now,
                    LifecycleKind::Admitted {
                        replica: replica_id,
                    },
                );
                let prefilled = req.prompt_len;
                state.actives.push(Active {
                    req,
                    generated: 0,
                    prefilled,
                    ttft: None,
                });
                admitted += 1;
            }
            if admitted > 0 {
                return Some(lat.prefill(admitted, cfg.prompt_len));
            }
        }

        if state.actives.is_empty() {
            return None;
        }
        let swap_stall = mem.fit_and_grow(
            &mut state.actives,
            |a| Some(u64::from(a.prefilled) + u64::from(a.generated) + 1),
            lat,
            now,
            obs,
            |_| {},
        );
        let ctx = state
            .actives
            .iter()
            .map(|a| a.prefilled + a.generated)
            .max()
            .expect("non-empty");
        Some(lat.decode_step(state.actives.len() as u32, ctx) + swap_stall)
    }
}

impl BatchPolicy for ContinuousBatch {
    fn next_iteration(&self, lane: &mut Lane<'_>, _flush: bool) -> Option<SimDuration> {
        if lane.mem.is_some() {
            self.memory_iteration(lane)
        } else {
            self.plain_iteration(lane)
        }
    }

    fn retire(&self, lane: &mut Lane<'_>) {
        let now = lane.now;
        let mut i = 0;
        while i < lane.state.actives.len() {
            let a = &mut lane.state.actives[i];
            if a.generated == 0 {
                a.generated = 1;
                a.ttft = Some(now.saturating_duration_since(a.req.arrival));
                lane.obs.record(a.req.id, now, LifecycleKind::FirstToken);
            } else {
                a.generated += 1;
            }
            let a = &lane.state.actives[i];
            if a.generated >= a.req.new_tokens.max(1) {
                let a = lane.state.actives.swap_remove(i);
                lane.complete(a);
            } else {
                i += 1;
            }
        }
    }
}

struct ChunkedPrefillBatch {
    max_batch: u32,
    chunk_tokens: u32,
}

impl BatchPolicy for ChunkedPrefillBatch {
    fn next_iteration(&self, lane: &mut Lane<'_>, _flush: bool) -> Option<SimDuration> {
        let Lane {
            lat,
            now,
            replica,
            queue,
            state,
            mem,
            obs,
            ..
        } = lane;
        let now = *now;
        let replica_id = *replica as u32;
        let slots = (self.max_batch as usize).saturating_sub(state.actives.len());

        if let Some(mem) = mem.as_mut() {
            if let Some(cost) = mem.resume_cohort(slots, lat, now, &mut state.actives, obs) {
                return Some(cost);
            }
        }

        let mut plan: Vec<PlanStep> = Vec::new();
        let mut budget = self.chunk_tokens;

        for a in state.actives.iter() {
            if budget == 0 {
                break;
            }
            if a.prefilled >= a.req.prompt_len {
                continue;
            }
            let tokens = (a.req.prompt_len - a.prefilled).min(budget);
            if let Some(mem) = mem.as_mut() {
                if !mem.try_reserve(a.req.id, u64::from(a.prefilled) + u64::from(tokens)) {
                    break;
                }
            }
            plan.push(PlanStep::Chunk {
                id: a.req.id,
                tokens,
            });
            budget -= tokens;
        }

        let parked_clear = mem.as_ref().is_none_or(MemLane::parked_is_empty);
        let mut admitted = state.actives.len();
        while parked_clear && budget > 0 && admitted < self.max_batch as usize {
            let Some(req) = queue.front() else { break };
            let tokens = req.prompt_len.min(budget);
            if let Some(mem) = mem.as_mut() {
                if !mem.try_reserve(req.id, u64::from(tokens)) {
                    break;
                }
            }
            let req = queue.pop_front().expect("front probed above");
            obs.record(
                req.id,
                now,
                LifecycleKind::Admitted {
                    replica: replica_id,
                },
            );
            plan.push(PlanStep::Chunk { id: req.id, tokens });
            state.actives.push(Active {
                req,
                generated: 0,
                prefilled: 0,
                ttft: None,
            });
            budget -= tokens;
            admitted += 1;
        }

        let mut swap_stall = SimDuration::ZERO;
        if let Some(mem) = mem.as_mut() {
            swap_stall = mem.fit_and_grow(
                &mut state.actives,
                |a| {
                    (a.prefilled >= a.req.prompt_len)
                        .then(|| u64::from(a.prefilled) + u64::from(a.generated) + 1)
                },
                lat,
                now,
                obs,
                |victim| plan.retain(|s| plan_step_id(*s) != victim),
            );
        }
        for a in state.actives.iter() {
            if a.prefilled >= a.req.prompt_len {
                plan.push(PlanStep::Decode { id: a.req.id });
            }
        }

        if plan.is_empty() {
            return (swap_stall > SimDuration::ZERO).then_some(swap_stall);
        }

        let mut chunk_rows = 0u32;
        let mut max_chunk = 0u32;
        let mut decode_rows = 0u32;
        for step in &plan {
            match *step {
                PlanStep::Chunk { tokens, .. } => {
                    chunk_rows += 1;
                    max_chunk = max_chunk.max(tokens);
                }
                PlanStep::Decode { .. } => decode_rows += 1,
            }
        }
        let mut cost = swap_stall;
        if chunk_rows > 0 {
            cost += lat.prefill(chunk_rows, max_chunk);
        }
        if decode_rows > 0 {
            let ctx = state
                .actives
                .iter()
                .filter(|a| a.prefilled >= a.req.prompt_len)
                .map(|a| a.prefilled + a.generated)
                .max()
                .expect("decode rows counted above");
            cost += lat.decode_step(decode_rows, ctx);
        }
        state.plan = plan;
        Some(cost)
    }

    fn retire(&self, lane: &mut Lane<'_>) {
        let now = lane.now;
        for step in std::mem::take(&mut lane.state.plan) {
            match step {
                PlanStep::Chunk { id, tokens } => {
                    let a = lane
                        .state
                        .actives
                        .iter_mut()
                        .find(|a| a.req.id == id)
                        .expect("planned request still active");
                    a.prefilled += tokens;
                    if a.prefilled >= a.req.prompt_len {
                        a.generated = 1;
                        a.ttft = Some(now.saturating_duration_since(a.req.arrival));
                        lane.obs.record(id, now, LifecycleKind::FirstToken);
                    }
                }
                PlanStep::Decode { id } => {
                    lane.state
                        .actives
                        .iter_mut()
                        .find(|a| a.req.id == id)
                        .expect("planned request still active")
                        .generated += 1;
                }
            }
        }
        let mut i = 0;
        while i < lane.state.actives.len() {
            let a = &lane.state.actives[i];
            if a.prefilled >= a.req.prompt_len && a.generated >= a.req.new_tokens.max(1) {
                let a = lane.state.actives.swap_remove(i);
                lane.complete(a);
            } else {
                i += 1;
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Arrival(Request),
    IterationDone(usize),
    FlushTimeout { queue: usize, generation: u64 },
}

#[derive(Default)]
struct FlushTimer {
    generation: u64,
    deadline: Option<SimTime>,
}

struct Floor<'a> {
    cfg: &'a ServingConfig,
    lat: &'a LatencyModel,
    policy: Box<dyn BatchPolicy>,
    router: LegacyRouter,
    queues: Vec<VecDeque<Request>>,
    queue_of: Vec<usize>,
    states: Vec<ReplicaState>,
    mem: Option<MemoryLayer>,
    finished: Vec<Finished>,
    last_completion: SimTime,
    flush: Vec<FlushTimer>,
    obs: ServingTrace,
    expired_buf: Vec<bool>,
    load_buf: Vec<Load>,
}

impl Floor<'_> {
    fn handle(&mut self, ctx: &mut SimContext<'_, Event>, event: Event) {
        let now = ctx.now();
        match event {
            Event::Arrival(req) => {
                self.obs.record(req.id, now, LifecycleKind::Arrived);
                self.snapshot_load();
                let q = self.router.route(&self.load_buf).min(self.queues.len() - 1);
                self.queues[q].push_back(req);
                self.refresh_expired(now);
                self.kick_idle_replicas(ctx);
                self.arm_flush_timers(ctx);
            }
            Event::FlushTimeout { queue, generation } => {
                if generation == self.flush[queue].generation {
                    self.flush[queue].deadline = None;
                    if !self.queues[queue].is_empty() {
                        self.expired_buf.iter_mut().for_each(|e| *e = false);
                        self.expired_buf[queue] = true;
                        self.kick_idle_replicas(ctx);
                    }
                    self.arm_flush_timers(ctx);
                }
            }
            Event::IterationDone(replica) => {
                self.states[replica].busy = false;
                self.with_lane(now, replica, |policy, lane| policy.retire(lane));
                self.refresh_expired(now);
                self.kick_idle_replicas(ctx);
                self.arm_flush_timers(ctx);
            }
        }
        self.sample(now);
    }

    fn with_lane<R>(
        &mut self,
        now: SimTime,
        replica: usize,
        f: impl FnOnce(&dyn BatchPolicy, &mut Lane<'_>) -> R,
    ) -> R {
        let q = self.queue_of[replica];
        let mut lane = Lane {
            cfg: self.cfg,
            lat: self.lat,
            now,
            replica,
            queue: &mut self.queues[q],
            state: &mut self.states[replica],
            mem: self.mem.as_mut().map(|m| m.lane(replica)),
            obs: &mut self.obs,
            done: &mut self.finished,
            last_completion: &mut self.last_completion,
        };
        f(&*self.policy, &mut lane)
    }

    fn kick_idle_replicas(&mut self, ctx: &mut SimContext<'_, Event>) {
        let now = ctx.now();
        for replica in 0..self.states.len() {
            if self.states[replica].busy {
                continue;
            }
            let flush = self.expired_buf[self.queue_of[replica]];
            let dur = self.with_lane(now, replica, |policy, lane| {
                policy.next_iteration(lane, flush)
            });
            if let Some(dur) = dur {
                self.states[replica].busy = true;
                ctx.schedule(now + dur, Event::IterationDone(replica));
            }
        }
    }

    fn refresh_expired(&mut self, now: SimTime) {
        let Some(max_wait) = self.policy.flush_after() else {
            self.expired_buf.iter_mut().for_each(|e| *e = false);
            return;
        };
        for (e, q) in self.expired_buf.iter_mut().zip(&self.queues) {
            *e = q
                .front()
                .is_some_and(|r| now.saturating_duration_since(r.arrival) >= max_wait);
        }
    }

    fn arm_flush_timers(&mut self, ctx: &mut SimContext<'_, Event>) {
        let Some(max_wait) = self.policy.flush_after() else {
            return;
        };
        for q in 0..self.queues.len() {
            let desired = self.queues[q]
                .front()
                .map(|r| r.arrival + max_wait)
                .filter(|&deadline| deadline > ctx.now());
            let timer = &mut self.flush[q];
            if desired == timer.deadline {
                continue;
            }
            timer.generation += 1;
            timer.deadline = desired;
            if let Some(deadline) = desired {
                ctx.schedule(
                    deadline,
                    Event::FlushTimeout {
                        queue: q,
                        generation: timer.generation,
                    },
                );
            }
        }
    }

    fn snapshot_load(&mut self) {
        let Floor {
            queues,
            queue_of,
            states,
            mem,
            load_buf,
            ..
        } = self;
        load_buf.clear();
        load_buf.extend((0..states.len()).map(|r| Load {
            queued: queues[queue_of[r]].len() as u32,
            running: states[r].running() as u32,
            parked: mem.as_ref().map_or(0, |m| m.parked_len(r)) as u32,
        }));
    }

    fn sample(&mut self, now: SimTime) {
        let running: usize = self.states.iter().map(ReplicaState::running).sum();
        let parked = self.mem.as_ref().map_or(0, MemoryLayer::parked_total);
        let busy = self.states.iter().filter(|s| s.busy).count();
        let sample = CounterSample {
            at: now,
            queue_depth: self.queues.iter().map(VecDeque::len).sum::<usize>() as u32,
            running: running as u32,
            parked: parked as u32,
            busy_replicas: busy as u32,
            kv_used_blocks: self.mem.as_ref().map_or(0, MemoryLayer::used_blocks),
            kv_total_blocks: self.mem.as_ref().map_or(0, MemoryLayer::total_blocks),
            admitted_total: self.obs.admitted_total(),
            completed_total: self.obs.completed_total(),
        };
        self.obs.push_sample(sample);
    }
}

/// Runs the frozen pre-unification serving loop, unbounded, returning the
/// report and trace exactly as `simulate_traced` produced them before the
/// refactor.
pub(crate) fn simulate_traced(cfg: &ServingConfig, replicas: u32) -> (ServingReport, ServingTrace) {
    assert!(replicas > 0, "need at least one replica");
    if let Err(e) = cfg.validate() {
        panic!("{e}");
    }

    let n = replicas as usize;
    let lat = LatencyModel::new(cfg.platform.clone(), cfg.model.clone());
    let mut sim: Simulator<Event> = Simulator::new();
    let mut first_arrival: Option<SimTime> = None;
    for req in RequestStream::poisson(
        cfg.arrival_rate_per_s,
        cfg.prompt_len,
        cfg.new_tokens,
        cfg.seed,
    )
    .take(cfg.requests as usize)
    {
        first_arrival.get_or_insert(req.arrival);
        sim.schedule(req.arrival, Event::Arrival(req));
    }

    let router = LegacyRouter::build(cfg.router);
    let nq = router.queue_count(n).clamp(1, n);
    let mut obs = ServingTrace::new(cfg.model.name.clone(), cfg.platform.name.clone(), replicas);
    obs.reserve(cfg.requests, if cfg.kv.is_some() { 6 } else { 4 });
    let mut floor = Floor {
        cfg,
        lat: &lat,
        policy: build_policy(cfg.policy),
        router,
        queues: (0..nq).map(|_| VecDeque::new()).collect(),
        queue_of: (0..n).map(|r| r.min(nq - 1)).collect(),
        states: (0..n).map(|_| ReplicaState::default()).collect(),
        mem: cfg.kv.map(|kv| MemoryLayer::new(cfg, kv, n)),
        finished: Vec::with_capacity(cfg.requests as usize),
        last_completion: SimTime::ZERO,
        flush: (0..nq).map(|_| FlushTimer::default()).collect(),
        obs,
        expired_buf: vec![false; nq],
        load_buf: Vec::with_capacity(n),
    };

    sim.run(|ctx, event| floor.handle(ctx, event));

    let report = assemble_report(
        cfg,
        &floor.finished,
        floor.last_completion,
        first_arrival,
        floor.mem.as_ref(),
    );
    (report, floor.obs)
}

fn assemble_report(
    cfg: &ServingConfig,
    finished: &[Finished],
    last_completion: SimTime,
    first_arrival: Option<SimTime>,
    mem: Option<&MemoryLayer>,
) -> ServingReport {
    let latencies: Vec<(SimDuration, SimDuration)> =
        finished.iter().map(|f| (f.ttft, f.e2e)).collect();
    let ttfts: Vec<f64> = latencies.iter().map(|(t, _)| t.as_nanos_f64()).collect();
    let e2es: Vec<f64> = latencies.iter().map(|(_, e)| e.as_nanos_f64()).collect();
    let makespan =
        last_completion.saturating_duration_since(first_arrival.unwrap_or(SimTime::ZERO));
    let completed = finished.len() as u32;
    let total_tokens = u64::from(completed) * u64::from(cfg.new_tokens.max(1));
    let throughput_tok_s = if completed == 0 {
        0.0
    } else {
        total_tokens as f64 / makespan.as_secs_f64().max(1e-12)
    };
    let d = |v: f64| SimDuration::from_nanos_f64(v);
    ServingReport {
        completed,
        ttft_p50: d(percentile(&ttfts, 50.0)),
        ttft_p95: d(percentile(&ttfts, 95.0)),
        ttft_p99: d(percentile(&ttfts, 99.0)),
        e2e_p50: d(percentile(&e2es, 50.0)),
        e2e_p95: d(percentile(&e2es, 95.0)),
        throughput_tok_s,
        makespan,
        preemptions: mem.map_or(0, |m| m.counters().preemptions),
        swap_outs: mem.map_or(0, |m| m.counters().swap_outs),
        swapped_bytes: mem.map_or(0, |m| m.counters().swapped_bytes),
        recomputed_tokens: mem.map_or(0, |m| m.counters().recomputed_tokens),
        kv_peak_occupancy: mem.map_or(0.0, MemoryLayer::peak_occupancy),
        slo: SloReport::evaluate(cfg.slo, &latencies, cfg.new_tokens.max(1), makespan),
        aborted: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KvCacheConfig;
    use crate::observe::SloTargets;
    use skip_hw::Platform;
    use skip_llm::zoo;
    use skip_mem::{KvSpec, OffloadPolicy};

    fn cfg(policy: Policy, router: RouterPolicy, kv: Option<KvCacheConfig>) -> ServingConfig {
        ServingConfig {
            platform: Platform::intel_h100(),
            model: zoo::gpt2(),
            policy,
            requests: 24,
            arrival_rate_per_s: 80.0,
            prompt_len: 96,
            new_tokens: 4,
            seed: 23,
            kv,
            slo: SloTargets {
                ttft: Some(SimDuration::from_millis(200)),
                e2e: None,
            },
            router,
        }
    }

    /// Pins the frozen copy to the live floor while the two are still the
    /// same code: any accidental edit to either side breaks this before
    /// the refactor even starts.
    #[test]
    fn frozen_oracle_matches_live_floor() {
        let pressured = Some(KvCacheConfig::with_blocks(
            KvSpec::for_model(&zoo::gpt2(), KvSpec::DEFAULT_BLOCK_TOKENS).blocks_for(100) * 3,
            OffloadPolicy::Auto,
        ));
        for (c, replicas) in [
            (
                cfg(
                    Policy::Continuous { max_batch: 4 },
                    RouterPolicy::SharedQueue,
                    None,
                ),
                1,
            ),
            (
                cfg(
                    Policy::Static {
                        batch_size: 4,
                        max_wait: SimDuration::from_millis(30),
                    },
                    RouterPolicy::RoundRobin,
                    None,
                ),
                3,
            ),
            (
                cfg(
                    Policy::ChunkedPrefill {
                        max_batch: 4,
                        chunk_tokens: 48,
                    },
                    RouterPolicy::JoinShortestQueue,
                    pressured,
                ),
                2,
            ),
        ] {
            let legacy = simulate_traced(&c, replicas);
            let live = crate::floor::simulate_traced(&c, replicas);
            let legacy_bytes = serde_json::to_string(&legacy).unwrap();
            let live_bytes = serde_json::to_string(&live).unwrap();
            assert_eq!(legacy_bytes, live_bytes, "policy {:?}", c.policy);
        }
    }

    mod equivalence {
        use super::*;
        use proptest::prelude::*;

        fn policy_strategy() -> impl Strategy<Value = Policy> {
            // Selector + prop_map in place of `prop_oneof!`: draw parameters
            // for every variant, keep the selected one.
            (0u32..3, 1u32..9, 5u64..81, 16u32..129).prop_map(
                |(kind, batch, ms, chunk_tokens)| match kind {
                    0 => Policy::Continuous { max_batch: batch },
                    1 => Policy::Static {
                        batch_size: batch,
                        max_wait: SimDuration::from_millis(ms),
                    },
                    _ => Policy::ChunkedPrefill {
                        max_batch: batch,
                        chunk_tokens,
                    },
                },
            )
        }

        fn router_strategy() -> impl Strategy<Value = RouterPolicy> {
            prop::sample::select(vec![
                RouterPolicy::SharedQueue,
                RouterPolicy::RoundRobin,
                RouterPolicy::JoinShortestQueue,
            ])
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// The tentpole's equivalence theorem, tested: for a random
            /// scenario (policy × router × KV pressure × replica count ×
            /// load), the unified floor driving a one-group replica set
            /// produces the frozen pre-unification floor's report AND
            /// trace, byte for byte.
            #[test]
            fn unified_floor_equivalence(
                policy in policy_strategy(),
                router in router_strategy(),
                // 0 = unbounded KV; 1..=3 = block-budget multiplier, where
                // 1 barely holds one full request (maximum preemption churn).
                kv_pressure in 0u32..4,
                replicas in 1u32..5,
                rate in 10.0f64..400.0,
                requests in 5u32..41,
                prompt_len in 16u32..257,
                new_tokens in 1u32..9,
                seed in 0u64..u64::MAX,
            ) {
                let mut c = cfg(policy, router, None);
                c.requests = requests;
                c.arrival_rate_per_s = rate;
                c.prompt_len = prompt_len;
                c.new_tokens = new_tokens;
                c.seed = seed;
                c.kv = (kv_pressure > 0).then(|| {
                    let spec = KvSpec::for_model(&c.model, KvSpec::DEFAULT_BLOCK_TOKENS);
                    let full = spec.blocks_for(u64::from(prompt_len) + u64::from(new_tokens));
                    KvCacheConfig::with_blocks(full * kv_pressure + 1, OffloadPolicy::Auto)
                });
                let legacy = simulate_traced(&c, replicas);
                let live = crate::floor::simulate_traced(&c, replicas);
                prop_assert_eq!(
                    serde_json::to_string(&legacy).unwrap(),
                    serde_json::to_string(&live).unwrap(),
                    "diverged for policy {:?} router {:?} kv x{:?} replicas {}",
                    c.policy,
                    c.router,
                    kv_pressure,
                    replicas
                );
            }
        }
    }
}
