//! The memory layer: paged-KV admission, preemption, and resume.
//!
//! Every [`BlockAllocator`](skip_mem::BlockAllocator) touch lives here, so
//! batch policies decide *when* to admit, grow, or evict while this layer
//! owns *how* the block bookkeeping, offload pricing, and park/resume
//! mechanics work. The event loop never sees a block.

use std::collections::VecDeque;

use skip_des::{SimDuration, SimTime};
use skip_hw::Interconnect;
use skip_mem::{swap_cost, BlockAllocator, EvictionAction, KvSpec, OffloadPolicy};

use crate::config::{KvCacheConfig, ServingConfig};
use crate::latency::LatencyModel;
use crate::observe::{LifecycleKind, RecordSink, ResumeAction};
use crate::policy::Active;

/// How a preempted request gets its KV state back on resume.
#[derive(Clone, Copy)]
pub(crate) enum ResumeKind {
    /// Blocks were dropped; the context re-prefills.
    Recompute,
    /// Blocks sit in host memory; copying them back costs one transfer.
    SwapIn {
        /// Tokens swapped out (prices the return copy).
        tokens: u64,
    },
}

/// A preempted request parked for a later resume.
pub(crate) struct Parked {
    pub(crate) active: Active,
    pub(crate) resume: ResumeKind,
}

/// Cumulative memory-pressure counters across the fleet.
#[derive(Default)]
pub(crate) struct MemCounters {
    pub(crate) preemptions: u64,
    pub(crate) swap_outs: u64,
    pub(crate) swapped_bytes: u64,
    pub(crate) recomputed_tokens: u64,
}

/// Immutable memory-model context shared by all replicas.
pub(crate) struct MemShared {
    pub(crate) spec: KvSpec,
    pub(crate) offload: OffloadPolicy,
    pub(crate) interconnect: Interconnect,
}

/// The fleet-wide memory layer: one block pool and park queue per replica,
/// shared offload context, and cumulative pressure counters.
pub(crate) struct MemoryLayer {
    shared: MemShared,
    pools: Vec<BlockAllocator>,
    parked: Vec<VecDeque<Parked>>,
    counters: MemCounters,
}

impl MemoryLayer {
    /// Builds the layer for `replicas` identical pools sized by `kv`.
    pub(crate) fn new(cfg: &ServingConfig, kv: KvCacheConfig, replicas: usize) -> Self {
        MemoryLayer {
            shared: MemShared {
                spec: KvSpec::for_model(&cfg.model, kv.block_tokens),
                offload: kv.offload,
                interconnect: cfg.platform.interconnect.clone(),
            },
            pools: (0..replicas)
                .map(|_| BlockAllocator::new(kv.blocks_per_replica))
                .collect(),
            parked: (0..replicas).map(|_| VecDeque::new()).collect(),
            counters: MemCounters::default(),
        }
    }

    /// One replica's mutable view of the layer.
    pub(crate) fn lane(&mut self, replica: usize) -> MemLane<'_> {
        MemLane {
            shared: &self.shared,
            pool: &mut self.pools[replica],
            parked: &mut self.parked[replica],
            counters: &mut self.counters,
            replica_id: replica as u32,
        }
    }

    /// Requests parked on `replica`.
    pub(crate) fn parked_len(&self, replica: usize) -> usize {
        self.parked[replica].len()
    }

    /// Parked requests across the fleet.
    pub(crate) fn parked_total(&self) -> usize {
        self.parked.iter().map(VecDeque::len).sum()
    }

    /// KV blocks in use across all replica pools.
    pub(crate) fn used_blocks(&self) -> u32 {
        self.pools.iter().map(BlockAllocator::used_blocks).sum()
    }

    /// KV blocks configured across all replica pools.
    pub(crate) fn total_blocks(&self) -> u32 {
        self.pools.iter().map(BlockAllocator::total_blocks).sum()
    }

    /// High-water pool occupancy across replicas, as a fraction.
    pub(crate) fn peak_occupancy(&self) -> f64 {
        self.pools
            .iter()
            .map(|p| f64::from(p.stats().peak_used_blocks) / f64::from(p.total_blocks().max(1)))
            .fold(0.0, f64::max)
    }

    /// The cumulative pressure counters.
    pub(crate) fn counters(&self) -> &MemCounters {
        &self.counters
    }
}

/// One replica's mutable slice of the memory layer, handed to the batch
/// policy for the duration of one scheduling decision.
pub(crate) struct MemLane<'a> {
    shared: &'a MemShared,
    pool: &'a mut BlockAllocator,
    parked: &'a mut VecDeque<Parked>,
    counters: &'a mut MemCounters,
    replica_id: u32,
}

impl MemLane<'_> {
    /// `true` when no preempted request awaits resume on this replica.
    pub(crate) fn parked_is_empty(&self) -> bool {
        self.parked.is_empty()
    }

    /// Grows `owner`'s block table to cover `tokens`; `false` (with no
    /// side effect) when the pool cannot.
    pub(crate) fn try_reserve(&mut self, owner: u64, tokens: u64) -> bool {
        self.pool.grow_to(owner, tokens, &self.shared.spec).is_ok()
    }

    /// Hands `owner`'s blocks back to the pool.
    pub(crate) fn release(&mut self, owner: u64) {
        self.pool.release(owner);
    }

    /// Resumes preempted requests, oldest first, while they fit; the whole
    /// cohort rides one iteration whose cost is returned. A parked request
    /// that does not fit blocks newcomer admission (it is older than
    /// anything pending), preventing starvation. `None` when nothing
    /// resumed.
    pub(crate) fn resume_cohort(
        &mut self,
        slots: usize,
        lat: &LatencyModel,
        now: SimTime,
        actives: &mut Vec<Active>,
        obs: &mut impl RecordSink,
    ) -> Option<SimDuration> {
        if slots == 0 || self.parked.is_empty() {
            return None;
        }
        let spec = &self.shared.spec;
        let mut resumed: Vec<(Parked, u64)> = Vec::new();
        while resumed.len() < slots {
            let Some(front) = self.parked.front() else {
                break;
            };
            let ctx_tokens = u64::from(front.active.prefilled) + u64::from(front.active.generated);
            if !self.pool.can_reserve(spec.blocks_for(ctx_tokens)) {
                break;
            }
            let p = self.parked.pop_front().expect("front probed above");
            self.pool
                .grow_to(p.active.req.id, ctx_tokens, spec)
                .expect("reservation probed above");
            if matches!(p.resume, ResumeKind::Recompute) {
                self.counters.recomputed_tokens += ctx_tokens;
            }
            resumed.push((p, ctx_tokens));
        }
        if resumed.is_empty() {
            return None;
        }
        let priced: Vec<(u64, ResumeKind)> =
            resumed.iter().map(|(p, ctx)| (*ctx, p.resume)).collect();
        let cost = price_resumes(lat, self.shared, &priced);
        for (p, _) in resumed {
            let action = match p.resume {
                ResumeKind::Recompute => ResumeAction::Recompute,
                ResumeKind::SwapIn { .. } => ResumeAction::SwapIn,
            };
            obs.record(
                p.active.req.id,
                now,
                LifecycleKind::Resumed {
                    replica: self.replica_id,
                    action,
                    cost,
                },
            );
            actives.push(p.active);
        }
        Some(cost)
    }

    /// Makes the iteration's block growth fit: while the summed block
    /// deficit of every active whose target `needs` returns exceeds the
    /// free pool, the newest active (vLLM's LIFO victim order) is
    /// preempted; then every surviving target is reserved. Returns the
    /// engine stall the evictions charge now (swap copy-outs).
    ///
    /// `needs` maps an active to the token count its table must cover
    /// after this iteration (`None` = not growing). `on_evict` tells the
    /// policy which request ids were removed from the running batch.
    pub(crate) fn fit_and_grow(
        &mut self,
        actives: &mut Vec<Active>,
        needs: impl Fn(&Active) -> Option<u64>,
        lat: &LatencyModel,
        now: SimTime,
        obs: &mut impl RecordSink,
        mut on_evict: impl FnMut(u64),
    ) -> SimDuration {
        let spec = &self.shared.spec;
        let mut swap_stall = SimDuration::ZERO;
        loop {
            let deficit: u32 = actives
                .iter()
                .map(|a| {
                    needs(a).map_or(0, |target| {
                        let held = self
                            .pool
                            .table(a.req.id)
                            .map_or(0, |t| t.blocks().len() as u32);
                        spec.blocks_for(target).saturating_sub(held)
                    })
                })
                .sum();
            if deficit <= self.pool.free_blocks() {
                break;
            }
            let victim = actives
                .iter()
                .enumerate()
                .max_by_key(|(_, a)| a.req.id)
                .map(|(i, _)| i)
                .expect("active batch is non-empty");
            let victim_id = actives[victim].req.id;
            swap_stall += self.preempt(victim, lat, now, actives, obs);
            on_evict(victim_id);
        }
        for a in actives.iter() {
            if let Some(target) = needs(a) {
                self.pool
                    .grow_to(a.req.id, target, &self.shared.spec)
                    .expect("deficit covered above");
            }
        }
        swap_stall
    }

    /// Evicts `actives[victim]`: releases its device blocks and parks it
    /// for a later resume. Returns the engine stall charged now (the
    /// copy-out time when swapping; recompute defers its whole cost to
    /// resume).
    fn preempt(
        &mut self,
        victim: usize,
        lat: &LatencyModel,
        now: SimTime,
        actives: &mut Vec<Active>,
        obs: &mut impl RecordSink,
    ) -> SimDuration {
        let a = actives.remove(victim);
        let tokens = u64::from(a.prefilled) + u64::from(a.generated);
        let bytes = tokens * self.shared.spec.bytes_per_token;
        self.pool.release(a.req.id);
        self.counters.preemptions += 1;
        let one_way = swap_cost(&self.shared.interconnect, bytes);
        let recompute = lat.prefill(1, tokens as u32);
        match self.shared.offload.decide(one_way + one_way, recompute) {
            EvictionAction::SwapOut => {
                self.counters.swap_outs += 1;
                self.counters.swapped_bytes += bytes;
                obs.record(
                    a.req.id,
                    now,
                    LifecycleKind::Preempted {
                        replica: self.replica_id,
                        action: ResumeAction::SwapIn,
                        stall: one_way,
                    },
                );
                self.parked.push_back(Parked {
                    active: a,
                    resume: ResumeKind::SwapIn { tokens },
                });
                one_way
            }
            EvictionAction::Recompute => {
                obs.record(
                    a.req.id,
                    now,
                    LifecycleKind::Preempted {
                        replica: self.replica_id,
                        action: ResumeAction::Recompute,
                        stall: SimDuration::ZERO,
                    },
                );
                self.parked.push_back(Parked {
                    active: a,
                    resume: ResumeKind::Recompute,
                });
                SimDuration::ZERO
            }
        }
    }
}

/// Prices the resume iteration for one cohort of parked requests, given
/// `(context_tokens, resume_kind)` per request.
///
/// Swapped-out requests each pay their copy-back transfer. Recompute
/// victims re-prefill **as one batch**: the engine runs them as a single
/// batched prefill sized by the longest context, exactly like newcomer
/// admission.
pub(crate) fn price_resumes(
    lat: &LatencyModel,
    shared: &MemShared,
    resumes: &[(u64, ResumeKind)],
) -> SimDuration {
    let mut cost = SimDuration::ZERO;
    let mut recompute_batch = 0u32;
    let mut recompute_ctx = 0u64;
    for &(ctx_tokens, kind) in resumes {
        match kind {
            ResumeKind::Recompute => {
                recompute_batch += 1;
                recompute_ctx = recompute_ctx.max(ctx_tokens);
            }
            ResumeKind::SwapIn { tokens } => {
                cost += swap_cost(&shared.interconnect, tokens * shared.spec.bytes_per_token);
            }
        }
    }
    if recompute_batch > 0 {
        cost += lat.prefill(recompute_batch, recompute_ctx as u32);
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use skip_hw::Platform;
    use skip_llm::zoo;

    /// Regression for resume-stall accounting: a cohort of recompute
    /// victims resuming together must be priced as one batched prefill,
    /// not the sum of serial single-request prefills.
    #[test]
    fn batched_resume_costs_less_than_serial_singles() {
        let platform = Platform::intel_h100();
        let model = zoo::llama2_7b();
        let lat = LatencyModel::new(platform.clone(), model.clone());
        let shared = MemShared {
            spec: KvSpec::for_model(&model, KvSpec::DEFAULT_BLOCK_TOKENS),
            offload: OffloadPolicy::Recompute,
            interconnect: platform.interconnect.clone(),
        };
        let cohort: Vec<(u64, ResumeKind)> =
            (0..3).map(|_| (1100, ResumeKind::Recompute)).collect();
        let batched = price_resumes(&lat, &shared, &cohort);
        let serial: SimDuration = cohort
            .iter()
            .map(|&(ctx, kind)| price_resumes(&lat, &shared, &[(ctx, kind)]))
            .sum();
        assert!(
            batched < serial,
            "batched {batched} must undercut serial {serial}"
        );
        // Swap-ins are per-request transfers: batching must not discount.
        let swaps: Vec<(u64, ResumeKind)> = (0..3)
            .map(|_| (1100, ResumeKind::SwapIn { tokens: 1100 }))
            .collect();
        let swap_batched = price_resumes(&lat, &shared, &swaps);
        let swap_serial: SimDuration = swaps
            .iter()
            .map(|&(ctx, kind)| price_resumes(&lat, &shared, &[(ctx, kind)]))
            .sum();
        assert_eq!(swap_batched, swap_serial);
    }
}
