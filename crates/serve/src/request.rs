//! Request arrival generation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use skip_des::{SimDuration, SimTime};

/// One inference request arriving at the serving endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Request identifier (arrival order).
    pub id: u64,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Prompt length in tokens.
    pub prompt_len: u32,
    /// Output tokens to generate.
    pub new_tokens: u32,
}

/// A seeded Poisson arrival process with fixed request shapes.
///
/// Inter-arrival gaps are exponential with the configured rate; the seed
/// makes every stream exactly reproducible, preserving the stack-wide
/// determinism guarantee.
///
/// # Example
///
/// ```
/// use skip_serve::RequestStream;
///
/// let a: Vec<_> = RequestStream::poisson(100.0, 128, 16, 42).take(10).collect();
/// let b: Vec<_> = RequestStream::poisson(100.0, 128, 16, 42).take(10).collect();
/// assert_eq!(a, b); // same seed, same stream
/// assert!(a.windows(2).all(|w| w[1].arrival >= w[0].arrival));
/// ```
#[derive(Debug, Clone)]
pub struct RequestStream {
    rng: SmallRng,
    rate_per_s: f64,
    prompt_len: u32,
    new_tokens: u32,
    next_id: u64,
    clock: SimTime,
}

impl RequestStream {
    /// Creates a Poisson stream of `rate_per_s` requests per second, each
    /// with the given prompt and output lengths.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_s` is not positive and finite.
    #[must_use]
    pub fn poisson(rate_per_s: f64, prompt_len: u32, new_tokens: u32, seed: u64) -> Self {
        assert!(
            rate_per_s.is_finite() && rate_per_s > 0.0,
            "arrival rate must be positive"
        );
        RequestStream {
            rng: SmallRng::seed_from_u64(seed),
            rate_per_s,
            prompt_len,
            new_tokens,
            next_id: 0,
            clock: SimTime::ZERO,
        }
    }
}

impl Iterator for RequestStream {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        // Exponential inter-arrival via inverse transform.
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let gap_s = -u.ln() / self.rate_per_s;
        self.clock += SimDuration::from_nanos_f64(gap_s * 1e9);
        let req = Request {
            id: self.next_id,
            arrival: self.clock,
            prompt_len: self.prompt_len,
            new_tokens: self.new_tokens,
        };
        self.next_id += 1;
        Some(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_monotone_and_ids_sequential() {
        let reqs: Vec<_> = RequestStream::poisson(50.0, 64, 4, 1).take(100).collect();
        for (i, w) in reqs.windows(2).enumerate() {
            assert!(w[1].arrival >= w[0].arrival, "at {i}");
        }
        assert_eq!(reqs.last().unwrap().id, 99);
    }

    #[test]
    fn mean_rate_approximates_configured_rate() {
        let n = 20_000;
        let reqs: Vec<_> = RequestStream::poisson(100.0, 64, 4, 9).take(n).collect();
        let span_s = reqs.last().unwrap().arrival.as_millis_f64() / 1e3;
        let rate = n as f64 / span_s;
        assert!((rate - 100.0).abs() / 100.0 < 0.05, "rate {rate}");
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = RequestStream::poisson(10.0, 64, 4, 1).take(5).collect();
        let b: Vec<_> = RequestStream::poisson(10.0, 64, 4, 2).take(5).collect();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_rejected() {
        let _ = RequestStream::poisson(0.0, 64, 4, 1);
    }
}
