//! The unified serving floor: one DES loop behind both public fronts.
//!
//! A [`UnifiedFloor`] is a generic event loop over a [`ReplicaSet`] — a
//! pool-aware collection of replicas with per-platform pricing, optional
//! handoff links, and optional autoscaling. The single-node front
//! (`crate::floor`) builds a one-group, one-pool set with zero-cost
//! (inert) links and broadcast wake-ups; the fleet front
//! (`crate::fleet::floor`) builds a heterogeneous, optionally
//! disaggregated set with targeted wake-ups. Both fronts are thin
//! constructors: every event, every scheduling decision, and every
//! counter sample flows through this one loop.
//!
//! Scheduling itself still lives behind the three seams: the
//! [`Router`] picks a queue for each arrival (and a destination for each
//! KV handoff), the [`BatchPolicy`] forms and retires iterations through
//! a [`Lane`], and the [`MemoryLayer`] (inside the lane) owns all
//! KV-block bookkeeping. Adding a policy or router never touches this
//! file.

use std::collections::VecDeque;

use skip_des::{SimContext, SimDuration, SimTime, Simulator};
use skip_hw::Platform;
use skip_llm::ModelConfig;
use skip_mem::KvSpec;

use crate::config::RouterPolicy;
use crate::fleet::autoscale::{AutoscaleConfig, ScaleAction, ScalingEvent};
use crate::fleet::observe::{FleetSample, FleetTrace};
use crate::fleet::spec::PoolRole;
use crate::latency::LatencyModel;
use crate::memctx::MemoryLayer;
use crate::observe::{CounterSample, LifecycleKind, RecordSink, ServingTrace, SloTargets};
use crate::policy::{Active, BatchPolicy, Finished, Lane, ReplicaState};
use crate::request::Request;
use crate::router::{ReplicaLoad, Router};
use crate::stop::{StopCondition, StopGuard};

/// The observability recording behind the floor: the single-node
/// [`ServingTrace`] or the fleet's [`FleetTrace`]. Policies and the loop
/// record through one vocabulary; each trace keeps its own sample shape
/// and serde bytes.
pub(crate) enum FloorObs {
    Serve(ServingTrace),
    Fleet(FleetTrace),
}

impl FloorObs {
    pub(crate) fn record(&mut self, id: u64, at: SimTime, kind: LifecycleKind) {
        match self {
            FloorObs::Serve(t) => t.record(id, at, kind),
            FloorObs::Fleet(t) => t.record(id, at, kind),
        }
    }

    fn completed_total(&self) -> u32 {
        match self {
            FloorObs::Serve(t) => t.completed_total(),
            FloorObs::Fleet(t) => t.completed_total(),
        }
    }

    fn push_scaling(&mut self, ev: ScalingEvent) {
        if let FloorObs::Fleet(t) = self {
            t.scaling.push(ev);
        }
    }

    /// The recorded TTFT/e2e of request `id` — what fleet completion
    /// reads back, since a handed-off request's first token happened on
    /// another replica.
    pub(crate) fn recorded_latencies(&self, id: u64) -> (SimDuration, SimDuration) {
        let lc = match self {
            FloorObs::Serve(t) => &t.lifecycles[id as usize],
            FloorObs::Fleet(t) => &t.lifecycles[id as usize],
        };
        (
            lc.ttft().unwrap_or(SimDuration::ZERO),
            lc.e2e().unwrap_or(SimDuration::ZERO),
        )
    }
}

impl RecordSink for FloorObs {
    fn record(&mut self, id: u64, at: SimTime, kind: LifecycleKind) {
        FloorObs::record(self, id, at, kind);
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum Event {
    Arrival(Request),
    /// A replica finished its current iteration/job.
    IterationDone(usize),
    /// The flush timer armed for `queue` expired (static batching).
    FlushTimeout { queue: usize, generation: u64 },
    /// The in-flight transfer on `dst`'s handoff link landed.
    HandoffDone(usize),
    /// Autoscaler decision point.
    ScaleTick,
    /// A launching replica finished provisioning + weight load.
    ReplicaUp(usize),
}

/// Replica lifecycle under autoscaling; fixed sets stay [`RState::Up`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RState {
    Launching,
    Up,
    Draining,
    Down,
}

/// A KV handoff parked on (or moving over) a destination link.
#[derive(Debug, Clone, Copy)]
struct Handoff {
    req: Request,
    queued_at: SimTime,
    bytes: u64,
    transfer: SimDuration,
}

/// Per-replica ingress link: FIFO queue plus at most one in-flight
/// transfer, so concurrent handoffs to the same destination serialize and
/// the interconnect shows up as occupancy. Single-node sets keep these
/// permanently empty (zero-cost links).
#[derive(Debug, Default)]
pub(crate) struct LinkRt {
    queue: VecDeque<Handoff>,
    inflight: Option<(Handoff, SimTime)>,
}

impl LinkRt {
    fn depth(&self) -> u32 {
        (self.queue.len() + usize::from(self.inflight.is_some())) as u32
    }
}

/// One queue's flush timer: the deadline of the oldest pending arrival
/// plus the policy's `max_wait`. The generation counter invalidates
/// superseded timer events still sitting in the DES queue.
#[derive(Default)]
pub(crate) struct FlushTimer {
    generation: u64,
    deadline: Option<SimTime>,
}

/// One replica's identity inside the set: which platform prices it,
/// which pool it serves, its scaling state, and its unit serving cost
/// (the cost-model router's exchange rate; 0 when pricing is uniform).
pub(crate) struct ReplicaMeta {
    pub(crate) platform_idx: usize,
    pub(crate) pool: PoolRole,
    pub(crate) state: RState,
    pub(crate) unit_cost_ns: f64,
}

/// The replica-set abstraction the unified floor is generic over: the
/// platforms and their latency models, per-replica identities, handoff
/// links, the two routing seams, and the scaling/billing knobs. A
/// single-node floor is the degenerate case — one group, one pool,
/// always-up replicas, inert links, no autoscaler.
pub(crate) struct ReplicaSet {
    pub(crate) platforms: Vec<Platform>,
    pub(crate) lat: Vec<LatencyModel>,
    pub(crate) meta: Vec<ReplicaMeta>,
    pub(crate) links: Vec<LinkRt>,
    /// Routes arrivals to a queue.
    pub(crate) arrival_router: Box<dyn Router>,
    /// Routes finished prefills to a decode replica (separate instance,
    /// so round-robin keeps independent cursors per direction).
    pub(crate) handoff_router: Box<dyn Router>,
    /// KV geometry for handoff sizing.
    pub(crate) kv: KvSpec,
    pub(crate) disagg: bool,
    /// `true` for fleet-style targeted wake-ups (kick only the touched
    /// replica); `false` for the single-node broadcast sweep with flush
    /// timers.
    pub(crate) targeted: bool,
    pub(crate) autoscale: Option<AutoscaleConfig>,
    /// Model weight bytes a launching replica loads over its host link.
    pub(crate) weight_bytes: u64,
    // Cumulative handoff and scaling telemetry.
    pub(crate) handoffs: u64,
    pub(crate) handoff_bytes: u64,
    pub(crate) handoff_waits: Vec<f64>,
    pub(crate) handoff_transfer_ns: f64,
    pub(crate) scale_ups: u32,
    pub(crate) scale_downs: u32,
    pub(crate) peak_live: u32,
    pub(crate) replica_ns: f64,
    pub(crate) last_bill: SimTime,
}

impl ReplicaSet {
    /// One homogeneous always-up group of `replicas` — the single-node
    /// serving endpoint as a degenerate fleet: one pool, zero-cost links,
    /// broadcast wake-ups, uniform (zero) unit pricing.
    pub(crate) fn single_group(
        platform: Platform,
        model: &ModelConfig,
        replicas: usize,
        arrival_router: Box<dyn Router>,
    ) -> Self {
        let lat = LatencyModel::new(platform.clone(), model.clone());
        ReplicaSet {
            kv: KvSpec::for_model(model, KvSpec::DEFAULT_BLOCK_TOKENS),
            platforms: vec![platform],
            lat: vec![lat],
            meta: (0..replicas)
                .map(|_| ReplicaMeta {
                    platform_idx: 0,
                    pool: PoolRole::Unified,
                    state: RState::Up,
                    unit_cost_ns: 0.0,
                })
                .collect(),
            links: (0..replicas).map(|_| LinkRt::default()).collect(),
            arrival_router,
            // Never consulted: a one-pool set finishes every request in
            // place, so nothing reaches the handoff seam.
            handoff_router: RouterPolicy::SharedQueue.build(),
            disagg: false,
            targeted: false,
            autoscale: None,
            weight_bytes: 0,
            handoffs: 0,
            handoff_bytes: 0,
            handoff_waits: Vec::new(),
            handoff_transfer_ns: 0.0,
            scale_ups: 0,
            scale_downs: 0,
            peak_live: replicas as u32,
            replica_ns: 0.0,
            last_bill: SimTime::ZERO,
        }
    }

    fn live_count(&self) -> u32 {
        self.meta
            .iter()
            .filter(|m| matches!(m.state, RState::Up | RState::Draining))
            .count() as u32
    }

    /// Accrues replica-seconds up to `now` at the current live count.
    /// Called before any state transition and once at the end.
    pub(crate) fn bill(&mut self, now: SimTime) {
        let live = self.live_count();
        self.replica_ns +=
            now.saturating_duration_since(self.last_bill).as_nanos_f64() * f64::from(live);
        self.last_bill = now;
        self.peak_live = self.peak_live.max(live);
    }

    /// The bill the run has provably accrued by `now`, without mutating
    /// billing state — what a cost-ceiling [`StopCondition`] compares
    /// against between events.
    fn accrued_replica_seconds(&self, now: SimTime) -> f64 {
        (self.replica_ns
            + now.saturating_duration_since(self.last_bill).as_nanos_f64()
                * f64::from(self.live_count()))
            / 1e9
    }
}

/// Per-request service estimate on one platform, in nanoseconds — the
/// cost-model JSQ's exchange rate between queue depths on different
/// platforms. Memoized inside the [`LatencyModel`], so this is two map
/// hits after the first call.
pub(crate) fn unit_cost_ns(
    lat: &LatencyModel,
    pool: PoolRole,
    max_batch: u32,
    prompt_len: u32,
    new_tokens: u32,
) -> f64 {
    let b = max_batch.max(1);
    let prefill = lat.prefill(b, prompt_len.max(1)).as_nanos_f64() / f64::from(b);
    let steps = new_tokens.max(1) - 1;
    let decode = lat.decode_step(b, prompt_len + new_tokens).as_nanos_f64() / f64::from(b);
    match pool {
        PoolRole::Prefill => prefill,
        PoolRole::Decode => decode * f64::from(steps.max(1)),
        PoolRole::Unified => prefill + decode * f64::from(steps),
    }
}

/// How a bounded run prices elapsed time against a cost ceiling.
#[derive(Clone, Copy)]
pub(crate) enum CostBasis {
    /// Fixed fleet: `replicas × elapsed` seconds.
    FixedReplicas(u32),
    /// Autoscale-aware: the set's accrued replica-seconds.
    Billed,
}

/// The unified floor: DES state shared by both serving fronts, plus the
/// policy/router/memory seams.
pub(crate) struct UnifiedFloor {
    pub(crate) set: ReplicaSet,
    pub(crate) policy: Box<dyn BatchPolicy>,
    /// Pending queues — one shared (index 0) or one per replica,
    /// whichever topology the router declared.
    pub(crate) queues: Vec<VecDeque<Request>>,
    /// Which queue each replica pulls from.
    pub(crate) queue_of: Vec<usize>,
    pub(crate) states: Vec<ReplicaState>,
    pub(crate) mem: Option<MemoryLayer>,
    pub(crate) finished: Vec<Finished>,
    pub(crate) last_completion: SimTime,
    pub(crate) flush: Vec<FlushTimer>,
    /// The observability recording: lifecycle records + counter samples.
    pub(crate) obs: FloorObs,
    /// Reused per-event scratch: which queues' oldest waiter timed out.
    /// Refilled by [`refresh_expired`](Self::refresh_expired); never
    /// reallocated after construction.
    pub(crate) expired_buf: Vec<bool>,
    /// Reused per-arrival scratch: the router's load snapshot.
    pub(crate) load_buf: Vec<ReplicaLoad>,
    /// Reusable retire scratch (see [`Lane::scratch`]).
    pub(crate) scratch_actives: Vec<Active>,
    /// Reusable buffer for handoffs discovered during a retire.
    pub(crate) scratch_handoffs: Vec<Request>,
    pub(crate) prompt_len: u32,
    pub(crate) new_tokens: u32,
    /// Per-replica admission slots (fleet policies; scaling unit costs).
    pub(crate) max_batch: u32,
    /// Total requests this run serves (the autoscaler's done check).
    pub(crate) requests: u32,
}

impl UnifiedFloor {
    pub(crate) fn handle(&mut self, ctx: &mut SimContext<'_, Event>, event: Event) {
        let now = ctx.now();
        match event {
            Event::Arrival(req) => {
                self.obs.record(req.id, now, LifecycleKind::Arrived);
                self.snapshot_load(true);
                let q = self
                    .set
                    .arrival_router
                    .route(&req, &self.load_buf)
                    .min(self.queues.len() - 1);
                self.queues[q].push_back(req);
                self.wake(ctx, q);
            }
            Event::FlushTimeout { queue, generation } => {
                if generation == self.flush[queue].generation {
                    self.flush[queue].deadline = None;
                    if !self.queues[queue].is_empty() {
                        self.expired_buf.iter_mut().for_each(|e| *e = false);
                        self.expired_buf[queue] = true;
                        self.kick_all(ctx);
                    }
                    self.arm_flush_timers(ctx);
                }
            }
            Event::IterationDone(replica) => {
                self.states[replica].busy = false;
                self.with_lane(now, replica, |policy, lane| policy.retire(lane));
                self.dispatch_handoffs(ctx, replica, now);
                self.wake(ctx, replica);
                if self.set.targeted {
                    self.settle_drains(now);
                }
            }
            Event::HandoffDone(dst) => {
                let (h, started) = self.set.links[dst]
                    .inflight
                    .take()
                    .expect("HandoffDone without an in-flight transfer");
                self.obs.record(
                    h.req.id,
                    now,
                    LifecycleKind::HandoffDone {
                        to: dst as u32,
                        wait: started.saturating_duration_since(h.queued_at),
                        transfer: h.transfer,
                    },
                );
                self.set.handoffs += 1;
                self.set.handoff_bytes += h.bytes;
                self.set.handoff_waits.push(
                    started
                        .saturating_duration_since(h.queued_at)
                        .as_nanos_f64(),
                );
                self.set.handoff_transfer_ns += h.transfer.as_nanos_f64();
                self.queues[self.queue_of[dst]].push_back(h.req);
                self.pump_link(ctx, dst, now);
                self.kick(ctx, dst);
            }
            Event::ScaleTick => self.scale_tick(ctx, now),
            Event::ReplicaUp(r) => {
                self.set.bill(now);
                self.set.meta[r].state = RState::Up;
                self.set.scale_ups += 1;
                self.obs.push_scaling(ScalingEvent {
                    at: now,
                    pool: self.set.meta[r].pool,
                    replica: r as u32,
                    action: ScaleAction::Up,
                });
                self.kick(ctx, r);
            }
        }
        self.sample(now);
    }

    /// Restarts idle replicas after `touched`'s queue or state changed:
    /// a targeted set kicks just that replica; a broadcast set refreshes
    /// flush expiry, sweeps every replica, and re-arms the timers.
    fn wake(&mut self, ctx: &mut SimContext<'_, Event>, touched: usize) {
        if self.set.targeted {
            self.kick(ctx, touched);
        } else {
            self.refresh_expired(ctx.now());
            self.kick_all(ctx);
            self.arm_flush_timers(ctx);
        }
    }

    /// Builds the lane — one replica's complete scheduling context — and
    /// hands it to `f` together with the batch policy.
    fn with_lane<R>(
        &mut self,
        now: SimTime,
        replica: usize,
        f: impl FnOnce(&dyn BatchPolicy, &mut Lane<'_>) -> R,
    ) -> R {
        let q = self.queue_of[replica];
        let meta = &self.set.meta[replica];
        let mut lane = Lane {
            prompt_len: self.prompt_len,
            new_tokens: self.new_tokens,
            lat: &self.set.lat[meta.platform_idx],
            now,
            replica,
            pool: meta.pool,
            queue: &mut self.queues[q],
            state: &mut self.states[replica],
            mem: self.mem.as_mut().map(|m| m.lane(replica)),
            obs: &mut self.obs,
            done: &mut self.finished,
            handoffs_out: &mut self.scratch_handoffs,
            scratch: &mut self.scratch_actives,
            last_completion: &mut self.last_completion,
        };
        f(&*self.policy, &mut lane)
    }

    /// Starts the next iteration on replica `r` if it is idle, routable,
    /// and has work (targeted wake-up).
    fn kick(&mut self, ctx: &mut SimContext<'_, Event>, r: usize) {
        if self.states[r].busy
            || matches!(self.set.meta[r].state, RState::Launching | RState::Down)
        {
            return;
        }
        let now = ctx.now();
        let dur = self.with_lane(now, r, |policy, lane| policy.next_iteration(lane, false));
        if let Some(dur) = dur {
            self.states[r].busy = true;
            ctx.schedule(now + dur, Event::IterationDone(r));
        }
    }

    /// Starts work on every idle replica that has something to do.
    /// `expired_buf` marks queues whose oldest waiter timed out (forcing a
    /// partial static batch); the caller fills it once per pass so a
    /// replica consuming a queue's head cannot change the flush decision
    /// for the replicas after it.
    fn kick_all(&mut self, ctx: &mut SimContext<'_, Event>) {
        let now = ctx.now();
        for replica in 0..self.states.len() {
            if self.states[replica].busy {
                continue;
            }
            let flush = self.expired_buf[self.queue_of[replica]];
            let dur = self.with_lane(now, replica, |policy, lane| {
                policy.next_iteration(lane, flush)
            });
            if let Some(dur) = dur {
                self.states[replica].busy = true;
                ctx.schedule(now + dur, Event::IterationDone(replica));
            }
        }
    }

    /// Refills `expired_buf` with which queues' oldest pending arrival has
    /// waited the policy's full flush window.
    fn refresh_expired(&mut self, now: SimTime) {
        let Some(max_wait) = self.policy.flush_after() else {
            self.expired_buf.iter_mut().for_each(|e| *e = false);
            return;
        };
        for (e, q) in self.expired_buf.iter_mut().zip(&self.queues) {
            *e = q
                .front()
                .is_some_and(|r| now.saturating_duration_since(r.arrival) >= max_wait);
        }
    }

    /// Arms each queue's flush timer for its **oldest** pending arrival.
    ///
    /// The timer tracks the head of the queue and is only re-armed when
    /// the head's deadline differs from the one outstanding; heads already
    /// past their deadline are handled by the expiry check every event
    /// performs, so no timer is needed for them.
    fn arm_flush_timers(&mut self, ctx: &mut SimContext<'_, Event>) {
        let Some(max_wait) = self.policy.flush_after() else {
            return;
        };
        for q in 0..self.queues.len() {
            let desired = self.queues[q]
                .front()
                .map(|r| r.arrival + max_wait)
                .filter(|&deadline| deadline > ctx.now());
            let timer = &mut self.flush[q];
            if desired == timer.deadline {
                continue;
            }
            timer.generation += 1; // invalidates any outstanding timer
            timer.deadline = desired;
            if let Some(deadline) = desired {
                ctx.schedule(
                    deadline,
                    Event::FlushTimeout {
                        queue: q,
                        generation: timer.generation,
                    },
                );
            }
        }
    }

    /// Refills `load_buf` with per-replica load snapshots for the
    /// routers. A targeted set additionally marks pool/state eligibility
    /// for the routed direction (`arrivals` or handoffs); a broadcast set
    /// leaves every replica eligible.
    fn snapshot_load(&mut self, arrivals: bool) {
        let UnifiedFloor {
            set,
            queues,
            queue_of,
            states,
            mem,
            load_buf,
            ..
        } = self;
        load_buf.clear();
        load_buf.extend((0..states.len()).map(|r| ReplicaLoad {
            queued: queues[queue_of[r]].len() as u32,
            running: states[r].running() as u32,
            parked: mem.as_ref().map_or(0, |m| m.parked_len(r)) as u32,
            link: set.links[r].depth(),
            eligible: true,
            unit_cost_ns: set.meta[r].unit_cost_ns,
        }));
        if !set.targeted {
            return;
        }
        let want = |m: &ReplicaMeta| {
            if arrivals {
                matches!(m.pool, PoolRole::Unified | PoolRole::Prefill)
            } else {
                m.pool == PoolRole::Decode
            }
        };
        let mut any = false;
        for (l, m) in load_buf.iter_mut().zip(&set.meta) {
            l.eligible = m.state == RState::Up && want(m);
            any |= l.eligible;
        }
        if !any {
            // Degenerate fallback (every candidate mid-drain): route to
            // any non-down replica of the right pool so no request is
            // stranded.
            for (l, m) in load_buf.iter_mut().zip(&set.meta) {
                l.eligible = m.state != RState::Down && want(m);
                any |= l.eligible;
            }
        }
        assert!(any, "fleet has no routable replica");
    }

    /// Starts every handoff the retire just parked in the scratch buffer
    /// (reused across retires).
    fn dispatch_handoffs(&mut self, ctx: &mut SimContext<'_, Event>, from: usize, now: SimTime) {
        if self.scratch_handoffs.is_empty() {
            return;
        }
        let mut handoffs = std::mem::take(&mut self.scratch_handoffs);
        for req in handoffs.drain(..) {
            self.start_handoff(ctx, from, req, now);
        }
        self.scratch_handoffs = handoffs;
    }

    /// Queues `req`'s KV on a decode replica's ingress link, starting the
    /// transfer immediately when the link is idle.
    fn start_handoff(
        &mut self,
        ctx: &mut SimContext<'_, Event>,
        from: usize,
        req: Request,
        now: SimTime,
    ) {
        self.snapshot_load(false);
        let dst = self
            .set
            .handoff_router
            .route(&req, &self.load_buf)
            .min(self.queues.len() - 1);
        // Prompt plus the first token produced by prefill, in whole
        // blocks — what paged attention actually migrates.
        let bytes = self
            .set
            .kv
            .handoff_bytes(u64::from(req.prompt_len).saturating_add(1));
        let src_p = &self.set.platforms[self.set.meta[from].platform_idx];
        let dst_p = &self.set.platforms[self.set.meta[dst].platform_idx];
        let transfer = src_p.kv_handoff_time(dst_p, bytes);
        self.obs.record(
            req.id,
            now,
            LifecycleKind::HandoffQueued {
                from: from as u32,
                bytes,
            },
        );
        self.set.links[dst].queue.push_back(Handoff {
            req,
            queued_at: now,
            bytes,
            transfer,
        });
        self.pump_link(ctx, dst, now);
    }

    /// Starts the next queued transfer on `dst`'s link if it is idle.
    fn pump_link(&mut self, ctx: &mut SimContext<'_, Event>, dst: usize, now: SimTime) {
        if self.set.links[dst].inflight.is_some() {
            return;
        }
        if let Some(h) = self.set.links[dst].queue.pop_front() {
            let transfer = h.transfer;
            self.set.links[dst].inflight = Some((h, now));
            ctx.schedule(now + transfer, Event::HandoffDone(dst));
        }
    }

    /// Outstanding work at replica `i`: its queue, its running batch, and
    /// handoffs already committed to its link.
    fn backlog(&self, i: usize) -> u32 {
        (self.queues[self.queue_of[i]].len() + self.states[i].running()) as u32
            + self.set.links[i].depth()
    }

    fn scale_tick(&mut self, ctx: &mut SimContext<'_, Event>, now: SimTime) {
        let Some(auto) = self.set.autoscale else {
            return;
        };
        let all_done = self.obs.completed_total() >= self.requests;
        if !all_done {
            let pools: &[PoolRole] = if self.set.disagg {
                &[PoolRole::Prefill, PoolRole::Decode]
            } else {
                &[PoolRole::Unified]
            };
            for &pool in pools {
                self.scale_pool(ctx, pool, auto, now);
            }
            ctx.schedule(now + auto.interval, Event::ScaleTick);
        }
        self.settle_drains(now);
    }

    fn scale_pool(
        &mut self,
        ctx: &mut SimContext<'_, Event>,
        pool: PoolRole,
        auto: AutoscaleConfig,
        now: SimTime,
    ) {
        // One counting pass over the pool: outstanding work, up/launching
        // tallies, the newest up replica (drain victim), and the pool's
        // seed platform — no per-tick index vectors.
        let mut outstanding = 0u32;
        let mut up_count = 0u32;
        let mut last_up = None;
        let mut launching = 0u32;
        let mut seed_platform = None;
        for i in 0..self.set.meta.len() {
            if self.set.meta[i].pool != pool {
                continue;
            }
            if seed_platform.is_none() {
                seed_platform = Some(self.set.meta[i].platform_idx);
            }
            outstanding += self.backlog(i);
            match self.set.meta[i].state {
                RState::Up => {
                    up_count += 1;
                    last_up = Some(i);
                }
                RState::Launching => launching += 1,
                _ => {}
            }
        }
        let pressure = f64::from(outstanding) / f64::from(up_count.max(1));
        if pressure > auto.high_load && (up_count + launching) < auto.max_per_pool {
            // Clone the pool's seed platform for the new replica.
            let platform_idx = seed_platform.expect("pool has at least one replica");
            let launch_cost = auto.provision_delay
                + self.set.platforms[platform_idx].h2d_transfer(self.set.weight_bytes);
            let new_idx = self.set.meta.len();
            self.set.meta.push(ReplicaMeta {
                platform_idx,
                pool,
                state: RState::Launching,
                unit_cost_ns: unit_cost_ns(
                    &self.set.lat[platform_idx],
                    pool,
                    self.max_batch,
                    self.prompt_len,
                    self.new_tokens,
                ),
            });
            self.set.links.push(LinkRt::default());
            self.states.push(ReplicaState::default());
            self.queues.push(VecDeque::new());
            self.queue_of.push(new_idx);
            self.obs.push_scaling(ScalingEvent {
                at: now,
                pool,
                replica: new_idx as u32,
                action: ScaleAction::LaunchRequested,
            });
            ctx.schedule(now + launch_cost, Event::ReplicaUp(new_idx));
        } else if pressure < auto.low_load && up_count > auto.min_per_pool && launching == 0 {
            // Drain the newest up replica; it keeps its backlog and
            // leaves once empty.
            let victim = last_up.expect("up set non-empty above");
            self.set.bill(now);
            self.set.meta[victim].state = RState::Draining;
            self.obs.push_scaling(ScalingEvent {
                at: now,
                pool,
                replica: victim as u32,
                action: ScaleAction::DrainRequested,
            });
        }
    }

    /// Retires draining replicas whose backlog has fully emptied.
    fn settle_drains(&mut self, now: SimTime) {
        for i in 0..self.set.meta.len() {
            let empty = self.set.meta[i].state == RState::Draining
                && !self.states[i].busy
                && self.queues[self.queue_of[i]].is_empty()
                && self.states[i].running() == 0
                && self.set.links[i].depth() == 0;
            if empty {
                self.set.bill(now);
                self.set.meta[i].state = RState::Down;
                self.set.scale_downs += 1;
                self.obs.push_scaling(ScalingEvent {
                    at: now,
                    pool: self.set.meta[i].pool,
                    replica: i as u32,
                    action: ScaleAction::Down,
                });
            }
        }
    }

    /// Samples every counter track at an iteration boundary, in the shape
    /// the run's trace expects. Re-sampling at the same instant
    /// overwrites, so each boundary keeps its final state.
    fn sample(&mut self, now: SimTime) {
        let UnifiedFloor {
            set,
            queues,
            queue_of,
            states,
            mem,
            obs,
            ..
        } = self;
        match obs {
            FloorObs::Serve(t) => {
                let running: usize = states.iter().map(ReplicaState::running).sum();
                let parked = mem.as_ref().map_or(0, MemoryLayer::parked_total);
                let busy = states.iter().filter(|s| s.busy).count();
                let sample = CounterSample {
                    at: now,
                    queue_depth: queues.iter().map(VecDeque::len).sum::<usize>() as u32,
                    running: running as u32,
                    parked: parked as u32,
                    busy_replicas: busy as u32,
                    kv_used_blocks: mem.as_ref().map_or(0, MemoryLayer::used_blocks),
                    kv_total_blocks: mem.as_ref().map_or(0, MemoryLayer::total_blocks),
                    admitted_total: t.admitted_total(),
                    completed_total: t.completed_total(),
                };
                t.push_sample(sample);
            }
            FloorObs::Fleet(t) => {
                let mut prefill_queue = 0u32;
                let mut decode_queue = 0u32;
                let mut running = 0u32;
                for (r, m) in set.meta.iter().enumerate() {
                    running += states[r].actives.len() as u32;
                    if m.pool == PoolRole::Decode {
                        decode_queue += queues[queue_of[r]].len() as u32;
                    } else {
                        prefill_queue += queues[queue_of[r]].len() as u32;
                    }
                }
                let handoff_queued: u32 = set.links.iter().map(|l| l.queue.len() as u32).sum();
                let handoff_inflight =
                    set.links.iter().filter(|l| l.inflight.is_some()).count() as u32;
                let live = set.live_count();
                set.peak_live = set.peak_live.max(live);
                t.push_sample(FleetSample {
                    at: now,
                    prefill_queue,
                    decode_queue,
                    running,
                    handoff_queued,
                    handoff_inflight,
                    live_replicas: live,
                    arrived_total: t.arrived_total(),
                    completed_total: t.completed_total(),
                });
            }
        }
    }
}

/// Drives the event loop to completion (or to the first blown budget),
/// returning whether the run aborted. Bounded runs step the same loop
/// one event at a time with incremental miss and bill bookkeeping, so a
/// run no budget stops is byte-identical to the unbounded run.
pub(crate) fn run_unified(
    floor: &mut UnifiedFloor,
    sim: &mut Simulator<Event>,
    stop: StopCondition,
    slo: SloTargets,
    cost: CostBasis,
) -> bool {
    let mut aborted = false;
    if stop.is_unbounded() {
        sim.run(|ctx, event| floor.handle(ctx, event));
    } else {
        let mut guard = StopGuard::new(stop, slo);
        let mut noted = 0usize;
        while sim.step(|ctx, event| floor.handle(ctx, event)) {
            while noted < floor.finished.len() {
                let f = &floor.finished[noted];
                noted += 1;
                guard.note(f.ttft, f.e2e);
            }
            let accrued = || match cost {
                CostBasis::FixedReplicas(n) => {
                    f64::from(n)
                        * sim
                            .now()
                            .saturating_duration_since(SimTime::ZERO)
                            .as_secs_f64()
                }
                CostBasis::Billed => floor.set.accrued_replica_seconds(sim.now()),
            };
            if guard.miss_budget_blown() || (guard.wants_cost() && guard.cost_blown(accrued())) {
                aborted = true;
                break;
            }
        }
    }
    aborted
}
