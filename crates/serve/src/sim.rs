//! The discrete-event serving loop.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use skip_des::{percentile, SimContext, SimDuration, SimTime, Simulator};
use skip_hw::Platform;
use skip_llm::ModelConfig;

use crate::latency::LatencyModel;
use crate::request::{Request, RequestStream};

/// Batching policy of the serving endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// Classic static batching: wait until `batch_size` requests are
    /// queued (or `max_wait` has passed since the oldest arrival), then
    /// run the whole batch to completion as one job.
    Static {
        /// Target batch size.
        batch_size: u32,
        /// Longest a request may wait for the batch to fill.
        max_wait: SimDuration,
    },
    /// Iteration-level continuous batching (Orca/vLLM style): new requests
    /// join at the next iteration boundary; each iteration is either a
    /// prefill for the newcomers or one decode step for the running batch.
    Continuous {
        /// Maximum concurrent requests in the running batch.
        max_batch: u32,
    },
}

/// One serving experiment's configuration.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// The platform serving the model.
    pub platform: Platform,
    /// The model being served.
    pub model: ModelConfig,
    /// Batching policy.
    pub policy: Policy,
    /// Number of requests to simulate.
    pub requests: u32,
    /// Poisson arrival rate, requests per second.
    pub arrival_rate_per_s: f64,
    /// Prompt length of every request, tokens.
    pub prompt_len: u32,
    /// Output tokens per request.
    pub new_tokens: u32,
    /// RNG seed for the arrival process.
    pub seed: u64,
}

/// Measured serving behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Requests completed (always equals the configured count).
    pub completed: u32,
    /// Median time-to-first-token.
    pub ttft_p50: SimDuration,
    /// 95th-percentile time-to-first-token.
    pub ttft_p95: SimDuration,
    /// 99th-percentile time-to-first-token.
    pub ttft_p99: SimDuration,
    /// Median end-to-end latency.
    pub e2e_p50: SimDuration,
    /// 95th-percentile end-to-end latency.
    pub e2e_p95: SimDuration,
    /// Output tokens per second over the simulation span.
    pub throughput_tok_s: f64,
    /// Wall-clock span from first arrival to last completion.
    pub makespan: SimDuration,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Arrival(Request),
    /// A replica finished its current iteration/job.
    IterationDone(usize),
    FlushTimeout(u64),
}

struct Active {
    req: Request,
    generated: u32,
    ttft: Option<SimDuration>,
}

struct Finished {
    ttft: SimDuration,
    e2e: SimDuration,
}

/// The mutable serving-floor state shared by all event handlers.
struct Floor {
    pending: VecDeque<Request>,
    /// Per-replica running batch (continuous policy).
    actives: Vec<Vec<Active>>,
    /// Per-replica in-flight static job.
    static_jobs: Vec<Vec<(Request, SimTime)>>,
    busy: Vec<bool>,
    finished: Vec<Finished>,
    last_completion: SimTime,
    flush_generation: u64,
}

/// Runs the serving simulation on a single replica.
///
/// Deterministic for a fixed config (seeded arrivals, memoized engine).
///
/// # Panics
///
/// Panics if `requests` is zero or the policy's batch capacity is zero.
#[must_use]
pub fn simulate(cfg: &ServingConfig) -> ServingReport {
    simulate_replicas(cfg, 1)
}

/// Runs the serving simulation across `replicas` identical instances of
/// the platform behind one shared queue — endpoint fleet sizing. Idle
/// replicas pull from the shared queue at iteration boundaries.
///
/// # Panics
///
/// Panics if `replicas` or `requests` is zero, or the policy's batch
/// capacity is zero.
#[must_use]
pub fn simulate_replicas(cfg: &ServingConfig, replicas: u32) -> ServingReport {
    assert!(replicas > 0, "need at least one replica");
    assert!(cfg.requests > 0, "simulate at least one request");
    match cfg.policy {
        Policy::Static { batch_size, .. } => {
            assert!(batch_size > 0, "static batch size must be positive");
        }
        Policy::Continuous { max_batch } => {
            assert!(max_batch > 0, "continuous max_batch must be positive");
        }
    }

    let n = replicas as usize;
    let lat = LatencyModel::new(cfg.platform.clone(), cfg.model.clone());
    let mut sim: Simulator<Event> = Simulator::new();
    let mut first_arrival: Option<SimTime> = None;
    for req in RequestStream::poisson(
        cfg.arrival_rate_per_s,
        cfg.prompt_len,
        cfg.new_tokens,
        cfg.seed,
    )
    .take(cfg.requests as usize)
    {
        first_arrival.get_or_insert(req.arrival);
        sim.schedule(req.arrival, Event::Arrival(req));
    }

    let mut floor = Floor {
        pending: VecDeque::new(),
        actives: (0..n).map(|_| Vec::new()).collect(),
        static_jobs: (0..n).map(|_| Vec::new()).collect(),
        busy: vec![false; n],
        finished: Vec::new(),
        last_completion: SimTime::ZERO,
        flush_generation: 0,
    };

    sim.run(|ctx, event| {
        let now = ctx.now();
        match event {
            Event::Arrival(req) => {
                floor.pending.push_back(req);
                kick_idle_replicas(cfg, &lat, &mut floor, ctx, false);
                // Arm a flush timer if the queue cannot fill a static batch.
                if let Policy::Static { max_wait, .. } = cfg.policy {
                    if !floor.pending.is_empty() {
                        floor.flush_generation += 1;
                        ctx.schedule(
                            now + max_wait,
                            Event::FlushTimeout(floor.flush_generation),
                        );
                    }
                }
            }
            Event::FlushTimeout(generation) => {
                if generation == floor.flush_generation && !floor.pending.is_empty() {
                    kick_idle_replicas(cfg, &lat, &mut floor, ctx, true);
                }
            }
            Event::IterationDone(replica) => {
                floor.busy[replica] = false;
                retire(cfg, &mut floor, replica, now);
                let oldest_expired = matches!(cfg.policy, Policy::Static { max_wait, .. }
                    if floor
                        .pending
                        .front()
                        .is_some_and(|r| now.saturating_duration_since(r.arrival) >= max_wait));
                kick_idle_replicas(cfg, &lat, &mut floor, ctx, oldest_expired);
            }
        }
    });

    // Collect metrics.
    let ttfts: Vec<f64> = floor.finished.iter().map(|f| f.ttft.as_nanos_f64()).collect();
    let e2es: Vec<f64> = floor.finished.iter().map(|f| f.e2e.as_nanos_f64()).collect();
    let makespan = floor
        .last_completion
        .saturating_duration_since(first_arrival.unwrap_or(SimTime::ZERO));
    let total_tokens = u64::from(cfg.requests) * u64::from(cfg.new_tokens.max(1));
    let d = |v: f64| SimDuration::from_nanos_f64(v);
    ServingReport {
        completed: floor.finished.len() as u32,
        ttft_p50: d(percentile(&ttfts, 50.0)),
        ttft_p95: d(percentile(&ttfts, 95.0)),
        ttft_p99: d(percentile(&ttfts, 99.0)),
        e2e_p50: d(percentile(&e2es, 50.0)),
        e2e_p95: d(percentile(&e2es, 95.0)),
        throughput_tok_s: total_tokens as f64 / makespan.as_secs_f64().max(1e-12),
        makespan,
    }
}

/// Credits the iteration/job that just completed on `replica`.
fn retire(cfg: &ServingConfig, floor: &mut Floor, replica: usize, now: SimTime) {
    match cfg.policy {
        Policy::Static { .. } => {
            for (req, first_token_at) in floor.static_jobs[replica].drain(..) {
                floor.finished.push(Finished {
                    ttft: first_token_at.saturating_duration_since(req.arrival),
                    e2e: now.saturating_duration_since(req.arrival),
                });
                floor.last_completion = now;
            }
        }
        Policy::Continuous { .. } => {
            let active = &mut floor.actives[replica];
            let mut i = 0;
            while i < active.len() {
                let a = &mut active[i];
                if a.generated == 0 {
                    // Prefill just finished: first token out.
                    a.generated = 1;
                    a.ttft = Some(now.saturating_duration_since(a.req.arrival));
                } else {
                    a.generated += 1;
                }
                if a.generated >= a.req.new_tokens.max(1) {
                    let a = active.swap_remove(i);
                    floor.finished.push(Finished {
                        ttft: a.ttft.expect("prefill completed before retirement"),
                        e2e: now.saturating_duration_since(a.req.arrival),
                    });
                    floor.last_completion = now;
                } else {
                    i += 1;
                }
            }
        }
    }
}

/// Starts work on every idle replica that has something to do.
/// `flush` forces a partial static batch (timeout expired).
fn kick_idle_replicas(
    cfg: &ServingConfig,
    lat: &LatencyModel,
    floor: &mut Floor,
    ctx: &mut SimContext<'_, Event>,
    flush: bool,
) {
    let now = ctx.now();
    for replica in 0..floor.busy.len() {
        if floor.busy[replica] {
            continue;
        }
        let dur = match cfg.policy {
            Policy::Static { batch_size, .. } => {
                let enough = floor.pending.len() as u32 >= batch_size;
                if floor.pending.is_empty() || !(enough || flush) {
                    continue;
                }
                let take = (floor.pending.len() as u32).min(batch_size);
                Some(start_static_job(
                    lat,
                    &mut floor.pending,
                    take,
                    cfg,
                    now,
                    &mut floor.static_jobs[replica],
                ))
            }
            Policy::Continuous { .. } => {
                continuous_iteration(lat, cfg, &mut floor.pending, &mut floor.actives[replica])
            }
        };
        if let Some(dur) = dur {
            floor.busy[replica] = true;
            ctx.schedule(now + dur, Event::IterationDone(replica));
        }
    }
}

/// Starts a static job: prefill + all decode steps as one engine
/// occupancy. Returns the job duration; records per-request first-token
/// instants.
fn start_static_job(
    lat: &LatencyModel,
    pending: &mut VecDeque<Request>,
    take: u32,
    cfg: &ServingConfig,
    now: SimTime,
    static_job: &mut Vec<(Request, SimTime)>,
) -> SimDuration {
    let batch: Vec<Request> = (0..take).filter_map(|_| pending.pop_front()).collect();
    let b = batch.len() as u32;
    let prefill = lat.prefill(b, cfg.prompt_len);
    let mut total = prefill;
    for step in 1..cfg.new_tokens.max(1) {
        total += lat.decode_step(b, cfg.prompt_len + step);
    }
    let first_token_at = now + prefill;
    for req in batch {
        static_job.push((req, first_token_at));
    }
    total
}

/// Picks and prices the next continuous-batching iteration, if any work
/// exists; `None` when idle.
fn continuous_iteration(
    lat: &LatencyModel,
    cfg: &ServingConfig,
    pending: &mut VecDeque<Request>,
    active: &mut Vec<Active>,
) -> Option<SimDuration> {
    let max_batch = match cfg.policy {
        Policy::Continuous { max_batch } => max_batch,
        Policy::Static { .. } => unreachable!("continuous_iteration under static policy"),
    };
    let slots = max_batch as usize - active.len().min(max_batch as usize);
    let newcomers = pending.len().min(slots);
    if newcomers > 0 {
        // Prefill iteration for the newcomers.
        for _ in 0..newcomers {
            let req = pending.pop_front().expect("counted above");
            active.push(Active {
                req,
                generated: 0,
                ttft: None,
            });
        }
        Some(lat.prefill(newcomers as u32, cfg.prompt_len))
    } else if !active.is_empty() {
        // One decode step for the whole running batch.
        let ctx = active
            .iter()
            .map(|a| a.req.prompt_len + a.generated)
            .max()
            .expect("non-empty");
        Some(lat.decode_step(active.len() as u32, ctx))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skip_llm::zoo;

    fn base_cfg(policy: Policy) -> ServingConfig {
        ServingConfig {
            platform: Platform::intel_h100(),
            model: zoo::gpt2(),
            policy,
            requests: 30,
            arrival_rate_per_s: 20.0,
            prompt_len: 128,
            new_tokens: 4,
            seed: 11,
        }
    }

    #[test]
    fn continuous_serving_completes_every_request() {
        let r = simulate(&base_cfg(Policy::Continuous { max_batch: 8 }));
        assert_eq!(r.completed, 30);
        assert!(r.ttft_p50 > SimDuration::ZERO);
        assert!(r.e2e_p50 >= r.ttft_p50);
        assert!(r.ttft_p95 >= r.ttft_p50);
        assert!(r.throughput_tok_s > 0.0);
    }

    #[test]
    fn static_serving_completes_every_request() {
        let r = simulate(&base_cfg(Policy::Static {
            batch_size: 8,
            max_wait: SimDuration::from_millis(50),
        }));
        assert_eq!(r.completed, 30);
        assert!(r.e2e_p95 >= r.e2e_p50);
    }

    #[test]
    fn simulation_is_deterministic() {
        let cfg = base_cfg(Policy::Continuous { max_batch: 4 });
        assert_eq!(simulate(&cfg), simulate(&cfg));
        assert_eq!(simulate_replicas(&cfg, 3), simulate_replicas(&cfg, 3));
    }

    #[test]
    fn continuous_batching_beats_static_ttft_under_load() {
        // The vLLM/Orca claim: joining at iteration boundaries avoids
        // waiting for a full static batch.
        let cont = simulate(&base_cfg(Policy::Continuous { max_batch: 8 }));
        let stat = simulate(&base_cfg(Policy::Static {
            batch_size: 8,
            max_wait: SimDuration::from_millis(200),
        }));
        assert!(
            cont.ttft_p95 < stat.ttft_p95,
            "continuous {} vs static {}",
            cont.ttft_p95,
            stat.ttft_p95
        );
    }

    #[test]
    fn higher_load_raises_tail_latency() {
        let mut light = base_cfg(Policy::Continuous { max_batch: 8 });
        light.arrival_rate_per_s = 5.0;
        let mut heavy = light.clone();
        heavy.arrival_rate_per_s = 200.0;
        let l = simulate(&light);
        let h = simulate(&heavy);
        assert!(h.ttft_p95 >= l.ttft_p95);
    }

    #[test]
    fn more_replicas_cut_tail_latency_under_heavy_load() {
        let mut cfg = base_cfg(Policy::Continuous { max_batch: 4 });
        cfg.arrival_rate_per_s = 400.0;
        cfg.requests = 80;
        let one = simulate_replicas(&cfg, 1);
        let four = simulate_replicas(&cfg, 4);
        assert_eq!(four.completed, 80);
        assert!(
            four.ttft_p95 < one.ttft_p95,
            "4 replicas {} vs 1 replica {}",
            four.ttft_p95,
            one.ttft_p95
        );
    }

    #[test]
    fn replicas_also_help_static_batching() {
        let mut cfg = base_cfg(Policy::Static {
            batch_size: 4,
            max_wait: SimDuration::from_millis(20),
        });
        cfg.arrival_rate_per_s = 400.0;
        cfg.requests = 80;
        let one = simulate_replicas(&cfg, 1);
        let four = simulate_replicas(&cfg, 4);
        assert_eq!(four.completed, 80);
        assert!(four.e2e_p95 <= one.e2e_p95);
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn zero_requests_rejected() {
        let mut cfg = base_cfg(Policy::Continuous { max_batch: 1 });
        cfg.requests = 0;
        let _ = simulate(&cfg);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        let _ = simulate_replicas(&base_cfg(Policy::Continuous { max_batch: 1 }), 0);
    }
}
