//! The discrete-event serving loop.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use skip_des::{percentile, SimContext, SimDuration, SimTime, Simulator};
use skip_hw::{Interconnect, Platform};
use skip_llm::ModelConfig;
use skip_mem::{swap_cost, BlockAllocator, EvictionAction, KvSpec, OffloadPolicy};

use crate::latency::LatencyModel;
use crate::observe::{
    CounterSample, LifecycleKind, ResumeAction, ServingTrace, SloReport, SloTargets,
};
use crate::request::{Request, RequestStream};

/// Batching policy of the serving endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// Classic static batching: wait until `batch_size` requests are
    /// queued (or `max_wait` has passed since the oldest arrival), then
    /// run the whole batch to completion as one job.
    Static {
        /// Target batch size.
        batch_size: u32,
        /// Longest a request may wait for the batch to fill.
        max_wait: SimDuration,
    },
    /// Iteration-level continuous batching (Orca/vLLM style): new requests
    /// join at the next iteration boundary; each iteration is either a
    /// prefill for the newcomers or one decode step for the running batch.
    /// With [`ServingConfig::kv`] set, the batch is additionally bounded by
    /// the paged KV-cache pool: admission reserves prompt blocks, decode
    /// steps grow tables, and exhaustion preempts the newest request.
    Continuous {
        /// Maximum concurrent requests in the running batch.
        max_batch: u32,
    },
}

/// Paged KV-cache budget and eviction policy for continuous batching.
///
/// `None` in [`ServingConfig::kv`] models an infinite cache (the
/// pre-memory-subsystem behaviour); `Some` bounds each replica to a block
/// pool and makes the scheduler memory-aware.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KvCacheConfig {
    /// Device KV blocks available per replica.
    pub blocks_per_replica: u32,
    /// Token slots per block (16 is vLLM's default).
    pub block_tokens: u32,
    /// What to do with a preemption victim's blocks.
    pub offload: OffloadPolicy,
}

impl KvCacheConfig {
    /// A budget of `blocks` default-sized pages with the given offload
    /// policy.
    #[must_use]
    pub fn with_blocks(blocks: u32, offload: OffloadPolicy) -> Self {
        KvCacheConfig {
            blocks_per_replica: blocks,
            block_tokens: KvSpec::DEFAULT_BLOCK_TOKENS,
            offload,
        }
    }

    /// Sizes the per-replica pool from what is left of `platform`'s HBM
    /// after the FP16 weights of `model`, holding back `reserve_fraction`
    /// for activations.
    #[must_use]
    pub fn for_platform(
        platform: &Platform,
        model: &ModelConfig,
        reserve_fraction: f64,
        offload: OffloadPolicy,
    ) -> Self {
        let spec = KvSpec::for_model(model, KvSpec::DEFAULT_BLOCK_TOKENS);
        KvCacheConfig {
            blocks_per_replica: spec.pool_blocks(
                &platform.gpu,
                model.weight_bytes_fp16(),
                reserve_fraction,
            ),
            block_tokens: KvSpec::DEFAULT_BLOCK_TOKENS,
            offload,
        }
    }
}

/// One serving experiment's configuration.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// The platform serving the model.
    pub platform: Platform,
    /// The model being served.
    pub model: ModelConfig,
    /// Batching policy.
    pub policy: Policy,
    /// Number of requests to simulate.
    pub requests: u32,
    /// Poisson arrival rate, requests per second.
    pub arrival_rate_per_s: f64,
    /// Prompt length of every request, tokens.
    pub prompt_len: u32,
    /// Output tokens per request.
    pub new_tokens: u32,
    /// RNG seed for the arrival process.
    pub seed: u64,
    /// Paged KV-cache budget; `None` simulates an infinite cache.
    pub kv: Option<KvCacheConfig>,
    /// Latency SLO targets the run is scored against (all-`None` disables
    /// SLO accounting).
    pub slo: SloTargets,
}

/// Measured serving behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Requests completed (equals the configured count for every
    /// well-formed run).
    pub completed: u32,
    /// Median time-to-first-token.
    pub ttft_p50: SimDuration,
    /// 95th-percentile time-to-first-token.
    pub ttft_p95: SimDuration,
    /// 99th-percentile time-to-first-token.
    pub ttft_p99: SimDuration,
    /// Median end-to-end latency.
    pub e2e_p50: SimDuration,
    /// 95th-percentile end-to-end latency.
    pub e2e_p95: SimDuration,
    /// Output tokens per second over the simulation span, counting only
    /// completed requests.
    pub throughput_tok_s: f64,
    /// Wall-clock span from first arrival to last completion.
    pub makespan: SimDuration,
    /// KV-pool preemptions (0 without a memory budget).
    pub preemptions: u64,
    /// Preemptions resolved by swapping blocks to host memory.
    pub swap_outs: u64,
    /// KV bytes moved host-ward by those swaps (the same amount returns
    /// on resume).
    pub swapped_bytes: u64,
    /// Context tokens re-prefilled because their blocks were dropped.
    pub recomputed_tokens: u64,
    /// High-water fraction of the per-replica KV pool in use (0 without a
    /// memory budget).
    pub kv_peak_occupancy: f64,
    /// SLO attainment against [`ServingConfig::slo`] (vacuous when no
    /// target is configured).
    pub slo: SloReport,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Arrival(Request),
    /// A replica finished its current iteration/job.
    IterationDone(usize),
    FlushTimeout(u64),
}

struct Active {
    req: Request,
    generated: u32,
    ttft: Option<SimDuration>,
}

/// How a preempted request gets its KV state back on resume.
#[derive(Clone, Copy)]
enum ResumeKind {
    /// Blocks were dropped; the context re-prefills.
    Recompute,
    /// Blocks sit in host memory; copying them back costs one transfer.
    SwapIn {
        /// Tokens swapped out (prices the return copy).
        tokens: u64,
    },
}

struct Parked {
    active: Active,
    resume: ResumeKind,
}

struct Finished {
    ttft: SimDuration,
    e2e: SimDuration,
}

/// Immutable memory-model context shared by all replicas.
struct MemCtx {
    spec: KvSpec,
    offload: OffloadPolicy,
    interconnect: Interconnect,
}

/// Cumulative memory-pressure counters across the fleet.
#[derive(Default)]
struct MemCounters {
    preemptions: u64,
    swap_outs: u64,
    swapped_bytes: u64,
    recomputed_tokens: u64,
}

/// The mutable serving-floor state shared by all event handlers.
struct Floor {
    pending: VecDeque<Request>,
    /// Per-replica running batch (continuous policy).
    actives: Vec<Vec<Active>>,
    /// Per-replica in-flight static job.
    static_jobs: Vec<Vec<(Request, SimTime)>>,
    /// Per-replica KV block pool (empty without a memory budget).
    pools: Vec<BlockAllocator>,
    /// Per-replica preempted requests awaiting resume, FCFS.
    parked: Vec<VecDeque<Parked>>,
    busy: Vec<bool>,
    finished: Vec<Finished>,
    last_completion: SimTime,
    flush_generation: u64,
    /// Deadline of the outstanding flush timer (static policy): the oldest
    /// pending arrival plus `max_wait`. `None` when no timer is armed.
    flush_deadline: Option<SimTime>,
    mem_counters: MemCounters,
    /// The observability recording: lifecycle records + counter samples.
    obs: ServingTrace,
}

/// Runs the serving simulation on a single replica.
///
/// Deterministic for a fixed config (seeded arrivals, memoized engine).
///
/// # Panics
///
/// Panics if `requests` is zero, the policy's batch capacity is zero, or a
/// configured KV pool cannot hold even one full request.
#[must_use]
pub fn simulate(cfg: &ServingConfig) -> ServingReport {
    simulate_replicas(cfg, 1)
}

/// Runs the serving simulation across `replicas` identical instances of
/// the platform behind one shared queue — endpoint fleet sizing. Idle
/// replicas pull from the shared queue at iteration boundaries.
///
/// # Panics
///
/// Panics if `replicas` or `requests` is zero, the policy's batch capacity
/// is zero, or a configured KV pool cannot hold even one full request.
#[must_use]
pub fn simulate_replicas(cfg: &ServingConfig, replicas: u32) -> ServingReport {
    simulate_traced(cfg, replicas).0
}

/// Runs the serving simulation and additionally returns the full
/// observability recording: per-request lifecycle records and the counter
/// tracks sampled at every iteration boundary.
///
/// The [`ServingTrace`] exports to the Chrome-trace timeline via
/// [`ServingTrace::to_trace`] and `skip_trace::chrome::to_chrome_trace`.
///
/// # Panics
///
/// Panics if `replicas` or `requests` is zero, the policy's batch capacity
/// is zero, or a configured KV pool cannot hold even one full request.
#[must_use]
pub fn simulate_traced(cfg: &ServingConfig, replicas: u32) -> (ServingReport, ServingTrace) {
    assert!(replicas > 0, "need at least one replica");
    assert!(cfg.requests > 0, "simulate at least one request");
    match cfg.policy {
        Policy::Static { batch_size, .. } => {
            assert!(batch_size > 0, "static batch size must be positive");
        }
        Policy::Continuous { max_batch } => {
            assert!(max_batch > 0, "continuous max_batch must be positive");
        }
    }
    let mem = cfg.kv.map(|kv| {
        assert!(kv.blocks_per_replica > 0, "KV pool must have blocks");
        let spec = KvSpec::for_model(&cfg.model, kv.block_tokens);
        let lifetime =
            spec.blocks_for(u64::from(cfg.prompt_len) + u64::from(cfg.new_tokens.max(1)));
        assert!(
            kv.blocks_per_replica >= lifetime,
            "KV pool of {} blocks cannot hold one full request ({lifetime} blocks); \
             no schedule can complete it",
            kv.blocks_per_replica,
        );
        MemCtx {
            spec,
            offload: kv.offload,
            interconnect: cfg.platform.interconnect.clone(),
        }
    });

    let n = replicas as usize;
    let lat = LatencyModel::new(cfg.platform.clone(), cfg.model.clone());
    let mut sim: Simulator<Event> = Simulator::new();
    let mut first_arrival: Option<SimTime> = None;
    for req in RequestStream::poisson(
        cfg.arrival_rate_per_s,
        cfg.prompt_len,
        cfg.new_tokens,
        cfg.seed,
    )
    .take(cfg.requests as usize)
    {
        first_arrival.get_or_insert(req.arrival);
        sim.schedule(req.arrival, Event::Arrival(req));
    }

    let pool_blocks = cfg.kv.map_or(0, |kv| kv.blocks_per_replica);
    let mut floor = Floor {
        pending: VecDeque::new(),
        actives: (0..n).map(|_| Vec::new()).collect(),
        static_jobs: (0..n).map(|_| Vec::new()).collect(),
        pools: if mem.is_some() {
            (0..n).map(|_| BlockAllocator::new(pool_blocks)).collect()
        } else {
            Vec::new()
        },
        parked: (0..n).map(|_| VecDeque::new()).collect(),
        busy: vec![false; n],
        finished: Vec::new(),
        last_completion: SimTime::ZERO,
        flush_generation: 0,
        flush_deadline: None,
        mem_counters: MemCounters::default(),
        obs: ServingTrace::new(cfg.model.name.clone(), cfg.platform.name.clone(), replicas),
    };

    sim.run(|ctx, event| {
        let now = ctx.now();
        match event {
            Event::Arrival(req) => {
                floor.obs.record(req.id, now, LifecycleKind::Arrived);
                floor.pending.push_back(req);
                let flush = oldest_expired(cfg, &floor, now);
                kick_idle_replicas(cfg, &lat, mem.as_ref(), &mut floor, ctx, flush);
                arm_flush_for_oldest(cfg, &mut floor, ctx);
            }
            Event::FlushTimeout(generation) => {
                if generation == floor.flush_generation {
                    floor.flush_deadline = None;
                    if !floor.pending.is_empty() {
                        kick_idle_replicas(cfg, &lat, mem.as_ref(), &mut floor, ctx, true);
                    }
                    arm_flush_for_oldest(cfg, &mut floor, ctx);
                }
            }
            Event::IterationDone(replica) => {
                floor.busy[replica] = false;
                retire(cfg, &mut floor, replica, now);
                let flush = oldest_expired(cfg, &floor, now);
                kick_idle_replicas(cfg, &lat, mem.as_ref(), &mut floor, ctx, flush);
                arm_flush_for_oldest(cfg, &mut floor, ctx);
            }
        }
        sample_floor(&mut floor, now);
    });

    let report = assemble_report(cfg, &floor, first_arrival);
    (report, floor.obs)
}

/// `true` under static batching when the oldest pending request has waited
/// its full `max_wait` — every event then flushes a partial batch onto any
/// idle replica.
fn oldest_expired(cfg: &ServingConfig, floor: &Floor, now: SimTime) -> bool {
    matches!(cfg.policy, Policy::Static { max_wait, .. }
        if floor
            .pending
            .front()
            .is_some_and(|r| now.saturating_duration_since(r.arrival) >= max_wait))
}

/// Arms the static-batch flush timer for the **oldest** pending arrival.
///
/// The pre-fix scheduler re-armed the timer on *every* arrival, measuring
/// `max_wait` from the newest request — under a steady trickle the deadline
/// slid forever and the oldest request waited unboundedly. The timer now
/// tracks the head of the queue and is only re-armed when the head's
/// deadline differs from the one outstanding; heads already past their
/// deadline are handled by the [`oldest_expired`] flush check every event
/// performs, so no timer is needed for them.
fn arm_flush_for_oldest(cfg: &ServingConfig, floor: &mut Floor, ctx: &mut SimContext<'_, Event>) {
    let Policy::Static { max_wait, .. } = cfg.policy else {
        return;
    };
    let desired = floor
        .pending
        .front()
        .map(|r| r.arrival + max_wait)
        .filter(|&deadline| deadline > ctx.now());
    if desired == floor.flush_deadline {
        return;
    }
    floor.flush_generation += 1; // invalidates any outstanding timer
    floor.flush_deadline = desired;
    if let Some(deadline) = desired {
        ctx.schedule(deadline, Event::FlushTimeout(floor.flush_generation));
    }
}

/// Samples every counter track at an iteration boundary. Re-sampling at
/// the same instant overwrites, so each boundary keeps its final state.
fn sample_floor(floor: &mut Floor, now: SimTime) {
    let running = floor.actives.iter().map(Vec::len).sum::<usize>()
        + floor.static_jobs.iter().map(Vec::len).sum::<usize>();
    let parked = floor.parked.iter().map(VecDeque::len).sum::<usize>();
    let busy = floor.busy.iter().filter(|b| **b).count();
    let sample = CounterSample {
        at: now,
        queue_depth: floor.pending.len() as u32,
        running: running as u32,
        parked: parked as u32,
        busy_replicas: busy as u32,
        kv_used_blocks: floor.pools.iter().map(BlockAllocator::used_blocks).sum(),
        kv_total_blocks: floor.pools.iter().map(BlockAllocator::total_blocks).sum(),
        admitted_total: floor.obs.admitted_total(),
        completed_total: floor.obs.completed_total(),
    };
    floor.obs.push_sample(sample);
}

/// Folds the finished set into percentile metrics.
///
/// Total tokens count completed requests only, and an empty finished set
/// yields an all-zero (but well-formed) report rather than a panic.
fn assemble_report(
    cfg: &ServingConfig,
    floor: &Floor,
    first_arrival: Option<SimTime>,
) -> ServingReport {
    let latencies: Vec<(SimDuration, SimDuration)> =
        floor.finished.iter().map(|f| (f.ttft, f.e2e)).collect();
    let ttfts: Vec<f64> = latencies.iter().map(|(t, _)| t.as_nanos_f64()).collect();
    let e2es: Vec<f64> = latencies.iter().map(|(_, e)| e.as_nanos_f64()).collect();
    let makespan = floor
        .last_completion
        .saturating_duration_since(first_arrival.unwrap_or(SimTime::ZERO));
    let completed = floor.finished.len() as u32;
    let total_tokens = u64::from(completed) * u64::from(cfg.new_tokens.max(1));
    let throughput_tok_s = if completed == 0 {
        0.0
    } else {
        total_tokens as f64 / makespan.as_secs_f64().max(1e-12)
    };
    let kv_peak_occupancy = floor
        .pools
        .iter()
        .map(|p| f64::from(p.stats().peak_used_blocks) / f64::from(p.total_blocks().max(1)))
        .fold(0.0, f64::max);
    let d = |v: f64| SimDuration::from_nanos_f64(v);
    ServingReport {
        completed,
        ttft_p50: d(percentile(&ttfts, 50.0)),
        ttft_p95: d(percentile(&ttfts, 95.0)),
        ttft_p99: d(percentile(&ttfts, 99.0)),
        e2e_p50: d(percentile(&e2es, 50.0)),
        e2e_p95: d(percentile(&e2es, 95.0)),
        throughput_tok_s,
        makespan,
        preemptions: floor.mem_counters.preemptions,
        swap_outs: floor.mem_counters.swap_outs,
        swapped_bytes: floor.mem_counters.swapped_bytes,
        recomputed_tokens: floor.mem_counters.recomputed_tokens,
        kv_peak_occupancy,
        slo: SloReport::evaluate(cfg.slo, &latencies, cfg.new_tokens.max(1), makespan),
    }
}

/// Credits the iteration/job that just completed on `replica`.
fn retire(cfg: &ServingConfig, floor: &mut Floor, replica: usize, now: SimTime) {
    let replica_id = replica as u32;
    match cfg.policy {
        Policy::Static { .. } => {
            for (req, first_token_at) in floor.static_jobs[replica].drain(..) {
                floor
                    .obs
                    .record(req.id, first_token_at, LifecycleKind::FirstToken);
                floor.obs.record(
                    req.id,
                    now,
                    LifecycleKind::Completed {
                        replica: replica_id,
                    },
                );
                floor.finished.push(Finished {
                    ttft: first_token_at.saturating_duration_since(req.arrival),
                    e2e: now.saturating_duration_since(req.arrival),
                });
                floor.last_completion = now;
            }
        }
        Policy::Continuous { .. } => {
            let mut i = 0;
            while i < floor.actives[replica].len() {
                let a = &mut floor.actives[replica][i];
                if a.generated == 0 {
                    // Prefill just finished: first token out.
                    a.generated = 1;
                    a.ttft = Some(now.saturating_duration_since(a.req.arrival));
                    floor.obs.record(a.req.id, now, LifecycleKind::FirstToken);
                } else {
                    a.generated += 1;
                }
                let a = &floor.actives[replica][i];
                if a.generated >= a.req.new_tokens.max(1) {
                    let a = floor.actives[replica].swap_remove(i);
                    // Completed requests hand their KV blocks back.
                    if let Some(pool) = floor.pools.get_mut(replica) {
                        pool.release(a.req.id);
                    }
                    floor.obs.record(
                        a.req.id,
                        now,
                        LifecycleKind::Completed {
                            replica: replica_id,
                        },
                    );
                    floor.finished.push(Finished {
                        ttft: a.ttft.expect("prefill completed before retirement"),
                        e2e: now.saturating_duration_since(a.req.arrival),
                    });
                    floor.last_completion = now;
                } else {
                    i += 1;
                }
            }
        }
    }
}

/// Starts work on every idle replica that has something to do.
/// `flush` forces a partial static batch (timeout expired).
fn kick_idle_replicas(
    cfg: &ServingConfig,
    lat: &LatencyModel,
    mem: Option<&MemCtx>,
    floor: &mut Floor,
    ctx: &mut SimContext<'_, Event>,
    flush: bool,
) {
    let now = ctx.now();
    for replica in 0..floor.busy.len() {
        if floor.busy[replica] {
            continue;
        }
        let dur = match cfg.policy {
            Policy::Static { batch_size, .. } => {
                let enough = floor.pending.len() as u32 >= batch_size;
                if floor.pending.is_empty() || !(enough || flush) {
                    continue;
                }
                let take = (floor.pending.len() as u32).min(batch_size);
                Some(start_static_job(
                    lat,
                    &mut floor.pending,
                    take,
                    cfg,
                    now,
                    replica,
                    &mut floor.static_jobs[replica],
                    &mut floor.obs,
                ))
            }
            Policy::Continuous { max_batch } => match mem {
                Some(mem) => memory_continuous_iteration(
                    lat,
                    cfg,
                    max_batch,
                    mem,
                    now,
                    replica,
                    &mut floor.pending,
                    &mut floor.actives[replica],
                    &mut floor.pools[replica],
                    &mut floor.parked[replica],
                    &mut floor.mem_counters,
                    &mut floor.obs,
                ),
                None => continuous_iteration(
                    lat,
                    cfg,
                    max_batch,
                    now,
                    replica,
                    &mut floor.pending,
                    &mut floor.actives[replica],
                    &mut floor.obs,
                ),
            },
        };
        if let Some(dur) = dur {
            floor.busy[replica] = true;
            ctx.schedule(now + dur, Event::IterationDone(replica));
        }
    }
}

/// Starts a static job: prefill + all decode steps as one engine
/// occupancy. Returns the job duration; records per-request first-token
/// instants.
#[allow(clippy::too_many_arguments)]
fn start_static_job(
    lat: &LatencyModel,
    pending: &mut VecDeque<Request>,
    take: u32,
    cfg: &ServingConfig,
    now: SimTime,
    replica: usize,
    static_job: &mut Vec<(Request, SimTime)>,
    obs: &mut ServingTrace,
) -> SimDuration {
    let batch: Vec<Request> = (0..take).filter_map(|_| pending.pop_front()).collect();
    let b = batch.len() as u32;
    let prefill = lat.prefill(b, cfg.prompt_len);
    let mut total = prefill;
    for step in 1..cfg.new_tokens.max(1) {
        total += lat.decode_step(b, cfg.prompt_len + step);
    }
    let first_token_at = now + prefill;
    for req in batch {
        obs.record(
            req.id,
            now,
            LifecycleKind::Admitted {
                replica: replica as u32,
            },
        );
        static_job.push((req, first_token_at));
    }
    total
}

/// Picks and prices the next continuous-batching iteration with an
/// unbounded KV cache, if any work exists; `None` when idle.
#[allow(clippy::too_many_arguments)]
fn continuous_iteration(
    lat: &LatencyModel,
    cfg: &ServingConfig,
    max_batch: u32,
    now: SimTime,
    replica: usize,
    pending: &mut VecDeque<Request>,
    active: &mut Vec<Active>,
    obs: &mut ServingTrace,
) -> Option<SimDuration> {
    let slots = max_batch as usize - active.len().min(max_batch as usize);
    let newcomers = pending.len().min(slots);
    if newcomers > 0 {
        // Prefill iteration for the newcomers.
        for _ in 0..newcomers {
            let req = pending.pop_front().expect("counted above");
            obs.record(
                req.id,
                now,
                LifecycleKind::Admitted {
                    replica: replica as u32,
                },
            );
            active.push(Active {
                req,
                generated: 0,
                ttft: None,
            });
        }
        Some(lat.prefill(newcomers as u32, cfg.prompt_len))
    } else if !active.is_empty() {
        // One decode step for the whole running batch.
        let ctx = active
            .iter()
            .map(|a| a.req.prompt_len + a.generated)
            .max()
            .expect("non-empty");
        Some(lat.decode_step(active.len() as u32, ctx))
    } else {
        None
    }
}

/// Context tokens a request's KV table must cover before its next decode
/// step (prompt, tokens generated so far, plus the one being generated).
fn next_tokens(a: &Active) -> u64 {
    u64::from(a.req.prompt_len) + u64::from(a.generated) + 1
}

/// The memory-aware continuous iteration: resume parked requests first,
/// then admit newcomers whose prompts fit, else run one decode step,
/// preempting the newest requests until the whole batch's next token fits.
#[allow(clippy::too_many_arguments)]
fn memory_continuous_iteration(
    lat: &LatencyModel,
    cfg: &ServingConfig,
    max_batch: u32,
    mem: &MemCtx,
    now: SimTime,
    replica: usize,
    pending: &mut VecDeque<Request>,
    active: &mut Vec<Active>,
    pool: &mut BlockAllocator,
    parked: &mut VecDeque<Parked>,
    counters: &mut MemCounters,
    obs: &mut ServingTrace,
) -> Option<SimDuration> {
    let spec = &mem.spec;
    let slots = (max_batch as usize).saturating_sub(active.len());
    let replica_id = replica as u32;

    // 1. Resume preempted requests, oldest first, while they fit. A parked
    //    request that does not fit blocks newcomer admission (it is older
    //    than anything in `pending`), preventing starvation. The whole
    //    cohort rides one iteration, priced by `price_resumes`.
    if slots > 0 && !parked.is_empty() {
        let mut resumed: Vec<(Parked, u64)> = Vec::new();
        while resumed.len() < slots {
            let Some(front) = parked.front() else { break };
            let ctx_tokens =
                u64::from(front.active.req.prompt_len) + u64::from(front.active.generated);
            if !pool.can_reserve(spec.blocks_for(ctx_tokens)) {
                break;
            }
            let p = parked.pop_front().expect("front probed above");
            pool.grow_to(p.active.req.id, ctx_tokens, spec)
                .expect("reservation probed above");
            if matches!(p.resume, ResumeKind::Recompute) {
                counters.recomputed_tokens += ctx_tokens;
            }
            resumed.push((p, ctx_tokens));
        }
        if !resumed.is_empty() {
            let priced: Vec<(u64, ResumeKind)> =
                resumed.iter().map(|(p, ctx)| (*ctx, p.resume)).collect();
            let cost = price_resumes(lat, mem, &priced);
            for (p, _) in resumed {
                let action = match p.resume {
                    ResumeKind::Recompute => ResumeAction::Recompute,
                    ResumeKind::SwapIn { .. } => ResumeAction::SwapIn,
                };
                obs.record(
                    p.active.req.id,
                    now,
                    LifecycleKind::Resumed {
                        replica: replica_id,
                        action,
                        cost,
                    },
                );
                active.push(p.active);
            }
            return Some(cost);
        }
    }

    // 2. Admit newcomers whose prompt blocks fit (only when no preempted
    //    request is waiting — they have priority).
    if parked.is_empty() && slots > 0 && !pending.is_empty() {
        let mut admitted = 0u32;
        while (admitted as usize) < slots {
            let Some(req) = pending.front() else { break };
            if pool
                .grow_to(req.id, u64::from(req.prompt_len), spec)
                .is_err()
            {
                break;
            }
            let req = pending.pop_front().expect("front probed above");
            obs.record(
                req.id,
                now,
                LifecycleKind::Admitted {
                    replica: replica_id,
                },
            );
            active.push(Active {
                req,
                generated: 0,
                ttft: None,
            });
            admitted += 1;
        }
        if admitted > 0 {
            return Some(lat.prefill(admitted, cfg.prompt_len));
        }
    }

    // 3. One decode step. First make the whole batch's next token fit,
    //    preempting the newest request (vLLM's LIFO victim order) until the
    //    block deficit is covered; a lone request always fits because the
    //    pool is asserted to hold at least one full request.
    if active.is_empty() {
        return None;
    }
    let mut swap_stall = SimDuration::ZERO;
    loop {
        let deficit: u32 = active
            .iter()
            .map(|a| {
                let held = pool.table(a.req.id).map_or(0, |t| t.blocks().len() as u32);
                spec.blocks_for(next_tokens(a)).saturating_sub(held)
            })
            .sum();
        if deficit <= pool.free_blocks() {
            break;
        }
        let victim = active
            .iter()
            .enumerate()
            .max_by_key(|(_, a)| a.req.id)
            .map(|(i, _)| i)
            .expect("active batch is non-empty");
        swap_stall += preempt(
            victim, lat, mem, now, replica_id, active, pool, parked, counters, obs,
        );
    }
    for a in active.iter() {
        pool.grow_to(a.req.id, next_tokens(a), spec)
            .expect("deficit covered above");
    }
    let ctx = active
        .iter()
        .map(|a| a.req.prompt_len + a.generated)
        .max()
        .expect("non-empty");
    Some(lat.decode_step(active.len() as u32, ctx) + swap_stall)
}

/// Prices the resume iteration for one cohort of parked requests, given
/// `(context_tokens, resume_kind)` per request.
///
/// Swapped-out requests each pay their copy-back transfer. Recompute
/// victims re-prefill **as one batch**: the engine runs them as a single
/// batched prefill sized by the longest context, exactly like newcomer
/// admission. (The pre-fix accounting charged `k` serial single-request
/// prefills, overstating the stall roughly `k`-fold.)
fn price_resumes(lat: &LatencyModel, mem: &MemCtx, resumes: &[(u64, ResumeKind)]) -> SimDuration {
    let mut cost = SimDuration::ZERO;
    let mut recompute_batch = 0u32;
    let mut recompute_ctx = 0u64;
    for &(ctx_tokens, kind) in resumes {
        match kind {
            ResumeKind::Recompute => {
                recompute_batch += 1;
                recompute_ctx = recompute_ctx.max(ctx_tokens);
            }
            ResumeKind::SwapIn { tokens } => {
                cost += swap_cost(&mem.interconnect, tokens * mem.spec.bytes_per_token);
            }
        }
    }
    if recompute_batch > 0 {
        cost += lat.prefill(recompute_batch, recompute_ctx as u32);
    }
    cost
}

/// Evicts `active[victim]`: releases its device blocks and parks it for a
/// later resume. Returns the engine stall charged now (the copy-out time
/// when swapping; recompute defers its whole cost to resume).
#[allow(clippy::too_many_arguments)]
fn preempt(
    victim: usize,
    lat: &LatencyModel,
    mem: &MemCtx,
    now: SimTime,
    replica_id: u32,
    active: &mut Vec<Active>,
    pool: &mut BlockAllocator,
    parked: &mut VecDeque<Parked>,
    counters: &mut MemCounters,
    obs: &mut ServingTrace,
) -> SimDuration {
    let a = active.remove(victim);
    let tokens = u64::from(a.req.prompt_len) + u64::from(a.generated);
    let bytes = tokens * mem.spec.bytes_per_token;
    pool.release(a.req.id);
    counters.preemptions += 1;
    let one_way = swap_cost(&mem.interconnect, bytes);
    let recompute = lat.prefill(1, tokens as u32);
    match mem.offload.decide(one_way + one_way, recompute) {
        EvictionAction::SwapOut => {
            counters.swap_outs += 1;
            counters.swapped_bytes += bytes;
            obs.record(
                a.req.id,
                now,
                LifecycleKind::Preempted {
                    replica: replica_id,
                    action: ResumeAction::SwapIn,
                    stall: one_way,
                },
            );
            parked.push_back(Parked {
                active: a,
                resume: ResumeKind::SwapIn { tokens },
            });
            one_way
        }
        EvictionAction::Recompute => {
            obs.record(
                a.req.id,
                now,
                LifecycleKind::Preempted {
                    replica: replica_id,
                    action: ResumeAction::Recompute,
                    stall: SimDuration::ZERO,
                },
            );
            parked.push_back(Parked {
                active: a,
                resume: ResumeKind::Recompute,
            });
            SimDuration::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skip_llm::zoo;

    fn base_cfg(policy: Policy) -> ServingConfig {
        ServingConfig {
            platform: Platform::intel_h100(),
            model: zoo::gpt2(),
            policy,
            requests: 30,
            arrival_rate_per_s: 20.0,
            prompt_len: 128,
            new_tokens: 4,
            seed: 11,
            kv: None,
            slo: SloTargets::default(),
        }
    }

    /// A config under enough memory pressure to force preemptions:
    /// Llama-2-7B with ~900-token contexts and a pool that admits two
    /// prompts but cannot hold two full lifetimes. At this context size
    /// the PCIe gen4 swap round-trip (~34 ms) exceeds a re-prefill
    /// (~28 ms) while NVLink-C2C swaps in ~2 ms — the coupling asymmetry
    /// the offload policy is meant to exploit.
    fn pressured_cfg(offload: OffloadPolicy) -> ServingConfig {
        let mut cfg = base_cfg(Policy::Continuous { max_batch: 4 });
        cfg.model = zoo::llama2_7b();
        cfg.requests = 12;
        cfg.arrival_rate_per_s = 50.0;
        cfg.prompt_len = 1024;
        cfg.new_tokens = 128;
        let spec = KvSpec::for_model(&cfg.model, KvSpec::DEFAULT_BLOCK_TOKENS);
        let full = spec.blocks_for(u64::from(cfg.prompt_len) + u64::from(cfg.new_tokens));
        cfg.kv = Some(KvCacheConfig::with_blocks(full * 2 - 2, offload));
        cfg
    }

    #[test]
    fn continuous_serving_completes_every_request() {
        let r = simulate(&base_cfg(Policy::Continuous { max_batch: 8 }));
        assert_eq!(r.completed, 30);
        assert!(r.ttft_p50 > SimDuration::ZERO);
        assert!(r.e2e_p50 >= r.ttft_p50);
        assert!(r.ttft_p95 >= r.ttft_p50);
        assert!(r.throughput_tok_s > 0.0);
        assert_eq!(r.preemptions, 0);
        assert_eq!(r.kv_peak_occupancy, 0.0);
    }

    #[test]
    fn static_serving_completes_every_request() {
        let r = simulate(&base_cfg(Policy::Static {
            batch_size: 8,
            max_wait: SimDuration::from_millis(50),
        }));
        assert_eq!(r.completed, 30);
        assert!(r.e2e_p95 >= r.e2e_p50);
    }

    #[test]
    fn simulation_is_deterministic() {
        let cfg = base_cfg(Policy::Continuous { max_batch: 4 });
        assert_eq!(simulate(&cfg), simulate(&cfg));
        assert_eq!(simulate_replicas(&cfg, 3), simulate_replicas(&cfg, 3));
    }

    #[test]
    fn continuous_batching_beats_static_ttft_under_load() {
        // The vLLM/Orca claim: joining at iteration boundaries avoids
        // waiting for a full static batch.
        let cont = simulate(&base_cfg(Policy::Continuous { max_batch: 8 }));
        let stat = simulate(&base_cfg(Policy::Static {
            batch_size: 8,
            max_wait: SimDuration::from_millis(200),
        }));
        assert!(
            cont.ttft_p95 < stat.ttft_p95,
            "continuous {} vs static {}",
            cont.ttft_p95,
            stat.ttft_p95
        );
    }

    #[test]
    fn higher_load_raises_tail_latency() {
        let mut light = base_cfg(Policy::Continuous { max_batch: 8 });
        light.arrival_rate_per_s = 5.0;
        let mut heavy = light.clone();
        heavy.arrival_rate_per_s = 200.0;
        let l = simulate(&light);
        let h = simulate(&heavy);
        assert!(h.ttft_p95 >= l.ttft_p95);
    }

    #[test]
    fn more_replicas_cut_tail_latency_under_heavy_load() {
        let mut cfg = base_cfg(Policy::Continuous { max_batch: 4 });
        cfg.arrival_rate_per_s = 400.0;
        cfg.requests = 80;
        let one = simulate_replicas(&cfg, 1);
        let four = simulate_replicas(&cfg, 4);
        assert_eq!(four.completed, 80);
        assert!(
            four.ttft_p95 < one.ttft_p95,
            "4 replicas {} vs 1 replica {}",
            four.ttft_p95,
            one.ttft_p95
        );
    }

    #[test]
    fn replicas_also_help_static_batching() {
        let mut cfg = base_cfg(Policy::Static {
            batch_size: 4,
            max_wait: SimDuration::from_millis(20),
        });
        cfg.arrival_rate_per_s = 400.0;
        cfg.requests = 80;
        let one = simulate_replicas(&cfg, 1);
        let four = simulate_replicas(&cfg, 4);
        assert_eq!(four.completed, 80);
        assert!(four.e2e_p95 <= one.e2e_p95);
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn zero_requests_rejected() {
        let mut cfg = base_cfg(Policy::Continuous { max_batch: 1 });
        cfg.requests = 0;
        let _ = simulate(&cfg);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        let _ = simulate_replicas(&base_cfg(Policy::Continuous { max_batch: 1 }), 0);
    }

    #[test]
    #[should_panic(expected = "cannot hold one full request")]
    fn undersized_kv_pool_rejected() {
        let mut cfg = base_cfg(Policy::Continuous { max_batch: 4 });
        cfg.kv = Some(KvCacheConfig::with_blocks(1, OffloadPolicy::Auto));
        let _ = simulate(&cfg);
    }

    #[test]
    fn roomy_kv_pool_matches_infinite_cache() {
        // A pool big enough for the whole workload never preempts, so the
        // latency metrics must be identical to the unbounded simulation.
        let unbounded = base_cfg(Policy::Continuous { max_batch: 8 });
        let mut bounded = unbounded.clone();
        bounded.kv = Some(KvCacheConfig::with_blocks(1 << 20, OffloadPolicy::Auto));
        let a = simulate(&unbounded);
        let b = simulate(&bounded);
        assert_eq!(b.preemptions, 0);
        assert!(b.kv_peak_occupancy > 0.0);
        assert_eq!(
            (a.ttft_p50, a.e2e_p95, a.makespan),
            (b.ttft_p50, b.e2e_p95, b.makespan)
        );
    }

    #[test]
    fn memory_pressure_forces_preemptions_but_completes() {
        let r = simulate(&pressured_cfg(OffloadPolicy::Auto));
        assert_eq!(r.completed, 12);
        assert!(r.preemptions > 0, "overcommitted pool must preempt");
        assert!(r.kv_peak_occupancy > 0.5);
    }

    #[test]
    fn offload_policies_route_evictions_differently() {
        let swap = simulate(&pressured_cfg(OffloadPolicy::SwapToHost));
        assert!(swap.swap_outs > 0 && swap.swap_outs == swap.preemptions);
        assert_eq!(swap.recomputed_tokens, 0);
        assert!(swap.swapped_bytes > 0);

        let rec = simulate(&pressured_cfg(OffloadPolicy::Recompute));
        assert_eq!(rec.swap_outs, 0);
        assert!(rec.recomputed_tokens > 0);
    }

    #[test]
    fn swap_penalty_follows_the_coupling() {
        // In this engine's calibration a swap round-trip undercuts a full
        // re-prefill everywhere (prefill pays the launch floor plus
        // quadratic attention), so Auto resolves every eviction to a swap —
        // but the *price* of each swap is set by the coupling: ~14x between
        // PCIe gen4 and NVLink-C2C for the same bytes. To isolate that
        // term from platform compute differences, run the same pressured
        // workload on the same platform with only the interconnect
        // replaced, and normalize each variant by its own unpressured
        // makespan (cancelling the launch-path difference the interconnect
        // also carries).
        use skip_hw::Interconnect;
        let slowdown = |interconnect: Interconnect| {
            let mut tight = pressured_cfg(OffloadPolicy::Auto);
            tight.platform = Platform::amd_a100();
            tight.platform.interconnect = interconnect;
            let mut roomy = tight.clone();
            roomy.kv = Some(KvCacheConfig::with_blocks(1 << 20, OffloadPolicy::Auto));
            let t = simulate(&tight);
            let r = simulate(&roomy);
            assert!(t.preemptions > 0, "pressure must preempt");
            assert_eq!(t.swap_outs, t.preemptions, "auto swaps in this regime");
            assert_eq!(r.preemptions, 0, "roomy pool must not preempt");
            t.makespan.as_nanos_f64() / r.makespan.as_nanos_f64()
        };
        let loose = slowdown(Interconnect::pcie_gen4());
        let close = slowdown(Interconnect::nvlink_c2c());
        assert!(
            loose > close,
            "PCIe swaps should hurt more than C2C swaps: {loose:.4} vs {close:.4}"
        );
    }

    #[test]
    fn memory_aware_runs_are_deterministic() {
        let cfg = pressured_cfg(OffloadPolicy::Auto);
        assert_eq!(simulate(&cfg), simulate(&cfg));
        assert_eq!(simulate_replicas(&cfg, 2), simulate_replicas(&cfg, 2));
    }

    #[test]
    fn empty_finished_set_yields_zeroed_report() {
        // Defensive: percentile collection must tolerate zero completions.
        let cfg = base_cfg(Policy::Continuous { max_batch: 1 });
        let floor = Floor {
            pending: VecDeque::new(),
            actives: vec![Vec::new()],
            static_jobs: vec![Vec::new()],
            pools: Vec::new(),
            parked: vec![VecDeque::new()],
            busy: vec![false],
            finished: Vec::new(),
            last_completion: SimTime::ZERO,
            flush_generation: 0,
            flush_deadline: None,
            mem_counters: MemCounters::default(),
            obs: ServingTrace::new("m", "p", 1),
        };
        let r = assemble_report(&cfg, &floor, None);
        assert_eq!(r.completed, 0);
        assert_eq!(r.ttft_p99, SimDuration::ZERO);
        assert_eq!(r.throughput_tok_s, 0.0);
        assert_eq!(r.slo.ttft_attainment, 1.0);
    }

    /// Regression for the sliding flush timer: the pre-fix scheduler
    /// re-armed the static-batch timer on every arrival, so under a steady
    /// trickle that never fills the batch the oldest request's wait grew
    /// with the queue. The timer must bound the oldest wait by `max_wait`
    /// plus at most one in-flight job (the replica may be busy when the
    /// deadline hits).
    #[test]
    fn static_oldest_waiter_flushes_within_max_wait() {
        let max_wait = SimDuration::from_millis(50);
        let mut cfg = base_cfg(Policy::Static {
            batch_size: 64, // never fills: every flush is timer-driven
            max_wait,
        });
        cfg.arrival_rate_per_s = 100.0;
        let (_, strace) = simulate_traced(&cfg, 1);
        // Longest a flush can be delayed past the deadline: the job
        // occupying the replica when the timer fires. Bound it by the
        // largest batch this run can form.
        let lat = LatencyModel::new(cfg.platform.clone(), cfg.model.clone());
        let mut job_bound = lat.prefill(cfg.requests, cfg.prompt_len);
        for step in 1..cfg.new_tokens.max(1) {
            job_bound += lat.decode_step(cfg.requests, cfg.prompt_len + step);
        }
        let bound = max_wait + job_bound;
        for lc in &strace.lifecycles {
            let waited = lc
                .admitted_at()
                .expect("all requests admitted")
                .saturating_duration_since(lc.arrived_at().expect("all requests arrived"));
            assert!(
                waited <= bound,
                "request {} waited {waited}, bound {bound}",
                lc.id
            );
        }
    }

    /// Regression for resume-stall accounting: a cohort of recompute
    /// victims resuming together must be priced as one batched prefill,
    /// not the sum of serial single-request prefills.
    #[test]
    fn batched_resume_costs_less_than_serial_singles() {
        let cfg = pressured_cfg(OffloadPolicy::Recompute);
        let lat = LatencyModel::new(cfg.platform.clone(), cfg.model.clone());
        let kv = cfg.kv.expect("pressured config has a pool");
        let mem = MemCtx {
            spec: KvSpec::for_model(&cfg.model, kv.block_tokens),
            offload: kv.offload,
            interconnect: cfg.platform.interconnect.clone(),
        };
        let cohort: Vec<(u64, ResumeKind)> =
            (0..3).map(|_| (1100, ResumeKind::Recompute)).collect();
        let batched = price_resumes(&lat, &mem, &cohort);
        let serial: SimDuration = cohort
            .iter()
            .map(|&(ctx, kind)| price_resumes(&lat, &mem, &[(ctx, kind)]))
            .sum();
        assert!(
            batched < serial,
            "batched {batched} must undercut serial {serial}"
        );
        // Swap-ins are per-request transfers: batching must not discount.
        let swaps: Vec<(u64, ResumeKind)> = (0..3)
            .map(|_| (1100, ResumeKind::SwapIn { tokens: 1100 }))
            .collect();
        let swap_batched = price_resumes(&lat, &mem, &swaps);
        let swap_serial: SimDuration = swaps
            .iter()
            .map(|&(ctx, kind)| price_resumes(&lat, &mem, &[(ctx, kind)]))
            .sum();
        assert_eq!(swap_batched, swap_serial);
    }

    #[test]
    fn counters_conserve_requests_at_every_sample() {
        for cfg in [
            base_cfg(Policy::Continuous { max_batch: 8 }),
            base_cfg(Policy::Static {
                batch_size: 8,
                max_wait: SimDuration::from_millis(50),
            }),
            pressured_cfg(OffloadPolicy::Auto),
        ] {
            let (report, strace) = simulate_traced(&cfg, 2);
            assert_eq!(report.completed, cfg.requests);
            assert!(!strace.samples.is_empty());
            assert!(strace.conserves_requests(), "violated for {:?}", cfg.policy);
        }
    }

    #[test]
    fn lifecycles_agree_with_the_scalar_report() {
        let cfg = pressured_cfg(OffloadPolicy::Auto);
        let (report, strace) = simulate_traced(&cfg, 1);
        assert_eq!(strace.lifecycles.len() as u32, cfg.requests);
        assert_eq!(strace.completed_total(), report.completed);
        let preemptions: usize = strace.lifecycles.iter().map(|lc| lc.preemptions()).sum();
        assert_eq!(preemptions as u64, report.preemptions);
        // Per-request latencies reproduce the report percentiles.
        let mut e2es: Vec<f64> = strace
            .lifecycles
            .iter()
            .map(|lc| lc.e2e().expect("completed").as_nanos_f64())
            .collect();
        e2es.sort_by(f64::total_cmp);
        assert_eq!(
            SimDuration::from_nanos_f64(percentile(&e2es, 50.0)),
            report.e2e_p50
        );
    }

    #[test]
    fn serving_trace_round_trips_through_chrome_format() {
        let cfg = pressured_cfg(OffloadPolicy::Auto);
        let (_, strace) = simulate_traced(&cfg, 1);
        let t = strace.to_trace();
        t.validate().expect("exported trace must validate");
        assert!(!t.cpu_ops().is_empty(), "lifecycle slices present");
        assert!(!t.counters().is_empty(), "counter tracks present");
        assert!(!t.launches().is_empty(), "preempt→resume flows present");
        let json = skip_trace::chrome::to_chrome_trace(&t);
        let back = skip_trace::chrome::from_chrome_trace(&json).expect("import");
        assert_eq!(back.cpu_ops().len(), t.cpu_ops().len());
        assert_eq!(back.counters().len(), t.counters().len());
        assert_eq!(back.kernels().len(), t.kernels().len());
    }

    #[test]
    fn slo_report_reflects_configured_targets() {
        let mut cfg = base_cfg(Policy::Continuous { max_batch: 8 });
        cfg.slo = SloTargets {
            ttft: Some(SimDuration::from_secs(3600)),
            e2e: Some(SimDuration::from_secs(3600)),
        };
        let generous = simulate(&cfg);
        assert_eq!(generous.slo.slo_completions, generous.completed);
        assert_eq!(generous.slo.ttft_attainment, 1.0);
        assert!(generous.slo.goodput_tok_s > 0.0);

        cfg.slo = SloTargets {
            ttft: Some(SimDuration::from_nanos(1)),
            e2e: None,
        };
        let strict = simulate(&cfg);
        assert_eq!(strict.slo.slo_completions, 0);
        assert_eq!(strict.slo.goodput_req_s, 0.0);
        assert_eq!(strict.slo.e2e_attainment, 1.0, "unset target is vacuous");
    }
}
