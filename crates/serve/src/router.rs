//! Replica routing: which pending queue each arrival joins.
//!
//! A [`Router`] decides the queue topology ([`Router::queue_count`]) and
//! dispatches each arrival given a load snapshot of every replica. The
//! floor maintains one pending queue per router-declared queue index;
//! [`RouterPolicy::SharedQueue`] collapses them to a single queue every
//! replica pulls from (the M/G/k discipline and the pre-router behaviour),
//! while the per-replica routers partition arrivals at admission time.

use crate::config::RouterPolicy;
use crate::request::Request;

/// Load snapshot of one replica, consulted by routing policies.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplicaLoad {
    /// Requests waiting in the queue this replica pulls from.
    pub queued: u32,
    /// Requests in the replica's running batch or static job.
    pub running: u32,
    /// Preempted requests parked on the replica awaiting resume.
    pub parked: u32,
}

impl ReplicaLoad {
    /// Total outstanding work on the replica.
    #[must_use]
    pub fn total(self) -> u32 {
        self.queued + self.running + self.parked
    }
}

/// Dispatches arrivals across replica queues.
pub trait Router {
    /// Number of pending queues the floor maintains: 1 for a shared queue,
    /// `replicas` for partitioned dispatch.
    fn queue_count(&self, replicas: usize) -> usize;

    /// Queue index `req` joins, given one load snapshot per replica.
    fn route(&mut self, req: &Request, load: &[ReplicaLoad]) -> usize;
}

impl RouterPolicy {
    /// Instantiates the configured router.
    pub(crate) fn build(self) -> Box<dyn Router> {
        match self {
            RouterPolicy::SharedQueue => Box::new(SharedQueue),
            RouterPolicy::RoundRobin => Box::new(RoundRobin { next: 0 }),
            RouterPolicy::JoinShortestQueue => Box::new(JoinShortestQueue),
        }
    }
}

/// One shared queue; idle replicas pull from it at iteration boundaries.
struct SharedQueue;

impl Router for SharedQueue {
    fn queue_count(&self, _replicas: usize) -> usize {
        1
    }

    fn route(&mut self, _req: &Request, _load: &[ReplicaLoad]) -> usize {
        0
    }
}

/// Deals arrivals to per-replica queues in rotation, blind to load.
struct RoundRobin {
    next: usize,
}

impl Router for RoundRobin {
    fn queue_count(&self, replicas: usize) -> usize {
        replicas
    }

    fn route(&mut self, _req: &Request, load: &[ReplicaLoad]) -> usize {
        let q = self.next % load.len().max(1);
        self.next = self.next.wrapping_add(1);
        q
    }
}

/// Each arrival joins the replica with the least outstanding work
/// (queued + running + parked); ties go to the lowest index.
struct JoinShortestQueue;

impl Router for JoinShortestQueue {
    fn queue_count(&self, replicas: usize) -> usize {
        replicas
    }

    fn route(&mut self, _req: &Request, load: &[ReplicaLoad]) -> usize {
        load.iter()
            .enumerate()
            .min_by_key(|(i, l)| (l.total(), *i))
            .map_or(0, |(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skip_des::SimTime;

    fn req(id: u64) -> Request {
        Request {
            id,
            arrival: SimTime::ZERO,
            prompt_len: 8,
            new_tokens: 2,
        }
    }

    fn load(spec: &[(u32, u32, u32)]) -> Vec<ReplicaLoad> {
        spec.iter()
            .map(|&(queued, running, parked)| ReplicaLoad {
                queued,
                running,
                parked,
            })
            .collect()
    }

    #[test]
    fn shared_queue_uses_one_queue() {
        let mut r = RouterPolicy::SharedQueue.build();
        assert_eq!(r.queue_count(4), 1);
        assert_eq!(r.route(&req(0), &load(&[(5, 5, 5); 4])), 0);
    }

    #[test]
    fn round_robin_rotates_regardless_of_load() {
        let mut r = RouterPolicy::RoundRobin.build();
        assert_eq!(r.queue_count(3), 3);
        let l = load(&[(9, 9, 9), (0, 0, 0), (0, 0, 0)]);
        let picks: Vec<usize> = (0..6).map(|i| r.route(&req(i), &l)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn jsq_picks_least_loaded_with_low_index_ties() {
        let mut r = RouterPolicy::JoinShortestQueue.build();
        assert_eq!(r.queue_count(3), 3);
        // Replica 1 has the least total outstanding work.
        assert_eq!(
            r.route(&req(0), &load(&[(2, 1, 0), (1, 0, 1), (4, 0, 0)])),
            1
        );
        // Parked work counts against a replica.
        assert_eq!(
            r.route(&req(1), &load(&[(1, 0, 3), (1, 1, 0), (3, 1, 0)])),
            1
        );
        // Ties break to the lowest index.
        assert_eq!(
            r.route(&req(2), &load(&[(1, 1, 0), (2, 0, 0), (0, 2, 0)])),
            0
        );
    }
}
