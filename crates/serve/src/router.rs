//! Replica routing: which pending queue each arrival joins.
//!
//! A [`Router`] decides the queue topology ([`Router::queue_count`]) and
//! dispatches each arrival given a load snapshot of every replica. The
//! floor maintains one pending queue per router-declared queue index;
//! [`RouterPolicy::SharedQueue`] collapses them to a single queue every
//! replica pulls from (the M/G/k discipline and the pre-router behaviour),
//! while the per-replica routers partition arrivals at admission time.
//!
//! The same trait serves the fleet: the floor marks pool/state
//! eligibility and per-replica serving cost in each [`ReplicaLoad`]
//! snapshot, and the fleet's rr/jsq/cost-jsq dispatch are the same
//! routers consulting those extra fields. A single-node floor marks every
//! replica eligible with zero link depth, which degenerates each router
//! to its classic single-pool behaviour.

use crate::config::RouterPolicy;
use crate::fleet::spec::FleetRouterPolicy;
use crate::request::Request;

/// Load snapshot of one replica, consulted by routing policies.
#[derive(Debug, Clone, Copy)]
pub struct ReplicaLoad {
    /// Requests waiting in the queue this replica pulls from.
    pub queued: u32,
    /// Requests in the replica's running batch or static job.
    pub running: u32,
    /// Preempted requests parked on the replica awaiting resume.
    pub parked: u32,
    /// KV handoffs queued or in flight on the replica's inbound link
    /// (0 outside a disaggregated fleet).
    pub link: u32,
    /// Whether this replica may receive the request being routed: up (or
    /// the fallback set when nothing is up) and in a pool serving the
    /// routed direction. Single-node floors mark every replica eligible.
    pub eligible: bool,
    /// Estimated serving cost per request on this replica, in
    /// nanoseconds — the per-platform unit price cost-model routing
    /// weighs backlog by. Zero when the floor prices uniformly.
    pub unit_cost_ns: f64,
}

impl Default for ReplicaLoad {
    fn default() -> Self {
        ReplicaLoad {
            queued: 0,
            running: 0,
            parked: 0,
            link: 0,
            eligible: true,
            unit_cost_ns: 0.0,
        }
    }
}

impl ReplicaLoad {
    /// Total outstanding work on the replica.
    #[must_use]
    pub fn total(self) -> u32 {
        self.queued + self.running + self.parked + self.link
    }
}

/// Dispatches arrivals across replica queues.
pub trait Router {
    /// Number of pending queues the floor maintains: 1 for a shared queue,
    /// `replicas` for partitioned dispatch.
    fn queue_count(&self, replicas: usize) -> usize;

    /// Queue index `req` joins, given one load snapshot per replica.
    fn route(&mut self, req: &Request, load: &[ReplicaLoad]) -> usize;
}

impl RouterPolicy {
    /// Instantiates the configured router.
    pub(crate) fn build(self) -> Box<dyn Router> {
        match self {
            RouterPolicy::SharedQueue => Box::new(SharedQueue),
            RouterPolicy::RoundRobin => Box::new(RoundRobin { next: 0 }),
            RouterPolicy::JoinShortestQueue => Box::new(JoinShortestQueue),
        }
    }
}

impl FleetRouterPolicy {
    /// Instantiates the configured fleet router. Fleet dispatch reuses the
    /// same [`Router`] implementations the single-node floor builds; the
    /// cost-model variant additionally weighs each backlog by the
    /// replica's [`ReplicaLoad::unit_cost_ns`].
    pub(crate) fn build(self) -> Box<dyn Router> {
        match self {
            FleetRouterPolicy::RoundRobin => Box::new(RoundRobin { next: 0 }),
            FleetRouterPolicy::JoinShortestQueue => Box::new(JoinShortestQueue),
            FleetRouterPolicy::CostModelJsq => Box::new(CostModelJsq),
        }
    }
}

/// One shared queue; idle replicas pull from it at iteration boundaries.
struct SharedQueue;

impl Router for SharedQueue {
    fn queue_count(&self, _replicas: usize) -> usize {
        1
    }

    fn route(&mut self, _req: &Request, _load: &[ReplicaLoad]) -> usize {
        0
    }
}

/// Deals arrivals to eligible replicas in rotation, blind to load.
struct RoundRobin {
    next: usize,
}

impl Router for RoundRobin {
    fn queue_count(&self, replicas: usize) -> usize {
        replicas
    }

    fn route(&mut self, _req: &Request, load: &[ReplicaLoad]) -> usize {
        let eligible = load.iter().filter(|l| l.eligible).count();
        let k = self.next % eligible.max(1);
        self.next = self.next.wrapping_add(1);
        load.iter()
            .enumerate()
            .filter(|(_, l)| l.eligible)
            .nth(k)
            .map_or(0, |(i, _)| i)
    }
}

/// Each arrival joins the eligible replica with the least outstanding
/// work (queued + running + parked + link); ties go to the lowest index.
struct JoinShortestQueue;

impl Router for JoinShortestQueue {
    fn queue_count(&self, replicas: usize) -> usize {
        replicas
    }

    fn route(&mut self, _req: &Request, load: &[ReplicaLoad]) -> usize {
        load.iter()
            .enumerate()
            .filter(|(_, l)| l.eligible)
            .min_by_key(|(i, l)| (l.total(), *i))
            .map_or(0, |(i, _)| i)
    }
}

/// Cost-model JSQ: each arrival joins the eligible replica whose backlog
/// is cheapest to clear, weighing (outstanding + 1) by the replica's unit
/// serving cost. On a homogeneous fleet every unit cost is equal and this
/// degenerates to [`JoinShortestQueue`].
struct CostModelJsq;

impl Router for CostModelJsq {
    fn queue_count(&self, replicas: usize) -> usize {
        replicas
    }

    fn route(&mut self, _req: &Request, load: &[ReplicaLoad]) -> usize {
        let mut best = 0usize;
        let mut best_cost = f64::INFINITY;
        let mut first = true;
        for (i, l) in load.iter().enumerate() {
            if !l.eligible {
                continue;
            }
            if first {
                best = i;
                first = false;
            }
            let cost = f64::from(l.total() + 1) * l.unit_cost_ns;
            if cost < best_cost {
                best = i;
                best_cost = cost;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skip_des::SimTime;

    fn req(id: u64) -> Request {
        Request {
            id,
            arrival: SimTime::ZERO,
            prompt_len: 8,
            new_tokens: 2,
        }
    }

    fn load(spec: &[(u32, u32, u32)]) -> Vec<ReplicaLoad> {
        spec.iter()
            .map(|&(queued, running, parked)| ReplicaLoad {
                queued,
                running,
                parked,
                ..ReplicaLoad::default()
            })
            .collect()
    }

    #[test]
    fn shared_queue_uses_one_queue() {
        let mut r = RouterPolicy::SharedQueue.build();
        assert_eq!(r.queue_count(4), 1);
        assert_eq!(r.route(&req(0), &load(&[(5, 5, 5); 4])), 0);
    }

    #[test]
    fn round_robin_rotates_regardless_of_load() {
        let mut r = RouterPolicy::RoundRobin.build();
        assert_eq!(r.queue_count(3), 3);
        let l = load(&[(9, 9, 9), (0, 0, 0), (0, 0, 0)]);
        let picks: Vec<usize> = (0..6).map(|i| r.route(&req(i), &l)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_rotates_over_the_eligible_subset() {
        let mut r = FleetRouterPolicy::RoundRobin.build();
        let mut l = load(&[(0, 0, 0); 4]);
        l[0].eligible = false;
        l[2].eligible = false;
        let picks: Vec<usize> = (0..4).map(|i| r.route(&req(i), &l)).collect();
        assert_eq!(picks, vec![1, 3, 1, 3]);
    }

    #[test]
    fn jsq_picks_least_loaded_with_low_index_ties() {
        let mut r = RouterPolicy::JoinShortestQueue.build();
        assert_eq!(r.queue_count(3), 3);
        // Replica 1 has the least total outstanding work.
        assert_eq!(
            r.route(&req(0), &load(&[(2, 1, 0), (1, 0, 1), (4, 0, 0)])),
            1
        );
        // Parked work counts against a replica.
        assert_eq!(
            r.route(&req(1), &load(&[(1, 0, 3), (1, 1, 0), (3, 1, 0)])),
            1
        );
        // Ties break to the lowest index.
        assert_eq!(
            r.route(&req(2), &load(&[(1, 1, 0), (2, 0, 0), (0, 2, 0)])),
            0
        );
    }

    #[test]
    fn jsq_counts_link_depth_and_skips_ineligible_replicas() {
        let mut r = FleetRouterPolicy::JoinShortestQueue.build();
        let mut l = load(&[(2, 0, 0), (0, 0, 0), (0, 1, 0)]);
        l[1].link = 3; // inbound handoffs count as outstanding work
        assert_eq!(r.route(&req(0), &l), 2);
        l[2].eligible = false;
        assert_eq!(r.route(&req(1), &l), 0);
    }

    #[test]
    fn cost_jsq_weighs_backlog_by_unit_cost() {
        let mut r = FleetRouterPolicy::CostModelJsq.build();
        let mut l = load(&[(2, 0, 0), (0, 0, 0)]);
        // Uniform cost: plain JSQ picks the empty replica.
        l[0].unit_cost_ns = 100.0;
        l[1].unit_cost_ns = 100.0;
        assert_eq!(r.route(&req(0), &l), 1);
        // A slow replica loses even with a shorter queue.
        l[1].unit_cost_ns = 1000.0;
        assert_eq!(r.route(&req(1), &l), 0);
        // Strict improvement only: ties keep the earliest candidate.
        l[0].queued = 0;
        l[1].unit_cost_ns = 100.0;
        assert_eq!(r.route(&req(2), &l), 0);
    }
}
