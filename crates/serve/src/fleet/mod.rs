//! # skip-fleet — heterogeneous replica fleets
//!
//! The single-platform floor answers "what does one endpoint do"; this
//! module answers the capacity-planning questions the paper's coupling
//! taxonomy raises at fleet scale:
//!
//! * **Heterogeneous fleets** ([`spec`]) — a [`FleetSpec`](spec::FleetSpec)
//!   mixes platforms (amd_a100 / intel_h100 / gh200 / mi300a) in one
//!   fleet; each replica prices its iterations through its own platform's
//!   latency model, and routers either ignore that (round-robin, plain
//!   JSQ) or weigh queue depth by the platform's per-request cost
//!   (cost-model JSQ).
//! * **Prefill/decode disaggregation** ([`floor`]) — prefill and decode
//!   pools on different platforms, connected by KV handoff links priced
//!   from KV block bytes over the source *and* destination coupling.
//!   This is the fleet-level consequence of the paper's launch-cost
//!   asymmetry: prefill is compute-bound (GH200's fast kernels win),
//!   decode is launch-bound (GH200's 2.8 µs launches lose), so the
//!   pairing that splits them beats any homogeneous fleet — until the
//!   interconnect eats the margin.
//! * **Arrival-driven autoscaling** ([`autoscale`], [`arrivals`]) —
//!   diurnal and bursty arrival processes drive watermark scaling with
//!   coupling-priced replica launches (provision delay + weight load over
//!   the platform's interconnect).
//! * **Capacity planning** ([`plan`]) — enumerate fleet compositions
//!   (platform mixes, disaggregation splits, autoscale on/off) against a
//!   traffic envelope and keep the cost-optimal frontier by
//!   replica-seconds billing; the candidate list is index-ordered so any
//!   in-order executor reproduces it byte for byte.

pub mod arrivals;
pub mod autoscale;
pub mod floor;
pub mod observe;
pub mod plan;
pub mod spec;

pub use arrivals::ArrivalProcess;
pub use autoscale::{AutoscaleConfig, ScaleAction, ScalingEvent};
pub use floor::{simulate_fleet, simulate_fleet_bounded, simulate_fleet_traced};
pub use observe::{FleetReport, FleetSample, FleetTrace};
pub use plan::{
    PlanCandidate, PlanError, PlanOutcome, PlanSweep, PlannerConfig, Resolution, SweepBounds,
    SweepStats, TrafficEnvelope,
};
pub use spec::{
    FleetBatchPolicy, FleetConfig, FleetError, FleetRouterPolicy, FleetSpec, PoolRole, ReplicaGroup,
};
