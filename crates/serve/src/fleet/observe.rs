//! Fleet observability: conservation-checked counter samples, scaling
//! events, and the scalar report.
//!
//! The fleet gets its own sample type rather than growing
//! [`CounterSample`](crate::CounterSample) — the PR 5 golden fixtures pin
//! that struct's serde bytes, and a disaggregated floor tracks states
//! (handoff occupancy, pool split, live replica count) the unified floor
//! has no meaningful value for.

use serde::{Deserialize, Serialize};
use skip_des::{SimDuration, SimTime};
use skip_trace::{CounterEvent, Trace};

use crate::fleet::autoscale::ScalingEvent;
use crate::observe::{LifecycleKind, RequestLifecycle, ServingTrace, SloReport};

/// One deterministic sample of the fleet counters, taken after each
/// simulator event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetSample {
    /// Sample instant.
    pub at: SimTime,
    /// Requests queued at prefill (or unified) replicas.
    pub prefill_queue: u32,
    /// Requests queued at decode replicas (KV already landed).
    pub decode_queue: u32,
    /// Requests in a running batch on any replica.
    pub running: u32,
    /// KV handoffs waiting for their destination link.
    pub handoff_queued: u32,
    /// KV handoffs currently occupying an interconnect.
    pub handoff_inflight: u32,
    /// Replicas currently able to take work (up or draining).
    pub live_replicas: u32,
    /// Requests arrived, cumulative.
    pub arrived_total: u32,
    /// Requests completed, cumulative.
    pub completed_total: u32,
}

impl FleetSample {
    /// The fleet conservation law: every arrival is queued somewhere,
    /// running, in handoff, or completed — nothing leaks between pools.
    #[must_use]
    pub fn conserves_requests(&self) -> bool {
        self.arrived_total
            == self.completed_total
                + self.prefill_queue
                + self.decode_queue
                + self.running
                + self.handoff_queued
                + self.handoff_inflight
    }
}

/// Everything a fleet run recorded beyond the scalar report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetTrace {
    /// Model served.
    pub model: String,
    /// Canonical fleet spec label.
    pub fleet: String,
    /// One lifecycle per request, indexed by request ID.
    pub lifecycles: Vec<RequestLifecycle>,
    /// Counter samples in time order.
    pub samples: Vec<FleetSample>,
    /// Autoscaler decisions in time order (empty with scaling off).
    pub scaling: Vec<ScalingEvent>,
    arrived: u32,
    completed: u32,
}

impl FleetTrace {
    /// Creates an empty recording for a fleet labelled `fleet` serving
    /// `model`.
    #[must_use]
    pub fn new(model: impl Into<String>, fleet: impl Into<String>) -> Self {
        FleetTrace {
            model: model.into(),
            fleet: fleet.into(),
            lifecycles: Vec::new(),
            samples: Vec::new(),
            scaling: Vec::new(),
            arrived: 0,
            completed: 0,
        }
    }

    /// Requests arrived so far.
    #[must_use]
    pub fn arrived_total(&self) -> u32 {
        self.arrived
    }

    /// Requests completed so far.
    #[must_use]
    pub fn completed_total(&self) -> u32 {
        self.completed
    }

    /// Preallocates lifecycle and sample storage for `requests` requests
    /// of ~`events_per_request` lifecycle events each, so a sized run
    /// records without reallocating mid-simulation. Purely a capacity
    /// hint: recorded content (and its serialized form) is unchanged,
    /// because every request id below `requests` arrives eventually and
    /// [`record`](Self::record) would have created the same entries.
    pub fn reserve(&mut self, requests: u32, events_per_request: usize) {
        let requests = requests as usize;
        self.lifecycles
            .reserve(requests.saturating_sub(self.lifecycles.len()));
        while self.lifecycles.len() < requests {
            self.lifecycles.push(RequestLifecycle {
                id: self.lifecycles.len() as u64,
                events: Vec::with_capacity(events_per_request),
            });
        }
        // Sample count tracks handled events; start near the floor of two
        // boundaries per request and let growth amortize the rest.
        self.samples.reserve(requests.saturating_mul(2));
    }

    /// Appends a lifecycle transition for request `id` (dense arrival
    /// order, as in [`ServingTrace::record`]).
    pub fn record(&mut self, id: u64, at: SimTime, kind: LifecycleKind) {
        while self.lifecycles.len() <= id as usize {
            self.lifecycles.push(RequestLifecycle {
                id: self.lifecycles.len() as u64,
                events: Vec::new(),
            });
        }
        match kind {
            LifecycleKind::Arrived => self.arrived += 1,
            LifecycleKind::Completed { .. } => self.completed += 1,
            _ => {}
        }
        self.lifecycles[id as usize]
            .events
            .push(crate::observe::LifecycleEvent { at, kind });
    }

    /// Appends a counter sample, collapsing same-instant samples to the
    /// final state of the boundary.
    pub fn push_sample(&mut self, sample: FleetSample) {
        if let Some(last) = self.samples.last_mut() {
            if last.at == sample.at {
                *last = sample;
                return;
            }
        }
        self.samples.push(sample);
    }

    /// `true` if every sample satisfies the fleet conservation law.
    #[must_use]
    pub fn conserves_requests(&self) -> bool {
        self.samples.iter().all(FleetSample::conserves_requests)
    }

    /// Exports the recording as a [`Trace`]: request lifecycles become
    /// per-request slice tracks and handoff flow arrows exactly as in
    /// [`ServingTrace::to_trace`], and the fleet counters
    /// (`prefill_queue`, `decode_queue`, `running`, `handoff_queued`,
    /// `handoff_inflight`, `live_replicas`, `completed_total`) become
    /// counter tracks.
    #[must_use]
    pub fn to_trace(&self) -> Trace {
        // Replay the lifecycles through a ServingTrace so slice naming
        // and flow-pair construction stay in one place.
        let mut st = ServingTrace::new(self.model.clone(), self.fleet.clone(), 0);
        for lc in &self.lifecycles {
            for ev in &lc.events {
                st.record(lc.id, ev.at, ev.kind);
            }
        }
        let mut t = st.to_trace();
        for s in &self.samples {
            let mut counter = |track: &str, value: f64| {
                t.push_counter(CounterEvent {
                    track: track.to_owned(),
                    at: s.at,
                    value,
                });
            };
            counter("prefill_queue", f64::from(s.prefill_queue));
            counter("decode_queue", f64::from(s.decode_queue));
            counter("running", f64::from(s.running));
            counter("handoff_queued", f64::from(s.handoff_queued));
            counter("handoff_inflight", f64::from(s.handoff_inflight));
            counter("live_replicas", f64::from(s.live_replicas));
            counter("completed_total", f64::from(s.completed_total));
        }
        t
    }
}

/// Measured fleet behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Requests completed.
    pub completed: u32,
    /// Median time-to-first-token.
    pub ttft_p50: SimDuration,
    /// 95th-percentile time-to-first-token.
    pub ttft_p95: SimDuration,
    /// 99th-percentile time-to-first-token.
    pub ttft_p99: SimDuration,
    /// Median end-to-end latency.
    pub e2e_p50: SimDuration,
    /// 95th-percentile end-to-end latency.
    pub e2e_p95: SimDuration,
    /// Output tokens per second over the makespan.
    pub throughput_tok_s: f64,
    /// Wall-clock span from first arrival to last completion.
    pub makespan: SimDuration,
    /// SLO attainment (vacuous when no target is configured).
    pub slo: SloReport,
    /// KV handoffs performed (0 without disaggregation).
    pub handoffs: u64,
    /// KV bytes moved by those handoffs.
    pub handoff_bytes: u64,
    /// Median link-queue wait before a handoff's transfer started.
    pub handoff_wait_p50: SimDuration,
    /// 95th-percentile link-queue wait.
    pub handoff_wait_p95: SimDuration,
    /// Total interconnect occupancy across all handoff transfers.
    pub handoff_transfer_total: SimDuration,
    /// Replicas launched by the autoscaler.
    pub scale_ups: u32,
    /// Replicas drained by the autoscaler.
    pub scale_downs: u32,
    /// Most replicas simultaneously live at any sample.
    pub peak_replicas: u32,
    /// Integral of live replicas over the makespan — the capacity bill
    /// an autoscaler is trying to shrink.
    pub replica_seconds: f64,
    /// `true` when the run was stopped early by a
    /// [`StopCondition`](crate::StopCondition): every metric covers only
    /// the simulated prefix, and the report must never be treated as a
    /// completed envelope. Omitted from serialization when `false`, so
    /// unbounded runs keep their pinned serde bytes.
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub aborted: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn sample(at: SimTime) -> FleetSample {
        FleetSample {
            at,
            prefill_queue: 1,
            decode_queue: 1,
            running: 2,
            handoff_queued: 1,
            handoff_inflight: 1,
            live_replicas: 4,
            arrived_total: 9,
            completed_total: 3,
        }
    }

    #[test]
    fn conservation_counts_every_bucket() {
        assert!(sample(ms(1)).conserves_requests());
        let mut bad = sample(ms(1));
        bad.handoff_inflight = 0;
        assert!(!bad.conserves_requests());
    }

    #[test]
    fn trace_records_and_conserves() {
        let mut ft = FleetTrace::new("gpt2", "prefill=gh200:1,decode=intel_h100:1");
        ft.record(0, ms(0), LifecycleKind::Arrived);
        ft.record(0, ms(10), LifecycleKind::Admitted { replica: 0 });
        ft.record(0, ms(30), LifecycleKind::FirstToken);
        ft.record(
            0,
            ms(30),
            LifecycleKind::HandoffQueued {
                from: 0,
                bytes: 4096,
            },
        );
        ft.record(
            0,
            ms(34),
            LifecycleKind::HandoffDone {
                to: 1,
                wait: SimDuration::ZERO,
                transfer: SimDuration::from_millis(4),
            },
        );
        ft.record(0, ms(35), LifecycleKind::DecodeAdmitted { replica: 1 });
        ft.record(0, ms(60), LifecycleKind::Completed { replica: 1 });
        assert_eq!(ft.arrived_total(), 1);
        assert_eq!(ft.completed_total(), 1);
        ft.push_sample(FleetSample {
            at: ms(10),
            prefill_queue: 0,
            decode_queue: 0,
            running: 1,
            handoff_queued: 0,
            handoff_inflight: 0,
            live_replicas: 2,
            arrived_total: 1,
            completed_total: 0,
        });
        assert!(ft.conserves_requests());

        let t = ft.to_trace();
        t.validate().unwrap();
        assert!(t.cpu_ops().iter().any(|o| t.name(o.name) == "handoff"));
        assert!(t.counters().iter().any(|c| c.track == "handoff_inflight"));
        assert_eq!(t.launches().len(), 1, "one kv_depart→kv_land flow pair");
    }

    #[test]
    fn same_instant_samples_collapse() {
        let mut ft = FleetTrace::new("m", "f");
        ft.push_sample(sample(ms(5)));
        let mut second = sample(ms(5));
        second.running = 4;
        second.handoff_queued = 0;
        second.handoff_inflight = 0;
        ft.push_sample(second);
        ft.push_sample(sample(ms(6)));
        assert_eq!(ft.samples.len(), 2);
        assert_eq!(ft.samples[0].running, 4);
    }

    #[test]
    fn serde_round_trips_the_fleet_trace() {
        let mut ft = FleetTrace::new("gpt2", "intel_h100:2");
        ft.record(0, ms(0), LifecycleKind::Arrived);
        ft.push_sample(sample(ms(1)));
        let json = serde_json::to_string(&ft).unwrap();
        let back: FleetTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(ft, back);
    }
}
